"""Setup shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only exists
so ``pip install -e .`` works via the legacy editable path in offline
environments where PEP 660 editable wheels cannot be built.
"""

from setuptools import setup

setup()
