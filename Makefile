# Convenience targets for the reproduction.

PYTEST ?= python -m pytest

.PHONY: install test test-fast bench pytest-bench figures examples clean

install:
	pip install -e .

test:
	$(PYTEST) tests/

test-fast:
	$(PYTEST) tests/ -x -q -m "not slow"

# The pinned perf suite, gated against the committed BENCH_<sha>.json
# trajectory (exit 1 on a direction-aware regression).
bench:
	PYTHONPATH=src python -m repro.cli bench --compare --no-write

# The paper's tables/figures via pytest-benchmark (the old `make bench`).
pytest-bench:
	$(PYTEST) benchmarks/ --benchmark-only -s

# Full-fidelity reproduction of every table and figure (hours).
figures:
	REPRO_BENCH_APPS=all REPRO_BENCH_CYCLES=20000 \
	$(PYTEST) benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; python $$script || exit 1; \
	done

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis *.egg-info src/*.egg-info
	rm -rf .repro-sweep-cache benchmarks/.cache
