"""Table 1 — optical link parameters.

Regenerates every row of Table 1 from the device/optics models and
prints it next to the paper's value.  The benchmark measures the full
link-budget evaluation (per-call cost of the photonics stack).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from helpers import print_table

from repro.core.link import OpticalLink

#: (our key, paper label, paper value) for each Table 1 row we model.
PAPER_ROWS = [
    ("transmission_distance_cm", "Trans. distance (cm)", 2.0),
    ("optical_wavelength_nm", "Optical wavelength (nm)", 980.0),
    ("optical_path_loss_db", "Optical path loss (dB)", 2.6),
    ("tx_microlens_aperture_um", "Microlens aperture @tx (um)", 90.0),
    ("rx_microlens_aperture_um", "Microlens aperture @rx (um)", 190.0),
    ("vcsel_aperture_um", "VCSEL aperture (um)", 5.0),
    ("vcsel_threshold_ma", "VCSEL threshold (mA)", 0.14),
    ("vcsel_parasitic_ohm", "VCSEL parasitic (Ohm)", 235.0),
    ("vcsel_parasitic_ff", "VCSEL parasitic (fF)", 90.0),
    ("extinction_ratio", "Extinction ratio", 11.0),
    ("pd_responsivity_a_per_w", "PD responsivity (A/W)", 0.5),
    ("pd_capacitance_ff", "PD capacitance (fF)", 100.0),
    ("tia_bandwidth_ghz", "TIA bandwidth (GHz)", 36.0),
    ("tia_gain_v_per_a", "TIA gain (V/A)", 15000.0),
    ("data_rate_gbps", "Data rate (Gbps)", 40.0),
    ("snr_db", "Signal-to-noise ratio (dB)", 7.5),
    ("ber", "Bit-error-rate", 1e-10),
    ("jitter_ps", "Cycle-to-cycle jitter (ps)", 1.7),
    ("laser_driver_mw", "Laser driver (mW)", 6.3),
    ("vcsel_mw", "VCSEL (mW)", 0.96),
    ("tx_standby_mw", "Transmitter standby (mW)", 0.43),
    ("receiver_mw", "Receiver (mW)", 4.2),
]


def test_table1_link_budget(benchmark):
    link = OpticalLink()
    table = benchmark(link.table1)
    rows = [
        [label, paper, table[key]] for key, label, paper in PAPER_ROWS
    ]
    print_table(
        "Table 1: optical link parameters (paper vs measured)",
        ["parameter", "paper", "measured"],
        rows,
        note=(
            "SNR/BER note: standard Gaussian OOK theory puts BER 1e-10 at "
            "Q=6.36 (8.0 dB as 10log10(Q)); the paper quotes 7.5 dB."
        ),
    )
    assert abs(table["optical_path_loss_db"] - 2.6) < 0.3
    assert table["ber"] < 1e-8
    assert link.feasible()


def test_loss_budget_breakdown(benchmark):
    link = OpticalLink()
    budget = benchmark(link.path.loss_budget)
    print_table(
        "Table 1 supplement: where the 2.6 dB goes",
        ["component", "loss (dB)"],
        [[k, v] for k, v in budget.items()],
    )
    parts = sum(v for k, v in budget.items() if k != "total_db")
    assert abs(budget["total_db"] - parts) < 1e-9


def test_energy_per_bit(benchmark):
    link = OpticalLink()
    epb = benchmark(lambda: link.power.energy_per_bit(link.data_rate))
    print(f"\ntransmit energy per bit: {epb * 1e12:.3f} pJ (6.3+0.96 mW @ 40 Gbps)")
    assert 0.15e-12 < epb < 0.25e-12


def test_timing_closure(benchmark):
    """§4.2's synchrony assumption: the 40 Gbps eye budget closes with
    optical clock distribution and not with an electrical tree."""
    from repro.core.clocking import ClockDistribution

    def budgets():
        return {
            "optical": ClockDistribution(optical=True),
            "electrical": ClockDistribution(optical=False),
        }

    dists = benchmark(budgets)
    rows = []
    for name, dist in dists.items():
        budget = dist.budget()
        rows.append(
            [name, budget.uncertainty * 1e12, budget.margin * 1e12,
             "yes" if budget.closes else "NO",
             dist.max_data_rate() / 1e9]
        )
    print_table(
        "§4.2 supplement: 40 Gbps synchronous-sampling budget",
        ["clock distribution", "uncertainty (ps)", "margin (ps)",
         "closes?", "max rate (Gbps)"],
        rows,
    )
    assert dists["optical"].budget().closes
    assert not dists["electrical"].budget().closes
