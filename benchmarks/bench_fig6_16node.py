"""Figure 6 — the 16-node system.

(a) per-application FSOI packet latency broken into queuing /
scheduling / network / collision-resolution, against the mesh total;
(b) speedups of FSOI and the idealized L0/Lr1/Lr2 over the mesh
baseline, with geometric means next to the paper's (FSOI 1.36,
L0 1.43, Lr1 1.32, Lr2 1.22).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from helpers import bench_apps, bench_cycles, print_table, run_bench_sweep

from repro.util.stats import geometric_mean

NETWORKS = ["mesh", "fsoi", "l0", "lr1", "lr2"]
PAPER_GMEANS = {"fsoi": 1.36, "l0": 1.43, "lr1": 1.32, "lr2": 1.22}


def run_all():
    grid = run_bench_sweep(bench_apps(), NETWORKS, 16, bench_cycles())
    return {(p.app, p.network): r for p, r in grid.items()}


def test_fig6_16node_latency_and_speedup(benchmark):
    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    apps = bench_apps()

    latency_rows = []
    for app in apps:
        fsoi = runs[(app, "fsoi")].latency_breakdown
        mesh = runs[(app, "mesh")].latency_breakdown
        latency_rows.append(
            [
                app,
                fsoi["queuing"],
                fsoi["scheduling"],
                fsoi["network"],
                fsoi["collision_resolution"],
                fsoi["total"],
                mesh["total"],
            ]
        )
    average = [sum(r[i] for r in latency_rows) / len(latency_rows) for i in range(1, 7)]
    latency_rows.append(["avg"] + average)
    print_table(
        "Figure 6a: packet latency, 16 nodes (cycles)",
        ["app", "queuing", "sched", "network", "coll.res", "FSOI total", "mesh total"],
        latency_rows,
        note="Paper: FSOI total ~7.5 cycles; mesh far higher.",
    )

    speedup_rows = []
    gmeans = {}
    for net in ("fsoi", "l0", "lr1", "lr2"):
        speedups = {
            app: runs[(app, net)].ipc / runs[(app, "mesh")].ipc for app in apps
        }
        gmeans[net] = geometric_mean(speedups.values())
    for app in apps:
        speedup_rows.append(
            [app]
            + [runs[(app, net)].ipc / runs[(app, "mesh")].ipc for net in
               ("fsoi", "l0", "lr1", "lr2")]
        )
    speedup_rows.append(
        ["gmean"] + [gmeans[net] for net in ("fsoi", "l0", "lr1", "lr2")]
    )
    speedup_rows.append(
        ["paper"] + [PAPER_GMEANS[net] for net in ("fsoi", "l0", "lr1", "lr2")]
    )
    print_table(
        "Figure 6b: speedup over mesh baseline, 16 nodes",
        ["app", "FSOI", "L0", "Lr1", "Lr2"],
        speedup_rows,
    )
    from repro.util.charts import grouped_bars

    print()
    print(
        grouped_bars(
            {
                app: {
                    net: runs[(app, net)].ipc / runs[(app, "mesh")].ipc
                    for net in ("fsoi", "l0", "lr1", "lr2")
                }
                for app in apps
            },
            title="Figure 6b (bars)",
        )
    )

    fsoi_avg_total = average[4]
    assert 4.0 < fsoi_avg_total < 12.0          # paper: 7.5
    assert average[5] > 2.5 * fsoi_avg_total    # mesh much slower
    # Ordering and rough magnitudes of the geometric means.
    assert gmeans["l0"] >= gmeans["fsoi"] > gmeans["lr1"] > gmeans["lr2"] > 1.0
    assert 1.1 < gmeans["fsoi"] < 1.7
