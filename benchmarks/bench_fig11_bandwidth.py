"""Figure 11 — performance sensitivity to interconnect bandwidth.

Progressively narrows both networks toward half bandwidth — fewer
VCSELs per FSOI lane (with the slotting re-deriving itself), narrower
mesh links (more flits per packet) — and prints performance relative to
each network's own full-bandwidth configuration.  The paper's claim:
both need some over-provisioning, and FSOI is the *less* sensitive one,
i.e. accepting collisions does not demand drastic margins.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from helpers import bench_apps, bench_cycles, print_table, run_bench_sweep

from repro.core.lanes import LaneConfig
from repro.sweep import Variant
from repro.util.stats import geometric_mean

#: FSOI bandwidth steps: (data, meta) VCSELs; relative = (d+m)/9.
FSOI_STEPS = [(6, 3), (5, 3), (5, 2), (4, 2), (3, 2), (3, 1)]
MESH_STEPS = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5]


def fsoi_variant(step) -> Variant:
    data, meta = step
    return Variant.make(
        f"{data}d{meta}m",
        fsoi_lanes=LaneConfig(data_vcsels=data, meta_vcsels=meta),
    )


def mesh_variant(scale) -> Variant:
    return Variant.make(f"x{scale}", mesh_bandwidth_scale=scale)


def fsoi_relative_bandwidth(step):
    data, meta = step
    return (data + meta) / 9.0


def test_fig11_bandwidth_sensitivity(benchmark):
    apps = bench_apps(limit=4)

    def sweep():
        fsoi_grid = run_bench_sweep(
            apps, ("fsoi",), 16, bench_cycles(),
            variants=tuple(fsoi_variant(step) for step in FSOI_STEPS),
        )
        mesh_grid = run_bench_sweep(
            apps, ("mesh",), 16, bench_cycles(),
            variants=tuple(mesh_variant(scale) for scale in MESH_STEPS),
        )
        fsoi = {
            step: geometric_mean(
                r.ipc for p, r in fsoi_grid.items()
                if p.variant == fsoi_variant(step).label
            )
            for step in FSOI_STEPS
        }
        mesh = {
            scale: geometric_mean(
                r.ipc for p, r in mesh_grid.items()
                if p.variant == mesh_variant(scale).label
            )
            for scale in MESH_STEPS
        }
        return fsoi, mesh

    fsoi, mesh = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fsoi_full = fsoi[FSOI_STEPS[0]]
    mesh_full = mesh[1.0]
    rows = []
    for step, scale in zip(FSOI_STEPS, MESH_STEPS):
        rows.append(
            [
                f"{100 * fsoi_relative_bandwidth(step):.0f}% / {100 * scale:.0f}%",
                fsoi[step] / fsoi_full,
                mesh[scale] / mesh_full,
            ]
        )
    print_table(
        "Figure 11: relative performance vs relative bandwidth",
        ["bandwidth (FSOI/mesh)", "FSOI", "mesh"],
        rows,
        note="Paper: both degrade noticeably; FSOI shows less sensitivity.",
    )
    from repro.util.charts import series

    print()
    print(
        series(
            [100 * fsoi_relative_bandwidth(s) for s in FSOI_STEPS],
            {
                "fsoi": [fsoi[s] / fsoi_full for s in FSOI_STEPS],
                "mesh": [mesh[sc] / mesh_full for sc in MESH_STEPS],
            },
            title="Figure 11 (relative performance vs bandwidth %)",
        )
    )
    fsoi_half = fsoi[FSOI_STEPS[-1]] / fsoi_full
    mesh_half = mesh[0.5] / mesh_full
    assert fsoi_half < 1.0 and mesh_half < 1.0  # both feel the squeeze
    assert fsoi_half > 0.6 and mesh_half > 0.5  # no collapse
    # FSOI is not (much) more sensitive than the mesh.
    assert fsoi_half > mesh_half - 0.08
