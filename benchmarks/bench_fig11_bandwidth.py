"""Figure 11 — performance sensitivity to interconnect bandwidth.

Progressively narrows both networks toward half bandwidth — fewer
VCSELs per FSOI lane (with the slotting re-deriving itself), narrower
mesh links (more flits per packet) — and prints performance relative to
each network's own full-bandwidth configuration.  The paper's claim:
both need some over-provisioning, and FSOI is the *less* sensitive one,
i.e. accepting collisions does not demand drastic margins.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from helpers import bench_apps, bench_cycles, print_table, run_cached

from repro.core.lanes import LaneConfig
from repro.util.stats import geometric_mean

#: FSOI bandwidth steps: (data, meta) VCSELs; relative = (d+m)/9.
FSOI_STEPS = [(6, 3), (5, 3), (5, 2), (4, 2), (3, 2), (3, 1)]
MESH_STEPS = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5]


def fsoi_relative_bandwidth(step):
    data, meta = step
    return (data + meta) / 9.0


def test_fig11_bandwidth_sensitivity(benchmark):
    apps = bench_apps(limit=4)

    def sweep():
        fsoi = {}
        for step in FSOI_STEPS:
            lanes = LaneConfig(data_vcsels=step[0], meta_vcsels=step[1])
            fsoi[step] = geometric_mean(
                run_cached(
                    app, "fsoi", 16, bench_cycles(), fsoi_lanes=lanes
                ).ipc
                for app in apps
            )
        mesh = {}
        for scale in MESH_STEPS:
            mesh[scale] = geometric_mean(
                run_cached(
                    app, "mesh", 16, bench_cycles(), mesh_bandwidth_scale=scale
                ).ipc
                for app in apps
            )
        return fsoi, mesh

    fsoi, mesh = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fsoi_full = fsoi[FSOI_STEPS[0]]
    mesh_full = mesh[1.0]
    rows = []
    for step, scale in zip(FSOI_STEPS, MESH_STEPS):
        rows.append(
            [
                f"{100 * fsoi_relative_bandwidth(step):.0f}% / {100 * scale:.0f}%",
                fsoi[step] / fsoi_full,
                mesh[scale] / mesh_full,
            ]
        )
    print_table(
        "Figure 11: relative performance vs relative bandwidth",
        ["bandwidth (FSOI/mesh)", "FSOI", "mesh"],
        rows,
        note="Paper: both degrade noticeably; FSOI shows less sensitivity.",
    )
    from repro.util.charts import series

    print()
    print(
        series(
            [100 * fsoi_relative_bandwidth(s) for s in FSOI_STEPS],
            {
                "fsoi": [fsoi[s] / fsoi_full for s in FSOI_STEPS],
                "mesh": [mesh[sc] / mesh_full for sc in MESH_STEPS],
            },
            title="Figure 11 (relative performance vs bandwidth %)",
        )
    )
    fsoi_half = fsoi[FSOI_STEPS[-1]] / fsoi_full
    mesh_half = mesh[0.5] / mesh_full
    assert fsoi_half < 1.0 and mesh_half < 1.0  # both feel the squeeze
    assert fsoi_half > 0.6 and mesh_half > 0.5  # no collapse
    # FSOI is not (much) more sensitive than the mesh.
    assert fsoi_half > mesh_half - 0.08
