"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables or
figures: it runs the experiment inside a pytest-benchmark measurement
and prints the same rows/series the paper reports, side by side with
the paper's numbers where the paper gives them.

All simulator runs go through the :mod:`repro.sweep` engine's
content-addressed on-disk cache, keyed on the *full* experiment
configuration plus a code-version tag — so results are shared across
processes and across benchmark sessions, and editing any simulator
source invalidates them automatically.  The per-application sweeps
(``bench_fig6``/``fig7``/``fig11``) additionally fan their grids out
over worker processes via :func:`run_bench_sweep`.

Environment knobs (the defaults keep a full ``pytest benchmarks/
--benchmark-only`` run to roughly fifteen minutes cold; cached reruns
take seconds):

* ``REPRO_BENCH_CYCLES`` — simulated cycles per CMP run (default 6000).
* ``REPRO_BENCH_APPS`` — ``subset`` (default) or ``all`` 16 paper
  applications for the per-application sweeps.
* ``REPRO_BENCH_WORKERS`` — worker processes for the sweep-based
  benches (default: up to 4, capped at the available cores).
* ``REPRO_BENCH_CACHE`` — cache directory (default
  ``benchmarks/.cache``); set empty to disable caching.
* ``REPRO_BENCH_PROGRESS`` — set non-empty to draw a live progress
  line (done/cache/failed counters + ETA) on stderr while a benchmark
  sweep runs; off by default so captured benchmark output stays clean.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.cmp import CmpResults
from repro.sweep import ResultCache, SweepSpec, Variant, make_point, run_sweep
from repro.workloads import APPLICATIONS

__all__ = [
    "bench_cycles",
    "bench_apps",
    "bench_workers",
    "bench_cache",
    "run_cached",
    "run_bench_sweep",
    "print_table",
    "ALL_APPS",
]

ALL_APPS = list(APPLICATIONS)
_SUBSET = ["ba", "lu", "oc", "ro", "rx", "ws", "em", "mp"]

#: In-process memo on top of the disk cache: repeated ``run_cached``
#: calls within one benchmark session skip even the JSON reload.
_MEMO: dict[str, CmpResults] = {}
_CACHE: ResultCache | None = None


def bench_cycles(default: int = 6000) -> int:
    return int(os.environ.get("REPRO_BENCH_CYCLES", default))


def bench_apps(limit: int | None = None) -> list[str]:
    """The application list for per-app sweeps."""
    if os.environ.get("REPRO_BENCH_APPS", "subset") == "all":
        apps = ALL_APPS
    else:
        apps = _SUBSET
    return apps[:limit] if limit else apps


def bench_workers() -> int:
    """Worker-process count for the sweep-based benches."""
    value = os.environ.get("REPRO_BENCH_WORKERS")
    if value:
        return max(1, int(value))
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    return min(4, cores)


def bench_cache() -> ResultCache | None:
    """The shared on-disk result cache (None when disabled)."""
    global _CACHE
    if _CACHE is None:
        root = os.environ.get(
            "REPRO_BENCH_CACHE", str(Path(__file__).parent / ".cache")
        )
        if not root:
            return None
        _CACHE = ResultCache(root)
    return _CACHE


def run_cached(app: str, network: str, num_nodes: int = 16,
               cycles: int | None = None, seed: int = 0, **kwargs) -> CmpResults:
    """Run one CMP experiment through the sweep cache.

    Keyed on the *full* configuration (every kwarg, the seed, the
    cycle count and the code version), so results persist across
    processes and benchmark sessions — unlike the previous
    ``lru_cache`` memo, which lived and died with one interpreter.
    ``kwargs`` are extra :class:`repro.cmp.CmpConfig` fields
    (``optimizations=...``, ``fsoi_lanes=...``, ``memory_gbps=...``).
    """
    from repro.cmp import CmpSystem
    from repro.sweep.cache import _normalized

    point = make_point(
        app, network, num_nodes=num_nodes, cycles=cycles or bench_cycles(),
        seed=seed, **kwargs,
    )
    cache = bench_cache()
    key = cache.key(point) if cache else repr(point)
    memoized = _MEMO.get(key)
    if memoized is not None:
        return memoized
    result_dict = cache.get(point) if cache else None
    if result_dict is None:
        raw = CmpSystem(point.to_config()).run(point.cycles).to_dict()
        result_dict = _normalized(raw)
        if cache:
            cache.put(point, result_dict)
    result = CmpResults.from_dict(result_dict)
    _MEMO[key] = result
    return result


def run_bench_sweep(
    apps,
    networks,
    num_nodes: int = 16,
    cycles: int | None = None,
    seeds=(0,),
    variants: tuple[Variant, ...] | None = None,
    workers: int | None = None,
) -> dict:
    """Run a benchmark grid in parallel; returns ``{point: results}``.

    The dict is keyed by :class:`repro.sweep.SweepPoint`; use
    ``point.app`` / ``point.network`` / ``point.variant`` to index.
    Shares the on-disk cache with :func:`run_cached`, so a grid point
    computed here is a cache hit there (and vice versa).
    """
    spec = SweepSpec(
        apps=tuple(apps),
        networks=tuple(networks),
        nodes=(num_nodes,),
        seeds=tuple(seeds),
        cycles=cycles or bench_cycles(),
        variants=variants or (Variant(),),
    )
    pool = workers or bench_workers()
    telemetry = None
    if os.environ.get("REPRO_BENCH_PROGRESS"):
        import sys

        from repro.analytics import SweepTelemetry

        telemetry = SweepTelemetry(
            total=len(spec.points()), workers=pool, live=True,
            stream=sys.stderr,
        )
    report = run_sweep(
        spec, workers=pool, cache=bench_cache(),
        progress=telemetry.on_progress if telemetry else None,
        heartbeat=telemetry.on_heartbeat if telemetry else None,
    )
    if telemetry:
        telemetry.close()
        if report.skipped_cycles:
            total = report.skipped_cycles + report.executed_cycles
            print(
                f"fast-forward: skipped {report.skipped_cycles:,} of "
                f"{total:,} simulated cycles "
                f"({100 * report.skip_ratio:.0f}%)",
                file=sys.stderr,
            )
    failed = [o for o in report.outcomes if not o.ok]
    if failed:
        details = "; ".join(
            f"{o.point.label()}: {o.error}" for o in failed[:3]
        )
        raise RuntimeError(f"{len(failed)} sweep point(s) failed: {details}")
    return dict(report.results())


def print_table(title: str, header: list[str], rows: list[list], note: str = "") -> None:
    """Render an aligned text table to stdout."""
    cells = [header] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(header))]
    line = "  ".join("-" * w for w in widths)
    print(f"\n=== {title} ===")
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    print(line)
    for row in cells[1:]:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        print(note)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 1e-3 or abs(value) >= 1e5:
            return f"{value:.2e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
