"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables or
figures: it runs the experiment inside a pytest-benchmark measurement
and prints the same rows/series the paper reports, side by side with
the paper's numbers where the paper gives them.

Environment knobs (the defaults keep a full ``pytest benchmarks/
--benchmark-only`` run to roughly fifteen minutes):

* ``REPRO_BENCH_CYCLES`` — simulated cycles per CMP run (default 6000).
* ``REPRO_BENCH_APPS`` — ``subset`` (default) or ``all`` 16 paper
  applications for the per-application sweeps.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.cmp import CmpConfig, CmpSystem
from repro.workloads import APPLICATIONS

__all__ = [
    "bench_cycles",
    "bench_apps",
    "run_cached",
    "print_table",
    "ALL_APPS",
]

ALL_APPS = list(APPLICATIONS)
_SUBSET = ["ba", "lu", "oc", "ro", "rx", "ws", "em", "mp"]


def bench_cycles(default: int = 6000) -> int:
    return int(os.environ.get("REPRO_BENCH_CYCLES", default))


def bench_apps(limit: int | None = None) -> list[str]:
    """The application list for per-app sweeps."""
    if os.environ.get("REPRO_BENCH_APPS", "subset") == "all":
        apps = ALL_APPS
    else:
        apps = _SUBSET
    return apps[:limit] if limit else apps


@lru_cache(maxsize=None)
def run_cached(app: str, network: str, num_nodes: int = 16, cycles: int | None = None,
               seed: int = 0, **kwargs):
    """Run one CMP experiment, memoized across a benchmark session.

    kwargs must be hashable; use tuples for any sequences.
    """
    config = CmpConfig(
        num_nodes=num_nodes, app=app, network=network, seed=seed, **dict(kwargs)
    )
    return CmpSystem(config).run(cycles or bench_cycles())


def print_table(title: str, header: list[str], rows: list[list], note: str = "") -> None:
    """Render an aligned text table to stdout."""
    cells = [header] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(header))]
    line = "  ".join("-" * w for w in widths)
    print(f"\n=== {title} ===")
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    print(line)
    for row in cells[1:]:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        print(note)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 1e-3 or abs(value) >= 1e5:
            return f"{value:.2e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
