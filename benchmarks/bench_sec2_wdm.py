"""§2 (extension) — the waveguided-WDM scaling argument, quantified.

Not a paper figure: §2 argues in prose that shared-waveguide WDM
interconnects hit compounding physical costs (per-ring insertion loss,
thermal tuning, crossings) that free-space optics side-steps.  This
bench turns the section into a table: per node count, the worst-case
loss, the largest wavelength count whose link still closes, the
resulting aggregate bandwidth, and the static tuning power — against
FSOI's constant 2.6 dB per hop and zero resonant devices.
"""

import sys
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from helpers import print_table

from repro.core.link import OpticalLink
from repro.wdm import WdmBusDesign

NODE_COUNTS = [4, 8, 16, 32, 64]


def test_sec2_wdm_scaling(benchmark):
    def sweep():
        rows = []
        for n in NODE_COUNTS:
            design = WdmBusDesign(num_nodes=n, wavelengths=16)
            usable = design.max_wavelengths()
            best = replace(design, wavelengths=max(1, usable))
            rows.append(
                [
                    n,
                    design.worst_case_loss_db(),
                    usable,
                    best.aggregate_bandwidth() / 1e9 if usable else 0.0,
                    design.tuning_power(),
                    design.total_rings,
                ]
            )
        return rows

    rows = benchmark(sweep)
    fsoi_loss = OpticalLink().path.loss_db()
    print_table(
        "§2: shared-bus WDM vs node count (16-wavelength design point)",
        ["N", "worst loss (dB)", "max usable λ", "agg BW (Gbps)",
         "tuning (W)", "rings"],
        rows,
        note=(
            f"FSOI contrast: every hop costs a constant {fsoi_loss:.1f} dB, "
            "zero resonant devices, zero tuning power; per-node laser "
            "count is constant under the phase array."
        ),
    )
    usable = [row[2] for row in rows]
    assert usable == sorted(usable, reverse=True)
    assert usable[-1] <= 2  # the 64-node shared bus has collapsed
    assert all(row[1] > fsoi_loss for row in rows)
