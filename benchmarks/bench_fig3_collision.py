"""Figure 3 — collision probability vs transmission probability.

Theory curves for R = 1..4 receivers from the paper's closed form, plus
Monte-Carlo points measured on the cycle-level FSOI network (the
figure's "experimental data points", split into meta and data
channels).  Everything is normalized to the transmission probability,
as in the paper's y-axis.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from helpers import print_table

from repro.core.analytical import (
    monte_carlo_collision_probability,
    normalized_collision_probability,
)
from repro.core.lanes import LaneConfig
from repro.core.network import FsoiConfig, FsoiNetwork
from repro.net.packet import LaneKind
from repro.workloads.traffic import BernoulliTraffic, TrafficDriver

PROBABILITIES = [0.01, 0.02, 0.03, 0.05, 0.07, 0.10, 0.15, 0.20, 0.25, 0.33]


def theory_rows():
    rows = []
    for p in PROBABILITIES:
        rows.append(
            [p]
            + [
                normalized_collision_probability(p, num_nodes=16, receivers=r)
                for r in (1, 2, 3, 4)
            ]
            + [monte_carlo_collision_probability(p, receivers=2, trials=20_000) / p]
        )
    return rows


def measure_point(p: float, data_fraction: float, cycles: int = 6000):
    """One simulated point: normalized collision rate on each lane."""
    network = FsoiNetwork(
        FsoiConfig(num_nodes=16, lanes=LaneConfig(), seed=int(p * 1000))
    )
    traffic = BernoulliTraffic(p=p, slot_cycles=2, data_fraction=data_fraction)
    TrafficDriver(network, traffic, seed=7).run(cycles)
    out = {}
    for lane in (LaneKind.META, LaneKind.DATA):
        tx_probability = network.transmission_probability(lane)
        events = network.collision_events_per_node_slot(lane)
        out[lane] = (
            tx_probability,
            events / tx_probability if tx_probability else 0.0,
        )
    return out


def test_fig3_theory_curves(benchmark):
    rows = benchmark(theory_rows)
    print_table(
        "Figure 3: P(collision)/p, theory, N=16",
        ["p", "R=1", "R=2", "R=3", "R=4", "MC (R=2)"],
        rows,
        note="Paper: weak N-dependence; R=2 roughly halves R=1.",
    )
    for row in rows:
        assert row[1] > row[2] > row[3] > row[4]


def test_fig3_simulated_points(benchmark):
    def simulate():
        points = []
        for p in (0.05, 0.10, 0.20):
            result = measure_point(p, data_fraction=0.3)
            meta_p, meta_norm = result[LaneKind.META]
            data_p, data_norm = result[LaneKind.DATA]
            theory_meta = normalized_collision_probability(meta_p, 16, 2)
            theory_data = normalized_collision_probability(data_p, 16, 2)
            points.append(
                [p, meta_p, meta_norm, theory_meta, data_p, data_norm, theory_data]
            )
        return points

    points = benchmark.pedantic(simulate, rounds=1, iterations=1)
    print_table(
        "Figure 3: simulated points vs theory (R=2)",
        [
            "offered p", "meta p", "meta sim", "meta theory",
            "data p", "data sim", "data theory",
        ],
        points,
        note="Simulated normalized collision rates should track theory.",
    )
    for row in points:
        _p, meta_p, meta_sim, meta_theory = row[0], row[1], row[2], row[3]
        if meta_theory > 0.01:
            assert meta_sim == pytest_approx(meta_theory, rel=0.6)


def pytest_approx(value, rel):
    import pytest

    return pytest.approx(value, rel=rel)


def test_receiver_count_ablation(benchmark):
    """Extension: the R = 1..4 sweep *simulated*, not just the theory
    curves — validating §7.3's 'two receivers roughly halve collisions'
    with the cycle-accurate network."""

    def sweep():
        out = {}
        for receivers in (1, 2, 3, 4):
            lanes = LaneConfig(meta_receivers=receivers, data_receivers=receivers)
            network = FsoiNetwork(
                FsoiConfig(num_nodes=16, lanes=lanes, seed=13)
            )
            traffic = BernoulliTraffic(p=0.15, slot_cycles=2)
            TrafficDriver(network, traffic, seed=7).run(6000)
            out[receivers] = network.collision_events_per_node_slot(LaneKind.META)
        return out

    events = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [r, events[r], normalized_collision_probability(0.15, 16, r) * 0.15]
        for r in (1, 2, 3, 4)
    ]
    print_table(
        "§7.3 ablation: receivers per node (simulated, p=0.15)",
        ["R", "collision events /node/slot (sim)", "theory"],
        rows,
        note="Two receivers should roughly halve R=1; diminishing returns after.",
    )
    assert events[1] > events[2] > events[4]
    assert events[2] / events[1] == pytest_approx(0.5, rel=0.5)
