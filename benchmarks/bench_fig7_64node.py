"""Figure 7 — the 64-node system (phase-array FSOI).

Latency breakdown and speedups at 64 nodes: the mesh's latency grows
with the network diameter while FSOI stays flat (modulo queuing), so
the performance gap widens (paper gmeans: FSOI 1.75, L0 1.91, Lr1 1.55,
Lr2 1.29).  Also reproduces §7.1's corona-style comparison (~1.06x).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from helpers import bench_apps, bench_cycles, print_table, run_bench_sweep

from repro.util.stats import geometric_mean

PAPER_GMEANS = {"fsoi": 1.75, "l0": 1.91, "lr1": 1.55, "lr2": 1.29}


def test_fig7_64node(benchmark):
    apps = bench_apps(limit=5)
    networks = ["mesh", "fsoi", "l0", "lr1", "lr2"]

    def run_all():
        grid = run_bench_sweep(apps, networks, 64, bench_cycles())
        return {(p.app, p.network): r for p, r in grid.items()}

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for app in apps:
        fsoi = runs[(app, "fsoi")].latency_breakdown
        mesh = runs[(app, "mesh")].latency_breakdown
        rows.append(
            [app, fsoi["queuing"], fsoi["network"],
             fsoi["collision_resolution"], fsoi["total"], mesh["total"]]
        )
    print_table(
        "Figure 7a: packet latency, 64 nodes (cycles)",
        ["app", "queuing", "network", "coll.res", "FSOI total", "mesh total"],
        rows,
        note="Paper: FSOI 12.6 cycles (queuing 4.1); mesh grows sharply.",
    )

    gmeans = {}
    speedup_rows = []
    for net in ("fsoi", "l0", "lr1", "lr2"):
        gmeans[net] = geometric_mean(
            runs[(app, net)].ipc / runs[(app, "mesh")].ipc for app in apps
        )
    for app in apps:
        speedup_rows.append(
            [app]
            + [runs[(app, net)].ipc / runs[(app, "mesh")].ipc
               for net in ("fsoi", "l0", "lr1", "lr2")]
        )
    speedup_rows.append(["gmean"] + [gmeans[n] for n in ("fsoi", "l0", "lr1", "lr2")])
    speedup_rows.append(["paper"] + [PAPER_GMEANS[n] for n in ("fsoi", "l0", "lr1", "lr2")])
    print_table(
        "Figure 7b: speedup over mesh baseline, 64 nodes",
        ["app", "FSOI", "L0", "Lr1", "Lr2"],
        speedup_rows,
    )

    fsoi_totals = [runs[(app, "fsoi")].latency_breakdown["total"] for app in apps]
    mesh_totals = [runs[(app, "mesh")].latency_breakdown["total"] for app in apps]
    assert max(fsoi_totals) < 20          # FSOI stays low as N grows
    assert min(mesh_totals) > 25          # mesh latency has blown up
    assert gmeans["l0"] >= gmeans["fsoi"] > gmeans["lr1"] > gmeans["lr2"]
    assert gmeans["fsoi"] > 1.4           # wider gap than at 16 nodes


def test_fig7_corona_comparison(benchmark):
    apps = bench_apps(limit=3)

    def run_pair():
        grid = run_bench_sweep(apps, ("fsoi", "corona"), 64, bench_cycles())
        return {(p.app, p.network): r for p, r in grid.items()}

    runs = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    ratios = [
        runs[(app, "fsoi")].ipc / runs[(app, "corona")].ipc for app in apps
    ]
    mean_ratio = geometric_mean(ratios)
    print_table(
        "§7.1: FSOI vs corona-style design, 64 nodes",
        ["app", "FSOI/corona speedup"],
        [[app, ratio] for app, ratio in zip(apps, ratios)]
        + [["gmean", mean_ratio], ["paper", 1.06]],
    )
    assert 0.98 < mean_ratio < 1.25
