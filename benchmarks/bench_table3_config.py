"""Table 3 — system configuration.

Prints the evaluated systems' full configuration (the reproduction's
analogue of Table 3) and benchmarks CMP construction cost.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.cmp import CmpConfig, CmpSystem
from repro.config import table3


def test_table3_configuration(benchmark):
    def build():
        return CmpSystem(CmpConfig(num_nodes=16, app="ba", network="fsoi"))

    system = benchmark.pedantic(build, rounds=3, iterations=1)
    for nodes in (16, 64):
        print(f"\n=== Table 3: system configuration ({nodes} nodes) ===")
        print(table3(nodes).render())
    assert len(system.cores) == 16
    assert len(system.memory) == 4


def test_table3_vcsel_budget(benchmark):
    config = table3(16)
    total = benchmark(
        lambda: config.lanes.total_vcsels_per_node(16, dedicated=True) * 16
    )
    print(
        f"\ndedicated 16-node transmit VCSELs: {total} "
        "(paper: 'approximately 2000', ~5 mm^2 at 30 um spacing)"
    )
    area_mm2 = total * (30e-3) ** 2  # 30 um pitch in mm
    print(f"implied array area: {area_mm2:.1f} mm^2")
    assert 1500 < total < 3000
