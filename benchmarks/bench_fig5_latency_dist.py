"""Figure 5 — distribution of read-miss reply latency.

Runs the FSOI CMP over several applications and prints the histogram of
overall request -> data-reply latency.  The paper's point: the
probability mass is heavily concentrated in a few bins (41% in the
mode), which is what makes §5.2's request-spacing prediction work.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from helpers import bench_apps, bench_cycles, print_table, run_cached

from repro.util.stats import Histogram


def merged_histogram() -> Histogram:
    merged = Histogram("reply_latency", 0, 200, 20)
    for app in bench_apps(limit=6):
        result = run_cached(app, "fsoi", 16, bench_cycles())
        histogram = result.reply_latency
        for value, count in zip(
            histogram.edges(), histogram.bins
        ):
            for _ in range(count):
                merged.record(value)
    return merged


def test_fig5_reply_latency_distribution(benchmark):
    merged = benchmark.pedantic(merged_histogram, rounds=1, iterations=1)
    fractions = merged.fractions()
    rows = [
        [f"{int(edge)}-{int(edge + merged.bin_width)}", 100 * fraction]
        for edge, fraction in zip(merged.edges(), fractions[:-1])
        if fraction > 0
    ]
    rows.append([">200", 100 * fractions[-1]])
    print_table(
        "Figure 5: read-miss reply latency distribution (FSOI, 16 nodes)",
        ["latency (cycles)", "requests (%)"],
        rows,
        note=f"mode holds {100 * merged.mode_fraction():.0f}% of requests "
        "(paper: 41% in the most likely bin)",
    )
    assert merged.count > 500
    # The paper's qualitative claim: heavily concentrated distribution.
    assert merged.mode_fraction() > 0.25
    top3 = sum(sorted(fractions, reverse=True)[:3])
    assert top3 > 0.5
