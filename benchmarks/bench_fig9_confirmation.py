"""Figure 9 — leveraging confirmation signals (§5.1).

Two experiments:

1. Confirmation-as-acknowledgment: per application, the meta-lane
   transmission probability and collision rate move when explicit
   invalidation acks are replaced by the delivery confirmation.  The
   paper reports ~5.1% less traffic removing ~31.5% of meta collisions
   (collisions fall faster than traffic because the acks are
   quasi-synchronized bursts).

2. ll/sc subscription: packet reduction and speedup on the
   synchronization-heavy applications (paper: -8% data, -11% meta,
   1.07x on the seven sync-heavy apps at 64 nodes).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from helpers import bench_apps, bench_cycles, print_table, run_cached

from repro.core.analytical import normalized_collision_probability
from repro.core.optimizations import OptimizationConfig
from repro.util.stats import geometric_mean

CONF = OptimizationConfig(confirmation_ack=True)
LLSC = OptimizationConfig(confirmation_ack=True, llsc_subscription=True)


def test_fig9_confirmation_ack(benchmark):
    apps = bench_apps(limit=6)

    def collect():
        rows = []
        for app in apps:
            base = run_cached(app, "fsoi", 16, bench_cycles())
            opt = run_cached(
                app, "fsoi", 16, bench_cycles(), optimizations=CONF
            )
            rows.append(
                [
                    app,
                    base.fsoi["meta_tx_probability"],
                    base.fsoi["meta_collision_rate"],
                    opt.fsoi["meta_tx_probability"],
                    opt.fsoi["meta_collision_rate"],
                    1 - opt.packets_sent / base.packets_sent,
                    opt.l1["acks_suppressed"],
                ]
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    table = [
        row[:-2] + [100 * row[-2], row[-1]]
        + [normalized_collision_probability(row[1], 16, 2)]
        for row in rows
    ]
    print_table(
        "Figure 9: meta lane before/after confirmation-as-ack",
        ["app", "p (base)", "coll (base)", "p (opt)", "coll (opt)",
         "traffic cut %", "acks cut", "theory @ p(base)"],
        table,
        note="Paper: traffic -5.1%, meta collisions -31.5%; points drop "
        "below the theory curve once quasi-synchronized acks vanish.",
    )
    total_traffic_cut = sum(row[-2] for row in rows) / len(rows)
    assert 0.0 < total_traffic_cut < 0.30
    # Transmission probability must fall for every app; collisions fall
    # in aggregate (small samples can be noisy per app).
    assert all(row[3] <= row[1] for row in rows)
    base_coll = sum(row[2] for row in rows)
    opt_coll = sum(row[4] for row in rows)
    assert opt_coll < base_coll


def test_fig9_llsc_subscription(benchmark):
    sync_heavy = [a for a in ("ba", "ro", "ray", "oc", "em") if a in bench_apps() or True]

    def collect():
        rows = []
        for app in sync_heavy:
            base = run_cached(app, "fsoi", 16, bench_cycles(), seed=1)
            opt = run_cached(
                app, "fsoi", 16, bench_cycles(), optimizations=LLSC, seed=1
            )
            rows.append(
                [
                    app,
                    1 - opt.packets_sent / base.packets_sent,
                    opt.fsoi["signals"],
                    opt.ipc / base.ipc,
                ]
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    speedup = geometric_mean(max(r[3], 1e-9) for r in rows)
    print_table(
        "§5.1: ll/sc subscription on sync-heavy applications",
        ["app", "packet cut", "signals sent", "speedup"],
        rows,
        note=f"gmean speedup {speedup:.3f} (paper: 1.07 on 64-way)",
    )
    assert speedup > 0.95
    assert any(r[2] > 0 for r in rows)  # signals actually used
