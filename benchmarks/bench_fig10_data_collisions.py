"""Figure 10 — data-packet collision breakdown and the §5.2 mechanisms.

Per application, the data-lane collision events by type (memory /
reply / writeback / retransmission) with and without the §5.2
optimizations (request spacing, split writebacks, resolution hints),
plus the hint-accuracy numbers (paper: 94% correct, 2.3% wrong-winner)
and a per-mechanism ablation.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from helpers import bench_apps, bench_cycles, print_table, run_cached

from repro.core.optimizations import OptimizationConfig

DATA_OPTS = OptimizationConfig(
    request_spacing=True, resolution_hints=True, split_writeback=True
)
KINDS = ["memory", "reply", "writeback", "retransmission", "other"]


def test_fig10_breakdown(benchmark):
    apps = bench_apps(limit=6)

    def collect():
        rows = []
        for app in apps:
            base = run_cached(app, "fsoi", 16, bench_cycles(), seed=3)
            opt = run_cached(
                app, "fsoi", 16, bench_cycles(), optimizations=DATA_OPTS, seed=3
            )
            rows.append((app, base, opt))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    table = []
    base_rate_sum = opt_rate_sum = 0.0
    for app, base, opt in rows:
        base_breakdown = base.fsoi["data_collision_breakdown"]
        opt_breakdown = opt.fsoi["data_collision_breakdown"]
        base_rate = base.fsoi["data_collision_rate"]
        opt_rate = opt.fsoi["data_collision_rate"]
        base_rate_sum += base_rate
        opt_rate_sum += opt_rate
        table.append(
            [app]
            + [f"{base_breakdown[k]}/{opt_breakdown[k]}" for k in KINDS]
            + [100 * base_rate, 100 * opt_rate]
        )
    print_table(
        "Figure 10: data collision events, base/optimized",
        ["app"] + KINDS + ["rate % (base)", "rate % (opt)"],
        table,
        note="Paper: avg data collision rate 9.4% -> 5.8% "
        "(~38% of collisions avoided).",
    )
    assert opt_rate_sum < base_rate_sum
    assert base_rate_sum / len(rows) < 0.25


def test_hint_accuracy(benchmark):
    apps = bench_apps(limit=6)

    def collect():
        issued = correct = wrong = ignored = 0
        for app in apps:
            run = run_cached(
                app, "fsoi", 16, bench_cycles(), optimizations=DATA_OPTS, seed=3
            )
            hints = run.fsoi["hints"]
            issued += hints["issued"]
            correct += hints["correct"]
            wrong += hints["wrong_winner"]
            ignored += hints["ignored"]
        return issued, correct, wrong, ignored

    issued, correct, wrong, ignored = benchmark.pedantic(
        collect, rounds=1, iterations=1
    )
    accuracy = correct / issued if issued else 0.0
    wrong_rate = wrong / issued if issued else 0.0
    print_table(
        "§5.2 hint accuracy",
        ["metric", "measured", "paper"],
        [
            ["hints issued", issued, "-"],
            ["correct winner", f"{100 * accuracy:.0f}%", "94%"],
            ["wrong winner", f"{100 * wrong_rate:.1f}%", "2.3%"],
            ["ignored", ignored, "-"],
        ],
    )
    assert issued > 0
    assert accuracy > 0.7
    assert wrong_rate < 0.15


def test_slotting_ablation(benchmark):
    """§4.3.2 / ref [40] (extension): slotted vs pure-ALOHA transmission
    at equal offered load — slotting should roughly halve collisions."""
    from repro.core.network import FsoiConfig, FsoiNetwork
    from repro.net.packet import LaneKind
    from repro.workloads.traffic import BernoulliTraffic, TrafficDriver

    def sweep():
        out = {}
        for slotted in (True, False):
            rates = []
            for p in (0.05, 0.10, 0.15):
                net = FsoiNetwork(
                    FsoiConfig(num_nodes=16, slotted=slotted, seed=4)
                )
                TrafficDriver(
                    net, BernoulliTraffic(p=p, slot_cycles=1), seed=6
                ).run(6000)
                rates.append(net.collision_rate(LaneKind.META))
            out[slotted] = rates
        return out

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [f"{p:.2f}", rates[True][i], rates[False][i],
         rates[False][i] / max(rates[True][i], 1e-9)]
        for i, p in enumerate((0.05, 0.10, 0.15))
    ]
    print_table(
        "§4.3.2 ablation: slotted vs unslotted meta-lane collision rate",
        ["offered p/slot", "slotted", "pure ALOHA", "ratio"],
        rows,
        note="Classic result: slotting halves the vulnerable window.",
    )
    assert all(row[2] > row[1] for row in rows)


def test_mechanism_ablation(benchmark):
    """Which §5.2 mechanism buys what (extension beyond the paper)."""
    app = "em"
    variants = {
        "none": OptimizationConfig.none(),
        "spacing": OptimizationConfig(request_spacing=True),
        "hints": OptimizationConfig(resolution_hints=True),
        "split-wb": OptimizationConfig(split_writeback=True),
        "all-three": DATA_OPTS,
    }

    def collect():
        return {
            name: run_cached(
                app, "fsoi", 16, bench_cycles(), optimizations=opts, seed=3
            )
            for name, opts in variants.items()
        }

    runs = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = [
        [name, 100 * run.fsoi["data_collision_rate"],
         run.latency_breakdown["total"], run.ipc]
        for name, run in runs.items()
    ]
    print_table(
        "§5.2 ablation on em3d (data lane)",
        ["mechanisms", "data coll %", "packet latency", "ipc"],
        rows,
    )
    assert (
        runs["all-three"].fsoi["data_collision_rate"]
        <= runs["none"].fsoi["data_collision_rate"]
    )
