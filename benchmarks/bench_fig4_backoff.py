"""Figure 4 — collision-resolution delay vs back-off parameters.

Sweeps the starting window W and base B over the paper's grid, prints
the surface (minimum near W=2.7, B=1.1), the background-rate
insensitivity (G=1% vs 10%), the optimal bandwidth split (B_M ~ 0.285),
and the §4.3.2 pathological 63-sender burst.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest
from helpers import print_table

from repro.core.analytical import (
    optimal_meta_bandwidth,
    pathological_expected_retries,
    resolution_delay,
    simulate_burst_resolution,
)

WINDOWS = [1.0, 1.5, 2.0, 2.7, 3.5, 4.5]
BASES = [1.0, 1.1, 1.3, 1.5, 2.0]


def surface(background):
    return [
        [w] + [resolution_delay(w, b, background_rate=background) for b in BASES]
        for w in WINDOWS
    ]


def test_fig4_delay_surface(benchmark):
    rows = benchmark.pedantic(lambda: surface(0.01), rounds=1, iterations=1)
    print_table(
        "Figure 4: mean resolution delay (cycles), G=1%",
        ["W"] + [f"B={b}" for b in BASES],
        rows,
        note="Paper: minimum at W=2.7, B=1.1 (7.26 cycles computed).",
    )
    flat = {
        (w, b): rows[i][j + 1]
        for i, w in enumerate(WINDOWS)
        for j, b in enumerate(BASES)
    }
    best = min(flat, key=flat.get)
    # The optimum sits in the paper's small-W, small-B corner.
    assert best[0] in (2.0, 2.7, 3.5)
    assert best[1] in (1.0, 1.1, 1.3)
    assert flat[(2.7, 1.1)] < flat[(2.7, 2.0)]  # B=2 is an over-correction
    assert flat[(2.7, 1.1)] < flat[(1.0, 1.1)]  # W too small is bad


def test_fig4_background_insensitivity(benchmark):
    def both():
        return (
            resolution_delay(2.7, 1.1, background_rate=0.01),
            resolution_delay(2.7, 1.1, background_rate=0.10),
        )

    low, high = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\nG=1%: {low:.2f} cycles   G=10%: {high:.2f} cycles")
    assert high == pytest.approx(low, rel=0.25)


def test_fig4_model_vs_execution_driven(benchmark):
    """§4.3.2's validation: the numerical model against the cycle
    simulator ("computed 7.26 ... simulated between 6.8 and 9.6")."""
    from repro.core.backoff import BackoffPolicy
    from repro.core.network import FsoiConfig, FsoiNetwork
    from repro.net.packet import LaneKind
    from repro.workloads.traffic import BernoulliTraffic, TrafficDriver

    points = [(2.7, 1.1), (2.7, 2.0), (1.0, 1.1), (4.5, 1.5)]

    def measure():
        rows = []
        for window, base in points:
            net = FsoiNetwork(
                FsoiConfig(
                    num_nodes=16, backoff=BackoffPolicy(window, base), seed=8
                )
            )
            TrafficDriver(net, BernoulliTraffic(p=0.10), seed=3).run(20_000)
            rows.append(
                [
                    f"W={window}, B={base}",
                    resolution_delay(window, base, background_rate=0.01),
                    net.mean_resolution_delay(LaneKind.META),
                ]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "§4.3.2: resolution delay, numerical model vs cycle simulator",
        ["policy", "model (cycles)", "simulated (cycles)"],
        rows,
        note="Paper: 7.26 computed vs 6.8-9.6 simulated at the optimum.",
    )
    for _label, model, simulated in rows:
        assert simulated == pytest.approx(model, rel=0.25)
    # The ordering across policies must match exactly.
    model_order = sorted(range(len(rows)), key=lambda i: rows[i][1])
    sim_order = sorted(range(len(rows)), key=lambda i: rows[i][2])
    assert model_order == sim_order


def test_bandwidth_allocation_optimum(benchmark):
    best = benchmark(optimal_meta_bandwidth)
    print(f"\noptimal meta bandwidth fraction B_M = {best:.3f} (paper: 0.285)")
    assert best == pytest.approx(0.285, abs=0.01)


def test_pathological_burst(benchmark):
    def burst():
        fixed = pathological_expected_retries(63, 3)
        slow = simulate_burst_resolution(63, 2.7, 1.1, trials=300)
        fast = simulate_burst_resolution(63, 2.7, 2.0, trials=300)
        return fixed, slow, fast

    fixed, (r11, c11), (r20, c20) = benchmark.pedantic(
        burst, rounds=1, iterations=1
    )
    print_table(
        "§4.3.2: 63 simultaneous senders to one node",
        ["policy", "retries (paper)", "retries (measured)", "cycles (measured)"],
        [
            ["fixed W=3", "8.2e10", fixed, "-"],
            ["W=2.7, B=1.1", "~26", r11, c11],
            ["W=2.7, B=2.0", "~5", r20, c20],
        ],
    )
    assert fixed > 1e10
    assert 10 < r11 < 40
    assert 2 < r20 < 10
