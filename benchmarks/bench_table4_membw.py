"""Table 4 — off-chip memory bandwidth sensitivity, plus the §7.1 L1 note.

Reruns the 16-node speedup comparison at 8.8 GB/s and 52.8 GB/s memory
channels (the paper's two columns), and the L1-size sensitivity (32 KB
L1 -> avg miss 3.0% instead of 4.8% -> slightly lower FSOI speedup).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from helpers import bench_apps, bench_cycles, print_table, run_cached

from repro.cmp import CmpConfig, CmpSystem
from repro.util.stats import geometric_mean
from repro.workloads import signature

PAPER = {
    (16, 8.8, "fsoi"): 1.32, (16, 52.8, "fsoi"): 1.36,
    (16, 8.8, "l0"): 1.37, (16, 52.8, "l0"): 1.43,
}


def gmean_speedup(net, gbps, apps, nodes=16):
    speedups = []
    for app in apps:
        base = run_cached(app, "mesh", nodes, bench_cycles(), memory_gbps=gbps)
        run = run_cached(app, net, nodes, bench_cycles(), memory_gbps=gbps)
        speedups.append(run.ipc / base.ipc)
    return geometric_mean(speedups)


def test_table4_memory_bandwidth(benchmark):
    apps = bench_apps(limit=6)

    def sweep():
        return {
            (net, gbps): gmean_speedup(net, gbps, apps)
            for net in ("fsoi", "l0")
            for gbps in (8.8, 52.8)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [net, results[(net, 8.8)], PAPER[(16, 8.8, net)],
         results[(net, 52.8)], PAPER[(16, 52.8, net)]]
        for net in ("fsoi", "l0")
    ]
    print_table(
        "Table 4: 16-node speedup vs memory bandwidth",
        ["network", "8.8 GB/s", "(paper)", "52.8 GB/s", "(paper)"],
        rows,
        note="Higher memory bandwidth exposes more interconnect benefit.",
    )
    for net in ("fsoi", "l0"):
        assert results[(net, 52.8)] >= results[(net, 8.8)] * 0.97
        assert results[(net, 8.8)] > 1.0


def test_l1_size_sensitivity(benchmark):
    # §7.1: a 32 KB L1 lowers miss rates (avg 4.8% -> 3.0%) and the FSOI
    # speedup from 1.36 to 1.27.  Our signatures encode miss behaviour,
    # so the larger cache enters as a miss-scale (see DESIGN.md).
    apps = bench_apps(limit=4)
    scale = 3.0 / 4.8

    def sweep():
        out = {}
        for label in ("8KB", "32KB"):
            speedups = []
            for app in apps:
                sig = signature(app)
                if label == "32KB":
                    sig = sig.with_miss_scale(scale)
                runs = {}
                for net in ("mesh", "fsoi"):
                    config = CmpConfig(
                        num_nodes=16, app=sig, network=net, seed=0
                    )
                    runs[net] = CmpSystem(config).run(bench_cycles())
                speedups.append(runs["fsoi"].ipc / runs["mesh"].ipc)
            out[label] = geometric_mean(speedups)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "§7.1: L1 size sensitivity (FSOI speedup over mesh)",
        ["L1", "speedup", "paper"],
        [["8 KB", results["8KB"], 1.36], ["32 KB", results["32KB"], 1.27]],
    )
    assert results["32KB"] < results["8KB"]
    assert results["32KB"] > 1.0
