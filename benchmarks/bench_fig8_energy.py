"""Figure 8 — energy relative to the mesh baseline.

Per application: total energy of the FSOI system normalized to the mesh
baseline for the same work, split into network / core+cache / leakage,
plus average power (paper: 156 W -> 121 W) and energy-delay product
(paper: 2.7x better at 16 nodes, 4.4x at 64).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from helpers import bench_apps, bench_cycles, print_table, run_cached

from repro.power import SystemPowerModel
from repro.util.stats import geometric_mean

MODEL = SystemPowerModel()


def test_fig8_energy_16node(benchmark):
    apps = bench_apps()

    def collect():
        rows = []
        for app in apps:
            mesh = MODEL.report(run_cached(app, "mesh", 16, bench_cycles()))
            fsoi = MODEL.report(run_cached(app, "fsoi", 16, bench_cycles()))
            rel = fsoi.relative_to(mesh)
            rows.append(
                {
                    "app": app,
                    "rel": rel,
                    "mesh_power": mesh.average_power,
                    "fsoi_power": fsoi.average_power,
                    "edp_gain": mesh.energy_delay_product()
                    / fsoi.energy_delay_product(),
                    "net_ratio": (
                        mesh.network_energy
                        / (fsoi.network_energy * mesh.instructions / fsoi.instructions)
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    table = [
        [r["app"], r["rel"]["network"], r["rel"]["core_cache"],
         r["rel"]["leakage"], r["rel"]["total"],
         r["mesh_power"], r["fsoi_power"], r["edp_gain"], r["net_ratio"]]
        for r in rows
    ]
    mean_saving = 1 - sum(r["rel"]["total"] for r in rows) / len(rows)
    gmean_edp = geometric_mean(r["edp_gain"] for r in rows)
    mean_mesh_p = sum(r["mesh_power"] for r in rows) / len(rows)
    mean_fsoi_p = sum(r["fsoi_power"] for r in rows) / len(rows)
    print_table(
        "Figure 8: FSOI energy relative to mesh baseline, 16 nodes",
        ["app", "network", "core+cache", "leakage", "total",
         "mesh W", "FSOI W", "EDP gain", "net ratio"],
        table,
        note=(
            f"avg energy saving {100 * mean_saving:.1f}% (paper 40.6%); "
            f"power {mean_mesh_p:.0f} W -> {mean_fsoi_p:.0f} W "
            "(paper 156 -> 121); "
            f"EDP gmean {gmean_edp:.2f}x (paper 2.7x)"
        ),
    )
    assert 0.15 < mean_saving < 0.55
    assert mean_fsoi_p < mean_mesh_p
    assert gmean_edp > 1.5
    assert all(r["net_ratio"] > 10 for r in rows)  # the ~20x network gap


def test_fig8_edp_64node(benchmark):
    apps = bench_apps(limit=4)

    def collect():
        gains = []
        for app in apps:
            mesh = MODEL.report(run_cached(app, "mesh", 64, bench_cycles()))
            fsoi = MODEL.report(run_cached(app, "fsoi", 64, bench_cycles()))
            gains.append(
                mesh.energy_delay_product() / fsoi.energy_delay_product()
            )
        return geometric_mean(gains)

    gain = benchmark.pedantic(collect, rounds=1, iterations=1)
    print(f"\n64-node EDP improvement: {gain:.2f}x (paper: 4.4x)")
    assert gain > 2.0
