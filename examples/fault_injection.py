#!/usr/bin/env python3
"""Fault injection: how gracefully does FSOI degrade with dirty optics?

§4.3.1's engineering-margin claim: "once we accept collisions ... the
bit error rates of the signaling chain can be relaxed significantly
(from 1e-10 to, say, 1e-5) without any tangible impact on performance",
because errors and collisions share the retransmission machinery.

This example injects optical degradation (contamination loss at the
receiver lens), recomputes the link BER from the physics, converts it
to a per-packet corruption probability, and measures the end-to-end
impact on a real workload.

Run:  python examples/fault_injection.py
"""

from dataclasses import replace

from repro.cmp import run_app
from repro.core.link import OpticalLink
from repro.net.packet import DATA_PACKET_BITS
from repro.util.units import db_to_linear

CYCLES = 8_000


def degraded_link(extra_loss_db: float) -> OpticalLink:
    """The Table 1 link with contamination loss added at the receiver."""
    link = OpticalLink()
    lens = link.path.rx_lens
    degraded = replace(
        lens, transmission=lens.transmission / db_to_linear(extra_loss_db)
    )
    return replace(link, path=replace(link.path, rx_lens=degraded))


def packet_error_rate(ber: float) -> float:
    """Per-packet corruption probability for a data packet."""
    return 1.0 - (1.0 - ber) ** DATA_PACKET_BITS


def main() -> None:
    print("Optical degradation sweep (ocean, 16 nodes, FSOI):")
    print(f"  {'extra loss':>10}  {'link BER':>9}  {'pkt err':>9}  "
          f"{'ipc':>6}  {'latency':>8}  {'vs clean':>8}")
    baseline_ipc = None
    for extra_db in (0.0, 0.5, 1.0, 1.5, 2.0, 2.5):
        ber = degraded_link(extra_db).ber()
        rate = packet_error_rate(ber)
        result = run_app(
            "oc", "fsoi", num_nodes=16, cycles=CYCLES,
            fsoi_packet_error_rate=rate,
        )
        if baseline_ipc is None:
            baseline_ipc = result.ipc
        print(f"  {extra_db:>8.1f}dB  {ber:>9.1e}  {rate:>9.1e}  "
              f"{result.ipc:>6.2f}  "
              f"{result.latency_breakdown['total']:>8.2f}  "
              f"{100 * result.ipc / baseline_ipc:>7.1f}%")
    print("\n  -> the link tolerates ~1.5 dB of contamination (BER to ~1e-5)")
    print("     with essentially no performance impact — §4.3.1's margin.")
    print("     Beyond that, retransmissions bite, but performance degrades")
    print("     smoothly rather than failing outright.")


if __name__ == "__main__":
    main()
