#!/usr/bin/env python3
"""Scalability study: 16-node dedicated lasers vs 64-node phase array.

Reproduces the paper's scaling argument end to end: as the CMP grows,
the mesh's hop count (and queuing) inflates packet latency while the
direct FSOI links stay flat, so the speedup gap widens — and the
phase-array transmitter keeps the per-node laser count constant where
dedicated arrays would need N*(N-1)*k VCSELs.

Run:  python examples/scaling_study.py  [app ...]
"""

import sys

from repro.cmp import run_app
from repro.core.lanes import LaneConfig

CYCLES = 8_000


def hardware_story() -> None:
    lanes = LaneConfig()
    print("Transmit-VCSEL budget per node:")
    print(f"  {'N':>4}  {'dedicated':>10}  {'phase array':>11}")
    for nodes in (4, 16, 64, 256):
        dedicated = lanes.total_vcsels_per_node(nodes, dedicated=True)
        steerable = lanes.total_vcsels_per_node(nodes, dedicated=False)
        print(f"  {nodes:>4}  {dedicated:>10}  {steerable:>11}")
    print("  -> dedicated arrays scale with N; the OPA stays constant.\n")


def performance_story(apps) -> None:
    print(f"Speedup over the mesh baseline ({CYCLES} cycles/run):")
    print(f"  {'app':>5}  {'16 nodes':>9}  {'64 nodes':>9}  {'FSOI lat 16/64':>15}")
    for app in apps:
        row = {}
        latencies = {}
        for nodes in (16, 64):
            mesh = run_app(app, "mesh", num_nodes=nodes, cycles=CYCLES)
            fsoi = run_app(app, "fsoi", num_nodes=nodes, cycles=CYCLES)
            row[nodes] = fsoi.ipc / mesh.ipc
            latencies[nodes] = (
                fsoi.latency_breakdown["total"],
                mesh.latency_breakdown["total"],
            )
        print(
            f"  {app:>5}  {row[16]:>9.2f}  {row[64]:>9.2f}  "
            f"{latencies[16][0]:>5.1f} / {latencies[64][0]:.1f} cycles"
        )
        print(
            f"  {'':>5}  (mesh latency grows "
            f"{latencies[16][1]:.1f} -> {latencies[64][1]:.1f} cycles)"
        )
    print("  -> the gap widens with N (paper: 1.36 -> 1.75 gmean).")


def main() -> None:
    apps = sys.argv[1:] or ["oc", "mp"]
    hardware_story()
    performance_story(apps)


if __name__ == "__main__":
    main()
