#!/usr/bin/env python3
"""Scalability study: 16-node dedicated lasers vs 64-node phase array.

Reproduces the paper's scaling argument end to end: as the CMP grows,
the mesh's hop count (and queuing) inflates packet latency while the
direct FSOI links stay flat, so the speedup gap widens — and the
phase-array transmitter keeps the per-node laser count constant where
dedicated arrays would need N*(N-1)*k VCSELs.

The performance grid (apps x {mesh, fsoi} x {16, 64} nodes) runs
through :func:`repro.sweep.run_sweep`: points fan out across worker
processes and land in an on-disk cache, so re-running the study (or
any benchmark sharing a point) recomputes nothing.

Run:  python examples/scaling_study.py  [app ...]
"""

import os
import sys

from repro.core.lanes import LaneConfig
from repro.sweep import SweepSpec, run_sweep

CYCLES = 8_000
CACHE_DIR = os.environ.get("REPRO_SWEEP_CACHE", ".repro-sweep-cache")


def workers() -> int:
    override = os.environ.get("REPRO_SWEEP_WORKERS")
    if override:
        return max(1, int(override))
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 1
    return min(4, cores)


def hardware_story() -> None:
    lanes = LaneConfig()
    print("Transmit-VCSEL budget per node:")
    print(f"  {'N':>4}  {'dedicated':>10}  {'phase array':>11}")
    for nodes in (4, 16, 64, 256):
        dedicated = lanes.total_vcsels_per_node(nodes, dedicated=True)
        steerable = lanes.total_vcsels_per_node(nodes, dedicated=False)
        print(f"  {nodes:>4}  {dedicated:>10}  {steerable:>11}")
    print("  -> dedicated arrays scale with N; the OPA stays constant.\n")


def performance_story(apps) -> None:
    spec = SweepSpec(
        apps=tuple(apps), networks=("mesh", "fsoi"), nodes=(16, 64),
        cycles=CYCLES,
    )
    report = run_sweep(spec, workers=workers(), cache_dir=CACHE_DIR)
    print(f"Speedup over the mesh baseline ({CYCLES} cycles/run, "
          f"{report.workers} workers, {report.executed} computed / "
          f"{report.from_cache} cached):")
    print(f"  {'app':>5}  {'16 nodes':>9}  {'64 nodes':>9}  {'FSOI lat 16/64':>15}")
    for app in apps:
        row = {}
        latencies = {}
        for nodes in (16, 64):
            mesh = report.result_for(app=app, network="mesh", num_nodes=nodes)
            fsoi = report.result_for(app=app, network="fsoi", num_nodes=nodes)
            row[nodes] = fsoi.ipc / mesh.ipc
            latencies[nodes] = (
                fsoi.latency_breakdown["total"],
                mesh.latency_breakdown["total"],
            )
        print(
            f"  {app:>5}  {row[16]:>9.2f}  {row[64]:>9.2f}  "
            f"{latencies[16][0]:>5.1f} / {latencies[64][0]:.1f} cycles"
        )
        print(
            f"  {'':>5}  (mesh latency grows "
            f"{latencies[16][1]:.1f} -> {latencies[64][1]:.1f} cycles)"
        )
    print("  -> the gap widens with N (paper: 1.36 -> 1.75 gmean).")


def main() -> None:
    apps = sys.argv[1:] or ["oc", "mp"]
    hardware_story()
    performance_story(apps)


if __name__ == "__main__":
    main()
