#!/usr/bin/env python3
"""Quickstart: compare FSOI against the electrical mesh on one workload.

Builds two 16-node chip-multiprocessors running the paper's `ocean`
signature — one on the free-space optical interconnect, one on the
conventional packet-switched mesh — runs both for the same window, and
prints the packet-latency breakdown, the speedup, and the energy story.

Run:  python examples/quickstart.py
"""

from repro.cmp import run_app
from repro.power import SystemPowerModel

CYCLES = 10_000


def main() -> None:
    print("Running ocean on a 16-node CMP over two interconnects...")
    mesh = run_app("oc", "mesh", num_nodes=16, cycles=CYCLES)
    fsoi = run_app("oc", "fsoi", num_nodes=16, cycles=CYCLES)

    print("\n--- packet latency (cycles) ---")
    for name, result in (("mesh", mesh), ("FSOI", fsoi)):
        breakdown = result.latency_breakdown
        print(
            f"{name:>5}: total {breakdown['total']:5.1f}  "
            f"(queuing {breakdown['queuing']:.1f}, "
            f"scheduling {breakdown['scheduling']:.1f}, "
            f"network {breakdown['network']:.1f}, "
            f"collision resolution {breakdown['collision_resolution']:.1f})"
        )

    print("\n--- progress ---")
    print(f" mesh: {mesh.instructions:>9,} instructions  (IPC {mesh.ipc:.2f})")
    print(f" FSOI: {fsoi.instructions:>9,} instructions  (IPC {fsoi.ipc:.2f})")
    print(f" speedup: {fsoi.speedup_over(mesh):.2f}x  (paper gmean: 1.36x)")

    print("\n--- FSOI collision behaviour ---")
    stats = fsoi.fsoi
    print(f" meta lane: p={stats['meta_tx_probability']:.3f}, "
          f"collision rate {100 * stats['meta_collision_rate']:.1f}%")
    print(f" data lane: p={stats['data_tx_probability']:.3f}, "
          f"collision rate {100 * stats['data_collision_rate']:.1f}%")

    model = SystemPowerModel()
    report_mesh = model.report(mesh)
    report_fsoi = model.report(fsoi)
    relative = report_fsoi.relative_to(report_mesh)
    print("\n--- energy (same work, normalized to mesh) ---")
    print(f" network {relative['network']:.3f}  "
          f"core+cache {relative['core_cache']:.3f}  "
          f"leakage {relative['leakage']:.3f}  "
          f"total {relative['total']:.3f}")
    print(f" average power: {report_mesh.average_power:.0f} W -> "
          f"{report_fsoi.average_power:.0f} W  (paper: 156 -> 121)")
    edp = report_mesh.energy_delay_product() / report_fsoi.energy_delay_product()
    print(f" energy-delay product: {edp:.1f}x better (paper: 2.7x)")


if __name__ == "__main__":
    main()
