#!/usr/bin/env python3
"""Design-space exploration of the free-space optical link.

Uses the photonics substrate the way a link designer would: sweep the
transmitter/receiver lens apertures and the hop distance, and find
where the link closes (BER <= 1e-9 with margin) — reproducing the
reasoning behind Table 1's 90 um / 190 um / 2 cm operating point.

Run:  python examples/link_designer.py
"""

from dataclasses import replace

from repro.core.link import OpticalLink
from repro.optics.lens import MicroLens
from repro.optics.path import FreeSpacePath
from repro.util.units import CM, UM

BER_TARGET = 1e-9


def link_with(distance_cm: float, tx_um: float, rx_um: float) -> OpticalLink:
    path = FreeSpacePath(
        distance=distance_cm * CM,
        tx_lens=MicroLens(aperture=tx_um * UM, transmission=0.995),
        rx_lens=MicroLens(aperture=rx_um * UM, transmission=0.995),
    )
    return OpticalLink(path=path)


def main() -> None:
    print("Reference link (Table 1):")
    reference = OpticalLink()
    table = reference.table1()
    print(f"  loss {table['optical_path_loss_db']:.2f} dB, "
          f"SNR {table['snr_db']:.1f} dB, BER {table['ber']:.1e}, "
          f"jitter {table['jitter_ps']:.2f} ps")

    print("\nReceiver-lens sweep at 2 cm (tx = 90 um):")
    print(f"  {'rx lens (um)':>12}  {'loss (dB)':>9}  {'BER':>9}  closes?")
    for rx in (110, 130, 150, 170, 190, 230, 290):
        link = link_with(2.0, 90, rx)
        ber = link.ber()
        print(f"  {rx:>12}  {link.path.loss_db():>9.2f}  {ber:>9.1e}  "
              f"{'yes' if ber <= BER_TARGET else 'NO'}")

    print("\nDistance sweep (90 um / 190 um lenses):")
    print(f"  {'hop (cm)':>8}  {'loss (dB)':>9}  {'BER':>9}  {'flight (ps)':>11}")
    for distance in (0.5, 1.0, 1.5, 2.0, 2.5, 3.0):
        link = link_with(distance, 90, 190)
        print(f"  {distance:>8.1f}  {link.path.loss_db():>9.2f}  "
              f"{link.ber():>9.1e}  "
              f"{link.path.propagation_delay() * 1e12:>11.1f}")

    print("\nBit-rate headroom at the Table 1 operating point:")
    for gbps in (20, 30, 40, 50):
        link = replace(reference, data_rate=gbps * 1e9)
        print(f"  {gbps} Gbps: device chain "
              f"{'supports' if link.feasible() else 'CANNOT support'} it "
              f"({link.bits_per_cpu_cycle} bits per 3.3 GHz core cycle)")

    print("\nSkew budget across the chip (paper fn. 2):")
    longest = FreeSpacePath(distance=2.0 * CM)
    for distance in (0.5, 1.0, 1.5):
        path = FreeSpacePath(distance=distance * CM)
        link = OpticalLink(path=path)
        bits = link.serializer_padding_bits(longest)
        print(f"  {distance:.1f} cm hop: pad {bits} serializer bit(s) "
              "to stay chip-synchronous")


if __name__ == "__main__":
    main()
