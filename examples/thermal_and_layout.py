#!/usr/bin/env python3
"""Physical feasibility study: chip layout and heat removal.

The architectural results assume the physical layer holds up.  This
example checks both paper claims quantitatively:

* **Figure 1c / §3.2** — with VCSEL arrays at core centers and mirrors
  above, does every node pair's free-space link close?  How much
  serializer padding keeps the chip synchronous?  How many fixed
  mirrors does the beam mesh need?
* **§3.3** — with the free-space layer displacing the heatsink, which
  cooling option actually carries the measured chip power?

Run:  python examples/thermal_and_layout.py
"""

from repro.cmp import run_app
from repro.core.layout import ChipLayout
from repro.power import CoolingOption, SystemPowerModel, ThermalStack
from repro.util.units import CM


def layout_study() -> None:
    layout = ChipLayout(num_nodes=16, chip_width=1.4 * CM)
    print("Optical layout (16 nodes on a 1.4 cm die):")
    worst = layout.worst_pair()
    print(f"  worst pair {worst}: "
          f"{layout.distance(*worst) * 100:.2f} cm hop, "
          f"{layout.path_for(*worst).loss_db():.2f} dB loss, "
          f"BER {layout.link_for(*worst).ber():.1e}")
    print(f"  every link closes at 1e-9: {layout.all_links_close()}")
    print(f"  max serializer padding: {layout.max_padding_bits()} bit(s) "
          "(paper fn. 2: ~3 communication cycles)")
    print(f"  fixed mirrors for the full beam mesh: {layout.mirror_count()} "
          f"(paper §3.2 bound: ~n^2 = {16 ** 2} mirror *sites*)")
    losses = layout.loss_table()
    print(f"  loss spread across pairs: "
          f"{min(losses.values()):.2f} .. {max(losses.values()):.2f} dB")

    print("\nHow large can the die get before links stop closing?")
    for width_cm in (1.0, 1.4, 1.8, 2.2, 2.6):
        layout = ChipLayout(num_nodes=16, chip_width=width_cm * CM)
        verdict = "closes" if layout.all_links_close() else "FAILS"
        print(f"  {width_cm:.1f} cm die -> "
              f"diagonal {layout.distance(*layout.worst_pair()) * 100:.2f} cm, "
              f"{verdict}")


def thermal_study() -> None:
    print("\nMeasuring actual chip power (mp3d, 16 nodes, FSOI)...")
    result = run_app("mp", "fsoi", num_nodes=16, cycles=6000)
    power = SystemPowerModel().report(result).average_power
    print(f"  measured average power: {power:.0f} W")

    stack = ThermalStack()
    print("\nCooling options at that power (§3.3):")
    for option, report in stack.survey(power).items():
        verdict = "OK" if report.feasible else "exceeds limits"
        print(f"  {option.value:<17} CMOS {report.cmos_junction:6.1f} C, "
              f"VCSEL {report.vcsel_layer:6.1f} C  -> {verdict}")
    print("\nSustainable power by option:")
    for option in CoolingOption:
        print(f"  {option.value:<17} up to {stack.max_power(option):.0f} W")
    print("\n  -> as the paper argues, the free-space layer makes liquid")
    print("     microchannel cooling the natural (and sufficient) choice;")
    print("     the GaAs VCSEL layer's 85 C envelope is the binding limit.")


def main() -> None:
    layout_study()
    thermal_study()


if __name__ == "__main__":
    main()
