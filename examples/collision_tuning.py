#!/usr/bin/env python3
"""Tuning the collision story of an arbitration-free interconnect.

Walks through the §4.3 design recipe on live models:

1. How many receivers per node? (Figure 3's diminishing returns.)
2. How to split bandwidth between meta and data lanes? (B_M = 0.285.)
3. How aggressive should back-off be? (Figure 4's W/B surface and the
   §4.3.2 pathological burst.)
4. What do the §5 optimizations buy on a real workload?

Run:  python examples/collision_tuning.py
"""

from repro.cmp import run_app
from repro.core.analytical import (
    collision_probability,
    optimal_meta_bandwidth,
    pathological_expected_retries,
    resolution_delay,
    simulate_burst_resolution,
)
from repro.core.optimizations import OptimizationConfig


def step1_receivers() -> None:
    print("Step 1 - receivers per node (p = 10% offered load, N = 16):")
    for receivers in (1, 2, 3, 4):
        p_coll = collision_probability(0.10, 16, receivers)
        print(f"  R={receivers}: P(collision)/slot/node = {p_coll:.4f}")
    print("  -> R=2 halves R=1; beyond that, diminishing returns.\n")


def step2_bandwidth_split() -> None:
    best = optimal_meta_bandwidth()
    print("Step 2 - meta/data bandwidth split:")
    print(f"  latency model optimum B_M = {best:.3f}")
    print("  -> 3 meta VCSELs / 6 data VCSELs is the closest integer split\n")


def step3_backoff() -> None:
    print("Step 3 - back-off tuning (mean resolution delay, cycles):")
    for window, base in ((1.0, 1.1), (2.7, 1.1), (2.7, 2.0), (4.5, 1.5)):
        delay = resolution_delay(window, base, background_rate=0.01)
        print(f"  W={window}, B={base}: {delay:.2f}")
    print("  worst case, 63 senders at once:")
    fixed = pathological_expected_retries(63, 3)
    print(f"  fixed window of 3: {fixed:.1e} expected retries (livelock!)")
    for base in (1.1, 2.0):
        retries, cycles = simulate_burst_resolution(63, 2.7, base, trials=200)
        print(f"  W=2.7, B={base}: {retries:.1f} retries, {cycles:.0f} cycles")
    print("  -> B=1.1 wins the common case without risking the burst.\n")


def step4_optimizations() -> None:
    print("Step 4 - the §5 optimizations on em3d (16 nodes, FSOI):")
    cycles = 8_000
    base = run_app("em", "fsoi", cycles=cycles)
    opt = run_app(
        "em", "fsoi", cycles=cycles, optimizations=OptimizationConfig.all()
    )
    print(f"  packets sent:        {base.packets_sent} -> {opt.packets_sent}")
    print(
        "  meta collision rate: "
        f"{100 * base.fsoi['meta_collision_rate']:.1f}% -> "
        f"{100 * opt.fsoi['meta_collision_rate']:.1f}%"
    )
    print(
        "  data collision rate: "
        f"{100 * base.fsoi['data_collision_rate']:.1f}% -> "
        f"{100 * opt.fsoi['data_collision_rate']:.1f}%"
    )
    print(f"  hint accuracy:       {opt.fsoi['hints']}")
    print(f"  ipc:                 {base.ipc:.2f} -> {opt.ipc:.2f}")


def main() -> None:
    step1_receivers()
    step2_bandwidth_split()
    step3_backoff()
    step4_optimizations()


if __name__ == "__main__":
    main()
