"""SweepSpec/SweepPoint expansion, serialization and config rebuild."""

import json

import pytest

from repro.cmp import CmpConfig
from repro.core.lanes import LaneConfig
from repro.core.optimizations import OptimizationConfig
from repro.sweep import SweepPoint, SweepSpec, Variant, make_point
from repro.sweep.spec import OPTIMIZATION_FLAGS, canonical_json


class TestSweepPoint:
    def test_round_trips_through_dict(self):
        point = make_point(
            "oc", "fsoi", num_nodes=64, cycles=5000, seed=3,
            optimizations="all", variant="narrow",
            fsoi_lanes=LaneConfig(data_vcsels=3, meta_vcsels=2),
        )
        again = SweepPoint.from_dict(point.to_dict())
        assert again == point
        assert canonical_json(again.to_dict()) == canonical_json(point.to_dict())

    def test_to_config_rebuilds_exact_config(self):
        lanes = LaneConfig(data_vcsels=4, meta_vcsels=2)
        point = make_point(
            "ba", "fsoi", cycles=2000, seed=7,
            optimizations=OptimizationConfig.all(), fsoi_lanes=lanes,
        )
        config = point.to_config()
        assert config == CmpConfig(
            num_nodes=16, app="ba", network="fsoi", seed=7,
            optimizations=OptimizationConfig.all(), fsoi_lanes=lanes,
        )

    def test_scalar_extras_pass_through(self):
        point = make_point("ba", "mesh", memory_gbps=4.4,
                           mesh_bandwidth_scale=0.5)
        config = point.to_config()
        assert config.memory_gbps == 4.4
        assert config.mesh_bandwidth_scale == 0.5

    def test_optimization_names_normalize(self):
        by_name = make_point("ba", "fsoi", optimizations="confirmation_ack")
        by_config = make_point(
            "ba", "fsoi",
            optimizations=OptimizationConfig(confirmation_ack=True),
        )
        assert by_name == by_config
        assert by_name.optimization_config().confirmation_ack

    def test_rejects_unknown_app_network_and_flags(self):
        with pytest.raises(ValueError):
            make_point("doom", "fsoi")
        with pytest.raises(ValueError):
            make_point("ba", "carrier-pigeon")
        with pytest.raises(ValueError):
            make_point("ba", "fsoi", optimizations="warp_drive")

    def test_unsupported_dataclass_kwarg_rejected(self):
        from repro.cpu.core import CoreConfig

        with pytest.raises(ValueError, match="dataclass"):
            make_point("ba", "fsoi", core=CoreConfig())


class TestSweepSpec:
    def test_cartesian_expansion_order_is_deterministic(self):
        spec = SweepSpec(
            apps=("ba", "lu"), networks=("fsoi", "mesh"),
            nodes=(16,), seeds=(0, 1), cycles=1000,
        )
        labels = [p.label() for p in spec.points()]
        assert labels == [
            "ba/fsoi/n16/s0", "ba/fsoi/n16/s1",
            "ba/mesh/n16/s0", "ba/mesh/n16/s1",
            "lu/fsoi/n16/s0", "lu/fsoi/n16/s1",
            "lu/mesh/n16/s0", "lu/mesh/n16/s1",
        ]

    def test_optimizations_apply_to_fsoi_only(self):
        spec = SweepSpec(
            apps=("ba",), networks=("fsoi", "mesh"), cycles=1000,
            optimizations=("none", "all"),
        )
        points = spec.points()
        fsoi = [p for p in points if p.network == "fsoi"]
        mesh = [p for p in points if p.network == "mesh"]
        assert len(fsoi) == 2  # baseline + optimized
        assert len(mesh) == 1  # a single baseline point, no duplicates
        assert sorted(fsoi[1].optimizations) == sorted(OPTIMIZATION_FLAGS)
        assert mesh[0].optimizations == ()

    def test_variants_expand_with_their_kwargs(self):
        spec = SweepSpec(
            apps=("ba",), networks=("fsoi",), cycles=1000,
            variants=(
                Variant.make("wide"),
                Variant.make("narrow",
                             fsoi_lanes=LaneConfig(data_vcsels=3,
                                                   meta_vcsels=2)),
            ),
        )
        points = spec.points()
        assert [p.variant for p in points] == ["wide", "narrow"]
        assert points[1].to_config().fsoi_lanes.data_vcsels == 3

    def test_spec_round_trips_through_json(self):
        spec = SweepSpec(
            apps=("ba", "oc"), networks=("fsoi", "mesh"), nodes=(16, 64),
            seeds=(0, 1, 2), cycles=4000, optimizations=("none", "all"),
            variants=(Variant.make("half", mesh_bandwidth_scale=0.5),),
        )
        again = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again.points() == spec.points()

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(apps=(), networks=("fsoi",))
        with pytest.raises(ValueError):
            SweepSpec(apps=("ba",), networks=("fsoi",), seeds=())
