"""Determinism guarantees of the sweep engine.

The same :class:`SweepSpec` must produce *byte-identical* JSONL output

* with 1 worker and with N workers (results are streamed in point
  order through a reorder buffer, and every simulation is fully
  determined by its config seed), and
* whether points are computed cold or served from the on-disk cache
  (results are canonical-JSON-normalized before anything sees them).
"""

import pytest

from repro.sweep import SweepSpec, run_sweep

SPEC = SweepSpec(apps=("ba", "mp"), networks=("fsoi", "mesh"), cycles=400)


@pytest.fixture(scope="module")
def cold_serial(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serial")
    path = tmp / "results.jsonl"
    report = run_sweep(SPEC, workers=1, cache_dir=tmp / "cache",
                       jsonl_path=path)
    assert report.ok == 4
    return tmp, path.read_bytes()


def test_worker_count_does_not_change_results(cold_serial, tmp_path):
    _, serial_bytes = cold_serial
    path = tmp_path / "results.jsonl"
    report = run_sweep(SPEC, workers=3, cache_dir=tmp_path / "cache",
                       jsonl_path=path)
    assert report.ok == 4 and report.from_cache == 0
    assert path.read_bytes() == serial_bytes


def test_cache_does_not_change_results(cold_serial):
    tmp, serial_bytes = cold_serial
    path = tmp / "rerun.jsonl"
    report = run_sweep(SPEC, workers=2, cache_dir=tmp / "cache",
                       jsonl_path=path)
    assert report.from_cache == 4 and report.executed == 0
    assert path.read_bytes() == serial_bytes


def test_same_seed_same_results_across_reruns(tmp_path):
    spec = SweepSpec(apps=("ba",), networks=("fsoi",), cycles=400, seeds=(7,))
    first = run_sweep(spec, workers=1)
    second = run_sweep(spec, workers=1)
    assert first.outcomes[0].result == second.outcomes[0].result


def test_different_seeds_differ(tmp_path):
    spec = SweepSpec(apps=("ba",), networks=("fsoi",), cycles=400,
                     seeds=(0, 1))
    report = run_sweep(spec, workers=1)
    a, b = (o.result for o in report.outcomes)
    assert a != b  # the seed axis genuinely reaches the simulator
