"""The headline acceptance sweep: 16 points, 4 apps x 2 networks x 2 seeds.

Two guarantees:

* with >= 4 cores, 4 workers beat 1 worker by >= 2x wall-clock on the
  16-point grid (skipped on smaller machines — a CPU-bound sweep
  cannot parallelize past the core count; ``test_runner.py`` covers
  pool concurrency on any machine via sleeping points);
* a second identical invocation is served entirely from the cache,
  with zero simulator executions.
"""

import os

import pytest

from repro.sweep import SweepSpec, run_sweep


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


SPEC = SweepSpec(
    apps=("ba", "lu", "oc", "ro"),
    networks=("fsoi", "mesh"),
    seeds=(0, 1),
    cycles=1000,
)


def _never_called(point_dict):
    raise AssertionError("simulator executed despite warm cache")


@pytest.mark.skipif(
    _available_cpus() < 4,
    reason=f"needs >= 4 cores for a 2x parallel speedup "
           f"(have {_available_cpus()})",
)
def test_sixteen_point_sweep_parallel_speedup(tmp_path):
    assert len(SPEC.points()) == 16
    serial = run_sweep(SPEC, workers=1)
    parallel = run_sweep(SPEC, workers=4)
    assert serial.ok == parallel.ok == 16
    speedup = serial.wall_seconds / parallel.wall_seconds
    assert speedup >= 2.0, (
        f"4 workers only {speedup:.2f}x faster than 1 "
        f"({serial.wall_seconds:.2f}s -> {parallel.wall_seconds:.2f}s)"
    )


def test_sixteen_point_sweep_second_invocation_all_cached(tmp_path):
    assert len(SPEC.points()) == 16
    workers = min(4, _available_cpus())
    cold = run_sweep(SPEC, workers=workers, cache_dir=tmp_path)
    assert cold.ok == 16 and cold.executed == 16

    warm = run_sweep(SPEC, workers=workers, cache_dir=tmp_path,
                     execute=_never_called)
    assert warm.ok == 16
    assert warm.from_cache == 16
    assert warm.executed == 0
    assert [r.to_dict() for _, r in warm.results()] == [
        r.to_dict() for _, r in cold.results()
    ]
