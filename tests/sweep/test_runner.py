"""The sweep runner: caching, crash isolation, timeouts, JSONL, CLI.

The injected-executor tests (sleep/crash payloads) need the ``fork``
start method so module-level test functions resolve in the workers;
Linux (and CI) default to fork.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.cli import main
from repro.sweep import (
    ResultCache,
    SweepSpec,
    load_jsonl,
    make_point,
    metrics_filename,
    run_sweep,
)

needs_fork = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="injected executors require the fork start method",
)

APPS = ("ba", "lu", "oc", "ro")


def _spec(**overrides):
    base = dict(apps=("ba", "lu"), networks=("fsoi", "mesh"), cycles=300)
    base.update(overrides)
    return SweepSpec(**base)


# -- injectable worker payloads (module-level: picklable) ----------------

def _sleep_execute(point_dict):
    time.sleep(0.2)
    return {"app": point_dict["app"], "slept": True}


def _crash_on_ba(point_dict):
    if point_dict["app"] == "ba":
        os._exit(9)  # simulate a segfaulting worker
    return {"app": point_dict["app"]}


def _fail_on_ba(point_dict):
    if point_dict["app"] == "ba":
        raise RuntimeError("synthetic point failure")
    return {"app": point_dict["app"]}


def _hang(point_dict):
    time.sleep(30.0)
    return {}


def _never_called(point_dict):  # for cache-only assertions
    raise AssertionError("simulator executed despite warm cache")


# -- core behaviour ------------------------------------------------------

class TestRunSweep:
    def test_serial_runs_all_points(self, tmp_path):
        report = run_sweep(_spec(), workers=1)
        assert report.ok == 4 and report.failed == 0
        assert report.executed == 4 and report.from_cache == 0
        ipcs = [r.ipc for _, r in report.results()]
        assert all(ipc > 0 for ipc in ipcs)

    def test_warm_cache_executes_nothing(self, tmp_path):
        spec = _spec()
        cold = run_sweep(spec, workers=1, cache_dir=tmp_path)
        assert cold.executed == 4
        warm = run_sweep(spec, workers=1, cache_dir=tmp_path,
                         execute=_never_called)
        assert warm.ok == 4
        assert warm.from_cache == 4
        assert warm.executed == 0
        assert [r.to_dict() for _, r in warm.results()] == [
            r.to_dict() for _, r in cold.results()
        ]

    def test_code_version_change_invalidates(self, tmp_path):
        spec = _spec(apps=("ba",), networks=("fsoi",))
        run_sweep(spec, workers=1, cache_dir=tmp_path, code_version="v1")
        rerun = run_sweep(spec, workers=1, cache_dir=tmp_path,
                          code_version="v2")
        assert rerun.executed == 1 and rerun.from_cache == 0

    def test_interrupted_sweep_resumes_from_cache(self, tmp_path):
        spec = _spec()
        points = spec.points()
        # Simulate an interruption: only the first two points finished.
        run_sweep(points[:2], workers=1, cache_dir=tmp_path)
        resumed = run_sweep(spec, workers=1, cache_dir=tmp_path)
        assert resumed.from_cache == 2
        assert resumed.executed == 2

    def test_exception_marks_point_failed_not_sweep(self):
        report = run_sweep(_spec().points(), workers=1, execute=_fail_on_ba)
        failed = [o for o in report.outcomes if not o.ok]
        assert report.ok == 2 and len(failed) == 2
        assert all(o.point.app == "ba" for o in failed)
        assert "synthetic point failure" in failed[0].error

    def test_failed_points_are_not_cached(self, tmp_path):
        spec = _spec(apps=("ba",), networks=("fsoi",))
        report = run_sweep(spec, workers=1, cache_dir=tmp_path,
                           execute=_fail_on_ba)
        assert report.failed == 1
        assert ResultCache(tmp_path).entries() == 0

    def test_progress_callback_sees_every_point(self):
        seen = []
        run_sweep(_spec().points(), workers=1,
                  progress=lambda done, total, o: seen.append((done, total)))
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]


class TestMetricsArchive:
    def test_every_executed_point_archives_a_snapshot(self, tmp_path):
        spec = _spec()
        metrics_dir = tmp_path / "metrics"
        report = run_sweep(spec, workers=1, metrics_path=metrics_dir)
        assert report.executed == 4
        files = sorted(metrics_dir.glob("*.json"))
        assert len(files) == 4
        expected = {metrics_filename(p) for p in spec.points()}
        assert {f.name for f in files} == expected
        for path in files:
            snapshot = json.loads(path.read_text())
            assert snapshot["run"]["cycles"] == spec.cycles
            assert snapshot["network"]

    def test_metrics_filenames_distinguish_cycle_counts(self):
        a = make_point(app="ba", network="fsoi", cycles=300)
        b = make_point(app="ba", network="fsoi", cycles=600)
        assert metrics_filename(a) != metrics_filename(b)

    def test_metrics_filenames_distinguish_fault_plan_labels(self):
        """Plans differing only in label must not share an archive file.

        The label rides inside ``FaultPlan.to_dict()`` and therefore
        inside the point's canonical extras, so the content hash in the
        filename separates them even though the fault schedule — and
        the point's human-readable label — is identical.
        """
        from repro.faults import FaultPlan, LaneFault

        schedule = (LaneFault(node=3, lane="meta"),)
        a = make_point(app="ba", network="fsoi", cycles=300,
                       faults=FaultPlan(label="a", lane_faults=schedule))
        b = make_point(app="ba", network="fsoi", cycles=300,
                       faults=FaultPlan(label="b", lane_faults=schedule))
        assert a.label() == b.label()  # '+flt' tag only
        assert metrics_filename(a) != metrics_filename(b)

    def test_cache_hits_skip_metrics_archiving(self, tmp_path):
        spec = _spec(apps=("ba",), networks=("fsoi",))
        metrics_dir = tmp_path / "metrics"
        run_sweep(spec, workers=1, cache_dir=tmp_path / "cache",
                  metrics_path=metrics_dir)
        assert len(list(metrics_dir.glob("*.json"))) == 1
        for stale in metrics_dir.glob("*.json"):
            stale.unlink()
        warm = run_sweep(spec, workers=1, cache_dir=tmp_path / "cache",
                         metrics_path=metrics_dir)
        assert warm.from_cache == 1
        assert not list(metrics_dir.glob("*.json"))

    @needs_fork
    def test_parallel_workers_archive_metrics(self, tmp_path):
        spec = _spec()
        metrics_dir = tmp_path / "metrics"
        report = run_sweep(spec, workers=2, metrics_path=metrics_dir)
        assert report.ok == 4
        assert len(list(metrics_dir.glob("*.json"))) == 4


class TestParallel:
    @needs_fork
    def test_pool_overlaps_sleeping_points(self):
        """16 sleeping points: 4 workers must overlap them >=2x.

        Sleep is not CPU-bound, so the assertion holds on any machine
        regardless of core count — it verifies genuine concurrency in
        the pool path, not hardware parallelism.
        """
        points = [
            make_point(app, "fsoi", cycles=100, seed=seed)
            for app in APPS for seed in range(4)
        ]
        serial = run_sweep(points, workers=1, execute=_sleep_execute)
        pooled = run_sweep(points, workers=4, execute=_sleep_execute)
        assert serial.ok == pooled.ok == 16
        assert serial.wall_seconds / pooled.wall_seconds >= 2.0

    @needs_fork
    def test_worker_crash_is_isolated(self):
        spec = _spec(apps=("ba", "lu", "oc"), networks=("fsoi",))
        report = run_sweep(spec.points(), workers=2, execute=_crash_on_ba)
        by_app = {o.point.app: o for o in report.outcomes}
        assert not by_app["ba"].ok
        assert "worker process died" in by_app["ba"].error
        assert by_app["lu"].ok and by_app["oc"].ok

    def test_timeout_fails_point_cleanly(self):
        points = _spec(apps=("ba", "lu"), networks=("fsoi",)).points()
        report = run_sweep(points, workers=1, execute=_hang, timeout=0.2)
        assert report.failed == 2
        assert all("timeout" in o.error.lower() for o in report.outcomes)


class TestJsonl:
    def test_stream_is_ordered_and_loadable(self, tmp_path):
        spec = _spec()
        path = tmp_path / "results.jsonl"
        report = run_sweep(spec, workers=1, jsonl_path=path)
        records = load_jsonl(path)
        assert [r["index"] for r in records] == [0, 1, 2, 3]
        assert [r["point"]["app"] for r in records] == ["ba", "ba", "lu", "lu"]
        assert all(r["status"] == "ok" for r in records)
        assert records[0]["result"]["instructions"] == \
            report.outcomes[0].result["instructions"]

    def test_failed_points_recorded_with_error(self, tmp_path):
        path = tmp_path / "results.jsonl"
        run_sweep(_spec().points(), workers=1, execute=_fail_on_ba,
                  jsonl_path=path)
        records = load_jsonl(path)
        failed = [r for r in records if r["status"] == "failed"]
        assert len(failed) == 2
        assert all(r["result"] is None for r in failed)
        assert all("synthetic" in r["error"] for r in failed)


class TestLoadJsonl:
    def _write(self, tmp_path):
        path = tmp_path / "results.jsonl"
        run_sweep(_spec(apps=("ba", "lu"), networks=("fsoi",)).points(),
                  workers=1, execute=_fail_on_ba, jsonl_path=path)
        return path

    def test_strict_names_the_corrupt_line(self, tmp_path):
        path = self._write(tmp_path)
        with open(path, "a") as handle:
            handle.write('{"index": 2, "status"\n')
        with pytest.raises(ValueError, match=r"results\.jsonl:3"):
            load_jsonl(path)

    def test_non_strict_skips_corrupt_and_truncated_lines(self, tmp_path):
        path = self._write(tmp_path)
        with open(path, "a") as handle:
            handle.write("not json at all\n")
            handle.write('{"index": 2, "truncat')  # interrupted write
        records = load_jsonl(path, strict=False)
        assert [r["index"] for r in records] == [0, 1]

    def test_blank_lines_are_not_corruption(self, tmp_path):
        path = self._write(tmp_path)
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert len(load_jsonl(path)) == 2


class TestHeartbeat:
    def test_inline_pulses_announce_each_point(self):
        pulses = []
        run_sweep(_spec(apps=("ba", "lu"), networks=("fsoi",)).points(),
                  workers=1, execute=_fail_on_ba,
                  heartbeat=pulses.append)
        assert [p.in_flight for p in pulses] == [
            ("ba/fsoi/n16/s0",), ("lu/fsoi/n16/s0",),
        ]
        assert all(p.total == 2 and p.workers == 1 for p in pulses)
        assert [p.done for p in pulses] == [0, 1]

    @needs_fork
    def test_pool_pulses_carry_in_flight_labels(self):
        pulses = []
        points = [make_point(app, "fsoi", cycles=100) for app in APPS]
        report = run_sweep(points, workers=2, execute=_sleep_execute,
                           heartbeat=pulses.append,
                           heartbeat_interval=0.05)
        assert report.ok == 4
        assert pulses  # the 0.2s sleeps guarantee at least one pulse
        assert all(len(p.in_flight) <= 2 for p in pulses)
        assert all(p.elapsed >= 0.0 for p in pulses)


class TestReport:
    def test_result_for_matches_unique_point(self):
        report = run_sweep(_spec(), workers=1)
        result = report.result_for(app="ba", network="fsoi")
        assert result.app == "ba" and result.network == "fsoi"
        with pytest.raises(KeyError):
            report.result_for(app="ba")  # ambiguous: two networks
        with pytest.raises(KeyError):
            report.result_for(app="ws")  # no such point

    def test_paired_speedups(self):
        report = run_sweep(_spec(seeds=(0, 1)), workers=1)
        summary = report.paired_speedups("fsoi", baseline="mesh")
        assert summary.count == 4  # 2 apps x 2 seeds
        assert summary.mean > 1.0  # FSOI beats the mesh

    def test_fast_forward_accounting(self):
        report = run_sweep(_spec(), workers=1)
        total = report.executed_cycles + report.skipped_cycles
        assert total == 4 * 300  # every point covers its full window
        assert 0.0 <= report.skip_ratio <= 1.0

    def test_skip_ratio_zero_for_pre_loop_results(self):
        # Cached results written before the loop counters existed have
        # no "loop" field; the report reads them as zero, not a crash.
        from repro.sweep.runner import PointOutcome, SweepReport

        point = make_point("ba", "fsoi", cycles=300)
        report = SweepReport(outcomes=[
            PointOutcome(point=point, status="ok", key="k", result={}),
            PointOutcome(point=point, status="failed", key="k2"),
        ])
        assert report.executed_cycles == 0
        assert report.skipped_cycles == 0
        assert report.skip_ratio == 0.0


class TestCli:
    ARGS = ["sweep", "--apps", "ba,lu", "--networks", "fsoi,mesh",
            "--seeds", "0", "--cycles", "300", "--workers", "1"]

    def test_sweep_cold_then_cached(self, tmp_path, capsys):
        args = self.ARGS + ["--cache-dir", str(tmp_path / "cache"),
                            "--out", str(tmp_path / "r.jsonl")]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "4 executed, 0 from cache" in out
        assert "speedup fsoi vs mesh" in out

        assert main(args) == 0
        out = capsys.readouterr().out
        assert "0 executed, 4 from cache" in out
        assert len(load_jsonl(tmp_path / "r.jsonl")) == 4

    def test_sweep_no_cache(self, tmp_path, capsys):
        assert main(self.ARGS + ["--no-cache"]) == 0
        assert "cache off" in capsys.readouterr().out

    def test_sweep_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(
            {"apps": ["ba"], "networks": ["fsoi"], "cycles": 300}
        ))
        assert main(["sweep", "--spec", str(spec_path), "--no-cache"]) == 0
        assert "1 points" in capsys.readouterr().out

    def test_sweep_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["sweep"])
        assert args.networks == "fsoi,mesh"
        assert args.workers == 1
        assert not args.no_cache
