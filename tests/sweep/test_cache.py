"""The content-addressed on-disk result cache."""

from repro.sweep import ResultCache, code_version, make_point, point_key


def _point(**overrides):
    base = dict(app="ba", network="fsoi", cycles=1000, seed=0)
    base.update(overrides)
    return make_point(**base)


class TestKeying:
    def test_key_is_stable(self):
        assert point_key(_point()) == point_key(_point())

    def test_key_covers_every_config_axis(self):
        base = _point()
        distinct = {
            point_key(base),
            point_key(_point(app="lu")),
            point_key(_point(network="mesh")),
            point_key(_point(num_nodes=64)),
            point_key(_point(cycles=2000)),
            point_key(_point(seed=1)),
            point_key(_point(optimizations="all")),
            point_key(_point(memory_gbps=4.4)),
        }
        assert len(distinct) == 8

    def test_key_depends_on_code_version(self):
        point = _point()
        assert point_key(point, "aaaa") != point_key(point, "bbbb")

    def test_code_version_is_stable_and_short(self):
        tag = code_version()
        assert tag == code_version()
        assert len(tag) == 12
        assert all(c in "0123456789abcdef" for c in tag)


class TestStore:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _point()
        assert cache.get(point) is None
        cache.put(point, {"ipc": 1.5, "cycles": 1000})
        assert cache.get(point) == {"ipc": 1.5, "cycles": 1000}
        assert point in cache
        assert cache.hits == 1 and cache.misses == 1

    def test_different_code_version_misses(self, tmp_path):
        point = _point()
        ResultCache(tmp_path, version="v1").put(point, {"ipc": 1.0})
        assert ResultCache(tmp_path, version="v2").get(point) is None
        assert ResultCache(tmp_path, version="v1").get(point) == {"ipc": 1.0}

    def test_corrupt_entry_treated_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = _point()
        path = cache.put(point, {"ipc": 1.0})
        path.write_text("{ truncated")
        assert cache.get(point) is None

    def test_entries_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_point(), {"ipc": 1.0})
        cache.put(_point(seed=1), {"ipc": 2.0})
        assert cache.entries() == 2
        assert cache.clear() == 2
        assert cache.entries() == 0
        assert cache.get(_point()) is None
