"""Tests for the idealized L0 / Lr1 / Lr2 networks."""

import pytest

from repro.mesh.ideal import IdealConfig, IdealNetwork
from repro.net.packet import LaneKind, Packet


def run(net, cycles):
    for cycle in range(cycles):
        net.tick(cycle)


class TestConfigs:
    def test_factories(self):
        assert IdealConfig.l0().router_cycles_per_hop is None
        assert IdealConfig.lr1().router_cycles_per_hop == 1
        assert IdealConfig.lr2().router_cycles_per_hop == 2

    def test_labels(self):
        assert IdealConfig.l0().label == "L0"
        assert IdealConfig.lr1().label == "Lr1"
        assert IdealConfig.lr2().label == "Lr2"


class TestL0:
    def test_latency_is_serialization_only(self):
        net = IdealNetwork(IdealConfig.l0(16))
        m = Packet(src=0, dst=15, lane=LaneKind.META)
        d = Packet(src=1, dst=14, lane=LaneKind.DATA)
        net.try_send(m, 0)
        net.try_send(d, 0)
        run(net, 10)
        assert m.total_delay == 1
        assert d.total_delay == 5

    def test_source_queuing_modeled(self):
        """Throughput is modeled: the second packet waits for the channel."""
        net = IdealNetwork(IdealConfig.l0(16))
        first = Packet(src=0, dst=1, lane=LaneKind.DATA)
        second = Packet(src=0, dst=2, lane=LaneKind.META)
        net.try_send(first, 0)
        net.try_send(second, 0)
        run(net, 12)
        assert first.deliver_cycle == 5
        assert second.first_tx_cycle == 5  # waited for the data packet
        assert second.deliver_cycle == 6

    def test_distance_irrelevant(self):
        net = IdealNetwork(IdealConfig.l0(16))
        near = Packet(src=0, dst=1, lane=LaneKind.META)
        far = Packet(src=5, dst=10, lane=LaneKind.META)
        net.try_send(near, 0)
        net.try_send(far, 0)
        run(net, 5)
        assert near.total_delay == far.total_delay == 1


class TestLr:
    def test_lr1_hop_latency(self):
        net = IdealNetwork(IdealConfig.lr1(16))
        p = Packet(src=0, dst=15, lane=LaneKind.META)  # 6 hops
        net.try_send(p, 0)
        run(net, 30)
        assert p.total_delay == 1 + 6 * 2  # serialization + hops*(1+1)

    def test_lr2_hop_latency(self):
        net = IdealNetwork(IdealConfig.lr2(16))
        p = Packet(src=0, dst=15, lane=LaneKind.META)
        net.try_send(p, 0)
        run(net, 30)
        assert p.total_delay == 1 + 6 * 3

    def test_lr2_slower_than_lr1(self):
        lr1 = IdealNetwork(IdealConfig.lr1(16))
        lr2 = IdealNetwork(IdealConfig.lr2(16))
        for net in (lr1, lr2):
            net.try_send(Packet(src=0, dst=12, lane=LaneKind.META), 0)
            run(net, 30)
        assert lr2.stats.total.mean > lr1.stats.total.mean


class TestBookkeeping:
    def test_refusal_when_full(self):
        net = IdealNetwork(IdealConfig(num_nodes=16, injection_queue=1))
        assert net.try_send(Packet(src=0, dst=1, lane=LaneKind.META), 0)
        assert not net.try_send(Packet(src=0, dst=2, lane=LaneKind.META), 0)

    def test_quiescence(self):
        net = IdealNetwork(IdealConfig.l0(16))
        assert net.quiescent()
        net.try_send(Packet(src=0, dst=1, lane=LaneKind.META), 0)
        assert not net.quiescent()
        run(net, 5)
        assert net.quiescent()
