"""Router-internal corner cases: VC exhaustion, credit discipline."""

import pytest

from repro.mesh.network import MeshConfig, MeshNetwork
from repro.mesh.router import Flit, Router
from repro.mesh.routing import Port
from repro.net.packet import LaneKind, Packet


def drain(net, start=0, limit=3000):
    cycle = start
    while not net.quiescent() and cycle < start + limit:
        net.tick(cycle)
        cycle += 1
    return cycle


class TestVcExhaustion:
    def test_more_packets_than_vcs_still_complete(self):
        """Six concurrent data packets from one node with 4 VCs: the
        injection port recycles VCs as tails depart."""
        net = MeshNetwork(MeshConfig(num_nodes=16, num_vcs=4))
        packets = [
            Packet(src=0, dst=5 + i % 3, lane=LaneKind.DATA) for i in range(6)
        ]
        for cycle, p in enumerate(packets):
            assert net.try_send(p, 0)
        drain(net)
        assert net.quiescent()
        assert all(p.deliver_cycle > 0 for p in packets)

    def test_single_vc_serializes_packets(self):
        one_vc = MeshNetwork(MeshConfig(num_nodes=16, num_vcs=1))
        a = Packet(src=0, dst=5, lane=LaneKind.DATA)
        b = Packet(src=0, dst=5, lane=LaneKind.DATA)
        one_vc.try_send(a, 0)
        one_vc.try_send(b, 0)
        drain(one_vc)
        # The second packet could not start injection until the first's
        # tail released the VC: at least 5 flit-cycles later.
        assert b.first_tx_cycle - a.first_tx_cycle >= 5

    def test_tiny_buffers_still_deliver(self):
        tight = MeshNetwork(MeshConfig(num_nodes=16, buffer_flits=1))
        packets = [
            Packet(src=0, dst=15, lane=LaneKind.DATA) for _ in range(3)
        ]
        for p in packets:
            tight.try_send(p, 0)
        drain(tight)
        assert all(p.deliver_cycle > 0 for p in packets)


class TestCreditDiscipline:
    def make_router(self):
        deliveries = []
        router = Router(
            node=0, side=4, num_vcs=2, buffer_flits=2,
            router_latency=4, link_latency=1,
            deliver=lambda p, c: deliveries.append((p, c)),
        )
        return router, deliveries

    def test_overflow_raises(self):
        router, _ = self.make_router()
        packet = Packet(src=1, dst=0, lane=LaneKind.DATA)
        flits = [
            Flit(packet=packet, index=i, is_head=(i == 0), is_tail=(i == 4))
            for i in range(5)
        ]
        router.accept_flit(Port.EAST, 0, flits[0], 0)
        router.accept_flit(Port.EAST, 0, flits[1], 0)
        with pytest.raises(RuntimeError, match="credit"):
            router.accept_flit(Port.EAST, 0, flits[2], 0)

    def test_double_head_raises(self):
        router, _ = self.make_router()
        first = Packet(src=1, dst=0, lane=LaneKind.META)
        second = Packet(src=2, dst=0, lane=LaneKind.META)
        router.accept_flit(
            Port.EAST, 0, Flit(first, 0, is_head=True, is_tail=True), 0
        )
        with pytest.raises(RuntimeError, match="VC allocation"):
            router.accept_flit(
                Port.EAST, 0, Flit(second, 0, is_head=True, is_tail=True), 0
            )

    def test_local_ejection_delivers_on_tail(self):
        router, deliveries = self.make_router()
        packet = Packet(src=1, dst=0, lane=LaneKind.META)
        router.accept_flit(
            Port.EAST, 0, Flit(packet, 0, is_head=True, is_tail=True), 0
        )
        router.tick(0)
        assert len(deliveries) == 1
        delivered, cycle = deliveries[0]
        assert delivered is packet
        assert cycle == 4  # router latency

    def test_validation(self):
        with pytest.raises(ValueError):
            Router(0, 4, 0, 2, 4, 1, lambda p, c: None)
        with pytest.raises(ValueError):
            Router(0, 4, 2, 2, 0, 1, lambda p, c: None)
