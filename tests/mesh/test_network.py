"""Tests for the mesh network (routers + network interfaces)."""

import numpy as np
import pytest

from repro.mesh.network import MeshConfig, MeshNetwork
from repro.net.packet import LaneKind, Packet


def make_mesh(**kwargs) -> MeshNetwork:
    kwargs.setdefault("num_nodes", 16)
    return MeshNetwork(MeshConfig(**kwargs))


def run(net, cycles, start=0):
    for cycle in range(start, start + cycles):
        net.tick(cycle)


def drain(net, start, limit=5000):
    cycle = start
    while not net.quiescent() and cycle < start + limit:
        net.tick(cycle)
        cycle += 1
    return cycle


class TestConfig:
    def test_defaults_match_table3(self):
        config = MeshConfig()
        assert config.num_vcs == 4
        assert config.buffer_flits == 12
        assert config.router_latency == 4
        assert config.link_latency == 1

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            MeshConfig(num_nodes=10)


class TestSinglePacket:
    def test_neighbor_latency(self):
        net = make_mesh()
        p = Packet(src=0, dst=1, lane=LaneKind.META)
        net.try_send(p, 0)
        drain(net, 0)
        # 1 hop: inject + router(4)+link(1) + eject router(4) ~ 10 cycles.
        assert 8 <= p.total_delay <= 14
        assert p.deliver_cycle > 0

    def test_latency_grows_with_distance(self):
        near_net = make_mesh()
        near = Packet(src=0, dst=1, lane=LaneKind.META)
        near_net.try_send(near, 0)
        drain(near_net, 0)

        far_net = make_mesh()
        far = Packet(src=0, dst=15, lane=LaneKind.META)
        far_net.try_send(far, 0)
        drain(far_net, 0)
        # 5 extra hops at 5 cycles each.
        assert far.total_delay - near.total_delay == 25

    def test_data_packet_serialization(self):
        net = make_mesh()
        m = Packet(src=0, dst=5, lane=LaneKind.META)
        d = Packet(src=1, dst=6, lane=LaneKind.DATA)
        net.try_send(m, 0)
        net.try_send(d, 0)
        drain(net, 0)
        assert d.total_delay - m.total_delay == 4  # 4 extra flits

    def test_hops_recorded(self):
        net = make_mesh()
        net.try_send(Packet(src=0, dst=15, lane=LaneKind.META), 0)
        drain(net, 0)
        hops = net.stats.group.as_dict()["hops"]
        assert hops["mean"] == 6


class TestBackpressure:
    def test_injection_queue_refuses_when_full(self):
        net = make_mesh(injection_queue=2)
        assert net.try_send(Packet(src=0, dst=1, lane=LaneKind.DATA), 0)
        assert net.try_send(Packet(src=0, dst=1, lane=LaneKind.DATA), 0)
        assert not net.try_send(Packet(src=0, dst=1, lane=LaneKind.DATA), 0)
        assert int(net.stats.refused) == 1

    def test_can_accept(self):
        net = make_mesh(injection_queue=1)
        assert net.can_accept(0, LaneKind.META)
        net.try_send(Packet(src=0, dst=1, lane=LaneKind.META), 0)
        assert not net.can_accept(0, LaneKind.META)


class TestConservation:
    def test_random_traffic_all_delivered_once(self):
        net = make_mesh()
        delivered = []
        for node in range(16):
            net.set_delivery_callback(node, lambda p: delivered.append(p.uid))
        rng = np.random.default_rng(3)
        sent = []
        for cycle in range(300):
            for src in range(16):
                if rng.random() < 0.05:
                    dst = int(rng.integers(0, 15))
                    dst = dst if dst < src else dst + 1
                    lane = LaneKind.DATA if rng.random() < 0.3 else LaneKind.META
                    p = Packet(src=src, dst=dst, lane=lane)
                    if net.try_send(p, cycle):
                        sent.append(p.uid)
            net.tick(cycle)
        end = drain(net, 300)
        assert net.quiescent(), f"not drained by cycle {end}"
        assert sorted(delivered) == sorted(sent)

    def test_wormhole_packets_arrive_intact(self):
        """Data packets interleaved from two sources both eject whole."""
        net = make_mesh()
        a = Packet(src=0, dst=5, lane=LaneKind.DATA)
        b = Packet(src=1, dst=5, lane=LaneKind.DATA)
        net.try_send(a, 0)
        net.try_send(b, 0)
        drain(net, 0)
        assert a.deliver_cycle > 0 and b.deliver_cycle > 0

    def test_point_to_point_order_preserved(self):
        """Same source, same destination: delivery follows injection."""
        net = make_mesh()
        order = []
        net.set_delivery_callback(7, lambda p: order.append(p.uid))
        packets = [Packet(src=0, dst=7, lane=LaneKind.META) for _ in range(5)]
        for p in packets:
            net.try_send(p, 0)
        drain(net, 0)
        assert order == [p.uid for p in packets]


class TestActivity:
    def test_activity_counters_consistent(self):
        net = make_mesh()
        net.try_send(Packet(src=0, dst=3, lane=LaneKind.META), 0)
        drain(net, 0)
        activity = net.activity()
        # 1 flit, 3 hops of link traversal, 4 routers touched.
        assert activity["link_flits"] == 3
        assert activity["buffer_writes"] == activity["buffer_reads"]
        assert activity["flits_routed"] == 4
