"""Tests for mesh topology helpers and XY routing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mesh.routing import (
    Port,
    mesh_coordinates,
    mesh_hops,
    mesh_side,
    neighbor,
    opposite,
    xy_route,
)


class TestTopology:
    def test_mesh_side(self):
        assert mesh_side(16) == 4
        assert mesh_side(64) == 8

    def test_mesh_side_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            mesh_side(15)

    def test_coordinates_row_major(self):
        assert mesh_coordinates(0, 4) == (0, 0)
        assert mesh_coordinates(5, 4) == (1, 1)
        assert mesh_coordinates(15, 4) == (3, 3)

    def test_coordinates_bounds(self):
        with pytest.raises(ValueError):
            mesh_coordinates(16, 4)

    def test_manhattan_hops(self):
        assert mesh_hops(0, 15, 4) == 6
        assert mesh_hops(0, 0, 4) == 0
        assert mesh_hops(3, 12, 4) == 6

    def test_neighbor_roundtrip(self):
        assert neighbor(5, Port.EAST, 4) == 6
        assert neighbor(6, Port.WEST, 4) == 5
        assert neighbor(5, Port.SOUTH, 4) == 9
        assert neighbor(9, Port.NORTH, 4) == 5

    def test_neighbor_at_edge_raises(self):
        with pytest.raises(ValueError):
            neighbor(3, Port.EAST, 4)
        with pytest.raises(ValueError):
            neighbor(0, Port.NORTH, 4)

    def test_local_has_no_neighbor(self):
        with pytest.raises(ValueError):
            neighbor(0, Port.LOCAL, 4)

    def test_opposite(self):
        assert opposite(Port.EAST) is Port.WEST
        assert opposite(Port.NORTH) is Port.SOUTH
        with pytest.raises(ValueError):
            opposite(Port.LOCAL)


class TestXyRouting:
    def test_x_first(self):
        # From (0,0) to (3,3): go EAST until x matches, then SOUTH.
        assert xy_route(0, 15, 4) is Port.EAST
        assert xy_route(3, 15, 4) is Port.SOUTH

    def test_arrival_is_local(self):
        assert xy_route(7, 7, 4) is Port.LOCAL

    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
    )
    def test_route_reaches_destination_in_hop_count(self, src, dst):
        current = src
        steps = 0
        while current != dst:
            port = xy_route(current, dst, 4)
            assert port is not Port.LOCAL
            current = neighbor(current, port, 4)
            steps += 1
            assert steps <= 6  # mesh diameter
        assert steps == mesh_hops(src, dst, 4)

    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
    )
    def test_no_y_to_x_turns(self, src, dst):
        """XY routing never turns from Y back into X (deadlock freedom)."""
        current = src
        seen_y = False
        while current != dst:
            port = xy_route(current, dst, 8)
            if port in (Port.NORTH, Port.SOUTH):
                seen_y = True
            else:
                assert not seen_y
            current = neighbor(current, port, 8)
