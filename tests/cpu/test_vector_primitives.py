"""Property tests for the columnar engine's primitives in isolation.

The equivalence suite (``tests/cmp/test_vector_equivalence.py``) checks
the composed system; these tests check each columnar kernel against a
scalar re-derivation on random state vectors, so a regression points at
the broken primitive instead of a diverged end-to-end run:

* :class:`ReplayRng` against a real ``numpy.random.Generator`` over
  interleaved float and bounded-integer draws (including refills and
  PCG64's cross-call 32-bit stash);
* :func:`accrue_columns` (the lazy phase-counter charge) against a
  per-node scalar loop;
* :func:`hold_release_cycle` / :func:`spin_poll_cycle` against naive
  tick-by-tick countdown / poll-gate simulations;
* :func:`mshr_admit_mask` against :class:`MshrFile.allocate`.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.mshr import MshrFile
from repro.cpu.vector import (
    NUM_BUCKETS,
    ReplayRng,
    accrue_columns,
    hold_release_cycle,
    mshr_admit_mask,
    spin_poll_cycle,
)

_DRAW = st.one_of(
    st.just(None),  # a float draw
    st.tuples(  # an integers(low, low + span) draw
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=1, max_value=2**31),
    ),
)


class TestReplayRng:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        ops=st.lists(_DRAW, min_size=1, max_size=200),
    )
    def test_matches_generator_interleaved(self, seed, ops):
        replay = ReplayRng(seed)
        reference = np.random.Generator(np.random.PCG64(seed))
        for op in ops:
            if op is None:
                assert replay.random() == reference.random()
            else:
                low, span = op
                got = replay.integers(low, low + span)
                assert got == int(reference.integers(low, low + span))

    def test_survives_block_refills(self):
        # The buffer holds 1024 raw words; 6000 interleaved draws cross
        # several refill boundaries in both the float and the 32-bit
        # (stash-carrying) paths.
        replay = ReplayRng(12345)
        reference = np.random.Generator(np.random.PCG64(12345))
        for i in range(6000):
            if i % 3 == 0:
                assert replay.random() == reference.random()
            else:
                high = (i % 97) + 2
                assert replay.integers(0, high) == int(
                    reference.integers(0, high)
                )

    def test_range_of_one_consumes_nothing(self):
        replay = ReplayRng(7)
        reference = np.random.Generator(np.random.PCG64(7))
        assert replay.integers(5, 6) == 5
        assert int(reference.integers(5, 6)) == 5
        # The streams stay aligned afterwards.
        for _ in range(32):
            assert replay.random() == reference.random()


class TestAccrueColumns:
    @settings(max_examples=100, deadline=None)
    @given(data=st.data(), n=st.integers(min_value=1, max_value=32))
    def test_matches_scalar_loop(self, data, n):
        ints = st.lists(
            st.integers(min_value=0, max_value=100), min_size=n, max_size=n
        )
        until = np.array(data.draw(ints), dtype=np.int64)
        codes = np.array(
            data.draw(st.lists(
                st.integers(min_value=0, max_value=NUM_BUCKETS - 1),
                min_size=n, max_size=n,
            )),
            dtype=np.int64,
        )
        pending = np.array(
            [data.draw(ints) for _ in range(NUM_BUCKETS)], dtype=np.int64
        ).T.copy()
        boundary = data.draw(st.integers(min_value=0, max_value=120))

        expected_pending = pending.copy()
        expected_until = until.copy()
        expected_delta = np.zeros(n, dtype=np.int64)
        for j in range(n):
            d = max(0, boundary - int(until[j]))
            expected_pending[j, int(codes[j])] += d
            expected_until[j] = max(int(until[j]), boundary)
            expected_delta[j] = d

        delta = accrue_columns(until, pending, codes, boundary)
        assert np.array_equal(pending, expected_pending)
        assert np.array_equal(until, expected_until)
        assert np.array_equal(delta, expected_delta)


class TestDeadlineKernels:
    @settings(max_examples=100, deadline=None)
    @given(
        anchor=st.integers(min_value=0, max_value=10_000),
        hold=st.integers(min_value=0, max_value=500),
    )
    def test_hold_release_matches_naive_countdown(self, anchor, hold):
        # Naive: one decrement per tick starting at ``anchor``; the
        # release happens on the tick that exhausts the countdown, and a
        # degenerate hold still burns its one release tick.
        cycle, left = anchor, hold
        while True:
            left -= 1
            if left <= 0:
                break
            cycle += 1
        assert hold_release_cycle(anchor, hold) == cycle

    @settings(max_examples=100, deadline=None)
    @given(
        anchor=st.integers(min_value=0, max_value=10_000),
        next_spin=st.integers(min_value=0, max_value=12_000),
    )
    def test_spin_poll_matches_naive_gate(self, anchor, next_spin):
        # Naive: every tick checks ``cycle >= next_spin``; the first
        # poll lands on the first passing cycle at or after the anchor.
        cycle = anchor
        while cycle < next_spin:
            cycle += 1
        assert spin_poll_cycle(anchor, next_spin) == cycle


class TestMshrAdmitMask:
    @settings(max_examples=100, deadline=None)
    @given(data=st.data(), limit=st.integers(min_value=1, max_value=8))
    def test_matches_scalar_file(self, data, limit):
        n = data.draw(st.integers(min_value=1, max_value=16))
        occupancy = data.draw(st.lists(
            st.integers(min_value=0, max_value=limit),
            min_size=n, max_size=n,
        ))
        want_merge = data.draw(st.lists(
            st.booleans(), min_size=n, max_size=n
        ))

        expected = []
        merged = []
        for occ, merge in zip(occupancy, want_merge):
            file = MshrFile(limit)
            for line in range(occ):
                assert file.allocate(line)
            merge = merge and occ > 0  # can't merge into an empty file
            probe = 0 if merge else occ  # line 0 is resident; occ is new
            merged.append(merge)
            expected.append(file.allocate(probe))

        mask = mshr_admit_mask(
            np.array(occupancy, dtype=np.int64),
            limit,
            np.array(merged, dtype=bool),
        )
        assert mask.tolist() == expected
