"""Tests for the synchronization coordinator."""

import pytest

from repro.cpu.sync import SYNC_LINE_BASE, SyncManager


class TestAddresses:
    def test_sync_lines_outside_data_regions(self):
        assert SyncManager.barrier_line() >= SYNC_LINE_BASE
        assert SyncManager.lock_line(5) >= SYNC_LINE_BASE

    def test_lock_lines_distinct(self):
        lines = {SyncManager.lock_line(i) for i in range(16)}
        assert len(lines) == 16
        assert SyncManager.barrier_line() not in lines


class TestBarrier:
    def test_epoch_advances_when_all_arrive(self):
        sync = SyncManager(3)
        epochs = [sync.barrier_arrive(n) for n in range(3)]
        assert epochs == [0, 0, 0]
        assert sync.barrier_released(0)
        assert not sync.barrier_released(1)
        assert sync.barriers_completed == 1

    def test_double_arrival_counts_once(self):
        sync = SyncManager(3)
        sync.barrier_arrive(0)
        sync.barrier_arrive(0)
        assert not sync.barrier_released(0)

    def test_release_callback(self):
        sync = SyncManager(2)
        released = []
        sync.on_barrier_release = released.append
        sync.barrier_arrive(0)
        sync.barrier_arrive(1)
        assert released == [0]

    def test_second_epoch(self):
        sync = SyncManager(2)
        for _round in range(2):
            sync.barrier_arrive(0)
            sync.barrier_arrive(1)
        assert sync.barriers_completed == 2
        assert sync.barrier_released(1)


class TestLocks:
    def test_acquire_free_lock(self):
        sync = SyncManager(4)
        assert sync.try_acquire(0, 1)
        assert sync.holder(0) == 1

    def test_contention_registers_waiter(self):
        sync = SyncManager(4)
        sync.try_acquire(0, 1)
        assert not sync.try_acquire(0, 2)
        assert sync.lock_retries == 1

    def test_release_returns_waiters(self):
        sync = SyncManager(4)
        sync.try_acquire(0, 1)
        sync.try_acquire(0, 2)
        sync.try_acquire(0, 3)
        assert sync.release(0, 1) == [2, 3]
        assert sync.holder(0) == -1

    def test_release_bumps_generation(self):
        sync = SyncManager(4)
        sync.try_acquire(0, 1)
        generation = sync.lock_generation(0)
        sync.release(0, 1)
        assert sync.lock_generation(0) == generation + 1

    def test_wrong_releaser_rejected(self):
        sync = SyncManager(4)
        sync.try_acquire(0, 1)
        with pytest.raises(RuntimeError):
            sync.release(0, 2)

    def test_release_callback_with_waiters(self):
        sync = SyncManager(4)
        notified = []
        sync.on_lock_release = lambda lock, waiters: notified.append((lock, waiters))
        sync.try_acquire(3, 1)
        sync.try_acquire(3, 2)
        sync.release(3, 1)
        assert notified == [(3, [2])]

    def test_locks_independent(self):
        sync = SyncManager(4)
        assert sync.try_acquire(0, 1)
        assert sync.try_acquire(1, 2)

    def test_reacquire_after_release(self):
        sync = SyncManager(4)
        sync.try_acquire(0, 1)
        sync.release(0, 1)
        assert sync.try_acquire(0, 2)
        assert sync.lock_acquisitions == 2
