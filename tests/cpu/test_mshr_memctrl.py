"""Tests for MSHRs and memory controllers."""

import pytest

from repro.coherence.messages import CoherenceMessage, MsgType
from repro.cpu.memctrl import MemoryConfig, MemoryController
from repro.cpu.mshr import MshrFile


class TestMshrFile:
    def test_allocate_until_full(self):
        mshr = MshrFile(limit=2)
        assert mshr.allocate(1)
        assert mshr.allocate(2)
        assert not mshr.allocate(3)
        assert mshr.allocation_failures == 1

    def test_merge_secondary_miss(self):
        mshr = MshrFile(limit=1)
        assert mshr.allocate(1)
        assert mshr.allocate(1)  # merge, no new register
        assert mshr.in_use == 1

    def test_release_frees(self):
        mshr = MshrFile(limit=1)
        mshr.allocate(1)
        mshr.release(1)
        assert mshr.allocate(2)

    def test_release_unknown_noop(self):
        MshrFile().release(9)

    def test_full_property(self):
        mshr = MshrFile(limit=1)
        assert not mshr.full
        mshr.allocate(1)
        assert mshr.full

    def test_validation(self):
        with pytest.raises(ValueError):
            MshrFile(limit=0)


def mem_read(line=0x10, uid_src=3):
    return CoherenceMessage(
        mtype=MsgType.MEM_READ, line=line, sender=uid_src, dest=0, requester=1
    )


class TestMemoryConfig:
    def test_from_gbps_table4_low(self):
        assert MemoryConfig.from_gbps(8.8).occupancy_cycles == 12

    def test_from_gbps_table4_high(self):
        assert MemoryConfig.from_gbps(52.8).occupancy_cycles == 2

    def test_latency_default(self):
        assert MemoryConfig().latency == 200


class TestMemoryController:
    def make(self, gbps=8.8):
        log = []
        controller = MemoryController(
            node=0,
            send=lambda msg, delay: log.append((msg, delay)),
            config=MemoryConfig.from_gbps(gbps),
        )
        return controller, log

    def test_read_replies_after_latency(self):
        controller, log = self.make()
        controller.handle(mem_read(), 0)
        controller.tick(0)
        msg, delay = log[0]
        assert msg.mtype is MsgType.MEM_ACK
        assert msg.dest == 3
        assert delay == 200 + 12

    def test_write_is_fire_and_forget(self):
        controller, log = self.make()
        controller.handle(
            CoherenceMessage(
                mtype=MsgType.MEM_WRITE, line=1, sender=3, dest=0, requester=3
            ),
            0,
        )
        controller.tick(0)
        assert log == []
        assert int(controller.writes) == 1

    def test_bandwidth_serializes_requests(self):
        controller, log = self.make()
        controller.handle(mem_read(0x1), 0)
        controller.handle(mem_read(0x2), 0)
        for cycle in range(30):
            controller.tick(cycle)
        assert len(log) == 2
        # Second transfer started 12 cycles (one occupancy) later.
        assert controller.queue_wait.maximum == 12

    def test_higher_bandwidth_less_queuing(self):
        controller, log = self.make(gbps=52.8)
        controller.handle(mem_read(0x1), 0)
        controller.handle(mem_read(0x2), 0)
        for cycle in range(10):
            controller.tick(cycle)
        assert controller.queue_wait.maximum == 2

    def test_rejects_foreign_messages(self):
        controller, _ = self.make()
        with pytest.raises(ValueError):
            controller.handle(
                CoherenceMessage(
                    mtype=MsgType.REQ_SH, line=1, sender=3, dest=0, requester=3
                ),
                0,
            )

    def test_quiescent(self):
        controller, _ = self.make()
        assert controller.quiescent(0)
        controller.handle(mem_read(), 0)
        assert not controller.quiescent(0)
        for cycle in range(20):
            controller.tick(cycle)
        assert controller.quiescent(20)
