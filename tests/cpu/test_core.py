"""Tests for the timing core model, driven through a real L1 + directory."""

import numpy as np
import pytest

from repro.cpu.core import Core, CoreConfig, CoreState, Op, OpKind
from repro.cpu.sync import SyncManager

from tests.coherence.conftest import Fabric


class ScriptedWorkload:
    """Yields a fixed op list, then WORK forever."""

    def __init__(self, ops):
        self.ops = list(ops)

    def next_op(self, rng):
        if self.ops:
            return self.ops.pop(0)
        return Op(kind=OpKind.WORK)


def make_core(node, fabric, ops, sync=None, **config_kwargs):
    sync = sync or SyncManager(1)
    config = CoreConfig(**config_kwargs)
    core = Core(
        node=node,
        workload=ScriptedWorkload(ops),
        l1=fabric.l1s[node],
        sync=sync,
        config=config,
        rng=np.random.default_rng(0),
    )
    return core


def run(fabric, cores, cycles):
    for cycle in range(cycles):
        for core in cores:
            core.tick(cycle)
        fabric.pump()


class TestIssue:
    def test_work_ops_retire_at_ipc(self):
        fabric = Fabric(num_nodes=1)
        core = make_core(0, fabric, [], ipc=3)
        run(fabric, [core], 10)
        assert core.instructions == 30

    def test_hit_does_not_stall(self):
        fabric = Fabric(num_nodes=1)
        fabric.read(0, 0x5)  # pre-fill the line
        core = make_core(
            0, fabric, [Op(kind=OpKind.MEM, line=0x5)], blocking_fraction=1.0
        )
        run(fabric, [core], 3)
        assert core.state is CoreState.RUNNING

    def test_blocking_miss_stalls_until_fill(self):
        fabric = Fabric(num_nodes=1)
        core = make_core(
            0, fabric, [Op(kind=OpKind.MEM, line=0x5)], blocking_fraction=1.0
        )
        core.tick(0)  # miss issued, core stalls
        assert core.state is CoreState.STALLED
        fabric.pump()  # data comes back -> on_fill
        assert core.state is CoreState.RUNNING
        assert core.mshr.in_use == 0

    def test_nonblocking_miss_overlaps(self):
        fabric = Fabric(num_nodes=1)
        ops = [Op(kind=OpKind.MEM, line=0x5)] + [Op(kind=OpKind.WORK)] * 5
        core = make_core(0, fabric, ops, blocking_fraction=0.0, ipc=1)
        core.tick(0)
        assert core.state is CoreState.RUNNING  # continued past the miss

    def test_mshr_full_structural_stall(self):
        fabric = Fabric(num_nodes=1)
        ops = [Op(kind=OpKind.MEM, line=line) for line in (0x1, 0x2)]
        core = make_core(0, fabric, ops, blocking_fraction=0.0, mshr_limit=1, ipc=2)
        core.tick(0)  # first miss issues; second blocks on MSHRs
        assert core.state is CoreState.STALLED
        assert core._pending is not None
        fabric.pump()
        run(fabric, [core], 3)
        assert core.mshr.in_use == 0

    def test_secondary_access_to_inflight_line_stalls(self):
        fabric = Fabric(num_nodes=1)
        ops = [
            Op(kind=OpKind.MEM, line=0x1),
            Op(kind=OpKind.MEM, line=0x1, is_write=True),
        ]
        core = make_core(0, fabric, ops, blocking_fraction=0.0, ipc=2)
        core.tick(0)
        assert core.state is CoreState.STALLED
        fabric.pump()
        run(fabric, [core], 5)
        # The retried write upgraded the line to M.
        from repro.coherence.l1 import L1State

        assert fabric.l1s[0].state(0x1) is L1State.M


class TestBarriers:
    def test_two_cores_meet_at_barrier(self):
        fabric = Fabric(num_nodes=2)
        sync = SyncManager(2)
        fast = make_core(0, fabric, [Op(kind=OpKind.BARRIER)], sync=sync)
        slow_ops = [Op(kind=OpKind.WORK)] * 12 + [Op(kind=OpKind.BARRIER)]
        slow = make_core(1, fabric, slow_ops, sync=sync, ipc=1)
        run(fabric, [fast, slow], 60)
        assert sync.barriers_completed == 1
        assert fast.state is CoreState.RUNNING
        assert slow.state is CoreState.RUNNING

    def test_early_arriver_spins(self):
        fabric = Fabric(num_nodes=2)
        sync = SyncManager(2)
        fast = make_core(0, fabric, [Op(kind=OpKind.BARRIER)], sync=sync)
        never = make_core(1, fabric, [], sync=sync)
        run(fabric, [fast, never], 30)
        assert fast.state is CoreState.BARRIER_SPIN
        assert sync.barriers_completed == 0

    def test_subscription_waits_without_spinning(self):
        fabric = Fabric(num_nodes=2)
        sync = SyncManager(2, subscription=True)
        fast = make_core(0, fabric, [Op(kind=OpKind.BARRIER)], sync=sync)
        never = make_core(1, fabric, [], sync=sync)
        run(fabric, [fast, never], 30)
        assert fast.state is CoreState.BARRIER_WAIT
        # A spinning core would issue read requests; a waiter is silent.
        from repro.coherence.messages import MsgType

        spin_reads = [
            m
            for m in fabric.log
            if m.line == SyncManager.barrier_line()
            and m.mtype is MsgType.REQ_SH
        ]
        assert spin_reads == []

    def test_release_signal_wakes_waiter(self):
        fabric = Fabric(num_nodes=2)
        sync = SyncManager(2, subscription=True)
        waiter = make_core(0, fabric, [Op(kind=OpKind.BARRIER)], sync=sync)
        other = make_core(1, fabric, [Op(kind=OpKind.BARRIER)], sync=sync)
        run(fabric, [waiter], 10)
        assert waiter.state is CoreState.BARRIER_WAIT
        run(fabric, [other], 10)  # completes the barrier
        waiter.release_signal()
        assert waiter.state is CoreState.RUNNING


class TestLocks:
    def test_uncontended_lock_episode(self):
        fabric = Fabric(num_nodes=1)
        sync = SyncManager(1)
        ops = [Op(kind=OpKind.LOCK, lock_id=0, hold_cycles=3)]
        core = make_core(0, fabric, ops, sync=sync)
        run(fabric, [core], 30)
        assert sync.lock_acquisitions == 1
        assert sync.holder(0) == -1  # released
        assert core.state is CoreState.RUNNING

    def test_contended_lock_serializes(self):
        fabric = Fabric(num_nodes=2)
        sync = SyncManager(2)
        a = make_core(
            0, fabric, [Op(kind=OpKind.LOCK, lock_id=0, hold_cycles=5)], sync=sync
        )
        b = make_core(
            1, fabric, [Op(kind=OpKind.LOCK, lock_id=0, hold_cycles=5)], sync=sync
        )
        run(fabric, [a, b], 120)
        assert sync.lock_acquisitions == 2
        assert sync.holder(0) == -1
        assert a.state is CoreState.RUNNING and b.state is CoreState.RUNNING

    def test_subscription_lock_handoff(self):
        fabric = Fabric(num_nodes=2)
        sync = SyncManager(2, subscription=True)
        wakeups = []
        a = make_core(
            0, fabric, [Op(kind=OpKind.LOCK, lock_id=0, hold_cycles=5)], sync=sync
        )
        b = make_core(
            1, fabric, [Op(kind=OpKind.LOCK, lock_id=0, hold_cycles=5)], sync=sync
        )
        cores = {0: a, 1: b}
        sync.on_lock_release = lambda lock, waiters: wakeups.extend(
            cores[w].release_signal() or w for w in waiters
        )
        run(fabric, [a, b], 120)
        assert sync.lock_acquisitions == 2
        assert len(wakeups) == 1


class TestCycleAccounting:
    def test_busy_stall_sync_partition(self):
        fabric = Fabric(num_nodes=1)
        ops = [Op(kind=OpKind.MEM, line=0x9)]
        core = make_core(0, fabric, ops, blocking_fraction=1.0)
        core.tick(0)       # busy (issued the miss)
        core.tick(1)       # stalled
        fabric.pump()
        core.tick(2)       # busy again
        assert int(core.busy_cycles) == 2
        assert int(core.stall_cycles) == 1
