"""FaultInjector unit behaviour: windows, detection, sparing, physics."""

import pytest

from repro.faults import (
    ConfirmationDrop,
    ErrorBurst,
    FaultInjector,
    FaultPlan,
    LaneFault,
    ReceiverFault,
    ThermalDroop,
)
from repro.net.packet import LaneKind
from repro.util.rng import RngHub

RECEIVERS = {LaneKind.META: 2, LaneKind.DATA: 2}


def make(plan: FaultPlan, num_nodes: int = 16) -> FaultInjector:
    return FaultInjector(plan, num_nodes, RECEIVERS, RngHub(0).child("faults"))


class TestConstruction:
    def test_empty_plan_refused(self):
        with pytest.raises(ValueError, match="empty plan"):
            make(FaultPlan())

    def test_plan_validated_against_topology(self):
        plan = FaultPlan(lane_faults=(LaneFault(20, "meta"),))
        with pytest.raises(ValueError, match="node 20"):
            make(plan, num_nodes=16)


class TestActivityWindows:
    def test_window_half_open(self):
        inj = make(FaultPlan(lane_faults=(LaneFault(3, "data", 100, 200),)))
        assert not inj.tx_lane_dead(3, LaneKind.DATA, 99)
        assert inj.tx_lane_dead(3, LaneKind.DATA, 100)
        assert inj.tx_lane_dead(3, LaneKind.DATA, 199)
        assert not inj.tx_lane_dead(3, LaneKind.DATA, 200)

    def test_permanent_fault_never_ends(self):
        inj = make(FaultPlan(lane_faults=(LaneFault(3, "data"),)))
        assert inj.tx_lane_dead(3, LaneKind.DATA, 10**9)

    def test_other_node_and_lane_unaffected(self):
        inj = make(FaultPlan(lane_faults=(LaneFault(3, "data"),)))
        assert not inj.tx_lane_dead(3, LaneKind.META, 0)
        assert not inj.tx_lane_dead(4, LaneKind.DATA, 0)


class TestLaneDownDetection:
    def test_threshold_crossing_reported_once(self):
        inj = make(FaultPlan(lane_faults=(LaneFault(1, "meta"),),
                             detect_threshold=3))
        assert not inj.note_dark_send(1, LaneKind.META)
        assert not inj.note_dark_send(1, LaneKind.META)
        assert inj.note_dark_send(1, LaneKind.META)   # third strike
        assert not inj.note_dark_send(1, LaneKind.META)  # only once
        assert inj.lane_suppressed(1, LaneKind.META, 0)

    def test_successful_send_breaks_streak(self):
        inj = make(FaultPlan(lane_faults=(LaneFault(1, "meta"),),
                             detect_threshold=2))
        inj.note_dark_send(1, LaneKind.META)
        inj.note_successful_send(1, LaneKind.META)
        assert not inj.note_dark_send(1, LaneKind.META)  # streak restarted
        assert inj.note_dark_send(1, LaneKind.META)

    def test_suppression_clears_when_schedule_heals(self):
        inj = make(FaultPlan(lane_faults=(LaneFault(1, "meta", 0, 100),),
                             detect_threshold=1))
        assert inj.note_dark_send(1, LaneKind.META)
        assert inj.lane_suppressed(1, LaneKind.META, 50)
        # Past the window the lane works again: the probe clears state.
        assert not inj.lane_suppressed(1, LaneKind.META, 100)
        assert not inj.lane_suppressed(1, LaneKind.META, 50)  # stays clear


class TestReceiverHealth:
    def test_none_when_no_faults_apply(self):
        inj = make(FaultPlan(receiver_faults=(ReceiverFault(4, "data", 0,
                                                            100, 200),)))
        assert inj.receiver_health(4, LaneKind.DATA, 50) is None
        assert inj.receiver_health(5, LaneKind.DATA, 150) is None
        assert inj.receiver_health(4, LaneKind.META, 150) is None

    def test_health_vector_marks_dead_receiver(self):
        inj = make(FaultPlan(receiver_faults=(ReceiverFault(4, "data", 0),)))
        assert inj.receiver_health(4, LaneKind.DATA, 0) == (False, True)

    def test_all_dead(self):
        inj = make(FaultPlan(receiver_faults=(
            ReceiverFault(4, "data", 0), ReceiverFault(4, "data", 1))))
        assert inj.receiver_health(4, LaneKind.DATA, 0) == (False, False)


class TestDroopPhysics:
    def test_droop_ber_monotone_in_droop(self):
        inj = make(FaultPlan(droops=(ThermalDroop(1.0),)))
        bers = [inj.droop_ber(db) for db in (0.5, 1.5, 3.0, 5.0)]
        assert bers == sorted(bers)
        assert all(0.0 <= b < 0.5 for b in bers)

    def test_droop_ber_comes_from_link_chain(self):
        """The injector's number must equal a by-hand walk of the
        OpticalLink chain — proving it is physics, not a lookup table."""
        from repro.core.link import OpticalLink
        from repro.util.units import db_to_linear

        inj = make(FaultPlan(droops=(ThermalDroop(3.0),)))
        link = OpticalLink()
        scale = 1.0 / db_to_linear(3.0)
        p1, p0 = link.received_powers()
        expected = link.noise.ber(
            link.detector.photocurrent(p1 * scale),
            link.detector.photocurrent(p0 * scale),
        )
        assert inj.droop_ber(3.0) == pytest.approx(expected, rel=1e-12)

    def test_corruption_probability_scales_with_bits(self):
        inj = make(FaultPlan(droops=(ThermalDroop(3.0),)))
        short = inj.corruption_probability(0, LaneKind.META, 0, 64)
        long = inj.corruption_probability(0, LaneKind.DATA, 0, 512)
        assert 0.0 < short < long < 1.0

    def test_windows_and_scopes_respected(self):
        inj = make(FaultPlan(
            droops=(ThermalDroop(3.0, node=2, start=100, end=200),),
            bursts=(ErrorBurst(0.25, lane="meta", start=100, end=200),),
        ))
        # Outside the window: nothing.
        assert inj.corruption_probability(2, LaneKind.META, 99, 64) == 0.0
        # Wrong node for the droop, but the burst is node-global.
        p_meta = inj.corruption_probability(3, LaneKind.META, 150, 64)
        assert p_meta == pytest.approx(0.25)
        # The burst is meta-only; node 3's data lane sees nothing.
        assert inj.corruption_probability(3, LaneKind.DATA, 150, 512) == 0.0
        # Droop and burst compose as independent survival probabilities.
        combined = inj.corruption_probability(2, LaneKind.META, 150, 64)
        ber = inj.droop_ber(3.0)
        expected = 1.0 - (1.0 - 0.25) * (1.0 - ber) ** 64
        assert combined == pytest.approx(expected, rel=1e-12)


class TestRandomDraws:
    def test_zero_probability_consumes_no_randomness(self):
        """The short-circuit is the passivity guarantee for windows in
        which no fault is active: the stream must not advance."""
        inj = make(FaultPlan(bursts=(ErrorBurst(0.5, start=100, end=200),),
                             confirmation_drops=(ConfirmationDrop(0.0),)))
        before_c = inj._corrupt_rng.bit_generator.state["state"]["state"]
        before_f = inj._confirm_rng.bit_generator.state["state"]["state"]
        assert not inj.draw_corruption(0.0)
        assert not inj.drop_confirmation(0, 50)   # outside window -> p=0
        assert not inj.drop_confirmation(0, 150)  # rate 0 -> p=0
        assert inj._corrupt_rng.bit_generator.state["state"]["state"] == before_c
        assert inj._confirm_rng.bit_generator.state["state"]["state"] == before_f

    def test_plan_seed_offsets_streams(self):
        plan_a = FaultPlan(confirmation_drops=(ConfirmationDrop(0.5),), seed=1)
        plan_b = FaultPlan(confirmation_drops=(ConfirmationDrop(0.5),), seed=2)
        draws_a = [make(plan_a).drop_confirmation(0, c) for c in range(64)]
        # Same seed, fresh injector: identical decisions.
        assert draws_a == [make(plan_a).drop_confirmation(0, c)
                           for c in range(64)]
        assert draws_a != [make(plan_b).drop_confirmation(0, c)
                           for c in range(64)]

    def test_certain_drop_always_drops(self):
        inj = make(FaultPlan(confirmation_drops=(ConfirmationDrop(1.0),)))
        assert all(inj.drop_confirmation(n, 0) for n in range(16))
