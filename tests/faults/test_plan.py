"""FaultPlan: validation, serialization, hashing."""

import dataclasses

import pytest

from repro.faults import (
    ConfirmationDrop,
    ErrorBurst,
    FaultPlan,
    LaneFault,
    ReceiverFault,
    ThermalDroop,
)


def full_plan() -> FaultPlan:
    return FaultPlan(
        label="everything",
        lane_faults=(LaneFault(3, "data", start=100, end=900),),
        receiver_faults=(ReceiverFault(5, "meta", 1, start=0, end=None),),
        droops=(ThermalDroop(3.0, node=None, start=200, end=600),),
        bursts=(ErrorBurst(0.02, node=2, lane="meta", start=50, end=150),),
        confirmation_drops=(ConfirmationDrop(0.05),),
        giveup_retries=12,
        detect_threshold=4,
        seed=7,
    )


class TestValidation:
    def test_default_plan_is_empty(self):
        plan = FaultPlan()
        assert plan.is_empty()
        assert plan.max_node() == -1
        assert plan.describe() == "empty plan (no faults)"

    def test_giveup_alone_makes_plan_non_empty(self):
        # A give-up bound changes behaviour (packets can be abandoned),
        # so it must defeat the passivity fast-path.
        assert not FaultPlan(giveup_retries=5).is_empty()

    @pytest.mark.parametrize(
        "build",
        [
            lambda: LaneFault(-1, "meta"),
            lambda: LaneFault(0, "sideband"),
            lambda: LaneFault(0, "meta", start=-1),
            lambda: LaneFault(0, "meta", start=10, end=10),
            lambda: ReceiverFault(0, "data", receiver=-1),
            lambda: ThermalDroop(0.0),
            lambda: ThermalDroop(-2.0),
            lambda: ErrorBurst(1.5),
            lambda: ErrorBurst(-0.1),
            lambda: ErrorBurst(0.1, lane="ctrl"),
            lambda: ConfirmationDrop(2.0),
            lambda: FaultPlan(giveup_retries=0),
            lambda: FaultPlan(detect_threshold=0),
        ],
    )
    def test_invalid_entries_raise(self, build):
        with pytest.raises(ValueError):
            build()

    def test_validate_for_rejects_out_of_range_node(self):
        plan = FaultPlan(lane_faults=(LaneFault(16, "meta"),))
        with pytest.raises(ValueError, match="node 16"):
            plan.validate_for(16, {"meta": 2, "data": 2})
        plan.validate_for(17, {"meta": 2, "data": 2})

    def test_validate_for_rejects_out_of_range_receiver(self):
        plan = FaultPlan(receiver_faults=(ReceiverFault(0, "data", 2),))
        with pytest.raises(ValueError, match="receiver 2"):
            plan.validate_for(16, {"meta": 2, "data": 2})
        plan.validate_for(16, {"meta": 2, "data": 4})

    def test_lists_coerced_to_tuples(self):
        plan = FaultPlan(lane_faults=[LaneFault(1, "meta")])
        assert isinstance(plan.lane_faults, tuple)


class TestSerialization:
    def test_round_trip(self):
        plan = full_plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_empty_round_trip(self):
        assert FaultPlan.from_dict({}) == FaultPlan()
        assert FaultPlan.from_dict(FaultPlan().to_dict()) == FaultPlan()

    def test_to_dict_matches_dataclasses_asdict(self):
        """The sweep engine encodes extras with ``dataclasses.asdict``;
        both spellings must produce the same JSON shape or the same plan
        would get two different cache keys."""
        plan = full_plan()
        raw = dataclasses.asdict(plan)
        # asdict represents the tuples as lists of dicts, like to_dict.
        assert plan.to_dict() == {
            key: list(value) if isinstance(value, (list, tuple)) else value
            for key, value in raw.items()
        }

    def test_content_hash_stable_and_discriminating(self):
        plan = full_plan()
        assert plan.content_hash() == full_plan().content_hash()
        assert len(plan.content_hash()) == 16
        other = dataclasses.replace(plan, seed=8)
        assert other.content_hash() != plan.content_hash()

    def test_describe_mentions_every_fault_kind(self):
        text = full_plan().describe()
        for needle in ("dead data lane", "receiver 1", "droop 3 dB",
                       "burst rate 0.02", "confirmation drops rate 0.05",
                       "give up after 12"):
            assert needle in text, f"missing {needle!r} in:\n{text}"
