"""Golden snapshot of a fault-injected 16-node run.

The resilience counterpart of ``tests/cmp/test_golden.py``: one fixed
16-node FSOI run under a mixed fault plan (a data-lane brown-out, a
chip-wide thermal droop, a meta error burst, sustained confirmation
drops) is frozen field-for-field under ``tests/data/``.  Any change to
the injector's sampling, the sparing/remap logic or the degradation
accounting moves these numbers and fails loudly.

Regenerate after an intentional change with::

    PYTHONPATH=src python -m pytest tests/faults/test_golden_resilience.py \
        --update-golden
"""

import json
from pathlib import Path

from repro.cmp import CmpConfig, CmpSystem
from repro.faults import (
    ConfirmationDrop,
    ErrorBurst,
    FaultPlan,
    LaneFault,
    ThermalDroop,
)
from repro.sweep import canonical_json

from tests.cmp.test_golden import _diff

DATA_DIR = Path(__file__).parents[1] / "data"
GOLDEN_PATH = DATA_DIR / "golden_resilience_fsoi_16.json"

APP = "oc"
NUM_NODES = 16
CYCLES = 2500
SEED = 0

#: The frozen plan.  No give-up bound: coherence traffic must never be
#: abandoned under a CMP workload, only delayed.
PLAN = FaultPlan(
    label="golden-resilience",
    lane_faults=(LaneFault(5, "data", start=400, end=1400),),
    droops=(ThermalDroop(3.0, start=600, end=2000),),
    bursts=(ErrorBurst(0.02, lane="meta", start=800, end=1600),),
    confirmation_drops=(ConfirmationDrop(0.05),),
    seed=7,
)


def compute() -> dict:
    config = CmpConfig(
        num_nodes=NUM_NODES, app=APP, network="fsoi", seed=SEED, faults=PLAN
    )
    result = CmpSystem(config).run(CYCLES).to_dict()
    return json.loads(canonical_json(result))


def test_golden_resilience_snapshot(request):
    actual = compute()
    if request.config.getoption("--update-golden"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(actual, indent=1, sort_keys=True) + "\n"
        )
        return
    assert GOLDEN_PATH.exists(), (
        f"missing golden snapshot {GOLDEN_PATH}; generate it with "
        "`pytest tests/faults/test_golden_resilience.py --update-golden`"
    )
    expected = json.loads(GOLDEN_PATH.read_text())
    differences = _diff(expected, actual)
    assert not differences, (
        f"fault-injected run diverged from {GOLDEN_PATH.name} in "
        f"{len(differences)} field(s):\n  "
        + "\n  ".join(differences[:20])
        + "\nIf the change is intentional, regenerate with "
        "`pytest tests/faults/test_golden_resilience.py --update-golden` "
        "and commit."
    )


def test_golden_plan_exercises_every_fault_path():
    """Guard the snapshot's value: the frozen plan must actually fire
    each degradation mechanism it claims to cover."""
    summary = compute()["fsoi"]["faults"]
    assert summary["lane_down_events"] >= 1
    assert summary["data"]["suppressed"] > 0
    assert (summary["meta"]["injected_corrupt"]
            + summary["data"]["injected_corrupt"]) > 0
    assert summary["confirm_dropped"] > 0
    assert summary["gave_up_lost"] == 0  # no give-up bound in the plan
