"""The passivity guarantee: an empty FaultPlan changes *nothing*.

The fault subsystem's contract is that fault-free runs are unaffected
by its existence: ``faults=None`` and ``faults=FaultPlan()`` must be
bit-for-bit indistinguishable, and both must still match the golden
snapshots recorded before the subsystem existed.  That means no
injector, no extra stat counters, no extra result fields and — most
subtly — no extra RNG consumption anywhere in the run.
"""

import json

import pytest

from repro.cmp import CmpConfig, CmpSystem
from repro.core.network import FsoiConfig, FsoiNetwork
from repro.faults import FaultPlan
from repro.net.packet import LaneKind, Packet
from repro.sweep import canonical_json

from tests.cmp.test_golden import (
    APP,
    CYCLES,
    NUM_NODES,
    SEED,
    _diff,
    golden_path,
)


def run_cmp(faults) -> dict:
    config = CmpConfig(
        num_nodes=NUM_NODES, app=APP, network="fsoi", seed=SEED, faults=faults
    )
    result = CmpSystem(config).run(CYCLES).to_dict()
    return json.loads(canonical_json(result))


class TestEmptyPlanPassivity:
    def test_empty_plan_result_identical_to_no_plan(self):
        assert canonical_json(run_cmp(FaultPlan())) == canonical_json(
            run_cmp(None)
        )

    def test_empty_plan_matches_pre_fault_golden_snapshot(self):
        """The hard passivity check: a run with ``faults=FaultPlan()``
        must reproduce the golden snapshot recorded for plain runs —
        field-for-field, including that no new fields appear."""
        path = golden_path("fsoi")
        assert path.exists(), f"golden snapshot missing: {path}"
        expected = json.loads(path.read_text())
        differences = _diff(expected, run_cmp(FaultPlan()))
        assert not differences, (
            "empty fault plan perturbed the run:\n  "
            + "\n  ".join(differences[:20])
        )

    def test_empty_plan_stat_tree_identical(self):
        """Same comparison one layer down, on the raw network: the stat
        tree must have the same shape and values (no `fault` group)."""

        def run(faults):
            net = FsoiNetwork(
                FsoiConfig(num_nodes=16, seed=4, faults=faults)
            )
            for src in range(8):
                net.try_send(
                    Packet(src=src, dst=15 - src, lane=LaneKind.META), 0
                )
            cycle = 0
            while not net.quiescent() and cycle < 20_000:
                net.tick(cycle)
                cycle += 1
            return net.stats.group.as_dict()

        baseline = run(None)
        with_empty_plan = run(FaultPlan())
        assert canonical_json(with_empty_plan) == canonical_json(baseline)
        assert "fault" not in with_empty_plan

    def test_empty_plan_metrics_registry_identical(self):
        def registry(faults):
            config = CmpConfig(
                num_nodes=NUM_NODES, app=APP, network="fsoi", seed=SEED,
                faults=faults,
            )
            system = CmpSystem(config)
            system.run(500)
            return system.metrics_registry().to_json()

        assert registry(FaultPlan()) == registry(None)


class TestActivePlanIsVisible:
    def test_active_plan_adds_fault_fields_only(self):
        """Sanity inverse of passivity: a real plan surfaces its
        counters (so the passivity assertions above cannot be passing
        because the plumbing is dead)."""
        from repro.faults import ConfirmationDrop

        plan = FaultPlan(confirmation_drops=(ConfirmationDrop(0.05),), seed=3)
        result = run_cmp(plan)
        assert "faults" in result["fsoi"]
        assert result["fsoi"]["faults"]["confirm_dropped"] > 0
