"""FaultPlan as a sweep axis: point expansion, cache keys, round-trips."""

import pytest

from repro.faults import FaultPlan, LaneFault
from repro.sweep import SweepSpec
from repro.sweep.cache import point_key
from repro.sweep.runner import run_sweep
from repro.sweep.spec import SweepPoint


def killer_plan(seed=1) -> FaultPlan:
    return FaultPlan(label="k3", lane_faults=(LaneFault(3, "data"),),
                     giveup_retries=10, seed=seed)


def spec_with_faults(networks=("fsoi",)) -> SweepSpec:
    return SweepSpec(
        apps=("oc",), networks=networks, nodes=(8,), seeds=(0,), cycles=400,
        faults=(FaultPlan(), killer_plan()),
    )


class TestPointExpansion:
    def test_fault_axis_multiplies_fsoi_points_only(self):
        spec = spec_with_faults(networks=("fsoi", "mesh"))
        labels = [point.label() for point in spec.points()]
        # fsoi gets both plans; mesh (no optical substrate) only one.
        assert labels == [
            "oc/fsoi/n8/s0", "oc/fsoi/n8/s0/+flt", "oc/mesh/n8/s0"
        ]

    def test_empty_plan_point_has_no_extras(self):
        """The fault-free point of a faulted sweep must be *the same
        point* as in a sweep without the axis — same cache key, so
        cached baselines are shared."""
        plain = SweepSpec(apps=("oc",), networks=("fsoi",), nodes=(8,),
                          seeds=(0,), cycles=400)
        faulted = spec_with_faults()
        assert plain.points()[0] == faulted.points()[0]
        assert point_key(plain.points()[0], "v") == point_key(
            faulted.points()[0], "v"
        )

    def test_validation_rejects_non_plan_entries(self):
        with pytest.raises(ValueError):
            SweepSpec(apps=("oc",), networks=("fsoi",), nodes=(8,),
                      seeds=(0,), cycles=400, faults=({"seed": 1},))
        with pytest.raises(ValueError):
            SweepSpec(apps=("oc",), networks=("fsoi",), nodes=(8,),
                      seeds=(0,), cycles=400, faults=())


class TestCacheKeys:
    def test_different_plans_different_keys(self):
        spec = SweepSpec(
            apps=("oc",), networks=("fsoi",), nodes=(8,), seeds=(0,),
            cycles=400,
            faults=(killer_plan(seed=1), killer_plan(seed=2)),
        )
        keys = {point_key(point, "v") for point in spec.points()}
        assert len(keys) == 2

    def test_point_round_trip_preserves_key(self):
        point = spec_with_faults().points()[1]
        rebuilt = SweepPoint.from_dict(point.to_dict())
        assert rebuilt == point
        assert point_key(rebuilt, "v") == point_key(point, "v")

    def test_to_config_rebuilds_plan(self):
        point = spec_with_faults().points()[1]
        config = point.to_config()
        assert config.faults == killer_plan()


class TestSpecSerialization:
    def test_spec_round_trip(self):
        spec = spec_with_faults()
        rebuilt = SweepSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.to_dict() == spec.to_dict()

    def test_legacy_spec_dicts_get_empty_axis(self):
        data = SweepSpec(apps=("oc",), networks=("fsoi",), nodes=(8,),
                         seeds=(0,), cycles=400).to_dict()
        del data["faults"]
        assert SweepSpec.from_dict(data).faults == (FaultPlan(),)


class TestEndToEnd:
    def test_sweep_runs_and_caches_fault_points(self, tmp_path):
        spec = spec_with_faults()
        report = run_sweep(spec, workers=1, cache_dir=tmp_path)
        assert report.ok
        by_label = {p.label(): r for p, r in report.results()}
        assert "faults" not in by_label["oc/fsoi/n8/s0"].fsoi
        faulted = by_label["oc/fsoi/n8/s0/+flt"].fsoi["faults"]
        assert faulted["lane_down_events"] >= 1

        again = run_sweep(spec, workers=1, cache_dir=tmp_path)
        assert again.ok and again.from_cache == len(spec.points())
        cached = {p.label(): r for p, r in again.results()}
        faulted_cached = cached["oc/fsoi/n8/s0/+flt"].fsoi["faults"]
        assert faulted_cached == faulted
