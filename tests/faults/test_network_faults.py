"""FsoiNetwork under injected faults: degradation must stay graceful.

Every scenario drives the raw network (no CMP on top) so the assertions
can reach the per-lane fault counters directly.  The common contract:
nothing wedges, every packet is either delivered or explicitly given
up, and the fault counters explain exactly what happened.
"""

import pytest

from repro.core.network import FsoiConfig, FsoiNetwork
from repro.faults import (
    ConfirmationDrop,
    ErrorBurst,
    FaultPlan,
    LaneFault,
    ReceiverFault,
)
from repro.net.packet import LaneKind, Packet


def drain(net, start, limit=60_000):
    cycle = start
    while not net.quiescent() and cycle < start + limit:
        net.tick(cycle)
        cycle += 1
    return cycle


def run_with(plan, packets, num_nodes=16, seed=3):
    net = FsoiNetwork(FsoiConfig(num_nodes=num_nodes, faults=plan, seed=seed))
    for packet in packets:
        assert net.try_send(packet, 0)
    net.tick(0)
    drain(net, 1)
    return net


class TestConfiguration:
    def test_faults_require_slotted_mode(self):
        plan = FaultPlan(lane_faults=(LaneFault(0, "meta"),))
        with pytest.raises(ValueError, match="slotted"):
            FsoiNetwork(FsoiConfig(num_nodes=16, slotted=False, faults=plan))

    def test_empty_plan_builds_no_injector(self):
        net = FsoiNetwork(FsoiConfig(num_nodes=16, faults=FaultPlan()))
        assert net.fault_injector is None
        assert net.fault_summary() == {}


class TestLaneFaults:
    def test_transient_dead_lane_detected_spared_and_healed(self):
        """A brown-out on node 3's data lane: dark sends burn retries
        until detection kicks in, sparing suppresses the lane, and the
        heal lets every packet through in the end."""
        plan = FaultPlan(lane_faults=(LaneFault(3, "data", 0, 600),),
                         detect_threshold=3, seed=1)
        packets = [Packet(src=3, dst=d, lane=LaneKind.DATA)
                   for d in (0, 1, 2, 4, 5, 6)]
        net = run_with(plan, packets)
        assert net.quiescent()
        assert all(p.deliver_cycle > 0 for p in packets)
        summary = net.fault_summary()
        data = summary["data"]
        assert summary["lane_down_events"] == 1
        assert data["fault_lost"] >= plan.detect_threshold
        assert data["suppressed"] > 0
        assert summary["gave_up_lost"] == 0

    def test_permanent_dead_lane_with_giveup_drains(self):
        """With a permanent fault the give-up bound is the only exit:
        the network must still drain, with every packet accounted for
        as explicitly lost."""
        plan = FaultPlan(lane_faults=(LaneFault(3, "data"),),
                         giveup_retries=6, detect_threshold=3, seed=1)
        packets = [Packet(src=3, dst=d, lane=LaneKind.DATA)
                   for d in (0, 1, 2)]
        net = run_with(plan, packets)
        assert net.quiescent()
        assert net.fault_summary()["gave_up_lost"] == len(packets)
        assert all(p.deliver_cycle == -1 for p in packets)
        assert all(p.retries > plan.giveup_retries for p in packets)


class TestReceiverFaults:
    def test_dead_receiver_sparing_remaps_and_delivers(self):
        plan = FaultPlan(receiver_faults=(ReceiverFault(0, "meta", 0),),
                         seed=1)
        # Plenty of senders so at least one nominally maps to receiver 0.
        packets = [Packet(src=s, dst=0, lane=LaneKind.META)
                   for s in range(1, 9)]
        net = run_with(plan, packets)
        assert net.quiescent()
        assert all(p.deliver_cycle > 0 for p in packets)
        assert net.fault_summary()["receiver_remaps"] > 0

    def test_all_receivers_dead_is_a_lost_transmission(self):
        plan = FaultPlan(
            receiver_faults=(ReceiverFault(0, "meta", 0, 0, 400),
                             ReceiverFault(0, "meta", 1, 0, 400)),
            seed=1,
        )
        packets = [Packet(src=s, dst=0, lane=LaneKind.META) for s in (1, 2)]
        net = run_with(plan, packets)
        assert net.quiescent()
        assert all(p.deliver_cycle > 0 for p in packets)  # healed at 400
        assert net.fault_summary()["meta"]["fault_lost"] > 0
        assert net.fault_summary()["receiver_remaps"] == 0


class TestCorruption:
    def test_burst_corrupts_then_recovers(self):
        plan = FaultPlan(bursts=(ErrorBurst(1.0, start=0, end=200),), seed=1)
        packets = [Packet(src=s, dst=(s + 1) % 16, lane=LaneKind.META)
                   for s in range(0, 8, 2)]
        net = run_with(plan, packets)
        assert net.quiescent()
        assert all(p.deliver_cycle > 0 for p in packets)
        summary = net.fault_summary()
        assert summary["meta"]["injected_corrupt"] >= len(packets)
        assert all(p.retries >= 1 for p in packets)


class TestConfirmationDrops:
    def test_drops_cause_duplicates_not_loss(self):
        plan = FaultPlan(
            confirmation_drops=(ConfirmationDrop(1.0, start=0, end=300),),
            seed=1,
        )
        confirmed = []
        packets = []
        for s in range(0, 6, 2):
            p = Packet(src=s, dst=s + 1, lane=LaneKind.META)
            p.on_confirmed = (lambda uid=s: confirmed.append(uid))
            packets.append(p)
        net = run_with(plan, packets)
        assert net.quiescent()
        assert all(p.deliver_cycle > 0 for p in packets)
        summary = net.fault_summary()
        assert summary["confirm_dropped"] >= len(packets)
        assert summary["confirmations_dropped"] >= len(packets)
        # Retransmissions of already-delivered packets are swallowed.
        assert summary["meta"]["duplicate_rx"] >= 1
        # §5.1 hooks fire exactly once per packet despite the retries.
        assert sorted(confirmed) == [0, 2, 4]

    def test_giveup_after_delivery_counts_separately(self):
        """A sender that gives up on a packet the destination already
        received is a duplicate-suppression success, not data loss."""
        plan = FaultPlan(confirmation_drops=(ConfirmationDrop(1.0),),
                         giveup_retries=4, seed=1)
        packets = [Packet(src=0, dst=1, lane=LaneKind.META)]
        net = run_with(plan, packets)
        assert net.quiescent()
        summary = net.fault_summary()
        assert packets[0].deliver_cycle > 0
        assert summary["gave_up_delivered"] == 1
        assert summary["gave_up_lost"] == 0


class TestAttemptLedger:
    def test_every_transmission_accounted_for(self):
        """Under a mixed plan the per-lane attempt ledger must balance:
        tx == delivered + collided + error + fault_lost + corrupt +
        duplicates.  (Suppressed attempts never reach the medium and are
        excluded by design.)"""
        plan = FaultPlan(
            lane_faults=(LaneFault(3, "data", 0, 400),),
            bursts=(ErrorBurst(0.2, start=0, end=600),),
            confirmation_drops=(ConfirmationDrop(0.2, start=0, end=600),),
            detect_threshold=3,
            seed=2,
        )
        packets = [Packet(src=s, dst=(s + 3) % 16,
                          lane=LaneKind.DATA if s % 3 == 0 else LaneKind.META)
                   for s in range(16)]
        net = run_with(plan, packets)
        assert net.quiescent()
        summary = net.fault_summary()
        for lane in (LaneKind.META, LaneKind.DATA):
            stats = {k: c.value for k, c in net._lane_stats[lane].items()}
            fault = summary[lane.value]
            explained = (
                stats["delivered"]
                + stats["collided_tx"]
                + stats["error_tx"]
                + fault["fault_lost"]
                + fault["injected_corrupt"]
                + fault["duplicate_rx"]
            )
            assert stats["tx"] == explained, (
                f"{lane.value}: {stats['tx']} != {explained}"
            )
