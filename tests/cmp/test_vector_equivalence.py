"""The columnar vectorized core engine's equivalence contract.

``src/repro/cpu/vector.py`` replaces the per-object core tick with
columnar ledgers, event-scheduled actives and a replayed RNG.  The
claim is *bit-exactness*: a vectorized run and a naive object-per-node
run of the same configuration produce byte-identical ``CmpResults``
(including the ``loop`` field — the engine must not change what the
simulation loop does) and identical metrics-registry snapshots.  These
tests pin that down across networks, seeds, system sizes, fault plans
and both fast-forward settings, plus the escape hatches
(``CmpConfig.vectorized`` and ``REPRO_NO_VECTOR``), and guard the
scaling claim with a 256/512/1024-node study.

The run-both-and-diff machinery is shared with the fast-forward suite
(``test_fastforward.py``) via ``tests/conftest.py``.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cmp import CmpConfig, CmpSystem
from tests.conftest import EQUIVALENCE_FAULT_PLAN, compare_engine_pair


class TestEquivalence:
    @pytest.mark.parametrize(
        "network", ("fsoi", "mesh", "l0", "lr1", "lr2", "corona")
    )
    def test_all_networks(self, compare_engines, network):
        compare_engines(
            "vectorized", app="oc", network=network, num_nodes=16, seed=1
        )

    @pytest.mark.parametrize("seed", (0, 7))
    def test_seeds(self, compare_engines, seed):
        compare_engines(
            "vectorized", app="ba", network="fsoi", num_nodes=16, seed=seed
        )

    def test_64_nodes(self, compare_engines):
        compare_engines(
            "vectorized",
            app="em", network="fsoi", num_nodes=64, seed=2, cycles=900,
        )

    def test_faults_on(self, compare_engines):
        compare_engines(
            "vectorized",
            app="oc", network="fsoi", num_nodes=16, seed=4,
            faults=EQUIVALENCE_FAULT_PLAN,
        )

    @pytest.mark.parametrize("app", ("ro", "tsp", "fft"))
    def test_lock_and_butterfly_sync_patterns(self, compare_engines, app):
        # Radiosity is lock-heavy, TSP holds long critical sections and
        # FFT's butterfly pattern exercises the stage counter — the
        # sync-state scheduling paths the columnar engine special-cases.
        compare_engines(
            "vectorized", app=app, network="mesh", num_nodes=16, seed=5
        )

    @pytest.mark.parametrize("fast_forward", (True, False))
    def test_composes_with_fast_forward(self, compare_engines, fast_forward):
        # The columnar engine feeds the fast-forward horizon through
        # next_core_event(); skips and vectorized ticks must stack.
        loop = compare_engines(
            "vectorized",
            app="oc", network="l0", num_nodes=16, seed=1,
            fast_forward=fast_forward,
        )
        if fast_forward:
            assert loop["skipped_cycles"] > 0
        else:
            assert loop == {"executed_cycles": 1200, "skipped_cycles": 0}

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        app=st.sampled_from(["oc", "ba", "mp", "ws"]),
        network=st.sampled_from(["fsoi", "mesh", "lr2"]),
        seed=st.integers(min_value=0, max_value=50),
        cycles=st.integers(min_value=50, max_value=800),
        fast_forward=st.booleans(),
    )
    def test_property_equivalence(
        self, app, network, seed, cycles, fast_forward
    ):
        compare_engine_pair(
            "vectorized",
            app=app, network=network, num_nodes=16, seed=seed,
            cycles=cycles, fast_forward=fast_forward,
        )

    def test_run_until_instructions_stops_at_same_cycle(self):
        systems = [
            CmpSystem(CmpConfig(
                app="lu", network="l0", num_nodes=16, seed=1,
                vectorized=vectorized,
            ))
            for vectorized in (True, False)
        ]
        results = [s.run_until_instructions(20_000) for s in systems]
        assert results[0].cycles == results[1].cycles
        assert results[0].instructions == results[1].instructions


class TestEscapeHatches:
    def test_config_flag_selects_reference_engine(self):
        system = CmpSystem(CmpConfig(
            app="oc", network="l0", num_nodes=16, seed=1, vectorized=False
        ))
        assert system._vector is None

    def test_env_hatch_selects_reference_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_VECTOR", "1")
        system = CmpSystem(CmpConfig(app="oc", network="l0", num_nodes=16, seed=1))
        assert system._vector is None

    def test_env_hatch_zero_means_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_VECTOR", "0")
        system = CmpSystem(CmpConfig(app="oc", network="l0", num_nodes=16, seed=1))
        assert system._vector is not None


@pytest.mark.slow
@pytest.mark.skipif(
    os.environ.get("REPRO_NO_VECTOR", "") not in ("", "0"),
    reason="the scale smoke test targets the vectorized engine, which "
    "REPRO_NO_VECTOR pins off for the whole process",
)
class TestScale:
    """The scaling claim the refactor exists for, at 256/512/1024 nodes.

    The network-engine suite
    (``test_network_vector_equivalence.py::TestScaling``) covers the
    same sizes from the channel side; this study drives the full system
    and checks the whole-run conservation laws.
    """

    @pytest.mark.parametrize(
        "num_nodes, cycles",
        [(256, 400), (512, 300), (1024, 200)],
    )
    def test_scaling_smoke(self, num_nodes, cycles):
        system = CmpSystem(CmpConfig(
            app="oc", network="fsoi", num_nodes=num_nodes, seed=3
        ))
        result = system.run(cycles)
        assert system._vector is not None
        # Conservation: per-core instruction counters sum to the total,
        # every node is accounted for in exactly one cycle bucket per
        # cycle, and the network cannot deliver more than was sent.
        assert result.cycles == cycles
        assert result.instructions > 0
        assert sum(result.instructions_per_core) == result.instructions
        assert len(result.instructions_per_core) == num_nodes
        assert sum(result.core_cycles.values()) == num_nodes * cycles
        assert 0 < result.packets_delivered <= result.packets_sent
        # The columnar arrays — core ledgers and the network's
        # readiness columns — must still agree with the scalar objects.
        system._vector.audit()
        system.network.audit()
