"""The vectorized network engines' equivalence contract.

``src/repro/mesh/vector.py`` and ``src/repro/core/vector.py`` replace
the per-router / per-lane reference ticks with write-through readiness
columns and due-entity worklists.  The claim mirrors the core engine's
(``test_vector_equivalence.py``): a vectorized run and the
object-per-entity reference run of the same configuration produce
byte-identical ``CmpResults`` and metrics snapshots — the network
engines must not change a single delivery cycle, arbitration decision
or collision outcome.  These tests pin that down across the network
kinds, seeds, system sizes, mesh bandwidth scaling, FSOI optimizations
and fault plans, plus the engine-selection hatches, and back the
scaling claim with Bernoulli-driven runs at 256/512/1024 nodes checked
against the Figure 3 closed form.

The run-both-and-diff machinery is shared with the other equivalence
suites via ``tests/conftest.py``.
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cmp import CmpConfig, CmpSystem
from repro.core.analytical import collision_probability
from repro.core.network import FsoiConfig, FsoiNetwork
from repro.core.optimizations import OptimizationConfig
from repro.core.vector import VectorFsoiNetwork
from repro.mesh.network import MeshNetwork
from repro.mesh.vector import VectorMeshNetwork
from repro.net.packet import LaneKind, Packet
from tests.conftest import EQUIVALENCE_FAULT_PLAN, compare_engine_pair

#: Tests that inspect the default-selected engine classes only make
#: sense when the hatch is not pinning the whole process to the
#: reference engines (CI's second leg runs everything that way).
requires_vector_default = pytest.mark.skipif(
    os.environ.get("REPRO_NO_VECTOR", "") not in ("", "0"),
    reason="REPRO_NO_VECTOR pins the reference engines for the whole "
    "process, so the vectorized default is not observable",
)


class TestEquivalence:
    @pytest.mark.parametrize(
        "network", ("fsoi", "mesh", "l0", "lr1", "lr2", "corona")
    )
    def test_all_networks(self, compare_engines, network):
        # Only fsoi and mesh grow vector engines; the other kinds must
        # stay untouched by the flag (the vectorized cores still feed
        # them the same packets on the same cycles).
        compare_engines(
            "vectorized", app="mp", network=network, num_nodes=16, seed=2
        )

    @pytest.mark.parametrize("seed", (0, 7))
    def test_mesh_seeds(self, compare_engines, seed):
        compare_engines(
            "vectorized", app="em", network="mesh", num_nodes=16, seed=seed
        )

    def test_mesh_64_nodes(self, compare_engines):
        compare_engines(
            "vectorized",
            app="ba", network="mesh", num_nodes=64, seed=2, cycles=900,
        )

    def test_mesh_bandwidth_scale(self, compare_engines):
        # Narrower links stretch packets into more flits — deeper VC
        # occupancy, more credit stalls, more arbitration conflicts.
        compare_engines(
            "vectorized",
            app="oc", network="mesh", num_nodes=16, seed=6,
            mesh_bandwidth_scale=0.5,
        )

    def test_fsoi_64_nodes_phase_array(self, compare_engines):
        # 64 nodes turns on the optical phase array, putting the
        # per-send ``opa.steer`` charge inside the columnar gather.
        compare_engines(
            "vectorized",
            app="ws", network="fsoi", num_nodes=64, seed=2, cycles=900,
        )

    def test_fsoi_optimizations(self, compare_engines):
        # The full §5 design: resolution hints reschedule queued
        # packets in place — a readiness *change* without an enqueue or
        # dequeue, the subtlest write-through path.
        compare_engines(
            "vectorized",
            app="oc", network="fsoi", num_nodes=16, seed=5,
            optimizations=OptimizationConfig.all(),
        )

    def test_fsoi_packet_error_rate(self, compare_engines):
        # Signaling errors corrupt lone transmissions, so the
        # single-send fast path must still draw the same RNG verdicts.
        compare_engines(
            "vectorized",
            app="ba", network="fsoi", num_nodes=16, seed=8,
            fsoi_packet_error_rate=0.05,
        )

    def test_faults_on(self, compare_engines):
        compare_engines(
            "vectorized",
            app="oc", network="fsoi", num_nodes=16, seed=4,
            faults=EQUIVALENCE_FAULT_PLAN,
        )

    @requires_vector_default
    def test_faults_fall_back_to_reference_gather(self):
        # Fault plans keep the reference per-node slot gather (lane
        # sparing probes are stateful side effects of being queried),
        # but the readiness columns stay maintained for the horizon.
        system = CmpSystem(CmpConfig(
            app="oc", network="fsoi", num_nodes=16, seed=4,
            faults=EQUIVALENCE_FAULT_PLAN,
        ))
        network = system.network
        assert isinstance(network, VectorFsoiNetwork)
        assert not network._columnar_slots
        system.run(1200)
        network.audit()

    @pytest.mark.parametrize("network", ("fsoi", "mesh"))
    @pytest.mark.parametrize("fast_forward", (True, False))
    def test_composes_with_fast_forward(
        self, compare_engines, network, fast_forward
    ):
        # The vector engines feed the fast-forward loop their own
        # next_event() horizons; skips and worklist ticks must stack.
        loop = compare_engines(
            "vectorized",
            app="oc", network=network, num_nodes=16, seed=1,
            fast_forward=fast_forward,
        )
        if fast_forward:
            assert loop["skipped_cycles"] > 0
        else:
            assert loop == {"executed_cycles": 1200, "skipped_cycles": 0}

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        app=st.sampled_from(["oc", "ba", "mp", "ws"]),
        network=st.sampled_from(["fsoi", "mesh"]),
        seed=st.integers(min_value=0, max_value=50),
        cycles=st.integers(min_value=50, max_value=800),
        fast_forward=st.booleans(),
    )
    def test_property_equivalence(
        self, app, network, seed, cycles, fast_forward
    ):
        compare_engine_pair(
            "vectorized",
            app=app, network=network, num_nodes=16, seed=seed,
            cycles=cycles, fast_forward=fast_forward,
        )

    @requires_vector_default
    @pytest.mark.parametrize("network", ("fsoi", "mesh"))
    def test_post_run_audit(self, network):
        # The columnar bookkeeping must still agree with the scalar
        # objects after a full run, not just produce the same results.
        system = CmpSystem(CmpConfig(
            app="oc", network=network, num_nodes=16, seed=3
        ))
        system.run(1200)
        system.network.audit()


class TestEngineSelection:
    """``CmpConfig.vectorized`` / ``REPRO_NO_VECTOR`` pick the classes."""

    @requires_vector_default
    def test_vectorized_selects_vector_networks(self):
        for network, cls in (("fsoi", VectorFsoiNetwork),
                             ("mesh", VectorMeshNetwork)):
            system = CmpSystem(CmpConfig(
                app="oc", network=network, num_nodes=16, seed=1
            ))
            assert type(system.network) is cls

    def test_config_flag_selects_reference_networks(self):
        for network, cls in (("fsoi", FsoiNetwork), ("mesh", MeshNetwork)):
            system = CmpSystem(CmpConfig(
                app="oc", network=network, num_nodes=16, seed=1,
                vectorized=False,
            ))
            assert type(system.network) is cls

    def test_env_hatch_selects_reference_networks(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_VECTOR", "1")
        system = CmpSystem(CmpConfig(
            app="oc", network="mesh", num_nodes=16, seed=1
        ))
        assert type(system.network) is MeshNetwork

    def test_env_hatch_zero_means_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_VECTOR", "0")
        system = CmpSystem(CmpConfig(
            app="oc", network="fsoi", num_nodes=16, seed=1
        ))
        assert type(system.network) is VectorFsoiNetwork


def bernoulli_meta_run(num_nodes, p, seed, cycles):
    """Uniform Bernoulli meta traffic on the vector engine.

    Same driver as ``tests/core/test_analytical_crossval.py`` — every
    meta slot boundary each node offers a packet with probability ``p``
    to a uniform random peer — but instantiating the *vector* engine at
    sizes where the reference gather would dominate the run.
    """
    net = VectorFsoiNetwork(FsoiConfig(num_nodes=num_nodes, seed=seed))
    rng = np.random.default_rng(seed)
    slot = net.lanes.slot_cycles(LaneKind.META)
    for cycle in range(cycles):
        if cycle % slot == 0:
            offered = rng.random(num_nodes) < p
            targets = rng.integers(0, num_nodes - 1, num_nodes)
            for src in np.flatnonzero(offered):
                dst = int(targets[src])
                if dst >= src:
                    dst += 1
                net.try_send(
                    Packet(src=int(src), dst=dst, lane=LaneKind.META), cycle
                )
        net.tick(cycle)
    return net


@pytest.mark.slow
@pytest.mark.skipif(
    os.environ.get("REPRO_NO_VECTOR", "") not in ("", "0"),
    reason="the scaling study targets the vectorized engines, which "
    "REPRO_NO_VECTOR pins off for the whole process",
)
class TestScaling:
    """The 256/512/1024-node scaling study the engines exist for.

    Uniform Bernoulli traffic keeps the Figure 3 closed form's
    assumptions honest at scale (app-driven coherence traffic is
    directory-concentrated, so its collision rate sits far above the
    memoryless model); the crossval suite's [1.0x, 2.0x] band applies
    unchanged, which is itself evidence the engine does not perturb the
    channel statistics as the system grows.
    """

    @pytest.mark.parametrize(
        "num_nodes, cycles",
        [(256, 6000), (512, 4000), (1024, 3000)],
    )
    def test_fsoi_collision_rate_matches_closed_form(self, num_nodes, cycles):
        net = bernoulli_meta_run(num_nodes, p=0.10, seed=21 + num_nodes,
                                 cycles=cycles)
        # Conservation: the driver offered real packets and the channel
        # delivered no more than it accepted.
        assert 0 < int(net.stats.delivered) <= int(net.stats.sent)
        measured_p = net.transmission_probability(LaneKind.META)
        assert measured_p >= 0.095  # offered 0.10 plus retransmissions
        simulated = net.collision_events_per_node_slot(LaneKind.META)
        predicted = collision_probability(
            measured_p, num_nodes, net.lanes.receivers(LaneKind.META)
        )
        assert simulated > 0.0, "operating point produced no collisions"
        assert predicted <= simulated <= 2.0 * predicted
        net.audit()

    @pytest.mark.parametrize(
        "num_nodes, cycles", [(256, 300), (1024, 200)]
    )
    def test_mesh_scaling_smoke(self, num_nodes, cycles):
        # Mesh sizes must be perfect squares, so the study jumps
        # 256 -> 1024 (16x16 -> 32x32 routers).
        system = CmpSystem(CmpConfig(
            app="oc", network="mesh", num_nodes=num_nodes, seed=3
        ))
        result = system.run(cycles)
        network = system.network
        assert type(network) is VectorMeshNetwork
        assert result.cycles == cycles
        assert sum(result.instructions_per_core) == result.instructions
        assert 0 < result.packets_delivered <= result.packets_sent
        network.audit()
