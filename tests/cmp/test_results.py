"""Tests for result snapshots: traffic matrices and JSON persistence."""

import pytest

from repro.cmp import run_app
from repro.cmp.results import CmpResults


@pytest.fixture(scope="module")
def result():
    return run_app("ja", "fsoi", num_nodes=16, cycles=2500)


class TestTrafficMatrix:
    def test_shape(self, result):
        matrix = result.traffic_matrix
        assert len(matrix) == 16
        assert all(len(row) == 16 for row in matrix)

    def test_diagonal_empty(self, result):
        # Local traffic bypasses the network entirely.
        assert all(result.traffic_matrix[n][n] == 0 for n in range(16))

    def test_total_matches_delivered(self, result):
        total = sum(sum(row) for row in result.traffic_matrix)
        assert total == result.packets_delivered

    def test_stencil_locality_visible(self, result):
        """Jacobi's shared traffic targets mesh neighbours' home slices:
        a core's heaviest request column should be near it."""
        matrix = result.traffic_matrix
        # Column sums: traffic *into* each node.
        into = [sum(matrix[s][d] for s in range(16)) for d in range(16)]
        assert max(into) > 0


class TestPersistence:
    def test_round_trip(self, result, tmp_path):
        path = tmp_path / "run.json"
        result.save(path)
        loaded = CmpResults.load(path)
        assert loaded.app == result.app
        assert loaded.ipc == pytest.approx(result.ipc)
        assert loaded.instructions == result.instructions
        assert loaded.latency_breakdown == result.latency_breakdown
        assert loaded.traffic_matrix == result.traffic_matrix
        assert loaded.reply_latency.count == result.reply_latency.count
        assert loaded.reply_latency.fractions() == result.reply_latency.fractions()

    def test_loaded_speedup_usable(self, result, tmp_path):
        path = tmp_path / "run.json"
        result.save(path)
        loaded = CmpResults.load(path)
        assert loaded.speedup_over(result) == pytest.approx(1.0)

    def test_to_dict_is_json_safe(self, result):
        import json

        text = json.dumps(result.to_dict())
        assert "latency_breakdown" in text
