"""Tests for the §4.4 per-line point-to-point ordering in the CMP layer.

The paper serializes messages about the same cache line at the sender;
without it, a meta-lane acknowledgment can overtake the data-lane
writeback it logically follows and the Table 2 machines see impossible
events.  These tests pin the mechanism itself.
"""

import pytest

from repro.cmp import CmpConfig, CmpSystem
from repro.coherence.messages import CoherenceMessage, MsgType


def make_system(**kwargs):
    kwargs.setdefault("num_nodes", 16)
    kwargs.setdefault("app", "ba")
    kwargs.setdefault("network", "fsoi")
    # These tests spy on _dispatch and stub directory.handle — hooks the
    # coherence engine's fused kernels legitimately bypass — so they pin
    # the reference transport path.  The engine's copy of the §4.4
    # ordering logic is covered by
    # tests/coherence/test_vector_equivalence.py.
    kwargs.setdefault("vectorized", False)
    return CmpSystem(CmpConfig(**kwargs))


def msg(mtype, line, sender, dest):
    return CoherenceMessage(
        mtype=mtype, line=line, sender=sender, dest=dest, requester=sender
    )


class TestPerLineOrdering:
    def test_second_message_held_until_first_delivered(self):
        system = make_system(warm_start=False)
        line = 0x3  # home node 3; sender node 1
        first = msg(MsgType.WRITEBACK, line, 1, 3)
        second = msg(MsgType.DWG_ACK, line, 1, 3)
        watched = {first.uid, second.uid}
        delivered = []
        original = system._dispatch

        def spy(node, message):
            if message.uid in watched:
                delivered.append(message.mtype)
            original(node, message)

        system._dispatch = spy
        # WRITEBACK in DI would blow up the directory; route to a stub.
        system.directories[3].handle = lambda m: None
        system._send_from(1, first, 0)
        system._send_from(1, second, 0)
        # The data packet takes 5+ cycles; the meta ack would take 2 if
        # it were allowed to race ahead.
        for _ in range(4):
            system.tick()
        assert delivered == []  # nothing yet: writeback still in flight
        for _ in range(20):
            system.tick()
        assert delivered == [MsgType.WRITEBACK, MsgType.DWG_ACK]

    def test_different_lines_not_serialized(self):
        system = make_system(warm_start=False)
        system.directories[3].handle = lambda m: None
        system.directories[4].handle = lambda m: None
        slow = msg(MsgType.WRITEBACK, 0x3, 1, 3)   # data lane, 5 cycles
        fast = msg(MsgType.INV_ACK, 0x4, 1, 4)     # meta lane, 2 cycles
        watched = {slow.uid, fast.uid}
        order = []
        original = system._dispatch

        def spy(node, message):
            if message.uid in watched:
                order.append(message.mtype)
            original(node, message)

        system._dispatch = spy
        system._send_from(1, slow, 0)
        system._send_from(1, fast, 0)
        for _ in range(20):
            system.tick()
        assert order[0] is MsgType.INV_ACK  # meta overtakes across lines

    def test_pending_state_cleaned_up(self):
        system = make_system(warm_start=False)
        system.directories[3].handle = lambda m: None
        system._send_from(1, msg(MsgType.INV_ACK, 0x3, 1, 3), 0)
        for _ in range(10):
            system.tick()
        assert (1, 0x3) not in system._line_pending

    def test_queue_drains_in_fifo_order(self):
        system = make_system(warm_start=False)
        system.directories[3].handle = lambda m: None
        kinds = [MsgType.INV_ACK, MsgType.DWG_ACK, MsgType.INV_ACK]
        messages = [msg(kind, 0x3, 1, 3) for kind in kinds]
        watched = {m.uid for m in messages}
        order = []
        original = system._dispatch

        def spy(node, message):
            if message.uid in watched:
                order.append(message.uid)
            original(node, message)

        system._dispatch = spy
        for message in messages:
            system._send_from(1, message, 0)
        for _ in range(40):
            system.tick()
        assert order == [m.uid for m in messages]

    def test_local_messages_also_serialized(self):
        system = make_system(warm_start=False)
        line = 0x11  # home node 1 == sender node 1: local path
        wb = msg(MsgType.WRITEBACK, line, 1, 1)
        ack = msg(MsgType.DWG_ACK, line, 1, 1)
        watched = {wb.uid, ack.uid}
        received = []
        system.directories[1].handle = (
            lambda m: received.append(m.mtype) if m.uid in watched else None
        )
        system._send_from(1, wb, 0)
        system._send_from(1, ack, 0)
        for _ in range(10):
            system.tick()
        assert received == [MsgType.WRITEBACK, MsgType.DWG_ACK]
