"""Golden regression snapshots of full CmpSystem runs.

``tests/data/golden_<network>_16.json`` holds the complete
``CmpResults.to_dict()`` of a 16-node run at a fixed app/seed/cycle
count.  The tests recompute the run and compare *every* field, so a
refactor that silently shifts the paper's numbers fails loudly here
rather than drifting unnoticed through the benchmarks.

After an *intentional* simulator change, regenerate with::

    PYTHONPATH=src python -m pytest tests/cmp/test_golden.py --update-golden

and commit the updated snapshots together with the change that moved
the numbers.
"""

import json
import math
from pathlib import Path

import pytest

from repro.cmp import CmpConfig, CmpSystem
from repro.sweep import canonical_json

DATA_DIR = Path(__file__).parents[1] / "data"

#: Fixed experiment: small enough to recompute in a test, big enough
#: that every subsystem (coherence, sync, memory, collisions) has fired.
APP = "oc"
NUM_NODES = 16
CYCLES = 2500
SEED = 0
NETWORKS = ("fsoi", "mesh")


def golden_path(network: str) -> Path:
    return DATA_DIR / f"golden_{network}_{NUM_NODES}.json"


def compute(network: str) -> dict:
    config = CmpConfig(
        num_nodes=NUM_NODES, app=APP, network=network, seed=SEED
    )
    result = CmpSystem(config).run(CYCLES).to_dict()
    return json.loads(canonical_json(result))


def _diff(expected, actual, path=""):
    """Recursive field-by-field comparison; returns difference strings."""
    if isinstance(expected, dict) and isinstance(actual, dict):
        out = []
        for key in sorted(set(expected) | set(actual)):
            where = f"{path}.{key}" if path else key
            if key not in expected:
                out.append(f"{where}: unexpected new field")
            elif key not in actual:
                out.append(f"{where}: field disappeared")
            else:
                out.extend(_diff(expected[key], actual[key], where))
        return out
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            return [f"{path}: length {len(expected)} -> {len(actual)}"]
        out = []
        for index, (e, a) in enumerate(zip(expected, actual)):
            out.extend(_diff(e, a, f"{path}[{index}]"))
        return out
    if isinstance(expected, float) or isinstance(actual, float):
        if not math.isclose(expected, actual, rel_tol=1e-9, abs_tol=1e-12):
            return [f"{path}: {expected!r} -> {actual!r}"]
        return []
    if expected != actual:
        return [f"{path}: {expected!r} -> {actual!r}"]
    return []


@pytest.mark.parametrize("network", NETWORKS)
def test_golden_snapshot(network, request):
    actual = compute(network)
    path = golden_path(network)
    if request.config.getoption("--update-golden"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(actual, indent=1, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"missing golden snapshot {path}; generate it with "
        "`pytest tests/cmp/test_golden.py --update-golden`"
    )
    expected = json.loads(path.read_text())
    differences = _diff(expected, actual)
    assert not differences, (
        f"{network} run diverged from {path.name} in "
        f"{len(differences)} field(s):\n  "
        + "\n  ".join(differences[:20])
        + "\nIf the change is intentional, regenerate with "
        "`pytest tests/cmp/test_golden.py --update-golden` and commit."
    )


def metrics_golden_path(network: str) -> Path:
    return DATA_DIR / f"golden_metrics_{network}_{NUM_NODES}.json"


@pytest.mark.parametrize("network", NETWORKS)
def test_golden_metrics_snapshot(network, request):
    """The observability registry's export is part of the frozen surface.

    Same run as :func:`test_golden_snapshot`, but snapshotting the full
    ``CmpSystem.metrics_registry()`` export — so renaming a counter,
    dropping a stat group or changing export formatting fails loudly.
    """
    config = CmpConfig(
        num_nodes=NUM_NODES, app=APP, network=network, seed=SEED
    )
    system = CmpSystem(config)
    system.run(CYCLES)
    actual = json.loads(system.metrics_registry().to_json())
    path = metrics_golden_path(network)
    if request.config.getoption("--update-golden"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(actual, indent=1, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"missing golden metrics snapshot {path}; generate it with "
        "`pytest tests/cmp/test_golden.py --update-golden`"
    )
    expected = json.loads(path.read_text())
    differences = _diff(expected, actual)
    assert not differences, (
        f"{network} metrics export diverged from {path.name} in "
        f"{len(differences)} field(s):\n  "
        + "\n  ".join(differences[:20])
        + "\nIf the change is intentional, regenerate with "
        "`pytest tests/cmp/test_golden.py --update-golden` and commit."
    )


def test_golden_metrics_snapshots_are_meaningful():
    """The metrics snapshots must cover every mounted subsystem."""
    for network in NETWORKS:
        data = json.loads(metrics_golden_path(network).read_text())
        assert data["run"]["cycles"] == CYCLES
        assert data["run"]["instructions"] > 0
        assert data["network"]  # the network stat tree is mounted
        for node in (0, NUM_NODES - 1):
            assert f"n{node:02d}" in data["l1"]
            assert f"n{node:02d}" in data["directory"]
    fsoi = json.loads(metrics_golden_path("fsoi").read_text())
    assert fsoi["confirmation"]["confirmations_sent"] > 0


def test_golden_snapshots_are_meaningful():
    """The snapshots must exercise the interesting machinery."""
    for network in NETWORKS:
        data = json.loads(golden_path(network).read_text())
        assert data["instructions"] > 0
        assert data["packets_delivered"] > 100
        assert data["sync"]["barriers_completed"] >= 0
        assert data["cycles"] == CYCLES
    fsoi = json.loads(golden_path("fsoi").read_text())
    assert fsoi["fsoi"]["meta_transmissions"] > 0  # collisions machinery ran
