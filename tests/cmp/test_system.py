"""Tests for the full CMP system wiring."""

import pytest

from repro.cmp import CmpConfig, CmpSystem, run_app
from repro.core.optimizations import OptimizationConfig


class TestConfig:
    def test_network_kinds_validated(self):
        with pytest.raises(ValueError):
            CmpConfig(network="token-ring")

    def test_optimizations_require_fsoi(self):
        with pytest.raises(ValueError):
            CmpConfig(network="mesh", optimizations=OptimizationConfig.all())
        CmpConfig(network="fsoi", optimizations=OptimizationConfig.all())

    def test_memory_channels_default(self):
        assert CmpConfig(num_nodes=16).memory_channels == 4
        assert CmpConfig(num_nodes=64).memory_channels == 8
        assert CmpConfig(num_nodes=16, num_memory_channels=2).memory_channels == 2

    def test_app_lookup(self):
        assert CmpConfig(app="oc").app_signature.name == "ocean"


class TestWiring:
    def test_home_interleaving(self):
        system = CmpSystem(CmpConfig(num_nodes=16))
        assert system.home_of(0x10) == 0
        assert system.home_of(0x13) == 3

    def test_memory_controllers_placed(self):
        system = CmpSystem(CmpConfig(num_nodes=16))
        assert len(system.memory) == 4
        for line in range(64):
            assert system.memory_node_of(line) in system.memory

    def test_phase_array_only_at_64(self):
        small = CmpSystem(CmpConfig(num_nodes=16, network="fsoi"))
        large = CmpSystem(CmpConfig(num_nodes=64, network="fsoi"))
        assert not small.network.config.phase_array
        assert large.network.config.phase_array

    def test_warm_start_installs_hot_sets(self):
        from repro.coherence.l1 import L1State

        system = CmpSystem(CmpConfig(num_nodes=16, app="ba"))
        workload = system.cores[0].workload
        hot_line = workload.reuse_lines()[0]
        assert system.l1s[0].state(hot_line) is L1State.E

    def test_warm_start_can_be_disabled(self):
        from repro.coherence.directory import DirState

        system = CmpSystem(CmpConfig(num_nodes=16, warm_start=False))
        workload = system.cores[0].workload
        line = workload.reuse_lines()[0]
        assert system.directories[system.home_of(line)].state(line) is DirState.DI


class TestRun:
    def test_results_populated(self):
        result = run_app("ba", "fsoi", num_nodes=16, cycles=2000)
        assert result.instructions > 0
        assert result.packets_delivered > 0
        assert result.cycles == 2000
        assert len(result.instructions_per_core) == 16
        assert result.ipc > 0

    def test_deterministic_given_seed(self):
        a = run_app("ba", "fsoi", cycles=2000, seed=5)
        b = run_app("ba", "fsoi", cycles=2000, seed=5)
        assert a.instructions == b.instructions
        assert a.packets_sent == b.packets_sent

    def test_seed_changes_run(self):
        a = run_app("ba", "fsoi", cycles=2000, seed=5)
        b = run_app("ba", "fsoi", cycles=2000, seed=6)
        assert a.instructions != b.instructions

    def test_speedup_over(self):
        mesh = run_app("ba", "mesh", cycles=2000)
        fsoi = run_app("ba", "fsoi", cycles=2000)
        assert fsoi.speedup_over(mesh) > 0.8

    def test_speedup_rejects_mismatched_runs(self):
        a = run_app("ba", "mesh", cycles=1000)
        b = run_app("oc", "fsoi", cycles=1000)
        with pytest.raises(ValueError):
            b.speedup_over(a)

    def test_fsoi_stats_only_for_fsoi(self):
        mesh = run_app("ba", "mesh", cycles=1000)
        fsoi = run_app("ba", "fsoi", cycles=1000)
        assert mesh.fsoi == {}
        assert "meta_collision_rate" in fsoi.fsoi
        assert mesh.mesh_activity and not fsoi.mesh_activity

    def test_reply_latency_histogram_populated(self):
        result = run_app("oc", "fsoi", cycles=3000)
        assert result.reply_latency.count > 0
        assert sum(result.reply_latency.fractions()) == pytest.approx(1.0)

    def test_memory_bandwidth_knob(self):
        low = run_app("rx", "fsoi", cycles=4000, memory_gbps=8.8)
        high = run_app("rx", "fsoi", cycles=4000, memory_gbps=52.8)
        assert high.ipc >= low.ipc

    def test_run_continues_across_calls(self):
        system = CmpSystem(CmpConfig(num_nodes=16, app="ba"))
        first = system.run(1000)
        second = system.run(1000)
        assert second.cycles == 2000
        assert second.instructions >= first.instructions


class TestConfirmationAckWiring:
    def test_suppressed_acks_still_complete_transactions(self):
        opts = OptimizationConfig(confirmation_ack=True)
        result = run_app("em", "fsoi", cycles=4000, optimizations=opts)
        baseline = run_app("em", "fsoi", cycles=4000)
        # Optimization must not wedge progress...
        assert result.ipc > 0.8 * baseline.ipc
        # ...and must remove ack packets from the wire.
        assert result.l1["acks_suppressed"] > 0
        assert result.packets_sent < baseline.packets_sent

    def test_subscription_reduces_sync_traffic(self):
        opts = OptimizationConfig(llsc_subscription=True)
        base = run_app("ray", "fsoi", cycles=6000, seed=2)
        sub = run_app("ray", "fsoi", cycles=6000, optimizations=opts, seed=2)
        assert sub.fsoi["signals"] > 0
        assert sub.ipc > 0.8 * base.ipc
