"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import validate_trace_file


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.app == "oc"
        assert args.network == "fsoi"
        assert args.nodes == 16

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "doom"])

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--network", "carrier-pigeon"])

    def test_config_nodes_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["config", "--nodes", "32"])


class TestCommands:
    def test_link(self, capsys):
        assert main(["link"]) == 0
        out = capsys.readouterr().out
        assert "optical_path_loss_db" in out
        assert "receiver_clip_db" in out

    def test_config(self, capsys):
        assert main(["config", "--nodes", "64"]) == 0
        out = capsys.readouterr().out
        assert "phase-array" in out

    def test_run(self, capsys):
        assert main(
            ["run", "--app", "ba", "--network", "l0", "--cycles", "1500"]
        ) == 0
        out = capsys.readouterr().out
        assert "instructions" in out
        assert "IPC" in out

    def test_run_optimized_fsoi(self, capsys):
        assert main(
            ["run", "--app", "ba", "--cycles", "1500", "--optimized"]
        ) == 0
        assert "meta lane" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "--app", "ba", "--cycles", "1500"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "EDP" in out

    def test_thermal(self, capsys):
        assert main(["thermal", "--power", "150"]) == 0
        out = capsys.readouterr().out
        assert "microchannel" in out
        assert "OK" in out


class TestTraceCommand:
    def test_trace_writes_schema_valid_jsonl(self, capsys, tmp_path):
        out_path = tmp_path / "trace.jsonl"
        assert main([
            "trace", "--app", "ba", "--cycles", "1500",
            "--out", str(out_path),
        ]) == 0
        assert validate_trace_file(out_path) > 0
        stdout = capsys.readouterr().out
        assert "events" in stdout and "fsoi" in stdout

    def test_trace_chrome_and_metrics_exports(self, capsys, tmp_path):
        out_path = tmp_path / "trace.jsonl"
        chrome_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert main([
            "trace", "--app", "ba", "--cycles", "1500",
            "--out", str(out_path),
            "--chrome", str(chrome_path),
            "--metrics", str(metrics_path),
        ]) == 0
        chrome = json.loads(chrome_path.read_text())
        assert chrome["traceEvents"]
        metrics = json.loads(metrics_path.read_text())
        assert metrics["run"]["cycles"] == 1500

    def test_trace_filters_restrict_output(self, capsys, tmp_path):
        out_path = tmp_path / "trace.jsonl"
        assert main([
            "trace", "--app", "ba", "--cycles", "1500",
            "--out", str(out_path),
            "--categories", "coherence", "--node", "2",
        ]) == 0
        for line in out_path.read_text().splitlines():
            event = json.loads(line)
            assert event["cat"] == "coherence"
            assert event["pid"] == 2

    def test_profile(self, capsys):
        assert main(["profile", "--app", "ba", "--cycles", "1500"]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "share" in out
        for phase in ("network", "cores", "calendar"):
            assert phase in out


class TestFaultsCommand:
    def test_faults_run_reports_resilience(self, capsys):
        assert main([
            "faults", "--app", "oc", "--cycles", "2000",
            "--kill", "3:data:0:600",
            "--drop-confirmations", "0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert "dead data lane at node 3" in out
        assert "resilience" in out
        assert "confirmations dropped" in out

    def test_faults_empty_plan_rejected(self):
        with pytest.raises(SystemExit, match="empty plan"):
            main(["faults"])

    def test_faults_bad_kill_spec_rejected(self):
        with pytest.raises(SystemExit, match="NODE:LANE"):
            main(["faults", "--kill", "3"])

    def test_faults_plan_save_and_reload(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        assert main([
            "faults", "--cycles", "1000",
            "--kill", "5:meta:100:400", "--giveup", "8",
            "--fault-seed", "3", "--save-plan", str(plan_path),
        ]) == 0
        first = capsys.readouterr().out
        assert plan_path.exists()
        saved = json.loads(plan_path.read_text())
        assert saved["lane_faults"] == [
            {"node": 5, "lane": "meta", "start": 100, "end": 400}
        ]
        assert main([
            "faults", "--cycles", "1000", "--plan", str(plan_path),
        ]) == 0
        second = capsys.readouterr().out

        def report(text):
            lines = text.splitlines()
            return lines[next(i for i, line in enumerate(lines)
                              if line.startswith("oc on fsoi")):]

        # Same plan, same seed -> the identical run and report (modulo
        # the plan label: the CLI flags build plan 'cli', the reload
        # carries the same label back, so even that matches).
        assert report(first) == report(second)

    def test_faults_metrics_export(self, capsys, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        assert main([
            "faults", "--cycles", "1000", "--drop-confirmations", "0.1",
            "--metrics", str(metrics_path),
        ]) == 0
        exported = json.loads(metrics_path.read_text())
        assert exported["fault"]["plan_label"] == "cli"
        assert len(exported["fault"]["plan_hash"]) == 16
        assert exported["confirmation"]["confirmations_dropped"] > 0
