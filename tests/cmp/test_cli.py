"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.app == "oc"
        assert args.network == "fsoi"
        assert args.nodes == 16

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "doom"])

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--network", "carrier-pigeon"])

    def test_config_nodes_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["config", "--nodes", "32"])


class TestCommands:
    def test_link(self, capsys):
        assert main(["link"]) == 0
        out = capsys.readouterr().out
        assert "optical_path_loss_db" in out
        assert "receiver_clip_db" in out

    def test_config(self, capsys):
        assert main(["config", "--nodes", "64"]) == 0
        out = capsys.readouterr().out
        assert "phase-array" in out

    def test_run(self, capsys):
        assert main(
            ["run", "--app", "ba", "--network", "l0", "--cycles", "1500"]
        ) == 0
        out = capsys.readouterr().out
        assert "instructions" in out
        assert "IPC" in out

    def test_run_optimized_fsoi(self, capsys):
        assert main(
            ["run", "--app", "ba", "--cycles", "1500", "--optimized"]
        ) == 0
        assert "meta lane" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "--app", "ba", "--cycles", "1500"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "EDP" in out

    def test_thermal(self, capsys):
        assert main(["thermal", "--power", "150"]) == 0
        out = capsys.readouterr().out
        assert "microchannel" in out
        assert "OK" in out
