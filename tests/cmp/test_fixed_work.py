"""Tests for the fixed-work measurement methodology."""

import pytest

from repro.cmp import CmpConfig, CmpSystem


def make(network, app="oc", seed=0):
    return CmpSystem(CmpConfig(num_nodes=16, app=app, network=network, seed=seed))


class TestRunUntilInstructions:
    def test_reaches_target(self):
        system = make("l0")
        result = system.run_until_instructions(50_000)
        assert result.instructions >= 50_000
        assert result.cycles > 0

    def test_faster_network_fewer_cycles(self):
        """The paper's speedup, measured the paper's way: cycles for the
        same amount of work."""
        work = 60_000
        mesh = make("mesh").run_until_instructions(work)
        fsoi = make("fsoi").run_until_instructions(work)
        assert fsoi.cycles < mesh.cycles
        time_speedup = mesh.cycles / fsoi.cycles
        assert time_speedup > 1.1  # ocean is communication-bound

    def test_time_and_ipc_speedups_agree(self):
        """In steady state the cycles-for-fixed-work ratio matches the
        IPC-for-fixed-cycles ratio within a few percent."""
        work = 60_000
        mesh_t = make("mesh").run_until_instructions(work)
        fsoi_t = make("fsoi").run_until_instructions(work)
        time_speedup = mesh_t.cycles / fsoi_t.cycles

        mesh_i = make("mesh").run(6000)
        fsoi_i = make("fsoi").run(6000)
        ipc_speedup = fsoi_i.ipc / mesh_i.ipc
        assert time_speedup == pytest.approx(ipc_speedup, rel=0.12)

    def test_unreachable_target_raises(self):
        system = make("l0")
        with pytest.raises(RuntimeError, match="not reached"):
            system.run_until_instructions(10**9, max_cycles=200)

    def test_validation(self):
        with pytest.raises(ValueError):
            make("l0").run_until_instructions(0)
