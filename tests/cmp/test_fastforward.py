"""The fast-forward engine's equivalence contract.

The next-event loop (docs/performance.md) must be *invisible* in every
measured quantity: a fast-forwarded run and a naive cycle-by-cycle run
of the same configuration produce byte-identical ``CmpResults`` (minus
the ``loop`` accounting field, which exists to describe the difference)
and identical metrics-registry snapshots.  These tests pin that down
across networks, seeds, system sizes and fault plans, plus the two
escape hatches (``CmpConfig.fast_forward`` and ``REPRO_NO_FASTFORWARD``).

The run-both-and-diff machinery is shared with the vectorized-engine
suite (``test_vector_equivalence.py``) via ``tests/conftest.py``.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cmp import CmpConfig, CmpSystem
from tests.conftest import EQUIVALENCE_FAULT_PLAN, compare_engine_pair


class TestEquivalence:
    @pytest.mark.parametrize(
        "network", ("fsoi", "mesh", "l0", "lr1", "lr2", "corona")
    )
    def test_all_networks(self, compare_engines, network):
        compare_engines(
            "fast_forward", app="oc", network=network, num_nodes=16, seed=1
        )

    @pytest.mark.parametrize("seed", (0, 7))
    def test_seeds(self, compare_engines, seed):
        compare_engines(
            "fast_forward", app="ba", network="fsoi", num_nodes=16, seed=seed
        )

    def test_64_nodes_phase_array(self, compare_engines):
        compare_engines(
            "fast_forward",
            app="em", network="fsoi", num_nodes=64, seed=2, cycles=900,
        )

    def test_faults_on(self, compare_engines):
        compare_engines(
            "fast_forward",
            app="oc", network="fsoi", num_nodes=16, seed=4,
            faults=EQUIVALENCE_FAULT_PLAN,
        )

    def test_low_activity_run_actually_skips(self, compare_engines):
        # Ocean on the ideal L0 network has windows where every core is
        # blocked at a barrier or on memory — real gaps between events.
        loop = compare_engines(
            "fast_forward", app="oc", network="l0", num_nodes=16, seed=1
        )
        assert loop["skipped_cycles"] > 0

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        app=st.sampled_from(["oc", "ba", "mp", "ws"]),
        network=st.sampled_from(["fsoi", "mesh", "lr2"]),
        seed=st.integers(min_value=0, max_value=50),
        cycles=st.integers(min_value=50, max_value=800),
    )
    def test_property_equivalence(self, app, network, seed, cycles):
        compare_engine_pair(
            "fast_forward",
            app=app, network=network, num_nodes=16, seed=seed, cycles=cycles,
        )

    def test_run_until_instructions_stops_at_same_cycle(self):
        systems = [
            CmpSystem(CmpConfig(
                app="lu", network="l0", num_nodes=16, seed=1,
                fast_forward=fast_forward,
            ))
            for fast_forward in (True, False)
        ]
        results = [s.run_until_instructions(20_000) for s in systems]
        assert results[0].cycles == results[1].cycles
        assert results[0].instructions == results[1].instructions


class TestEscapeHatches:
    def test_config_flag_disables_skipping(self):
        system = CmpSystem(CmpConfig(
            app="lu", network="l0", num_nodes=16, seed=1, fast_forward=False
        ))
        result = system.run(1200)
        assert result.loop == {"executed_cycles": 1200, "skipped_cycles": 0}

    def test_env_hatch_disables_skipping(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_FASTFORWARD", "1")
        system = CmpSystem(CmpConfig(app="lu", network="l0", num_nodes=16, seed=1))
        result = system.run(1200)
        assert result.loop == {"executed_cycles": 1200, "skipped_cycles": 0}

    def test_env_hatch_zero_means_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_FASTFORWARD", "0")
        system = CmpSystem(CmpConfig(app="oc", network="l0", num_nodes=16, seed=1))
        assert system.run(1200).loop["skipped_cycles"] > 0


class TestCalendarClamps:
    """The old dict calendar silently stranded past-cycle entries
    (``_calendar.pop(cycle, ())`` never revisited a drained key).  The
    two schedulers now make that impossible: ``CmpSystem._at`` clamps a
    past/present cycle to "run now", and the FSOI network refuses it
    loudly.
    """

    def test_system_at_runs_past_cycles_immediately(self):
        system = CmpSystem(CmpConfig(app="oc", network="l0", num_nodes=16, seed=0))
        system.run(100)
        fired = []
        system._at(50, lambda: fired.append("past"))
        system._at(system.cycle, lambda: fired.append("present"))
        assert fired == ["past", "present"]
        system._at(system.cycle + 5, lambda: fired.append("future"))
        assert fired == ["past", "present"]  # future entries wait
        system.run(10)
        assert fired == ["past", "present", "future"]

    def test_fsoi_schedule_rejects_past_cycles(self):
        from repro.core.network import FsoiConfig, FsoiNetwork

        net = FsoiNetwork(FsoiConfig(num_nodes=16, seed=0))
        for cycle in range(6):
            net.tick(cycle)
        with pytest.raises(ValueError, match="already ticked cycle 5"):
            net._schedule(5, lambda: None)
        with pytest.raises(ValueError, match="cannot schedule"):
            net._schedule(0, lambda: None)
        net._schedule(6, lambda: None)  # the future is still fine


class TestLoopAccounting:
    def test_counters_cover_the_window(self):
        system = CmpSystem(CmpConfig(app="oc", network="fsoi", num_nodes=16, seed=0))
        result = system.run(2000)
        loop = result.loop
        assert loop["executed_cycles"] + loop["skipped_cycles"] == 2000
        assert result.cycles == 2000

    def test_round_trips_through_to_dict(self):
        from repro.cmp.results import CmpResults

        system = CmpSystem(CmpConfig(app="oc", network="l0", num_nodes=16, seed=0))
        result = system.run(600)
        clone = CmpResults.from_dict(result.to_dict())
        assert clone.loop == result.loop

    def test_old_results_load_without_loop_field(self):
        from repro.cmp.results import CmpResults

        system = CmpSystem(CmpConfig(app="oc", network="l0", num_nodes=16, seed=0))
        data = system.run(400).to_dict()
        del data["loop"]  # a result saved before the loop field existed
        assert CmpResults.from_dict(data).loop == {}
