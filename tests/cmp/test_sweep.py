"""Tests for multi-seed sweeps and summaries."""

import pytest

from repro.cmp.sweep import SweepSummary, paired_speedups, summarize, sweep


class TestSweepSummary:
    def test_basic_stats(self):
        summary = SweepSummary((1.0, 2.0, 3.0))
        assert summary.mean == 2.0
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.count == 3
        assert summary.stdev == pytest.approx(1.0)

    def test_single_value_degenerate(self):
        summary = SweepSummary((5.0,))
        assert summary.stdev == 0.0
        assert summary.ci95_halfwidth == 0.0

    def test_ci_shrinks_with_samples(self):
        narrow = SweepSummary(tuple([1.0, 2.0] * 8))
        wide = SweepSummary((1.0, 2.0))
        assert narrow.ci95_halfwidth < wide.ci95_halfwidth

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SweepSummary(())

    def test_str_format(self):
        text = str(SweepSummary((1.0, 2.0)))
        assert "±" in text and "n=2" in text


class TestSweep:
    def test_runs_per_seed(self):
        results = sweep("ba", "l0", seeds=(0, 1), cycles=1500)
        assert len(results) == 2
        assert results[0].instructions != results[1].instructions

    def test_same_seed_reproduces(self):
        a = sweep("ba", "l0", seeds=(7,), cycles=1500)[0]
        b = sweep("ba", "l0", seeds=(7,), cycles=1500)[0]
        assert a.instructions == b.instructions

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            sweep("ba", "l0", seeds=())


class TestPairedSpeedups:
    def test_fsoi_over_mesh(self):
        summary = paired_speedups(
            "oc", "fsoi", "mesh", seeds=(0, 1), cycles=2500
        )
        assert summary.count == 2
        assert summary.mean > 1.0  # FSOI wins on a comm-heavy app

    def test_self_speedup_is_one(self):
        summary = paired_speedups("ba", "l0", "l0", seeds=(0,), cycles=1500)
        assert summary.mean == pytest.approx(1.0)


class TestSummarize:
    def test_arbitrary_metric(self):
        results = sweep("ba", "l0", seeds=(0, 1), cycles=1500)
        summary = summarize(results, lambda r: r.latency_breakdown["total"])
        assert summary.count == 2
        assert summary.mean > 0
