"""Property tests for the shared network kernels.

Each kernel in :mod:`repro.net.kernels` is checked against a scalar
re-derivation written directly from its contract, so a regression
points at the broken primitive instead of a diverged end-to-end run
(the engine suites — ``tests/cmp/test_network_vector_equivalence.py`` —
only say *that* something diverged).  The round-robin kernel doubles as
the specification oracle for the mesh engine's fused inline
arbitration, so it is additionally pinned against the reference
router's literal ``sorted``-based pick.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.routing import Port, xy_route
from repro.net.kernels import (
    NEVER,
    allocatable_vc_mask,
    due_indices,
    earliest,
    rr_pick,
    slot_horizon,
    xy_route_codes,
)

#: Readiness values: simulated cycles plus the idle sentinel.
ready_values = st.one_of(
    st.integers(min_value=0, max_value=1_000_000), st.just(NEVER)
)
ready_arrays = st.lists(ready_values, min_size=0, max_size=40).map(
    lambda values: np.asarray(values, dtype=np.int64)
)


class TestDueIndices:
    @settings(deadline=None)
    @given(ready=ready_arrays, cycle=st.integers(min_value=0, max_value=1_000_000))
    def test_matches_scalar_scan(self, ready, cycle):
        expected = [i for i, r in enumerate(ready.tolist()) if r <= cycle]
        assert due_indices(ready, cycle).tolist() == expected

    @settings(deadline=None)
    @given(ready=ready_arrays, cycle=st.integers(min_value=0, max_value=1_000_000))
    def test_ascending_order(self, ready, cycle):
        # Load-bearing: the worklists must replay the reference 0..N-1
        # sweeps in index order.
        due = due_indices(ready, cycle).tolist()
        assert due == sorted(due)

    def test_sentinel_is_never_due(self):
        ready = np.asarray([NEVER, 0, NEVER], dtype=np.int64)
        assert due_indices(ready, 10**9).tolist() == [1]


class TestEarliest:
    @settings(deadline=None)
    @given(ready=ready_arrays)
    def test_matches_scalar_min(self, ready):
        values = ready.tolist()
        assert earliest(ready) == (min(values) if values else NEVER)

    def test_empty_is_never(self):
        assert earliest(np.asarray([], dtype=np.int64)) == NEVER


class TestSlotHorizon:
    @settings(deadline=None)
    @given(
        earliest_ready=ready_values,
        cycle=st.integers(min_value=0, max_value=1_000_000),
        slot_len=st.integers(min_value=1, max_value=64),
    )
    def test_matches_scalar_rederivation(self, earliest_ready, cycle, slot_len):
        horizon = slot_horizon(earliest_ready, cycle, slot_len)
        if earliest_ready >= NEVER:
            assert horizon is None
            return
        # First multiple of slot_len at or after the eligible cycle
        # (an overdue packet starts at the next boundary from "now").
        eligible = max(earliest_ready, cycle)
        assert horizon % slot_len == 0
        assert horizon >= eligible
        assert horizon - slot_len < eligible

    def test_no_overflow_near_sentinel(self):
        # Boundary arithmetic on values just below NEVER must stay
        # inside int64 (the sentinel is 1 << 62 precisely for this).
        horizon = slot_horizon(NEVER - 1, 0, 64)
        assert horizon is not None
        assert horizon % 64 == 0


class TestAllocatableVcMask:
    @settings(deadline=None)
    @given(
        data=st.data(),
        nodes=st.integers(min_value=1, max_value=12),
        vcs=st.integers(min_value=1, max_value=4),
        capacity=st.integers(min_value=1, max_value=8),
    )
    def test_matches_scalar_allocation_scan(self, data, nodes, vcs, capacity):
        owner_busy = np.asarray(
            data.draw(
                st.lists(
                    st.lists(st.booleans(), min_size=vcs, max_size=vcs),
                    min_size=nodes, max_size=nodes,
                )
            ),
            dtype=bool,
        )
        occupancy = np.asarray(
            data.draw(
                st.lists(
                    st.lists(
                        st.integers(min_value=0, max_value=capacity),
                        min_size=vcs, max_size=vcs,
                    ),
                    min_size=nodes, max_size=nodes,
                )
            ),
            dtype=np.int64,
        )
        # A fresh head flit needs a VC that is both unallocated and has
        # a credit — MeshNetwork._allocate_injection_vc's scan.
        expected = [
            any(
                not owner_busy[node][vc] and occupancy[node][vc] < capacity
                for vc in range(vcs)
            )
            for node in range(nodes)
        ]
        assert allocatable_vc_mask(owner_busy, occupancy, capacity).tolist() \
            == expected


class TestXyRouteCodes:
    @settings(deadline=None)
    @given(
        data=st.data(),
        side=st.integers(min_value=2, max_value=8),
        count=st.integers(min_value=1, max_value=32),
    )
    def test_matches_scalar_xy_route(self, data, side, count):
        num_nodes = side * side
        nodes = np.asarray(
            data.draw(st.lists(
                st.integers(min_value=0, max_value=num_nodes - 1),
                min_size=count, max_size=count,
            )),
            dtype=np.int64,
        )
        dsts = np.asarray(
            data.draw(st.lists(
                st.integers(min_value=0, max_value=num_nodes - 1),
                min_size=count, max_size=count,
            )),
            dtype=np.int64,
        )
        codes = xy_route_codes(nodes, dsts, side)
        for node, dst, code in zip(nodes.tolist(), dsts.tolist(),
                                   codes.tolist()):
            assert Port(code) is xy_route(node, dst, side)

    def test_x_priority_over_y(self):
        # Dimension order: X disagreement routes EAST/WEST even when Y
        # also disagrees.
        codes = xy_route_codes(
            np.asarray([0], dtype=np.int64),
            np.asarray([15], dtype=np.int64),  # (3, 3) from (0, 0) on 4x4
            4,
        )
        assert Port(codes[0]) is Port.EAST


def reference_rr_pick(indices, start):
    """The reference router's arbitration, verbatim: stable sort by
    cyclic distance from the arbiter pointer, winner first."""
    order = sorted(range(len(indices)),
                   key=lambda pos: (indices[pos] - start) % 1000)
    return order[0]


class TestRrPick:
    @settings(deadline=None)
    @given(
        data=st.data(),
        count=st.integers(min_value=1, max_value=20),
        start=st.integers(min_value=0, max_value=999),
    )
    def test_matches_reference_sorted_pick(self, data, count, start):
        # Arbitration indices are distinct by construction
        # (in_port * num_vcs + vc + 1 is injective).
        indices = data.draw(st.lists(
            st.integers(min_value=1, max_value=999),
            min_size=count, max_size=count, unique=True,
        ))
        assert rr_pick(indices, start) == reference_rr_pick(indices, start)

    @settings(deadline=None)
    @given(
        data=st.data(),
        count=st.integers(min_value=1, max_value=20),
        start=st.integers(min_value=0, max_value=999),
    )
    def test_winner_minimizes_cyclic_distance(self, data, count, start):
        indices = data.draw(st.lists(
            st.integers(min_value=1, max_value=999),
            min_size=count, max_size=count, unique=True,
        ))
        winner = rr_pick(indices, start)
        winner_key = (indices[winner] - start) % 1000
        assert all((index - start) % 1000 >= winner_key for index in indices)

    def test_pointer_update_gives_lowest_priority_to_winner(self):
        # After a grant the arbiter pointer moves to winner + 1, so an
        # immediate re-request from the same index loses to anyone else
        # — the property that makes the scheme fair.
        indices = [3, 7]
        winner = rr_pick(indices, start=0)
        assert indices[winner] == 3
        next_start = indices[winner] + 1
        assert indices[rr_pick(indices, next_start)] == 7
