"""Tests for bounded L2 slice capacity (Table 2's Repl paths in vivo)."""

import pytest

from repro.coherence.directory import DirectoryConfig, DirState
from repro.coherence.l1 import L1State
from repro.coherence.messages import MsgType

from tests.coherence.conftest import Fabric


def bounded_fabric(capacity):
    return Fabric(
        num_nodes=4,
        dir_config=DirectoryConfig(l2_latency=0, capacity_lines=capacity),
    )


def live_lines(directory):
    return [
        line
        for line, entry in directory._entries.items()
        if entry.state is not DirState.DI
    ]


class TestCapacityEviction:
    def test_never_exceeds_capacity_when_stable(self):
        fabric = bounded_fabric(capacity=3)
        for line in range(0x10, 0x18):
            fabric.read(1, line)
        assert len(live_lines(fabric.directory)) <= 3

    def test_lru_victim_chosen(self):
        fabric = bounded_fabric(capacity=2)
        fabric.read(1, 0xA)
        fabric.read(1, 0xB)
        # Refresh A *at the directory* — an L1 hit would not reach it
        # (directory LRU only sees directory activity, as in hardware).
        fabric.read(2, 0xA)
        fabric.read(1, 0xC)   # evicts B, the LRU
        live = live_lines(fabric.directory)
        assert 0xB not in live
        assert 0xA in live and 0xC in live

    def test_eviction_recalls_owner(self):
        fabric = bounded_fabric(capacity=1)
        fabric.write(1, 0xA)
        assert fabric.l1s[1].state(0xA) is L1State.M
        fabric.write(2, 0xB)  # capacity forces A out
        assert fabric.l1s[1].state(0xA) is L1State.I
        # The dirty data went to memory.
        assert any(m.mtype is MsgType.MEM_WRITE for m in fabric.log)

    def test_eviction_recalls_all_sharers(self):
        fabric = bounded_fabric(capacity=1)
        fabric.read(1, 0xA)
        fabric.read(2, 0xA)
        fabric.read(3, 0xB)  # evicts the shared line A
        assert fabric.l1s[1].state(0xA) is L1State.I
        assert fabric.l1s[2].state(0xA) is L1State.I

    def test_evicted_line_refetchable(self):
        fabric = bounded_fabric(capacity=1)
        fabric.write(1, 0xA)
        fabric.read(2, 0xB)
        fabric.read(1, 0xA)  # comes back from memory
        assert fabric.l1s[1].state(0xA) in (L1State.E, L1State.S)
        mem_reads = [m for m in fabric.log if m.mtype is MsgType.MEM_READ]
        assert len(mem_reads) >= 3  # A, B, A again

    def test_unbounded_by_default(self):
        fabric = Fabric(num_nodes=4)
        for line in range(0x20, 0x60):
            fabric.read(1, line)
        assert len(live_lines(fabric.directory)) == 0x40
        assert int(fabric.directory.stats.as_dict()["capacity_evictions"]) == 0

    def test_eviction_counter(self):
        fabric = bounded_fabric(capacity=2)
        for line in range(0x10, 0x16):
            fabric.read(1, line)
        assert int(fabric.directory.stats.as_dict()["capacity_evictions"]) == 4


class TestCapacityInCmp:
    def test_bounded_l2_creates_memory_traffic(self):
        from repro.cmp import CmpConfig, CmpSystem

        bounded = CmpSystem(
            CmpConfig(
                num_nodes=16,
                app="ba",
                network="l0",
                directory=DirectoryConfig(capacity_lines=64),
            )
        ).run(3000)
        unbounded = CmpSystem(
            CmpConfig(num_nodes=16, app="ba", network="l0")
        ).run(3000)
        assert bounded.directory["capacity_evictions"] > 0
        assert bounded.memory["reads"] > unbounded.memory["reads"]
