"""End-to-end protocol scenarios and coherence invariants.

Runs multiple L1 controllers against the directory through the in-order
fabric and checks the single-writer / multiple-reader invariant — a
lightweight model check of the Table 2 machine, including a
hypothesis-driven random walk over the operation space.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence.directory import DirState
from repro.coherence.l1 import AccessResult, L1State
from repro.coherence.messages import MsgType

from tests.coherence.conftest import Fabric

LINE = 0x7


def coherent(fabric, line):
    """The global single-writer / multiple-reader invariant."""
    states = [l1.state(line) for l1 in fabric.l1s]
    writers = sum(1 for s in states if s in (L1State.M, L1State.E))
    readers = sum(1 for s in states if s is L1State.S)
    if writers > 1:
        return False
    if writers == 1 and readers > 0:
        return False
    return True


class TestScenarios:
    def test_read_then_remote_write(self, fabric):
        assert fabric.read(1, LINE) is AccessResult.MISS
        assert fabric.l1s[1].state(LINE) is L1State.E
        fabric.write(2, LINE)
        assert fabric.l1s[1].state(LINE) is L1State.I  # invalidated
        assert fabric.l1s[2].state(LINE) is L1State.M
        assert coherent(fabric, LINE)

    def test_two_readers_share(self, fabric):
        fabric.read(1, LINE)
        fabric.read(2, LINE)
        # Node 1 held E; the directory downgraded it for node 2.
        assert fabric.l1s[1].state(LINE) is L1State.S
        assert fabric.l1s[2].state(LINE) is L1State.S
        assert fabric.directory.state(LINE) is DirState.DS
        assert coherent(fabric, LINE)

    def test_upgrade_after_sharing(self, fabric):
        fabric.read(1, LINE)
        fabric.read(2, LINE)
        fabric.write(1, LINE)
        assert fabric.l1s[1].state(LINE) is L1State.M
        assert fabric.l1s[2].state(LINE) is L1State.I
        assert len(fabric.sent(MsgType.REQ_UPG)) == 1
        assert coherent(fabric, LINE)

    def test_migratory_sharing(self, fabric):
        """M ownership migrates 1 -> 2 -> 3 with data forwarding."""
        for node in (1, 2, 3):
            fabric.write(node, LINE)
            assert fabric.l1s[node].state(LINE) is L1State.M
            assert coherent(fabric, LINE)
        # Two of the transfers forwarded dirty data from the old owner.
        assert len(fabric.sent(MsgType.INV_ACK_DATA)) == 2

    def test_read_after_remote_write_gets_downgrade(self, fabric):
        fabric.write(1, LINE)
        fabric.read(2, LINE)
        assert fabric.l1s[1].state(LINE) is L1State.S
        assert fabric.l1s[2].state(LINE) is L1State.S
        assert len(fabric.sent(MsgType.DWG_ACK_DATA)) == 1

    def test_memory_fetch_once_then_cached(self, fabric):
        fabric.read(1, LINE)
        fabric.read(2, LINE)
        fabric.read(3, LINE)
        assert len(fabric.sent(MsgType.MEM_READ)) == 1

    def test_l2_replacement_recalls_owner(self, fabric):
        fabric.write(1, LINE)
        fabric.directory.replace(LINE)
        fabric.pump()
        assert fabric.l1s[1].state(LINE) is L1State.I
        assert fabric.directory.state(LINE) is DirState.DI
        assert len(fabric.sent(MsgType.MEM_WRITE)) == 1  # dirty data saved

    def test_independent_lines_do_not_interact(self, fabric):
        fabric.write(1, 0x10)
        fabric.write(2, 0x20)
        assert fabric.l1s[1].state(0x10) is L1State.M
        assert fabric.l1s[2].state(0x20) is L1State.M

    def test_fill_callbacks_fire(self, fabric):
        fabric.read(1, LINE)
        fabric.write(2, LINE)
        assert (1, LINE) in fabric.fills
        assert (2, LINE) in fabric.fills


class TestRandomWalk:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),   # node
                st.integers(min_value=0, max_value=2),   # line index
                st.booleans(),                           # write?
            ),
            max_size=40,
        )
    )
    def test_invariant_holds_under_random_ops(self, ops):
        fabric = Fabric()
        lines = [0x100, 0x200, 0x300]
        for node, line_index, is_write in ops:
            line = lines[line_index]
            result = fabric.l1s[node].access(line, is_write)
            fabric.pump()
            assert result is not AccessResult.STALL  # fabric is in-order
            for check in lines:
                assert coherent(fabric, check), (
                    f"incoherent after {node} {'W' if is_write else 'R'} "
                    f"{check:#x}: {[l1.state(check) for l1 in fabric.l1s]}"
                )
        # Directory bookkeeping agrees with the L1s at the end.
        for line in lines:
            holders = {
                n
                for n, l1 in enumerate(fabric.l1s)
                if l1.state(line) is not L1State.I
            }
            entry = fabric.directory.entry(line)
            if holders:
                assert holders.issubset(entry.sharers)

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_final_writer_sees_exclusive(self, data):
        fabric = Fabric()
        sequence = data.draw(
            st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=10)
        )
        for node in sequence:
            fabric.write(node, LINE)
        last = sequence[-1]
        assert fabric.l1s[last].state(LINE) is L1State.M
        assert fabric.directory.entry(LINE).sharers == {last}
