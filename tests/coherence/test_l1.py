"""Table 2 upper half: the L1 cache controller state machine."""

import pytest

from repro.coherence.l1 import AccessResult, L1Config, L1Controller, L1State
from repro.coherence.messages import CoherenceMessage, MsgType

LINE = 0x40


def make_l1(log=None, config=None, fills=None):
    log = log if log is not None else []
    fills = fills if fills is not None else []
    return (
        L1Controller(
            node=1,
            send=lambda msg, delay: log.append((msg, delay)),
            home_of=lambda line: 0,
            config=config,
            on_fill=lambda line: fills.append(line),
        ),
        log,
        fills,
    )


def msg(mtype, line=LINE, sender=0, dest=1):
    return CoherenceMessage(mtype=mtype, line=line, sender=sender, dest=dest)


class TestStableStateAccesses:
    def test_read_miss_issues_req_sh(self):
        l1, log, _ = make_l1()
        assert l1.access(LINE, False) is AccessResult.MISS
        assert l1.state(LINE) is L1State.I_SD
        assert log[0][0].mtype is MsgType.REQ_SH

    def test_write_miss_issues_req_ex(self):
        l1, log, _ = make_l1()
        assert l1.access(LINE, True) is AccessResult.MISS
        assert l1.state(LINE) is L1State.I_MD
        assert log[0][0].mtype is MsgType.REQ_EX

    def test_read_hit_in_s(self):
        l1, log, _ = make_l1()
        l1.access(LINE, False)
        l1.handle(msg(MsgType.DATA_S))
        assert l1.access(LINE, False) is AccessResult.HIT
        assert l1.state(LINE) is L1State.S

    def test_write_in_s_upgrades(self):
        l1, log, _ = make_l1()
        l1.access(LINE, False)
        l1.handle(msg(MsgType.DATA_S))
        assert l1.access(LINE, True) is AccessResult.MISS
        assert l1.state(LINE) is L1State.S_MA
        assert log[-1][0].mtype is MsgType.REQ_UPG

    def test_write_in_e_silent_upgrade(self):
        l1, log, _ = make_l1()
        l1.access(LINE, False)
        l1.handle(msg(MsgType.DATA_E))
        before = len(log)
        assert l1.access(LINE, True) is AccessResult.HIT
        assert l1.state(LINE) is L1State.M
        assert len(log) == before  # no message for E -> M

    def test_m_read_and_write_hit(self):
        l1, _, _ = make_l1()
        l1.access(LINE, True)
        l1.handle(msg(MsgType.DATA_M))
        assert l1.access(LINE, False) is AccessResult.HIT
        assert l1.access(LINE, True) is AccessResult.HIT
        assert l1.state(LINE) is L1State.M


class TestTransientStalls:
    @pytest.mark.parametrize("is_write", [False, True])
    def test_z_rows_stall(self, is_write):
        l1, _, _ = make_l1()
        l1.access(LINE, False)  # I -> I.SD
        assert l1.access(LINE, is_write) is AccessResult.STALL

    def test_s_ma_stalls_too(self):
        l1, _, _ = make_l1()
        l1.access(LINE, False)
        l1.handle(msg(MsgType.DATA_S))
        l1.access(LINE, True)  # S -> S.MA
        assert l1.access(LINE, False) is AccessResult.STALL


class TestDataArrival:
    def test_data_s_fills_shared(self):
        l1, _, fills = make_l1()
        l1.access(LINE, False)
        l1.handle(msg(MsgType.DATA_S))
        assert l1.state(LINE) is L1State.S
        assert fills == [LINE]

    def test_data_e_fills_exclusive(self):
        l1, _, _ = make_l1()
        l1.access(LINE, False)
        l1.handle(msg(MsgType.DATA_E))
        assert l1.state(LINE) is L1State.E

    def test_data_m_fills_modified(self):
        l1, _, _ = make_l1()
        l1.access(LINE, True)
        l1.handle(msg(MsgType.DATA_M))
        assert l1.state(LINE) is L1State.M

    def test_data_m_for_read_miss_is_error(self):
        l1, _, _ = make_l1()
        l1.access(LINE, False)
        with pytest.raises(RuntimeError):
            l1.handle(msg(MsgType.DATA_M))

    def test_unsolicited_data_is_error(self):
        l1, _, _ = make_l1()
        with pytest.raises(RuntimeError):
            l1.handle(msg(MsgType.DATA_S))

    def test_exc_ack_completes_upgrade(self):
        l1, _, fills = make_l1()
        l1.access(LINE, False)
        l1.handle(msg(MsgType.DATA_S))
        l1.access(LINE, True)
        l1.handle(msg(MsgType.EXC_ACK))
        assert l1.state(LINE) is L1State.M
        assert fills == [LINE, LINE]

    def test_exc_ack_outside_s_ma_is_error(self):
        l1, _, _ = make_l1()
        with pytest.raises(RuntimeError):
            l1.handle(msg(MsgType.EXC_ACK))


class TestInvalidation:
    def _to_state(self, l1, state):
        if state in (L1State.S, L1State.E):
            l1.access(LINE, False)
            l1.handle(msg(MsgType.DATA_S if state is L1State.S else MsgType.DATA_E))
        elif state is L1State.M:
            l1.access(LINE, True)
            l1.handle(msg(MsgType.DATA_M))
        elif state is L1State.I_SD:
            l1.access(LINE, False)
        elif state is L1State.I_MD:
            l1.access(LINE, True)
        elif state is L1State.S_MA:
            l1.access(LINE, False)
            l1.handle(msg(MsgType.DATA_S))
            l1.access(LINE, True)

    @pytest.mark.parametrize(
        "state,expected_after",
        [
            (L1State.I, L1State.I),
            (L1State.S, L1State.I),
            (L1State.E, L1State.I),
            (L1State.I_SD, L1State.I_SD),
            (L1State.I_MD, L1State.I_MD),
            (L1State.S_MA, L1State.I_MD),
        ],
    )
    def test_inv_transitions_and_plain_ack(self, state, expected_after):
        l1, log, _ = make_l1()
        self._to_state(l1, state)
        log.clear()
        l1.handle(msg(MsgType.INV))
        assert l1.state(LINE) is expected_after
        acks = [m for m, _d in log if m.mtype is MsgType.INV_ACK]
        assert len(acks) == 1

    def test_inv_in_m_acks_with_data(self):
        l1, log, _ = make_l1()
        self._to_state(l1, L1State.M)
        log.clear()
        l1.handle(msg(MsgType.INV))
        assert l1.state(LINE) is L1State.I
        assert log[0][0].mtype is MsgType.INV_ACK_DATA

    def test_confirmation_ack_suppression(self):
        l1, log, _ = make_l1()
        self._to_state(l1, L1State.S)
        log.clear()
        inv = msg(MsgType.INV)
        inv.ack_via_confirmation = True
        l1.handle(inv)
        assert log == []  # the network confirmation is the ack
        assert int(l1.stats.as_dict()["acks_suppressed"]) == 1

    def test_e_state_never_suppresses(self):
        # The directory treats an E owner as DM and needs the explicit ack.
        l1, log, _ = make_l1()
        self._to_state(l1, L1State.E)
        log.clear()
        inv = msg(MsgType.INV)
        inv.ack_via_confirmation = True
        l1.handle(inv)
        assert log[0][0].mtype is MsgType.INV_ACK


class TestDowngrade:
    def test_dwg_in_m_acks_with_data(self):
        l1, log, _ = make_l1()
        l1.access(LINE, True)
        l1.handle(msg(MsgType.DATA_M))
        log.clear()
        l1.handle(msg(MsgType.DWG))
        assert l1.state(LINE) is L1State.S
        assert log[0][0].mtype is MsgType.DWG_ACK_DATA

    def test_dwg_in_e_plain_ack(self):
        l1, log, _ = make_l1()
        l1.access(LINE, False)
        l1.handle(msg(MsgType.DATA_E))
        log.clear()
        l1.handle(msg(MsgType.DWG))
        assert l1.state(LINE) is L1State.S
        assert log[0][0].mtype is MsgType.DWG_ACK

    def test_dwg_in_i_acks_and_stays(self):
        l1, log, _ = make_l1()
        l1.handle(msg(MsgType.DWG))
        assert l1.state(LINE) is L1State.I
        assert log[0][0].mtype is MsgType.DWG_ACK

    def test_dwg_in_s_is_error(self):
        l1, _, _ = make_l1()
        l1.access(LINE, False)
        l1.handle(msg(MsgType.DATA_S))
        with pytest.raises(RuntimeError):
            l1.handle(msg(MsgType.DWG))


class TestRetry:
    @pytest.mark.parametrize(
        "setup_write,expected",
        [(False, MsgType.REQ_SH), (True, MsgType.REQ_EX)],
    )
    def test_retry_resends_request(self, setup_write, expected):
        l1, log, _ = make_l1()
        l1.access(LINE, setup_write)
        log.clear()
        l1.handle(msg(MsgType.RETRY))
        resent, delay = log[0]
        assert resent.mtype is expected
        assert delay == l1.config.retry_delay

    def test_retry_for_upgrade(self):
        l1, log, _ = make_l1()
        l1.access(LINE, False)
        l1.handle(msg(MsgType.DATA_S))
        l1.access(LINE, True)
        log.clear()
        l1.handle(msg(MsgType.RETRY))
        assert log[0][0].mtype is MsgType.REQ_UPG

    def test_retry_in_stable_state_ignored(self):
        l1, log, _ = make_l1()
        l1.handle(msg(MsgType.RETRY))
        assert log == []


class TestEviction:
    def test_m_eviction_writes_back(self):
        config = L1Config(capacity_bytes=64, line_bytes=32, ways=1)  # 2 sets
        l1, log, _ = make_l1(config=config)
        l1.access(0, True)
        l1.handle(msg(MsgType.DATA_M, line=0))
        log.clear()
        # Line 2 maps to set 0 as well; its fill evicts the dirty line 0.
        l1.access(2, False)
        l1.handle(msg(MsgType.DATA_E, line=2))
        writebacks = [m for m, _d in log if m.mtype is MsgType.WRITEBACK]
        assert len(writebacks) == 1 and writebacks[0].line == 0
        assert l1.state(0) is L1State.I

    def test_clean_eviction_is_silent(self):
        config = L1Config(capacity_bytes=64, line_bytes=32, ways=1)
        l1, log, _ = make_l1(config=config)
        l1.access(0, False)
        l1.handle(msg(MsgType.DATA_S, line=0))
        log.clear()
        l1.access(2, False)
        l1.handle(msg(MsgType.DATA_E, line=2))
        assert all(m.mtype is not MsgType.WRITEBACK for m, _d in log)

    def test_split_writeback_announces_first(self):
        config = L1Config(
            capacity_bytes=64, line_bytes=32, ways=1, split_writeback=True
        )
        l1, log, _ = make_l1(config=config)
        l1.access(0, True)
        l1.handle(msg(MsgType.DATA_M, line=0))
        log.clear()
        l1.access(2, False)
        l1.handle(msg(MsgType.DATA_E, line=2))
        kinds = [m.mtype for m, _d in log]
        announce = kinds.index(MsgType.WB_ANNOUNCE)
        wb = kinds.index(MsgType.WRITEBACK)
        assert announce < wb
        assert log[wb][1] == config.wb_announce_lead  # data delayed
