"""Model check under permitted message reorderings.

The real interconnects guarantee only *per-(sender, line)* FIFO order
(§4.4); messages about different lines or from different senders may
arrive in any interleaving.  This harness delivers pending messages in
a random order constrained exactly by that guarantee and checks that
the Table 2 machines stay coherent, make progress and quiesce.
"""

from collections import deque

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence.directory import DirectoryConfig, DirectoryController
from repro.coherence.l1 import AccessResult, L1Config, L1Controller, L1State
from repro.coherence.messages import CoherenceMessage, MsgType

LINES = [0x100, 0x200, 0x300]


class ReorderingFabric:
    """Delivers messages in random order, FIFO per (sender, line)."""

    def __init__(self, num_nodes=4, seed=0):
        self.num_nodes = num_nodes
        self.rng = np.random.default_rng(seed)
        # (sender, line) -> FIFO of undelivered messages.
        self.channels: dict[tuple[int, int], deque] = {}
        self.directory = DirectoryController(
            node=0,
            send=self._sender(0),
            memory_node_of=lambda line: 0,
            config=DirectoryConfig(l2_latency=0),
        )
        self.l1s = [
            L1Controller(
                node=n,
                send=self._sender(n),
                home_of=lambda line: 0,
                config=L1Config(),
            )
            for n in range(num_nodes)
        ]

    def _sender(self, node):
        def send(msg: CoherenceMessage, delay: int) -> None:
            self.channels.setdefault((node, msg.line), deque()).append(msg)

        return send

    def pending(self) -> list[tuple[int, int]]:
        return [key for key, queue in self.channels.items() if queue]

    def step(self) -> bool:
        """Deliver the head of one randomly chosen channel."""
        ready = self.pending()
        if not ready:
            return False
        key = ready[int(self.rng.integers(0, len(ready)))]
        msg = self.channels[key].popleft()
        self.dispatch(msg)
        return True

    def dispatch(self, msg: CoherenceMessage) -> None:
        if msg.mtype is MsgType.MEM_READ:
            self._sender(0)(
                CoherenceMessage(
                    mtype=MsgType.MEM_ACK, line=msg.line, sender=0,
                    dest=0, requester=msg.requester,
                ),
                0,
            )
            return
        if msg.mtype is MsgType.MEM_WRITE:
            return
        if msg.mtype in (
            MsgType.REQ_SH, MsgType.REQ_EX, MsgType.REQ_UPG,
            MsgType.WRITEBACK, MsgType.WB_ANNOUNCE, MsgType.INV_ACK,
            MsgType.INV_ACK_DATA, MsgType.DWG_ACK, MsgType.DWG_ACK_DATA,
            MsgType.MEM_ACK,
        ):
            self.directory.handle(msg)
        else:
            self.l1s[msg.dest].handle(msg)

    def settle(self, limit=50_000) -> None:
        steps = 0
        while self.step():
            steps += 1
            if steps > limit:
                raise RuntimeError("protocol did not quiesce under reordering")

    def coherent(self, line: int) -> bool:
        states = [l1.state(line) for l1 in self.l1s]
        writers = sum(1 for s in states if s in (L1State.M, L1State.E))
        readers = sum(1 for s in states if s is L1State.S)
        return writers <= 1 and not (writers == 1 and readers > 0)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),   # node
            st.integers(min_value=0, max_value=2),   # line index
            st.booleans(),                           # write?
            st.integers(min_value=0, max_value=4),   # settle steps first
        ),
        max_size=30,
    ),
)
def test_invariant_under_arbitrary_interleavings(seed, ops):
    """Issue accesses while earlier traffic is still in flight, deliver
    everything in random (per-channel-FIFO) order, and demand coherence
    at every quiescent point."""
    fabric = ReorderingFabric(seed=seed)
    for node, line_index, is_write, pre_steps in ops:
        for _ in range(pre_steps):
            fabric.step()
        line = LINES[line_index]
        if fabric.l1s[node].state(line).is_transient:
            continue  # the core would stall; skip like the real core
        fabric.l1s[node].access(line, is_write)
    fabric.settle()
    for line in LINES:
        assert fabric.coherent(line), [
            l1.state(line).name for l1 in fabric.l1s
        ]
        # No transient wedged anywhere.
        for l1 in fabric.l1s:
            assert not l1.state(line).is_transient
        assert not fabric.directory.state(line).is_transient


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_concurrent_writers_settle_to_one_owner(seed):
    """All four nodes write the same line concurrently; deliveries are
    randomly interleaved; exactly one owner must remain."""
    fabric = ReorderingFabric(seed=seed)
    line = LINES[0]
    for node in range(4):
        fabric.l1s[node].access(line, is_write=True)
    fabric.settle()
    owners = [
        n for n, l1 in enumerate(fabric.l1s) if l1.state(line) is L1State.M
    ]
    assert len(owners) == 1
    assert fabric.directory.entry(line).sharers == set(owners)


def test_eviction_races_settle():
    """Writebacks crossing recalls under reordering (the DM.DSA/DMA/DIA
    rows) must still converge."""
    fabric = ReorderingFabric(seed=5)
    line = LINES[0]
    # Node 1 owns the line dirty.
    fabric.l1s[1].access(line, is_write=True)
    fabric.settle()
    # Force node 1's writeback while node 2's read is racing toward the
    # directory (delivered in some interleaved order by settle()).
    fabric.l1s[1]._evict(line)
    fabric.l1s[2].access(line, is_write=False)
    fabric.settle()
    assert fabric.coherent(line)
    assert fabric.l1s[2].state(line) in (L1State.S, L1State.E)
