"""Table 2 lower half: the L2/directory controller state machine."""

import pytest

from repro.coherence.directory import (
    DirectoryConfig,
    DirectoryController,
    DirState,
)
from repro.coherence.messages import CoherenceMessage, MsgType

LINE = 0x99


def make_dir(config=None):
    log = []
    directory = DirectoryController(
        node=0,
        send=lambda msg, delay: log.append(msg),
        memory_node_of=lambda line: 7,
        config=config or DirectoryConfig(l2_latency=0),
    )
    return directory, log


def req(mtype, sender, line=LINE):
    return CoherenceMessage(
        mtype=mtype, line=line, sender=sender, dest=0, requester=sender
    )


def mem_ack(line=LINE):
    return CoherenceMessage(
        mtype=MsgType.MEM_ACK, line=line, sender=7, dest=0, requester=0
    )


class TestDiState:
    def test_req_sh_fetches_memory(self):
        d, log = make_dir()
        d.handle(req(MsgType.REQ_SH, 1))
        assert d.state(LINE) is DirState.DI_DSD
        assert log[0].mtype is MsgType.MEM_READ
        assert log[0].dest == 7

    def test_mem_ack_replies_exclusive(self):
        d, log = make_dir()
        d.handle(req(MsgType.REQ_SH, 1))
        d.handle(mem_ack())
        assert log[-1].mtype is MsgType.DATA_E
        assert log[-1].dest == 1
        assert d.state(LINE) is DirState.DM
        assert d.entry(LINE).sharers == {1}

    def test_req_ex_path(self):
        d, log = make_dir()
        d.handle(req(MsgType.REQ_EX, 2))
        assert d.state(LINE) is DirState.DI_DMD
        d.handle(mem_ack())
        assert log[-1].mtype is MsgType.DATA_M

    def test_writeback_in_di_is_error(self):
        d, _ = make_dir()
        with pytest.raises(RuntimeError):
            d.handle(req(MsgType.WRITEBACK, 1))


class TestDvState:
    def _to_dv(self, d):
        entry = d.entry(LINE)
        entry.state = DirState.DV

    def test_req_sh_grants_exclusive(self):
        d, log = make_dir()
        self._to_dv(d)
        d.handle(req(MsgType.REQ_SH, 3))
        assert log[-1].mtype is MsgType.DATA_E
        assert d.state(LINE) is DirState.DM

    def test_req_ex_grants_modified(self):
        d, log = make_dir()
        self._to_dv(d)
        d.handle(req(MsgType.REQ_EX, 3))
        assert log[-1].mtype is MsgType.DATA_M

    def test_replace_evicts(self):
        d, log = make_dir()
        self._to_dv(d)
        d.replace(LINE)
        assert d.state(LINE) is DirState.DI
        assert not any(m.mtype is MsgType.MEM_WRITE for m in log)  # clean

    def test_replace_dirty_writes_memory(self):
        d, log = make_dir()
        self._to_dv(d)
        d.entry(LINE).dirty = True
        d.replace(LINE)
        assert any(m.mtype is MsgType.MEM_WRITE for m in log)


class TestDsState:
    def _to_ds(self, d, sharers):
        entry = d.entry(LINE)
        entry.state = DirState.DS
        entry.sharers = set(sharers)

    def test_req_sh_adds_sharer(self):
        d, log = make_dir()
        self._to_ds(d, {1})
        d.handle(req(MsgType.REQ_SH, 2))
        assert log[-1].mtype is MsgType.DATA_S
        assert d.entry(LINE).sharers == {1, 2}
        assert d.state(LINE) is DirState.DS

    def test_req_ex_invalidates_all_sharers(self):
        d, log = make_dir()
        self._to_ds(d, {1, 2, 3})
        d.handle(req(MsgType.REQ_EX, 4))
        invs = [m for m in log if m.mtype is MsgType.INV]
        assert sorted(m.dest for m in invs) == [1, 2, 3]
        assert d.state(LINE) is DirState.DS_DMDA

    def test_acks_then_data_m(self):
        d, log = make_dir()
        self._to_ds(d, {1, 2})
        d.handle(req(MsgType.REQ_EX, 4))
        d.handle(req(MsgType.INV_ACK, 1))
        assert d.state(LINE) is DirState.DS_DMDA  # one ack outstanding
        d.handle(req(MsgType.INV_ACK, 2))
        assert log[-1].mtype is MsgType.DATA_M
        assert log[-1].dest == 4
        assert d.state(LINE) is DirState.DM
        assert d.entry(LINE).sharers == {4}

    def test_upgrade_waits_acks_then_exc_ack(self):
        d, log = make_dir()
        self._to_ds(d, {1, 2})
        d.handle(req(MsgType.REQ_UPG, 1))
        assert d.state(LINE) is DirState.DS_DMA
        d.handle(req(MsgType.INV_ACK, 2))
        assert log[-1].mtype is MsgType.EXC_ACK
        assert log[-1].dest == 1
        assert d.state(LINE) is DirState.DM

    def test_sole_sharer_upgrade_immediate(self):
        d, log = make_dir()
        self._to_ds(d, {1})
        d.handle(req(MsgType.REQ_UPG, 1))
        assert log[-1].mtype is MsgType.EXC_ACK
        assert d.state(LINE) is DirState.DM

    def test_upgrade_from_nonsharer_reinterpreted(self):
        """Table 2's (Req(Ex)) annotation: the upgrader lost its line."""
        d, log = make_dir()
        self._to_ds(d, {1, 2})
        d.handle(req(MsgType.REQ_UPG, 9))
        invs = [m for m in log if m.mtype is MsgType.INV]
        assert sorted(m.dest for m in invs) == [1, 2]
        assert d.state(LINE) is DirState.DS_DMDA  # data path, not ack path

    def test_replace_invalidates_then_evicts(self):
        d, log = make_dir()
        self._to_ds(d, {1, 2})
        d.replace(LINE)
        assert d.state(LINE) is DirState.DS_DIA
        d.handle(req(MsgType.INV_ACK, 1))
        d.handle(req(MsgType.INV_ACK, 2))
        assert d.state(LINE) is DirState.DI


class TestDmState:
    def _to_dm(self, d, owner=1):
        entry = d.entry(LINE)
        entry.state = DirState.DM
        entry.sharers = {owner}

    def test_req_sh_downgrades_owner(self):
        d, log = make_dir()
        self._to_dm(d)
        d.handle(req(MsgType.REQ_SH, 2))
        assert log[-1].mtype is MsgType.DWG
        assert log[-1].dest == 1
        assert d.state(LINE) is DirState.DM_DSD

    def test_dwg_ack_data_forwards_shared(self):
        d, log = make_dir()
        self._to_dm(d)
        d.handle(req(MsgType.REQ_SH, 2))
        d.handle(req(MsgType.DWG_ACK_DATA, 1))
        assert log[-1].mtype is MsgType.DATA_S
        assert log[-1].dest == 2
        assert d.state(LINE) is DirState.DS
        assert d.entry(LINE).sharers == {1, 2}
        assert d.entry(LINE).dirty  # owner's data was modified

    def test_dwg_ack_clean_serves_from_l2(self):
        d, log = make_dir()
        self._to_dm(d)
        d.handle(req(MsgType.REQ_SH, 2))
        d.handle(req(MsgType.DWG_ACK, 1))
        assert log[-1].mtype is MsgType.DATA_S
        assert d.state(LINE) is DirState.DS

    def test_req_ex_invalidates_owner(self):
        d, log = make_dir()
        self._to_dm(d)
        d.handle(req(MsgType.REQ_EX, 3))
        assert log[-1].mtype is MsgType.INV
        assert d.state(LINE) is DirState.DM_DMD
        d.handle(req(MsgType.INV_ACK_DATA, 1))
        assert log[-1].mtype is MsgType.DATA_M
        assert d.entry(LINE).sharers == {3}
        assert d.state(LINE) is DirState.DM

    def test_voluntary_writeback(self):
        d, _ = make_dir()
        self._to_dm(d)
        d.handle(req(MsgType.WRITEBACK, 1))
        assert d.state(LINE) is DirState.DV
        assert d.entry(LINE).dirty
        assert d.entry(LINE).sharers == set()

    def test_writeback_races_downgrade(self):
        """Table 2: DM.DSD + WriteBack -> DM.DSA; DwgAck -> Data(E)."""
        d, log = make_dir()
        self._to_dm(d)
        d.handle(req(MsgType.REQ_SH, 2))
        d.handle(req(MsgType.WRITEBACK, 1))  # owner evicted mid-flight
        assert d.state(LINE) is DirState.DM_DSA
        d.handle(req(MsgType.DWG_ACK, 1))  # the I-state L1 still acks
        assert log[-1].mtype is MsgType.DATA_E  # requester now sole holder
        assert d.state(LINE) is DirState.DM
        assert d.entry(LINE).sharers == {2}

    def test_writeback_races_invalidate(self):
        """Table 2: DM.DMD + WriteBack -> DM.DMA; InvAck -> Data(M)."""
        d, log = make_dir()
        self._to_dm(d)
        d.handle(req(MsgType.REQ_EX, 3))
        d.handle(req(MsgType.WRITEBACK, 1))
        assert d.state(LINE) is DirState.DM_DMA
        d.handle(req(MsgType.INV_ACK, 1))
        assert log[-1].mtype is MsgType.DATA_M

    def test_writeback_races_eviction(self):
        """Table 2: DM.DID + WriteBack -> DS.DIA; InvAck -> evict."""
        d, _ = make_dir()
        self._to_dm(d)
        d.replace(LINE)
        assert d.state(LINE) is DirState.DM_DID
        d.handle(req(MsgType.WRITEBACK, 1))
        assert d.state(LINE) is DirState.DS_DIA
        d.handle(req(MsgType.INV_ACK, 1))
        assert d.state(LINE) is DirState.DI

    def test_eviction_with_dirty_ack(self):
        d, log = make_dir()
        self._to_dm(d)
        d.replace(LINE)
        d.handle(req(MsgType.INV_ACK_DATA, 1))
        assert d.state(LINE) is DirState.DI
        assert any(m.mtype is MsgType.MEM_WRITE for m in log)


class TestQueuingAndNacks:
    def test_requests_queue_during_transients(self):
        d, log = make_dir()
        d.handle(req(MsgType.REQ_SH, 1))  # DI -> DI.DSD
        d.handle(req(MsgType.REQ_SH, 2))  # must queue ("z")
        assert len(d.entry(LINE).queued) == 1
        d.handle(mem_ack())
        # Drain: node 1 got Data(E); node 2's queued request now runs and
        # downgrades node 1.
        assert any(m.mtype is MsgType.DWG and m.dest == 1 for m in log)

    def test_queued_upgrade_reinterpreted_after_invalidation(self):
        d, log = make_dir()
        entry = d.entry(LINE)
        entry.state = DirState.DS
        entry.sharers = {1, 2}
        d.handle(req(MsgType.REQ_EX, 3))       # invalidates 1 and 2
        d.handle(req(MsgType.REQ_UPG, 1))      # queued; 1 loses its line
        d.handle(req(MsgType.INV_ACK, 1))
        d.handle(req(MsgType.INV_ACK, 2))      # 3 becomes owner; drain
        assert int(d.stats.as_dict()["reinterpreted"]) == 1
        # Node 1's "upgrade" now behaves as Req(Ex): invalidate owner 3.
        assert any(m.mtype is MsgType.INV and m.dest == 3 for m in log)

    def test_line_queue_overflow_nacks(self):
        d, log = make_dir(DirectoryConfig(l2_latency=0, line_queue_depth=1))
        d.handle(req(MsgType.REQ_SH, 1))
        d.handle(req(MsgType.REQ_SH, 2))  # queued
        d.handle(req(MsgType.REQ_SH, 3))  # NACKed
        retries = [m for m in log if m.mtype is MsgType.RETRY]
        assert len(retries) == 1 and retries[0].dest == 3

    def test_global_queue_overflow_nacks(self):
        d, log = make_dir(
            DirectoryConfig(l2_latency=0, request_queue_depth=1)
        )
        d.handle(req(MsgType.REQ_SH, 1, line=0x1))
        d.handle(req(MsgType.REQ_SH, 2, line=0x1))  # queued (global = 1)
        d.handle(req(MsgType.REQ_SH, 1, line=0x2))
        d.handle(req(MsgType.REQ_SH, 3, line=0x2))  # NACKed
        retries = [m for m in log if m.mtype is MsgType.RETRY]
        assert len(retries) == 1 and retries[0].dest == 3

    def test_wb_announce_is_informational(self):
        d, log = make_dir()
        d.handle(req(MsgType.WB_ANNOUNCE, 1))
        assert log == []
        assert d.state(LINE) is DirState.DI


class TestConfirmationAckFlag:
    def test_remote_sharer_invs_flagged(self):
        d, log = make_dir(DirectoryConfig(l2_latency=0, confirmation_ack=True))
        entry = d.entry(LINE)
        entry.state = DirState.DS
        entry.sharers = {1, 2}
        d.handle(req(MsgType.REQ_EX, 3))
        invs = [m for m in log if m.mtype is MsgType.INV]
        assert all(m.ack_via_confirmation for m in invs)

    def test_local_sharer_inv_not_flagged(self):
        d, log = make_dir(DirectoryConfig(l2_latency=0, confirmation_ack=True))
        entry = d.entry(LINE)
        entry.state = DirState.DS
        entry.sharers = {0, 2}  # node 0 is the directory's own node
        d.handle(req(MsgType.REQ_EX, 3))
        by_dest = {m.dest: m for m in log if m.mtype is MsgType.INV}
        assert not by_dest[0].ack_via_confirmation
        assert by_dest[2].ack_via_confirmation

    def test_owner_invs_never_flagged(self):
        d, log = make_dir(DirectoryConfig(l2_latency=0, confirmation_ack=True))
        entry = d.entry(LINE)
        entry.state = DirState.DM
        entry.sharers = {1}
        d.handle(req(MsgType.REQ_EX, 3))
        invs = [m for m in log if m.mtype is MsgType.INV]
        assert not invs[0].ack_via_confirmation
