"""Shared harness: L1s + directory + memory wired by an in-order bus.

The ``Fabric`` delivers messages FIFO (per-line point-to-point order is
automatic), letting protocol tests drive multi-node scenarios without
the full CMP machinery.  Memory is a zero-latency stub that answers
MEM_READ with MEM_ACK.
"""

from collections import deque

import pytest

from repro.coherence.directory import DirectoryConfig, DirectoryController
from repro.coherence.l1 import L1Config, L1Controller
from repro.coherence.messages import CoherenceMessage, MsgType


class Fabric:
    """N L1 controllers, one directory at node 0, instant memory."""

    def __init__(self, num_nodes=4, l1_config=None, dir_config=None):
        self.num_nodes = num_nodes
        self.queue = deque()
        self.log = []          # every message ever sent
        self.fills = []        # (node, line) fill notifications
        self.directory = DirectoryController(
            node=0,
            send=self._sender(0),
            memory_node_of=lambda line: 0,
            config=dir_config or DirectoryConfig(l2_latency=0),
        )
        self.l1s = [
            L1Controller(
                node=n,
                send=self._sender(n),
                home_of=lambda line: 0,
                config=l1_config or L1Config(),
                on_fill=lambda line, n=n: self.fills.append((n, line)),
            )
            for n in range(num_nodes)
        ]

    def _sender(self, node):
        def send(msg: CoherenceMessage, delay: int) -> None:
            self.log.append(msg)
            self.queue.append(msg)

        return send

    def pump(self, limit=10_000):
        """Deliver queued messages until quiescent."""
        steps = 0
        while self.queue:
            steps += 1
            if steps > limit:
                raise RuntimeError("fabric did not quiesce")
            msg = self.queue.popleft()
            self.dispatch(msg)

    def dispatch(self, msg: CoherenceMessage) -> None:
        if msg.mtype is MsgType.MEM_READ:
            self.queue.append(
                CoherenceMessage(
                    mtype=MsgType.MEM_ACK,
                    line=msg.line,
                    sender=msg.dest,
                    dest=msg.sender,
                    requester=msg.requester,
                )
            )
            return
        if msg.mtype is MsgType.MEM_WRITE:
            return
        if msg.mtype in (
            MsgType.REQ_SH, MsgType.REQ_EX, MsgType.REQ_UPG,
            MsgType.WRITEBACK, MsgType.WB_ANNOUNCE,
            MsgType.INV_ACK, MsgType.INV_ACK_DATA,
            MsgType.DWG_ACK, MsgType.DWG_ACK_DATA, MsgType.MEM_ACK,
        ):
            self.directory.handle(msg)
            return
        self.l1s[msg.dest].handle(msg)

    # -- conveniences -----------------------------------------------------

    def read(self, node, line):
        result = self.l1s[node].access(line, is_write=False)
        self.pump()
        return result

    def write(self, node, line):
        result = self.l1s[node].access(line, is_write=True)
        self.pump()
        return result

    def sent(self, mtype):
        return [m for m in self.log if m.mtype is mtype]


@pytest.fixture
def fabric():
    return Fabric()
