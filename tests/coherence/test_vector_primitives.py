"""Unit tests for the columnar coherence engine's building blocks.

Where ``test_vector_equivalence.py`` proves whole runs bit-exact, this
suite takes the primitives apart: the fused per-``MsgType`` kernels are
driven one message at a time against the scalar reference handlers on
identically planted protocol state, the fast constructors
(``make_message`` / ``make_packet``) are compared field-for-field with
the dataclass originals, the precomputed ``pkt_*`` classification flags
are re-derived from first principles, and the mailbox/next_event/audit
machinery is exercised directly.
"""

import random

import pytest

from repro.cmp import CmpConfig, CmpSystem
from repro.coherence.directory import DirState
from repro.coherence.l1 import L1State
from repro.coherence.messages import CoherenceMessage, MsgType, make_message
from repro.net.packet import LaneKind, Packet, make_packet
from repro.obs.trace import tracing

NUM_NODES = 16


# ---------------------------------------------------------------------------
# harness: twin systems, one per engine, with identical planted state
# ---------------------------------------------------------------------------


def make_pair(**kwargs):
    """A (vectorized, reference) pair of otherwise identical systems.

    Cold-started so every directory entry and L1 line begins at
    I/DI — scenarios plant exactly the state they mean to test.
    """
    return [
        CmpSystem(CmpConfig(
            app="oc", network="fsoi", num_nodes=NUM_NODES, seed=9,
            warm_start=False, vectorized=vectorized, **kwargs,
        ))
        for vectorized in (True, False)
    ]


def plant(system, home, line, state, sharers=(), dirty=False):
    """Install one stable directory entry plus matching L1 lines."""
    ent = system.directories[home].entry(line)
    ent.state = state
    ent.sharers = set(sharers)
    ent.dirty = dirty
    l1_state = L1State.M if state is DirState.DM else L1State.S
    for node in sharers:
        l1 = system.l1s[node]
        l1.array.insert(line)
        l1._states[line] = l1_state


def deliver(system, src, msg):
    """Feed one message through the system's delivery entry point.

    The vectorized side goes mailbox -> drain (the wiring the networks
    use); the reference side dispatches inline, exactly as the naive
    delivery callback would.
    """
    packet = system._packetize(src, msg)
    engine = system._coherence
    if engine is not None:
        engine.on_packet(packet)
        engine.drain()
    else:
        system._on_packet(packet)


def snapshot(system):
    """Every uid-free observable the two paths must agree on.

    Message/packet uids are excluded on purpose: the module-level uid
    counters are shared by both twin systems, so absolute values
    interleave — the equivalence suite covers uid streams by running
    each arm in the same allocation order instead.
    """
    return {
        "dirs": [
            {
                line: (
                    ent.state, tuple(sorted(ent.sharers)), ent.dirty,
                    ent.requester, ent.acks_needed, len(ent.queued),
                )
                for line, ent in directory._entries.items()
            }
            for directory in system.directories
        ],
        "l1s": [dict(l1._states) for l1 in system.l1s],
        "dir_counts": [
            {name: c.value for name, c in d._count.items()}
            for d in system.directories
        ],
        "l1_counts": [
            {name: c.value for name, c in l1._count.items()}
            for l1 in system.l1s
        ],
        # values are either the empty-tuple sentinel or a deque of
        # queued (msg, delay) pairs; compare keys and depths only
        "pending": sorted(
            (key, len(q)) for key, q in system._line_pending.items()
        ),
        "calendar": [(cycle, seq) for cycle, seq, _ in system._calendar._heap],
        "net_sent": system.network.stats.sent.value,
    }


def assert_twins_match(vec, ref):
    snap_vec, snap_ref = snapshot(vec), snapshot(ref)
    assert snap_vec == snap_ref
    vec._coherence.audit()


# ---------------------------------------------------------------------------
# fused kernels vs scalar handlers
# ---------------------------------------------------------------------------


class TestKernelsMatchHandlers:
    def _home_line(self, rng):
        line = rng.randrange(NUM_NODES, 1600)
        return line % NUM_NODES, line

    @pytest.mark.parametrize("mtype", (MsgType.REQ_SH, MsgType.REQ_EX))
    @pytest.mark.parametrize(
        "state", (DirState.DI, DirState.DV, DirState.DS, DirState.DM)
    )
    def test_requests_against_stable_states(self, mtype, state):
        rng = random.Random(hash((mtype.name, state.name)) & 0xFFFF)
        vec, ref = make_pair()
        for _ in range(8):
            home, line = self._home_line(rng)
            requester = (home + rng.randrange(1, NUM_NODES)) % NUM_NODES
            if state is DirState.DM:
                sharers = ((home + requester + 1) % NUM_NODES,)
                if sharers[0] == requester:
                    sharers = ((sharers[0] + 1) % NUM_NODES,)
            elif state is DirState.DS:
                sharers = tuple(
                    n for n in rng.sample(range(NUM_NODES), 3)
                    if n != requester
                ) or ((requester + 1) % NUM_NODES,)
            else:
                sharers = ()
            for system in (vec, ref):
                plant(system, home, line, state, sharers)
                deliver(system, requester, CoherenceMessage(
                    mtype=mtype, line=line, sender=requester,
                    dest=home, requester=requester,
                ))
            assert_twins_match(vec, ref)

    def test_upgrade_from_a_sharer(self):
        vec, ref = make_pair()
        home, line = 3, 3 + NUM_NODES
        requester, other = 5, 9
        for system in (vec, ref):
            plant(system, home, line, DirState.DS, (requester, other))
            deliver(system, requester, CoherenceMessage(
                mtype=MsgType.REQ_UPG, line=line, sender=requester,
                dest=home, requester=requester,
            ))
        assert_twins_match(vec, ref)

    def test_invalidate_and_downgrade_at_the_l1(self):
        vec, ref = make_pair()
        for scenario, (mtype, l1_state, dir_state) in enumerate((
            (MsgType.INV, L1State.S, DirState.DS),
            (MsgType.INV, L1State.M, DirState.DM),
            (MsgType.DWG, L1State.M, DirState.DM),
        )):
            home = 2
            target = 7
            line = home + NUM_NODES * (scenario + 1)
            for system in (vec, ref):
                plant(system, home, line, dir_state, (target,))
                system.l1s[target]._states[line] = l1_state
                deliver(system, home, CoherenceMessage(
                    mtype=mtype, line=line, sender=home,
                    dest=target, requester=11,
                ))
            assert_twins_match(vec, ref)

    def test_request_to_a_transient_line_queues_identically(self):
        # Transient-state requests leave the fused fast path
        # (_enqueue_or_nack): both arms must queue the same way and the
        # dir_queued mirror must track the reference-path increment.
        vec, ref = make_pair()
        home, line = 4, 4 + NUM_NODES
        for system in (vec, ref):
            ent = system.directories[home].entry(line)
            ent.state = DirState.DI_DSD
            ent.requester = 8
            deliver(system, 12, CoherenceMessage(
                mtype=MsgType.REQ_SH, line=line, sender=12,
                dest=home, requester=12,
            ))
        assert_twins_match(vec, ref)
        assert snapshot(vec)["dirs"][home][line][5] == 1  # one queued msg


# ---------------------------------------------------------------------------
# fast constructors
# ---------------------------------------------------------------------------


class TestFastConstructors:
    def test_make_message_matches_dataclass(self):
        ref = CoherenceMessage(
            mtype=MsgType.DATA_S, line=42, sender=1, dest=2, requester=2,
            ack_via_confirmation=True,
        )
        fast = make_message(MsgType.DATA_S, 42, 1, 2, 2, True)
        assert fast.mtype is ref.mtype
        assert (fast.line, fast.sender, fast.dest, fast.requester) == (
            ref.line, ref.sender, ref.dest, ref.requester
        )
        assert fast.ack_via_confirmation is ref.ack_via_confirmation
        assert fast.uid == ref.uid + 1  # same shared counter, in order

    def test_make_message_default_ack_flag(self):
        assert make_message(MsgType.INV, 7, 0, 3, 5).ack_via_confirmation \
            is False

    def test_make_packet_matches_dataclass(self):
        msg = make_message(MsgType.REQ_EX, 10, 4, 2, 4)
        ref = Packet(
            src=4, dst=2, lane=LaneKind.META, payload=msg,
            expects_data_reply=True,
        )
        fast = make_packet(
            4, 2, LaneKind.META, msg, False, False, False, True, ref.uid + 1
        )
        for field_name in (
            "src", "dst", "lane", "payload", "is_reply_to_request",
            "is_writeback", "is_memory", "expects_data_reply",
            "on_confirmed", "enqueue_cycle", "scheduled_cycle",
            "first_tx_cycle", "final_tx_cycle", "deliver_cycle",
            "retries", "_corrupted", "_fault_delivered",
            "_fault_confirm_fired",
        ):
            assert getattr(fast, field_name) == getattr(ref, field_name), \
                field_name
        assert fast.uid == ref.uid + 1

    def test_pkt_flags_match_membership_definitions(self):
        replies = {MsgType.DATA_S, MsgType.DATA_E, MsgType.DATA_M,
                   MsgType.MEM_ACK}
        memory = {MsgType.MEM_READ, MsgType.MEM_WRITE, MsgType.MEM_ACK}
        expects = {MsgType.REQ_SH, MsgType.REQ_EX, MsgType.MEM_READ}
        for mtype in MsgType:
            assert mtype.pkt_is_reply == (mtype in replies)
            assert mtype.pkt_is_writeback == (mtype is MsgType.WRITEBACK)
            assert mtype.pkt_is_memory == (mtype in memory)
            assert mtype.pkt_expects_data == (mtype in expects)


# ---------------------------------------------------------------------------
# mailbox, horizon, trace interaction
# ---------------------------------------------------------------------------


class TestMailbox:
    def _request_packet(self, system, src, home, line):
        return system._packetize(src, CoherenceMessage(
            mtype=MsgType.REQ_SH, line=line, sender=src,
            dest=home, requester=src,
        ))

    def test_collects_then_drains_in_delivery_order(self):
        vec, _ = make_pair()
        engine = vec._coherence
        order = []
        original = list(engine._kernels)
        value = MsgType.REQ_SH._value_
        engine._kernels[value] = (
            lambda node, msg, k=original[value]: (
                order.append((node, msg.line)), k(node, msg)
            )
        )
        plant(vec, 1, 17, DirState.DV)
        plant(vec, 2, 18, DirState.DV)
        engine.on_packet(self._request_packet(vec, 5, 1, 17))
        engine.on_packet(self._request_packet(vec, 6, 2, 18))
        assert len(engine._mailbox) == 2
        assert engine.next_event(0) == 0      # queued work pins "now"
        engine.drain()
        assert engine._mailbox == []
        assert engine.next_event(0) is None   # empty mailbox: no horizon
        assert order == [(5, 17), (6, 18)]
        engine._kernels[value] = original[value]

    def test_requests_counted_once_per_drain(self):
        vec, _ = make_pair()
        engine = vec._coherence
        plant(vec, 1, 17, DirState.DV)
        plant(vec, 2, 18, DirState.DV)
        engine.on_packet(self._request_packet(vec, 5, 1, 17))
        engine.on_packet(self._request_packet(vec, 6, 2, 18))
        engine.drain()
        counts = [d._count["requests"].value for d in vec.directories]
        assert counts[1] == 1 and counts[2] == 1 and sum(counts) == 2

    def test_tracing_dispatches_inline(self):
        vec, _ = make_pair()
        engine = vec._coherence
        plant(vec, 1, 17, DirState.DV)
        with tracing():
            engine.on_packet(self._request_packet(vec, 5, 1, 17))
            assert engine._mailbox == []  # handled inline, not queued
        assert vec.directories[1]._count["requests"].value == 1

    def test_columns_accrue_from_mirrors(self):
        vec, _ = make_pair()
        engine = vec._coherence
        engine._l1_transients[2] = 3
        engine._mshr_in_use[5] = 1
        engine.accrue_columns()
        assert engine.l1_transients[2] == 3
        assert engine.mshr_in_use[5] == 1
        engine._l1_transients[2] = 0
        engine._mshr_in_use[5] = 0
