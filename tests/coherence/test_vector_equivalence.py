"""The columnar coherence engine's equivalence contract.

``src/repro/coherence/vector.py`` batches directory/L1/MSHR message
dispatch through a per-cycle mailbox into fused per-``MsgType``
kernels.  The claim is *bit-exactness*: a vectorized run and a naive
per-message run of the same configuration produce byte-identical
``CmpResults`` and identical metrics-registry snapshots — message uids,
packet uids, counters, queue orders and all.  These tests pin that down
across networks, seeds, system sizes, the §5 optimization set, fault
plans and capacity bounds (both of which drop the kernels and drain the
mailbox through the reference handlers), plus the escape hatches and a
scale study that ends in a column audit.

The run-both-and-diff machinery is shared with the core- and
network-engine suites via ``tests/conftest.py``.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cmp import CmpConfig, CmpSystem
from repro.coherence.directory import DirectoryConfig
from repro.core.optimizations import OptimizationConfig
from tests.conftest import EQUIVALENCE_FAULT_PLAN, compare_engine_pair


class TestEquivalence:
    @pytest.mark.parametrize(
        "network", ("fsoi", "mesh", "l0", "lr1", "lr2", "corona")
    )
    def test_all_networks(self, compare_engines, network):
        compare_engines(
            "vectorized", app="oc", network=network, num_nodes=16, seed=1
        )

    @pytest.mark.parametrize("seed", (0, 7))
    def test_seeds(self, compare_engines, seed):
        compare_engines(
            "vectorized", app="ba", network="fsoi", num_nodes=16, seed=seed
        )

    def test_64_nodes(self, compare_engines):
        compare_engines(
            "vectorized",
            app="em", network="fsoi", num_nodes=64, seed=2, cycles=900,
        )

    def test_full_optimization_set(self, compare_engines):
        # Confirmation-as-ack suppresses INV_ACKs via the packet's
        # on_confirmed hook, split writebacks route WB_ANNOUNCE on the
        # meta lane, and request spacing delays eligible requests — the
        # protocol variants the fused kernels special-case.
        compare_engines(
            "vectorized",
            app="oc", network="fsoi", num_nodes=16, seed=5,
            optimizations=OptimizationConfig.all(),
        )

    def test_faults_drop_to_reference_handlers(self, compare_engines):
        # A non-empty fault plan disables the fused kernels; the mailbox
        # must then drain through the per-message reference dispatch and
        # still match the naive run byte for byte.
        compare_engines(
            "vectorized",
            app="oc", network="fsoi", num_nodes=16, seed=4,
            faults=EQUIVALENCE_FAULT_PLAN,
        )

    def test_capacity_bound_drops_to_reference_handlers(self, compare_engines):
        # Bounded L2 slices turn capacity pressure into Repl recalls —
        # a path the kernels do not fuse, so the engine must fall back.
        compare_engines(
            "vectorized",
            app="oc", network="mesh", num_nodes=16, seed=3,
            directory=DirectoryConfig(capacity_lines=64),
        )

    @pytest.mark.parametrize("app", ("ro", "tsp", "fft"))
    def test_lock_and_butterfly_sync_patterns(self, compare_engines, app):
        # Lock-heavy, long-critical-section and butterfly sharing
        # patterns stress REQ_UPG reinterpretation, transient queueing
        # and the invalidation fan-out the kernels fuse.
        compare_engines(
            "vectorized", app=app, network="mesh", num_nodes=16, seed=5
        )

    @pytest.mark.parametrize("fast_forward", (True, False))
    def test_composes_with_fast_forward(self, compare_engines, fast_forward):
        # The engine pins the horizon to "now" whenever its mailbox is
        # non-empty (next_event); skips and batched drains must stack.
        loop = compare_engines(
            "vectorized",
            app="oc", network="l0", num_nodes=16, seed=1,
            fast_forward=fast_forward,
        )
        if fast_forward:
            assert loop["skipped_cycles"] > 0
        else:
            assert loop == {"executed_cycles": 1200, "skipped_cycles": 0}

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        app=st.sampled_from(["oc", "ba", "mp", "ws"]),
        network=st.sampled_from(["fsoi", "mesh", "lr2"]),
        seed=st.integers(min_value=0, max_value=50),
        cycles=st.integers(min_value=50, max_value=800),
        confirmation_ack=st.booleans(),
    )
    def test_property_equivalence(
        self, app, network, seed, cycles, confirmation_ack
    ):
        # The §5 optimizations need the FSOI confirmation channel.
        opts = OptimizationConfig(
            confirmation_ack=confirmation_ack and network == "fsoi"
        )
        compare_engine_pair(
            "vectorized",
            app=app, network=network, num_nodes=16, seed=seed,
            cycles=cycles, optimizations=opts,
        )


class TestAudit:
    """Column integrity after real runs, fused and fallback paths both."""

    def _run_audited(self, cycles=1200, **config_kwargs):
        system = CmpSystem(CmpConfig(**config_kwargs))
        result = system.run(cycles)
        assert system._coherence is not None
        system._coherence.audit()
        return system, result

    @pytest.mark.parametrize("network", ("fsoi", "mesh"))
    def test_columns_survive_a_run(self, network):
        system, result = self._run_audited(
            app="oc", network=network, num_nodes=16, seed=1
        )
        assert system._coherence._kernels_ok
        assert result.packets_delivered > 0

    def test_columns_survive_the_reference_fallback(self):
        # With faults the ledger hooks (not the kernels) maintain the
        # mirrors; the audit proves both write-through paths agree.
        system, _ = self._run_audited(
            app="oc", network="fsoi", num_nodes=16, seed=4,
            faults=EQUIVALENCE_FAULT_PLAN,
        )
        assert not system._coherence._kernels_ok

    def test_drifted_mirror_is_caught(self):
        system, _ = self._run_audited(
            app="ba", network="fsoi", num_nodes=16, seed=2, cycles=400
        )
        system._coherence._l1_transients[3] += 1
        with pytest.raises(RuntimeError, match="l1_transients"):
            system._coherence.audit()

    def test_undrained_mailbox_is_caught(self):
        system, _ = self._run_audited(
            app="ba", network="fsoi", num_nodes=16, seed=2, cycles=400
        )
        system._coherence._mailbox.append(object())
        with pytest.raises(RuntimeError, match="mailbox"):
            system._coherence.audit()


class TestEscapeHatches:
    def test_config_flag_selects_reference_engine(self):
        system = CmpSystem(CmpConfig(
            app="oc", network="l0", num_nodes=16, seed=1, vectorized=False
        ))
        assert system._coherence is None

    def test_env_hatch_selects_reference_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_VECTOR", "1")
        system = CmpSystem(CmpConfig(app="oc", network="l0", num_nodes=16, seed=1))
        assert system._coherence is None

    def test_env_hatch_zero_means_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_VECTOR", "0")
        system = CmpSystem(CmpConfig(app="oc", network="l0", num_nodes=16, seed=1))
        assert system._coherence is not None


@pytest.mark.slow
@pytest.mark.skipif(
    os.environ.get("REPRO_NO_VECTOR", "") not in ("", "0"),
    reason="the scale smoke test targets the vectorized engine, which "
    "REPRO_NO_VECTOR pins off for the whole process",
)
class TestScale:
    """The batching claim at 256/512 nodes: fused drains stay exact.

    The core- and network-engine suites cover the same sizes from their
    sides; this study checks the coherence columns and the whole-run
    conservation laws with the mailbox in the loop.
    """

    @pytest.mark.parametrize("num_nodes, cycles", [(256, 400), (512, 300)])
    def test_scaling_smoke(self, num_nodes, cycles):
        system = CmpSystem(CmpConfig(
            app="oc", network="fsoi", num_nodes=num_nodes, seed=3
        ))
        result = system.run(cycles)
        assert system._coherence is not None
        assert system._coherence._kernels_ok
        assert result.cycles == cycles
        assert result.instructions > 0
        assert 0 < result.packets_delivered <= result.packets_sent
        system._coherence.audit()
