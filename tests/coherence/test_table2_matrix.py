"""Table 2, transcribed: every (state, event) cell checked explicitly.

The other coherence tests exercise flows; this file is the *table
itself* as an executable artifact — for each cell, the outcome class:

* ``OK``     — handled (a transition and/or messages);
* ``ERROR``  — the paper marks it "error": the implementation raises;
* ``Z``      — "z": the event cannot be processed now (CPU accesses
  stall; directory requests queue).

Cells the paper leaves blank for the CPU columns of transient rows are
the z/stall cases; impossible network events must raise so protocol
bugs surface loudly instead of corrupting state.
"""

import pytest

from repro.coherence.directory import (
    DirectoryConfig,
    DirectoryController,
    DirState,
)
from repro.coherence.l1 import AccessResult, L1Controller, L1State
from repro.coherence.messages import CoherenceMessage, MsgType

LINE = 0x5A

OK, ERROR, Z = "ok", "error", "z"


# ---------------------------------------------------------------------------
# L1: rows I, S, E, M, I.SD, I.MD, S.MA x events Read, Write, Inv, Dwg, Data
# ---------------------------------------------------------------------------

#: (state, event) -> expected outcome class, straight from Table 2.
L1_MATRIX = {
    # Read        Write       Inv        Dwg        Data
    L1State.I:    {"read": OK, "write": OK, "inv": OK, "dwg": OK, "data": ERROR},
    L1State.S:    {"read": OK, "write": OK, "inv": OK, "dwg": ERROR, "data": ERROR},
    L1State.E:    {"read": OK, "write": OK, "inv": OK, "dwg": OK, "data": ERROR},
    L1State.M:    {"read": OK, "write": OK, "inv": OK, "dwg": OK, "data": ERROR},
    L1State.I_SD: {"read": Z, "write": Z, "inv": OK, "dwg": OK, "data": OK},
    L1State.I_MD: {"read": Z, "write": Z, "inv": OK, "dwg": OK, "data": OK},
    L1State.S_MA: {"read": Z, "write": Z, "inv": OK, "dwg": ERROR, "data": ERROR},
}


def l1_in_state(state: L1State):
    log = []
    l1 = L1Controller(
        node=1,
        send=lambda msg, delay: log.append(msg),
        home_of=lambda line: 0,
    )

    def feed(mtype):
        l1.handle(CoherenceMessage(mtype=mtype, line=LINE, sender=0, dest=1))

    if state in (L1State.S, L1State.E):
        l1.access(LINE, False)
        feed(MsgType.DATA_S if state is L1State.S else MsgType.DATA_E)
    elif state is L1State.M:
        l1.access(LINE, True)
        feed(MsgType.DATA_M)
    elif state is L1State.I_SD:
        l1.access(LINE, False)
    elif state is L1State.I_MD:
        l1.access(LINE, True)
    elif state is L1State.S_MA:
        l1.access(LINE, False)
        feed(MsgType.DATA_S)
        l1.access(LINE, True)
    assert l1.state(LINE) is state
    return l1


def l1_apply(l1, event: str):
    if event == "read":
        return l1.access(LINE, False)
    if event == "write":
        return l1.access(LINE, True)
    mtype = {
        "inv": MsgType.INV,
        "dwg": MsgType.DWG,
        # The data event: the kind a fill in that state would carry.
        "data": MsgType.DATA_S
        if l1.state(LINE) is not L1State.I_MD
        else MsgType.DATA_M,
    }[event]
    l1.handle(CoherenceMessage(mtype=mtype, line=LINE, sender=0, dest=1))


@pytest.mark.parametrize(
    "state,event,expected",
    [
        (state, event, expected)
        for state, row in L1_MATRIX.items()
        for event, expected in row.items()
    ],
    ids=lambda v: getattr(v, "name", str(v)),
)
def test_l1_matrix_cell(state, event, expected):
    l1 = l1_in_state(state)
    if expected is ERROR:
        with pytest.raises(RuntimeError):
            l1_apply(l1, event)
    elif expected is Z:
        assert l1_apply(l1, event) is AccessResult.STALL
        assert l1.state(LINE) is state  # z leaves the state untouched
    else:
        result = l1_apply(l1, event)
        if event in ("read", "write"):
            assert result in (AccessResult.HIT, AccessResult.MISS)


# ---------------------------------------------------------------------------
# Directory: stable rows x events
# ---------------------------------------------------------------------------

DIR_MATRIX = {
    #               Req(Sh)  Req(Ex)  WriteBack  InvAck  DwgAck  MemAck
    DirState.DI: {"sh": OK, "ex": OK, "wb": ERROR, "inv_ack": ERROR,
                  "dwg_ack": ERROR, "mem_ack": ERROR},
    DirState.DV: {"sh": OK, "ex": OK, "wb": ERROR, "inv_ack": ERROR,
                  "dwg_ack": ERROR, "mem_ack": ERROR},
    DirState.DS: {"sh": OK, "ex": OK, "wb": ERROR, "inv_ack": ERROR,
                  "dwg_ack": ERROR, "mem_ack": ERROR},
    DirState.DM: {"sh": OK, "ex": OK, "wb": OK, "inv_ack": ERROR,
                  "dwg_ack": ERROR, "mem_ack": ERROR},
}

DIR_EVENTS = {
    "sh": MsgType.REQ_SH,
    "ex": MsgType.REQ_EX,
    "wb": MsgType.WRITEBACK,
    "inv_ack": MsgType.INV_ACK,
    "dwg_ack": MsgType.DWG_ACK,
    "mem_ack": MsgType.MEM_ACK,
}


def directory_in_state(state: DirState):
    directory = DirectoryController(
        node=0,
        send=lambda msg, delay: None,
        memory_node_of=lambda line: 7,
        config=DirectoryConfig(l2_latency=0),
    )
    entry = directory.entry(LINE)
    entry.state = state
    if state is DirState.DS:
        entry.sharers = {1, 2}
    elif state is DirState.DM:
        entry.sharers = {1}
    return directory


@pytest.mark.parametrize(
    "state,event,expected",
    [
        (state, event, expected)
        for state, row in DIR_MATRIX.items()
        for event, expected in row.items()
    ],
    ids=lambda v: getattr(v, "name", str(v)),
)
def test_directory_matrix_cell(state, event, expected):
    directory = directory_in_state(state)
    msg = CoherenceMessage(
        mtype=DIR_EVENTS[event], line=LINE, sender=3, dest=0, requester=3
    )
    if expected is ERROR:
        with pytest.raises(RuntimeError):
            directory.handle(msg)
    else:
        directory.handle(msg)


# The "z" column for the directory: every request type queues in every
# transient state reachable from a stable one.

TRANSIENT_SETUPS = {
    DirState.DI_DSD: lambda d: d.handle(_req(MsgType.REQ_SH, 1)),
    DirState.DI_DMD: lambda d: d.handle(_req(MsgType.REQ_EX, 1)),
    DirState.DS_DMDA: lambda d: d.handle(_req(MsgType.REQ_EX, 3)),
    DirState.DS_DMA: lambda d: d.handle(_req(MsgType.REQ_UPG, 1)),
    DirState.DM_DSD: lambda d: d.handle(_req(MsgType.REQ_SH, 2)),
    DirState.DM_DMD: lambda d: d.handle(_req(MsgType.REQ_EX, 2)),
    DirState.DM_DID: lambda d: d.replace(LINE),
    DirState.DS_DIA: lambda d: d.replace(LINE),
}


def _req(mtype, sender):
    return CoherenceMessage(
        mtype=mtype, line=LINE, sender=sender, dest=0, requester=sender
    )


@pytest.mark.parametrize("transient", sorted(TRANSIENT_SETUPS, key=lambda s: s.name),
                         ids=lambda s: s.name)
@pytest.mark.parametrize("request_type",
                         [MsgType.REQ_SH, MsgType.REQ_EX, MsgType.REQ_UPG],
                         ids=lambda m: m.name)
def test_directory_transients_queue_requests(transient, request_type):
    """Table 2's z cells: requests arriving in any transient state are
    deferred, never processed immediately and never dropped."""
    start_state = {
        DirState.DI_DSD: DirState.DI,
        DirState.DI_DMD: DirState.DI,
        DirState.DS_DMDA: DirState.DS,
        DirState.DS_DMA: DirState.DS,
        DirState.DS_DIA: DirState.DS,
        DirState.DM_DSD: DirState.DM,
        DirState.DM_DMD: DirState.DM,
        DirState.DM_DID: DirState.DM,
    }[transient]
    directory = directory_in_state(start_state)
    TRANSIENT_SETUPS[transient](directory)
    assert directory.state(LINE) is transient
    before = len(directory.entry(LINE).queued)
    directory.handle(_req(request_type, 3))
    assert directory.state(LINE) is transient  # unchanged
    assert len(directory.entry(LINE).queued) == before + 1
