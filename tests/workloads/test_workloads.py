"""Tests for traffic generators and the application signatures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.core import OpKind
from repro.workloads.splash2 import APPLICATIONS, AppSignature, AppWorkload, signature
from repro.workloads.traffic import (
    BernoulliTraffic,
    hotspot_pattern,
    transpose_pattern,
    uniform_pattern,
)


class TestPatterns:
    @given(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=2**31))
    def test_uniform_never_self(self, src, seed):
        rng = np.random.default_rng(seed)
        dst = uniform_pattern(rng, src, 16)
        assert dst != src
        assert 0 <= dst < 16

    def test_uniform_covers_all_destinations(self):
        rng = np.random.default_rng(0)
        seen = {uniform_pattern(rng, 3, 8) for _ in range(500)}
        assert seen == set(range(8)) - {3}

    def test_hotspot_concentrates(self):
        rng = np.random.default_rng(1)
        pattern = hotspot_pattern(hotspot=2, fraction=0.5)
        hits = sum(pattern(rng, 0, 16) == 2 for _ in range(2000))
        assert 0.45 < hits / 2000 < 0.62  # 0.5 + uniform leakage

    def test_hotspot_node_itself_uniform(self):
        rng = np.random.default_rng(2)
        pattern = hotspot_pattern(hotspot=2, fraction=1.0)
        assert all(pattern(rng, 2, 16) != 2 for _ in range(100))

    def test_transpose(self):
        rng = np.random.default_rng(0)
        assert transpose_pattern(rng, 0, 16) == 15
        assert transpose_pattern(rng, 5, 16) == 10

    def test_hotspot_validates_fraction(self):
        with pytest.raises(ValueError):
            hotspot_pattern(fraction=1.5)


class TestBernoulliTraffic:
    def test_offers_only_on_slot_boundaries(self):
        traffic = BernoulliTraffic(p=1.0, slot_cycles=2)
        rng = np.random.default_rng(0)
        assert traffic.offers(rng, 1, 4) == []
        assert len(traffic.offers(rng, 2, 4)) == 4

    def test_rate_matches_p(self):
        traffic = BernoulliTraffic(p=0.25)
        rng = np.random.default_rng(3)
        offered = sum(
            len(traffic.offers(rng, cycle, 16)) for cycle in range(0, 2000, 2)
        )
        assert offered / (1000 * 16) == pytest.approx(0.25, abs=0.02)

    def test_data_fraction(self):
        from repro.net.packet import LaneKind

        traffic = BernoulliTraffic(p=1.0, data_fraction=0.3)
        rng = np.random.default_rng(4)
        packets = [
            p for cycle in range(0, 400, 2) for p in traffic.offers(rng, cycle, 8)
        ]
        data = sum(p.lane is LaneKind.DATA for p in packets)
        assert data / len(packets) == pytest.approx(0.3, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliTraffic(p=1.5)
        with pytest.raises(ValueError):
            BernoulliTraffic(p=0.5, data_fraction=-0.1)


class TestSignatures:
    def test_sixteen_applications(self):
        assert len(APPLICATIONS) == 16

    def test_paper_labels_present(self):
        for label in (
            "ba ch fmm fft lu oc ro rx ray ws em ilink ja mp sh tsp".split()
        ):
            assert label in APPLICATIONS

    def test_lookup_by_label(self):
        assert signature("oc").name == "ocean"

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            signature("nope")

    def test_miss_targets_span_paper_range(self):
        # §6: miss rates range 0.8%..15.6%, average 4.8%.
        def approx_miss(sig):
            private = 1 - sig.shared_fraction - sig.stream_fraction
            return (
                sig.shared_fraction * 0.9
                + sig.stream_fraction
                + private * sig.private_cold_fraction
            )

        misses = [approx_miss(sig) for sig in APPLICATIONS.values()]
        assert 0.005 < min(misses) < 0.02
        assert 0.10 < max(misses) < 0.20
        assert 0.03 < np.mean(misses) < 0.07

    def test_communication_ordering(self):
        # em3d and mp3d are the communication-heavy apps.
        assert signature("em").shared_fraction > signature("lu").shared_fraction
        assert signature("mp").shared_fraction > signature("ws").shared_fraction

    def test_sync_flags(self):
        assert signature("ba").has_sync
        assert signature("ray").lock_interval > 0
        assert signature("oc").barrier_interval > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AppSignature("bad", "bd", mem_fraction=1.5)
        with pytest.raises(ValueError):
            AppSignature("bad", "bd", shared_fraction=0.8, stream_fraction=0.4)
        with pytest.raises(ValueError):
            AppSignature("bad", "bd", hot_lines=0)


class TestAppWorkload:
    def make(self, label="ba", node=0):
        return AppWorkload(signature(label), node=node, num_nodes=16)

    def test_mem_fraction_observed(self):
        workload = self.make()
        rng = np.random.default_rng(0)
        ops = [workload.next_op(rng) for _ in range(20_000)]
        mem = sum(op.kind is OpKind.MEM for op in ops)
        assert mem / len(ops) == pytest.approx(
            signature("ba").mem_fraction, abs=0.02
        )

    def test_barrier_interval_respected(self):
        workload = self.make("oc")
        rng = np.random.default_rng(0)
        interval = signature("oc").barrier_interval
        ops = [workload.next_op(rng) for _ in range(interval * 2)]
        barriers = [i for i, op in enumerate(ops) if op.kind is OpKind.BARRIER]
        assert barriers == [interval - 1, 2 * interval - 1]

    def test_lock_ids_in_range(self):
        workload = self.make("ray")
        rng = np.random.default_rng(0)
        sig = signature("ray")
        locks = [
            op
            for op in (workload.next_op(rng) for _ in range(sig.lock_interval * 6))
            if op.kind is OpKind.LOCK
        ]
        assert locks
        assert all(0 <= op.lock_id < sig.lock_count for op in locks)
        assert all(op.hold_cycles == sig.lock_hold_cycles for op in locks)

    def test_private_regions_disjoint_across_nodes(self):
        a, b = self.make(node=0), self.make(node=1)
        assert set(a.reuse_lines()).isdisjoint(b.reuse_lines())

    def test_shared_pool_common(self):
        a, b = self.make(node=0), self.make(node=1)
        assert set(a.shared_lines()) == set(b.shared_lines())

    def test_stream_lines_never_repeat_soon(self):
        workload = self.make("rx")
        rng = np.random.default_rng(1)
        stream_lines = []
        for _ in range(50_000):
            op = workload.next_op(rng)
            if op.kind is OpKind.MEM and op.line >= 1 << 32 and op.line < 1 << 38:
                stream_lines.append(op.line)
        assert len(stream_lines) > 100
        assert len(set(stream_lines)) == len(stream_lines)

    def test_shared_write_fraction_lower_than_private(self):
        workload = self.make("em")
        rng = np.random.default_rng(2)
        shared_writes = private_writes = shared_total = private_total = 0
        shared_base = 1 << 38
        for _ in range(100_000):
            op = workload.next_op(rng)
            if op.kind is not OpKind.MEM:
                continue
            if op.line >= shared_base:
                shared_total += 1
                shared_writes += op.is_write
            elif op.line < 1 << 32:
                private_total += 1
                private_writes += op.is_write
        assert shared_writes / shared_total < private_writes / private_total
