"""Tests for trace-driven workloads."""

import numpy as np
import pytest

from repro.cpu.core import Op, OpKind
from repro.workloads.splash2 import AppWorkload, signature
from repro.workloads.trace import (
    TraceWorkload,
    format_op,
    parse_trace,
    record_trace,
)


class TestParse:
    def test_all_record_kinds(self):
        ops = parse_trace(
            ["W", "R 0x10", "S 16", "B", "L 3 25", "# comment", ""]
        )
        assert [op.kind for op in ops] == [
            OpKind.WORK, OpKind.MEM, OpKind.MEM, OpKind.BARRIER, OpKind.LOCK
        ]
        assert ops[1].line == 0x10 and not ops[1].is_write
        assert ops[2].line == 16 and ops[2].is_write
        assert ops[4].lock_id == 3 and ops[4].hold_cycles == 25

    def test_malformed_line_reports_position(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_trace(["W", "R"])

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            parse_trace(["X 1"])

    def test_case_insensitive(self):
        ops = parse_trace(["r 0x1", "s 0x2"])
        assert not ops[0].is_write and ops[1].is_write


class TestRoundTrip:
    def test_format_parse_identity(self):
        ops = [
            Op(kind=OpKind.WORK),
            Op(kind=OpKind.MEM, line=0x42, is_write=True),
            Op(kind=OpKind.MEM, line=7),
            Op(kind=OpKind.BARRIER),
            Op(kind=OpKind.LOCK, lock_id=2, hold_cycles=30),
        ]
        reparsed = parse_trace(format_op(op) for op in ops)
        assert reparsed == ops


class TestTraceWorkload:
    def test_replays_then_idles(self):
        trace = TraceWorkload([Op(kind=OpKind.MEM, line=1)])
        rng = np.random.default_rng(0)
        first = trace.next_op(rng)
        assert first.kind is OpKind.MEM
        assert trace.next_op(rng).kind is OpKind.WORK
        assert trace.replays_exhausted

    def test_remaining_and_reset(self):
        trace = TraceWorkload([Op(kind=OpKind.WORK)] * 3)
        rng = np.random.default_rng(0)
        trace.next_op(rng)
        assert trace.remaining == 2
        trace.reset()
        assert trace.remaining == 3

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("R 0x5\nS 0x6\n")
        trace = TraceWorkload(path)
        assert len(trace.ops) == 2


class TestRecord:
    def test_record_from_signature(self, tmp_path):
        workload = AppWorkload(signature("ba"), node=0, num_nodes=16)
        path = tmp_path / "ba.trace"
        ops = record_trace(workload, 200, path, seed=3)
        assert len(ops) == 200
        replayed = TraceWorkload(path)
        assert len(replayed.ops) == 200
        # Memory ops survive the round trip exactly.
        originals = [op for op in ops if op.kind is OpKind.MEM]
        copies = [op for op in replayed.ops if op.kind is OpKind.MEM]
        assert originals == copies

    def test_record_reproducible(self, tmp_path):
        first = record_trace(
            AppWorkload(signature("ba"), 0, 16), 100, tmp_path / "a", seed=3
        )
        second = record_trace(
            AppWorkload(signature("ba"), 0, 16), 100, tmp_path / "b", seed=3
        )
        assert first == second

    def test_count_validated(self, tmp_path):
        with pytest.raises(ValueError):
            record_trace(
                AppWorkload(signature("ba"), 0, 16), 0, tmp_path / "x"
            )


class TestEndToEnd:
    def test_cmp_runs_on_traces(self, tmp_path):
        """A full CMP where every core replays a recorded trace."""
        from repro.cmp import CmpConfig, CmpSystem
        from repro.workloads.trace import TraceWorkload

        system = CmpSystem(CmpConfig(num_nodes=16, app="ba", network="fsoi"))
        for node, core in enumerate(system.cores):
            recorded = record_trace(
                AppWorkload(signature("ba"), node, 16),
                2000,
                tmp_path / f"core{node}.trace",
                seed=node,
            )
            core.workload = TraceWorkload(recorded)
        result = system.run(1500)
        assert result.instructions > 0
        assert result.packets_delivered > 0
