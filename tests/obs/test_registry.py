"""Tests for the hierarchical metrics registry and its exports."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.util.stats import StatGroup


def make_registry():
    reg = MetricsRegistry("test")
    net = StatGroup("net")
    net.counter("sent").add(3)
    net.group("meta").counter("collisions").add(1)
    reg.mount("network", net)
    reg.gauge("run.cycles", 2500)
    reg.gauge("run.app", "oc")
    return reg, net


class TestMounting:
    def test_snapshot_nests_by_dotted_path(self):
        reg, _ = make_registry()
        snap = reg.snapshot()
        assert snap["network"]["sent"] == 3
        assert snap["network"]["meta"]["collisions"] == 1
        assert snap["run"] == {"cycles": 2500, "app": "oc"}

    def test_mount_is_by_reference(self):
        reg, net = make_registry()
        net.counter("sent").add(7)
        assert reg.snapshot()["network"]["sent"] == 10

    def test_callable_gauge_read_at_snapshot_time(self):
        reg = MetricsRegistry()
        box = {"v": 1}
        reg.gauge("live", lambda: box["v"])
        assert reg.snapshot()["live"] == 1
        box["v"] = 9
        assert reg.snapshot()["live"] == 9

    def test_duplicate_mount_rejected(self):
        reg, _ = make_registry()
        with pytest.raises(ValueError):
            reg.mount("network", StatGroup("other"))

    def test_duplicate_gauge_rejected(self):
        reg, _ = make_registry()
        with pytest.raises(ValueError):
            reg.gauge("run.cycles", 1)

    def test_empty_path_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.gauge("", 1)

    def test_path_collision_between_gauge_and_group(self):
        reg, _ = make_registry()
        reg.gauge("network.sent", 99)  # collides with the counter
        with pytest.raises(ValueError):
            reg.snapshot()

    def test_paths_sorted(self):
        reg, _ = make_registry()
        assert reg.paths == ["network", "run.app", "run.cycles"]


class TestExport:
    def test_flatten_uses_dotted_paths_and_indices(self):
        reg = MetricsRegistry()
        reg.gauge("hist", lambda: {"count": 2, "fractions": [0.5, 0.5]})
        flat = reg.flatten()
        assert flat == {
            "hist.count": 2,
            "hist.fractions[0]": 0.5,
            "hist.fractions[1]": 0.5,
        }

    def test_to_json_is_canonical(self):
        reg, _ = make_registry()
        text = reg.to_json()
        assert text.endswith("\n")
        assert json.loads(text)["network"]["sent"] == 3
        # sorted keys => byte-identical across identical runs
        assert text == reg.to_json()
        assert text.index('"network"') < text.index('"run"')

    def test_to_csv_rows_sorted_by_path(self):
        reg, _ = make_registry()
        lines = reg.to_csv().splitlines()
        assert lines[0] == "metric,value"
        paths = [line.split(",", 1)[0] for line in lines[1:]]
        assert paths == sorted(paths)
        assert "network.sent,3" in lines

    def test_write_picks_format_by_suffix(self, tmp_path):
        reg, _ = make_registry()
        json_path = tmp_path / "m.json"
        csv_path = tmp_path / "m.csv"
        reg.write(json_path)
        reg.write(csv_path)
        assert json.loads(json_path.read_text())["run"]["cycles"] == 2500
        assert csv_path.read_text().startswith("metric,value")

    def test_write_suffix_dispatch_is_case_insensitive(self, tmp_path):
        """``.CSV``/``.Csv`` get CSV, not the silent JSON fallthrough."""
        reg, _ = make_registry()
        for name in ("M.CSV", "m.Csv"):
            path = tmp_path / name
            reg.write(path)
            assert path.read_text().startswith("metric,value")

    def test_write_unknown_suffix_falls_through_to_json(self, tmp_path):
        reg, _ = make_registry()
        path = tmp_path / "m.txt"
        reg.write(path)
        assert json.loads(path.read_text())["run"]["cycles"] == 2500

    def test_latency_and_histogram_render_as_dicts(self):
        group = StatGroup("g")
        group.latency("lat").record(4)
        group.histogram("h", 0, 10, 2).record(1)
        reg = MetricsRegistry()
        reg.mount("g", group)
        snap = reg.snapshot()
        assert snap["g"]["lat"]["count"] == 1
        assert snap["g"]["h"]["count"] == 1
