"""Timeline collector: determinism, passivity, exports, delta algebra.

The acceptance bar for the telemetry layer: a seeded 16-node FSOI run
with ``window=100`` must export byte-identical JSONL across repeated
runs and across every engine family (``vectorized`` on/off,
``fast_forward`` on/off), while perturbing nothing the simulator
measures.  The export formats (JSONL, chrome counter events,
OpenMetrics) are validated with the same linters the CLI uses.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmp import CmpConfig, CmpSystem
from repro.obs import (
    TIMELINE,
    load_timeline_jsonl,
    timelining,
    validate_event,
    validate_openmetrics,
    window_deltas,
)

CYCLES = 1500
WINDOW = 100


def timelined_run(cycles=CYCLES, window=WINDOW, capacity=4096, **config_kwargs):
    """Run a seeded 16-node system under the timeline; return
    ``(result_dict, jsonl_text, system)`` with the collector still
    holding its windows (timelining keeps data on exit)."""
    config_kwargs.setdefault("app", "fft")
    config_kwargs.setdefault("network", "fsoi")
    config_kwargs.setdefault("num_nodes", 16)
    config_kwargs.setdefault("seed", 3)
    system = CmpSystem(CmpConfig(**config_kwargs))
    with timelining(window=window, capacity=capacity) as timeline:
        result = system.run(cycles).to_dict()
    return result, timeline.to_jsonl(), system


class TestDeterminism:
    """The acceptance criterion: byte-identical JSONL everywhere."""

    def test_repeat_runs_byte_identical(self):
        _, first, _ = timelined_run()
        _, second, _ = timelined_run()
        assert first == second

    @pytest.mark.parametrize("flag", ["vectorized", "fast_forward"])
    def test_engine_toggle_byte_identical(self, flag):
        _, enabled, _ = timelined_run(**{flag: True})
        _, disabled, _ = timelined_run(**{flag: False})
        assert enabled == disabled

    def test_sliced_run_matches_single_run(self):
        """Driving the run in window-sized slices (as ``repro top``
        does) samples the same boundaries as one uninterrupted run."""
        _, single, _ = timelined_run()
        system = CmpSystem(
            CmpConfig(app="fft", network="fsoi", num_nodes=16, seed=3)
        )
        with timelining(window=WINDOW) as timeline:
            for _ in range(CYCLES // WINDOW):
                system.run(WINDOW)
            sliced = timeline.to_jsonl()
        assert sliced == single


class TestPassivity:
    """A timelined run measures exactly what a plain run measures."""

    @pytest.mark.parametrize("network", ["fsoi", "mesh"])
    def test_results_identical_minus_loop(self, network):
        plain = CmpSystem(
            CmpConfig(app="fft", network=network, num_nodes=16, seed=3)
        ).run(CYCLES).to_dict()
        timed, _, _ = timelined_run(network=network)
        # Fast-forward jumps are capped at window boundaries, so only
        # the executed/skipped split may move — never a measured value.
        plain.pop("loop")
        timed.pop("loop")
        assert timed == plain

    def test_timeline_left_disabled_after_block(self):
        timelined_run()
        assert not TIMELINE.enabled


class TestCollectedWindows:
    def test_window_count_and_cycles(self):
        _, text, _ = timelined_run()
        data = [json.loads(line) for line in text.splitlines()]
        meta, windows = data[0], data[1:]
        assert meta["type"] == "meta"
        assert meta["window"] == WINDOW
        assert meta["windows"] == len(windows) == CYCLES // WINDOW
        assert [w["cycle"] for w in windows] == list(
            range(WINDOW, CYCLES + 1, WINDOW)
        )

    def test_meta_identifies_the_run(self):
        _, text, _ = timelined_run()
        meta = json.loads(text.splitlines()[0])
        assert meta["app"] == "fft"
        assert meta["network"] == "fsoi"
        assert meta["num_nodes"] == 16
        assert meta["seed"] == 3
        assert meta["dropped_windows"] == 0

    def test_totals_match_final_registry(self):
        _, _, system = timelined_run()
        flat = system.metrics_registry().flatten()
        totals = TIMELINE.totals()
        assert totals
        for path, value in totals.items():
            assert value == pytest.approx(float(flat[path])), path

    def test_ring_drop_folds_into_totals(self):
        """A tiny ring drops old windows but keeps cumulative sums."""
        _, _, system = timelined_run(capacity=4)
        assert TIMELINE.dropped_windows == CYCLES // WINDOW - 4
        assert len(TIMELINE) == 4
        flat = system.metrics_registry().flatten()
        for path, value in TIMELINE.totals().items():
            assert value == pytest.approx(float(flat[path])), path
        delivered = TIMELINE.cumulative("network.packets_delivered")
        assert delivered[-1] == pytest.approx(
            float(flat["network.packets_delivered"])
        )

    def test_series_and_matrix_agree(self):
        timelined_run()
        column = TIMELINE.paths.index("run.instructions")
        assert np.array_equal(
            TIMELINE.series("run.instructions"), TIMELINE.matrix()[:, column]
        )
        with pytest.raises(KeyError):
            TIMELINE.series("no.such.path")

    def test_latest_window_matches_last_jsonl_line(self):
        _, text, _ = timelined_run()
        last = json.loads(text.splitlines()[-1])
        latest = TIMELINE.latest_window()
        assert latest["cycle"] == last["cycle"]
        assert list(latest["deltas"].values()) == last["deltas"]


class TestExports:
    def test_jsonl_round_trips_through_loader(self, tmp_path):
        _, text, _ = timelined_run()
        path = tmp_path / "run.timeline.jsonl"
        assert TIMELINE.write_jsonl(path) == CYCLES // WINDOW
        loaded = load_timeline_jsonl(path)
        assert loaded["meta"] == json.loads(text.splitlines()[0])
        assert loaded["cycles"] == list(TIMELINE.cycles())
        assert np.allclose(loaded["deltas"], TIMELINE.matrix())

    def test_loader_rejects_malformed_files(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "window", "cycle": 5, "deltas": []}\n')
        with pytest.raises(ValueError, match="window before meta"):
            load_timeline_jsonl(path)
        path.write_text("")
        with pytest.raises(ValueError, match="no meta line"):
            load_timeline_jsonl(path)

    def test_counter_events_are_schema_valid(self):
        timelined_run()
        events = TIMELINE.counter_events()
        assert len(events) == (CYCLES // WINDOW) * len(TIMELINE.paths)
        for event in events:
            validate_event(event)
            assert event["ph"] == "C"

    def test_openmetrics_lints_and_counts(self, tmp_path):
        timelined_run()
        text = TIMELINE.to_openmetrics()
        # one _total per path plus the three collector gauges
        assert validate_openmetrics(text) == len(TIMELINE.paths) + 3
        path = tmp_path / "metrics.prom"
        assert TIMELINE.write_openmetrics(path) == len(TIMELINE.paths) + 3
        assert path.read_text() == text


class TestOpenMetricsValidator:
    GOOD = "# TYPE repro_x counter\nrepro_x_total 3\n# EOF\n"

    def test_accepts_minimal_exposition(self):
        assert validate_openmetrics(self.GOOD) == 1

    @pytest.mark.parametrize(
        "text, message",
        [
            ("# TYPE repro_x counter\nrepro_x_total 3\n", "missing # EOF"),
            (GOOD + "trailing 1\n", "content after # EOF"),
            ("# TYPE repro_x counter\n# EOF\n", "no samples"),
            ("orphan_total 3\n# EOF\n", "no TYPE declaration"),
            ("# TYPE repro_x counter\nrepro_x_total abc\n# EOF\n",
             "non-numeric"),
            ("# TYPE repro_x counter\n# TYPE repro_x gauge\n"
             "repro_x_total 1\n# EOF\n", "duplicate TYPE"),
        ],
    )
    def test_rejects_malformed_expositions(self, text, message):
        with pytest.raises(ValueError, match=message):
            validate_openmetrics(text)


class TestWindowDeltaAlgebra:
    counters = st.lists(
        st.integers(min_value=0, max_value=2**40), min_size=1, max_size=8
    )

    @given(st.lists(counters, min_size=2, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_monotone_counters_never_go_negative(self, rows):
        # Build a monotone trajectory: each row of nonnegative
        # increments advances every column (resized to a fixed width).
        width = len(rows[0])
        traj = [np.zeros(width)]
        for row in rows:
            step = np.resize(np.array(row, dtype=np.float64), width)
            traj.append(traj[-1] + step)
        for prev, cur in zip(traj, traj[1:]):
            assert (window_deltas(prev, cur) >= 0).all()

    @given(st.lists(counters, min_size=2, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_deltas_telescope_to_final_minus_base(self, rows):
        width = len(rows[0])
        traj = [
            np.resize(np.array(r, dtype=np.float64), width) for r in rows
        ]
        total = sum(
            window_deltas(prev, cur) for prev, cur in zip(traj, traj[1:])
        )
        assert np.array_equal(total, traj[-1] - traj[0])

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=20, deadline=None)
    def test_shape_mismatch_raises(self, a, b):
        if a == b:
            window_deltas(np.zeros(a), np.zeros(b))
        else:
            with pytest.raises(ValueError, match="shape mismatch"):
                window_deltas(np.zeros(a), np.zeros(b))


class TestConfiguration:
    def test_invalid_window_and_capacity_rejected(self):
        with pytest.raises(ValueError, match="window"):
            timelining(window=0).__enter__()
        with pytest.raises(ValueError, match="capacity"):
            timelining(capacity=0).__enter__()
        TIMELINE.configure()  # restore a sane global state
        TIMELINE.enabled = False

    def test_custom_paths_select_columns(self):
        system = CmpSystem(
            CmpConfig(app="fft", network="fsoi", num_nodes=16, seed=3)
        )
        with timelining(window=WINDOW, paths=["network.packets_*"]) as tl:
            system.run(400)
        assert tl.paths == [
            "network.packets_delivered", "network.packets_sent"
        ]
