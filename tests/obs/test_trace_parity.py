"""Trace parity between the engine variants.

The vectorized columnar engines (core, mesh, FSOI) claim to be
bit-exact stand-ins for the reference object-per-node loops.  The
results-equivalence suites check the *measured* quantities; this suite
pins the stronger claim that the **event streams** are identical too —
every trace event, in order, with the same packet ids.

Packet ids make this sharp: they used to come from a process-global
counter, so two otherwise identical runs traced different ids
depending on what had run earlier in the process.  ``CmpSystem`` now
allocates uids per instance, which these tests lock in.
"""

import pytest

from repro.cmp import CmpConfig, CmpSystem
from repro.obs import tracing

NETWORKS = ["fsoi", "mesh", "l0"]
CYCLES = 1200


def traced_events(network, **config_kwargs):
    config = CmpConfig(
        app="fft", network=network, num_nodes=16, seed=3, **config_kwargs
    )
    with tracing(capacity=1 << 20) as tracer:
        CmpSystem(config).run(CYCLES)
        assert tracer.dropped == 0
        return list(tracer.events())


class TestVectorizedParity:
    """vectorized=True and =False trace the exact same stream."""

    @pytest.mark.parametrize("network", NETWORKS)
    def test_event_streams_identical(self, network):
        vectorized = traced_events(network, vectorized=True)
        reference = traced_events(network, vectorized=False)
        assert len(vectorized) == len(reference)
        assert vectorized == reference

    def test_streams_nonempty_and_cover_network_events(self):
        events = traced_events("fsoi", vectorized=True)
        assert any(e.name == "tx" for e in events)
        assert any(e.name == "deliver" for e in events)


class TestFastForwardParity:
    """fast_forward only adds its own ``cat="loop"`` skip markers."""

    @pytest.mark.parametrize("network", NETWORKS)
    def test_identical_modulo_loop_events(self, network):
        fast = traced_events(network, fast_forward=True)
        naive = traced_events(network, fast_forward=False)
        assert [e for e in fast if e.cat != "loop"] == [
            e for e in naive if e.cat != "loop"
        ]

    def test_naive_loop_never_fast_forwards(self):
        naive = traced_events("fsoi", fast_forward=False)
        assert not any(e.name == "fast_forward" for e in naive)


class TestPacketIdDeterminism:
    """Packet uids are per-system, not process-history dependent."""

    def test_repeat_runs_trace_identical_ids(self):
        first = traced_events("fsoi")
        second = traced_events("fsoi")
        assert first == second

    def test_packet_ids_start_at_zero(self):
        events = traced_events("fsoi")
        uids = {e.packet for e in events if e.packet is not None}
        assert min(uids) == 0
