"""End-to-end tracing of full CmpSystem runs.

Covers the two load-bearing promises of the trace layer: a traced run
surfaces events from every instrumented subsystem in schema-valid
form, and turning tracing off changes *nothing* about the simulation
itself (identical results, no RNG consumption).
"""

import pytest

from repro.cmp import CmpConfig, CmpSystem
from repro.obs import TRACE, tracing, validate_trace_file

NUM_NODES = 16
CYCLES = 2000


def run(network, seed=0, traced=False, **tracing_kwargs):
    config = CmpConfig(num_nodes=NUM_NODES, app="ba", network=network, seed=seed)
    if not traced:
        return CmpSystem(config).run(CYCLES).to_dict(), None
    with tracing(**tracing_kwargs) as tracer:
        result = CmpSystem(config).run(CYCLES).to_dict()
    return result, tracer


class TestTracedRun:
    def test_fsoi_run_covers_every_category(self):
        _, tracer = run("fsoi", traced=True)
        counts = tracer.category_counts()
        for cat in ("fsoi", "coherence", "confirmation", "backoff"):
            assert counts.get(cat, 0) > 0, f"no {cat!r} events in {counts}"

    def test_fsoi_run_covers_protocol_event_names(self):
        _, tracer = run("fsoi", traced=True)
        names = {event.name for event in tracer.events()}
        for name in ("tx", "deliver", "collision", "confirmation",
                     "backoff", "l1_request", "dir_event"):
            assert name in names, f"no {name!r} events in {sorted(names)}"

    def test_mesh_run_emits_mesh_and_coherence_events(self):
        _, tracer = run("mesh", traced=True)
        counts = tracer.category_counts()
        assert counts.get("mesh", 0) > 0
        assert counts.get("coherence", 0) > 0
        names = {event.name for event in tracer.events()}
        assert "vc_alloc" in names and "eject" in names

    def test_traced_jsonl_export_is_schema_valid(self, tmp_path):
        _, tracer = run("fsoi", traced=True)
        path = tmp_path / "trace.jsonl"
        written = tracer.write_jsonl(path)
        assert validate_trace_file(path) == written > 0

    def test_node_filter_restricts_export(self, tmp_path):
        _, tracer = run("fsoi", traced=True)
        node_events = list(tracer.events(node=3))
        assert node_events
        assert all(e.node == 3 for e in node_events)

    def test_every_delivery_has_a_matching_tx(self):
        """Per-packet causality: a delivered packet uid was transmitted."""
        _, tracer = run("fsoi", traced=True, capacity=1 << 20)
        assert tracer.dropped == 0
        tx_uids = {e.packet for e in tracer.events(name="tx")}
        delivered = [e for e in tracer.events(name="deliver")]
        assert delivered
        for event in delivered:
            assert event.packet in tx_uids


class TestTracingIsPassive:
    """Tracing must be an observer: results identical either way."""

    @pytest.mark.parametrize("network", ["fsoi", "mesh"])
    def test_traced_run_matches_untraced_results(self, network):
        baseline, _ = run(network)
        traced, tracer = run(network, traced=True)
        assert traced == baseline
        assert tracer.emitted > 0  # the trace actually happened

    def test_tiny_ring_still_passive(self):
        """Drops in a saturated ring must not leak into simulation state."""
        baseline, _ = run("fsoi")
        traced, tracer = run("fsoi", traced=True, capacity=64)
        assert tracer.dropped > 0
        assert traced == baseline

    def test_category_filter_still_passive(self):
        baseline, _ = run("fsoi")
        traced, tracer = run("fsoi", traced=True, categories=["coherence"])
        assert set(tracer.category_counts()) == {"coherence"}
        assert traced == baseline

    def test_trace_left_disabled_after_runs(self):
        assert not TRACE.enabled
