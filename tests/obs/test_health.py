"""Health watchdogs: clean runs stay silent, injected faults alarm.

The two-sided contract from the module docstring: every detector is
cross-checked against the fault injector.  Clean seeded runs across
apps and networks must produce *zero* events (no false alarms from
barriers, cold-start collision bursts, or quiet windows), while a
killed data lane must trip the starvation and backoff-storm watchdogs.
Synthetic timelines and doctored systems then pin each detector's
firing condition in isolation.
"""

import json

import pytest

from repro.cmp import CmpConfig, CmpSystem
from repro.cmp.results import CmpResults
from repro.faults import FaultPlan, LaneFault
from repro.obs import (
    HealthConfig,
    HealthError,
    HealthEvent,
    check_health,
    render_health,
    timelining,
)
from repro.obs.health import (
    detect_backoff_storm,
    detect_conservation,
    detect_counter_leak,
    detect_starvation,
)

from tests.conftest import EQUIVALENCE_FAULT_PLAN


def run_with_health(cycles=2000, window=100, config=HealthConfig(), **kwargs):
    kwargs.setdefault("num_nodes", 16)
    kwargs.setdefault("seed", 3)
    system = CmpSystem(CmpConfig(**kwargs))
    with timelining(window=window) as timeline:
        system.run(cycles)
        return check_health(system=system, timeline=timeline, config=config)


def synthetic_timeline(paths, rows, window=100, num_nodes=16):
    """The dict form ``load_timeline_jsonl`` produces, built inline."""
    return {
        "meta": {"paths": list(paths), "window": window,
                 "num_nodes": num_nodes},
        "cycles": [window * (i + 1) for i in range(len(rows))],
        "deltas": [list(row) for row in rows],
    }


class TestCleanRunsAreSilent:
    """No false alarms on healthy seeded runs."""

    @pytest.mark.parametrize("app", ["fft", "ba", "lu"])
    def test_fsoi_apps_produce_zero_events(self, app):
        events = run_with_health(app=app, network="fsoi")
        assert events == [], render_health(events)

    @pytest.mark.parametrize("network", ["mesh", "l0"])
    def test_other_networks_produce_zero_events(self, network):
        events = run_with_health(app="fft", network=network)
        assert events == [], render_health(events)

    def test_injector_aware_ledger_stays_balanced(self):
        """The equivalence fault plan loses packets by design; the
        conservation and counter-leak ledgers must account for every
        injected fate rather than alarming on the losses."""
        events = run_with_health(
            app="fft", network="fsoi", faults=EQUIVALENCE_FAULT_PLAN
        )
        detectors = {event.detector for event in events}
        assert "conservation" not in detectors
        assert "counter_leak" not in detectors


class TestLaneKillTripsWatchdogs:
    """A permanently dead data lane must starve the system: packets
    pile up in retransmission (backoff storm) and progress stops
    (starvation)."""

    @pytest.fixture(scope="class")
    def lane_kill_events(self):
        plan = FaultPlan(
            label="lane-kill",
            lane_faults=(LaneFault(3, "data", start=500),),
            seed=7,
        )
        return run_with_health(
            cycles=6000, app="ba", network="fsoi", faults=plan
        )

    def test_detectors_fire(self, lane_kill_events):
        detectors = {event.detector for event in lane_kill_events}
        assert detectors == {"backoff_storm", "starvation"}

    def test_events_are_critical_and_after_the_kill(self, lane_kill_events):
        assert lane_kill_events
        for event in lane_kill_events:
            assert event.severity == "critical"
            assert event.cycle > 500


class TestDetectStarvation:
    PATHS = ("run.instructions", "network.packets_delivered")

    def test_fires_after_k_zero_windows(self):
        rows = [(50, 5), (0, 0), (0, 0), (0, 0), (40, 4)]
        events = detect_starvation(synthetic_timeline(self.PATHS, rows))
        assert len(events) == 1
        assert events[0].detector == "starvation"
        assert events[0].cycle == 400  # end of the starved stretch
        assert events[0].data["windows"] == 3

    def test_short_stalls_do_not_fire(self):
        rows = [(50, 5), (0, 0), (0, 0), (40, 4)]
        assert detect_starvation(synthetic_timeline(self.PATHS, rows)) == []

    def test_deliveries_excuse_zero_retirements(self):
        """Barrier phases retire nothing but keep traffic flowing."""
        rows = [(0, 3), (0, 2), (0, 1), (0, 4)]
        assert detect_starvation(synthetic_timeline(self.PATHS, rows)) == []

    def test_threshold_is_configurable(self):
        rows = [(0, 0), (0, 0)]
        timeline = synthetic_timeline(self.PATHS, rows)
        assert detect_starvation(timeline) == []
        config = HealthConfig(starvation_windows=2)
        assert len(detect_starvation(timeline, config)) == 1


class TestDetectBackoffStorm:
    BAND_PATHS = (
        "network.data.transmissions",
        "network.data.collision_events",
        "network.data.slots_elapsed",
    )

    def band_timeline(self, collisions, tx=32, slots=10):
        rows = [(tx, c, slots) for c in collisions]
        return synthetic_timeline(self.BAND_PATHS, rows)

    def test_band_facet_fires_above_closed_form(self):
        # p = 32/160 per node-slot; the Fig-3 closed form puts the
        # collision rate well under 0.5/node-slot, so 140 events in
        # 160 node-slots is far outside 3x the band.
        events = detect_backoff_storm(self.band_timeline([5, 140]))
        assert len(events) == 1
        assert events[0].severity == "warning"
        assert events[0].data["lane"] == "data"
        assert events[0].data["measured"] > events[0].data["expected"]

    def test_band_facet_skips_warmup_window(self):
        events = detect_backoff_storm(self.band_timeline([140, 5]))
        assert events == []

    def test_min_event_floor_suppresses_noise(self):
        events = detect_backoff_storm(self.band_timeline([0, 9]))
        assert events == []

    STALL_PATHS = ("network.packets_sent", "network.packets_delivered")

    def test_retry_stall_fires_on_outstanding_backlog(self):
        rows = [(10, 8), (0, 0), (0, 0), (0, 0)]
        events = detect_backoff_storm(
            synthetic_timeline(self.STALL_PATHS, rows)
        )
        assert len(events) == 1
        assert events[0].severity == "critical"
        assert events[0].data["backlog"] == 2

    def test_drained_network_never_stalls(self):
        rows = [(10, 10), (0, 0), (0, 0), (0, 0)]
        assert detect_backoff_storm(
            synthetic_timeline(self.STALL_PATHS, rows)
        ) == []

    def test_gave_up_packets_reduce_the_backlog(self):
        paths = self.STALL_PATHS + ("network.fault.gave_up_lost",)
        rows = [(10, 8, 2), (0, 0, 0), (0, 0, 0), (0, 0, 0)]
        assert detect_backoff_storm(synthetic_timeline(paths, rows)) == []


class TestEndStateInvariants:
    @pytest.fixture()
    def finished_system(self):
        system = CmpSystem(
            CmpConfig(app="fft", network="fsoi", num_nodes=16, seed=3)
        )
        system.run(1500)
        return system

    def test_clean_system_passes(self, finished_system):
        assert detect_counter_leak(finished_system) == []
        assert detect_conservation(finished_system) == []

    def test_counter_leak_catches_a_doctored_mirror(self, finished_system):
        network = finished_system.network
        lane = next(iter(network._lane_pending))
        network._lane_pending[lane] += 7
        events = detect_counter_leak(finished_system)
        assert any(
            e.detector == "counter_leak" and e.data["lane"] == lane.value
            for e in events
        )

    def test_counter_leak_catches_negative_counters(self, finished_system):
        finished_system.network.stats.refused.value = -1
        events = detect_counter_leak(finished_system)
        assert any("negative counter" in e.message for e in events)

    def test_conservation_catches_phantom_deliveries(self, finished_system):
        stats = finished_system.network.stats
        stats.delivered.value = int(stats.sent) + 5
        events = detect_conservation(finished_system)
        assert any(
            "delivered" in e.message and e.severity == "critical"
            for e in events
        )


class TestReporting:
    EVENT = HealthEvent(
        detector="starvation", severity="critical", cycle=1200,
        message="no progress", data={"windows": 4},
    )

    def test_render_ok_and_events(self):
        assert render_health([]) == "health: OK (no events)\n"
        report = render_health([self.EVENT])
        assert "1 event(s)" in report
        assert "starvation: no progress" in report

    def test_health_error_summarizes(self):
        error = HealthError([self.EVENT] * 5)
        assert "5 health event(s)" in str(error)
        assert str(error).endswith("; ...")
        assert error.events == [self.EVENT] * 5

    @pytest.fixture(scope="class")
    def small_result(self):
        system = CmpSystem(
            CmpConfig(app="fft", network="l0", num_nodes=16, seed=3)
        )
        return system.run(300)

    def test_event_round_trips_through_results(self, small_result):
        small_result.health = [self.EVENT.to_dict()]
        data = json.loads(json.dumps(small_result.to_dict()))
        assert data["health"] == [self.EVENT.to_dict()]
        assert CmpResults.from_dict(data).health == [self.EVENT.to_dict()]
        small_result.health = []

    def test_health_key_absent_when_clean(self, small_result):
        assert "health" not in small_result.to_dict()

    def test_events_sorted_by_cycle(self):
        later = HealthEvent(
            detector="backoff_storm", severity="warning", cycle=300,
            message="z",
        )
        earlier = HealthEvent(
            detector="conservation", severity="critical", cycle=100,
            message="a",
        )
        # check_health sorts; feed through a no-op call with events
        # built by the detectors themselves instead of resorting here.
        assert sorted(
            [later, earlier], key=lambda e: (e.cycle, e.detector, e.message)
        ) == [earlier, later]
