"""Tests for the per-phase cycle-loop profiler."""

import pytest

from repro.cmp import CmpConfig, CmpSystem
from repro.obs import PROFILER, PhaseProfiler, profiling


class TestPhaseProfiler:
    def test_add_accumulates(self):
        prof = PhaseProfiler()
        prof.add("net", 0.5)
        prof.add("net", 0.25)
        prof.add("cores", 1.0)
        assert prof.attributed_seconds == pytest.approx(1.75)

    def test_report_shares_sum_to_one(self):
        prof = PhaseProfiler()
        prof.add("a", 3.0)
        prof.add("b", 1.0)
        report = prof.report()
        assert sum(row["share"] for row in report.values()) == pytest.approx(1.0)
        assert report["a"]["share"] == pytest.approx(0.75)

    def test_report_sorted_heaviest_first(self):
        prof = PhaseProfiler()
        prof.add("light", 0.1)
        prof.add("heavy", 2.0)
        assert list(prof.report()) == ["heavy", "light"]

    def test_empty_report_has_no_nan(self):
        assert PhaseProfiler().report() == {}
        assert PhaseProfiler().attributed_seconds == 0.0

    def test_render_mentions_every_phase(self):
        prof = PhaseProfiler()
        prof.add("network", 0.5)
        prof.cycle_done()
        prof.stop()
        text = prof.render()
        assert "network" in text and "attributed" in text


class TestProfilingContext:
    def test_enables_and_restores(self):
        assert not PROFILER.enabled
        with profiling() as prof:
            assert prof is PROFILER
            assert PROFILER.enabled
        assert not PROFILER.enabled

    def test_reset_on_entry(self):
        PROFILER.add("stale", 9.0)
        with profiling() as prof:
            pass
        assert prof.attributed_seconds == 0.0

    def test_wall_frozen_on_exit(self):
        with profiling() as prof:
            pass
        wall = prof.wall_seconds
        assert wall == prof.wall_seconds  # stable after stop()


class TestProfiledRun:
    @pytest.mark.parametrize("network", ["fsoi", "mesh"])
    def test_phases_captured_for_real_run(self, network):
        config = CmpConfig(num_nodes=16, app="ba", network=network, seed=0)
        with profiling() as prof:
            CmpSystem(config).run(500)
        report = prof.report()
        for phase in ("calendar", "memory", "network", "cores"):
            assert phase in report, f"missing phase {phase!r} in {sorted(report)}"
        assert prof.cycles == 500
        assert 0 < prof.attributed_seconds <= prof.wall_seconds

    def test_profiled_run_matches_unprofiled_results(self):
        config = CmpConfig(num_nodes=16, app="ba", network="fsoi", seed=0)
        baseline = CmpSystem(config).run(500).to_dict()
        with profiling():
            profiled = CmpSystem(config).run(500).to_dict()
        assert profiled == baseline
