"""The zero-overhead-when-disabled promise, kept honest.

Every trace point in the hot loops compiles to ``if TRACE.enabled:``
followed by the emit call.  These tests pin down that the disabled
path (a) emits nothing, (b) costs on the order of one attribute load
and branch, and (c) leaves simulation results bit-for-bit identical —
the property the golden snapshots depend on.
"""

from time import perf_counter

from repro.cmp import CmpConfig, CmpSystem
from repro.obs import PROFILER, TRACE


def test_disabled_by_default():
    assert not TRACE.enabled
    assert not PROFILER.enabled


def test_disabled_run_emits_nothing():
    TRACE.clear()
    config = CmpConfig(num_nodes=16, app="ba", network="fsoi", seed=0)
    CmpSystem(config).run(500)
    assert TRACE.emitted == 0
    assert len(TRACE) == 0


def test_disabled_guard_cost_is_bounded():
    """The guard must stay O(attribute load + branch).

    The bound is deliberately generous (2 µs/check — two orders of
    magnitude above a bare attribute load on any modern machine) so the
    test only fires if someone replaces the guard with real work, not
    on a slow CI box.
    """
    iterations = 200_000
    start = perf_counter()
    for _ in range(iterations):
        if TRACE.enabled:
            TRACE.emit("never", cat="never")
    per_check = (perf_counter() - start) / iterations
    assert TRACE.emitted == 0
    assert per_check < 2e-6, f"disabled guard costs {per_check * 1e9:.0f}ns"


def test_disabled_run_results_identical_to_fresh_process_shape():
    """Same config, traced module imported, twice: identical results.

    Together with the golden snapshots (computed before the trace
    points existed) this pins 'instrumentation consumes no RNG and
    alters no scheduling'.
    """
    config = CmpConfig(num_nodes=16, app="oc", network="fsoi", seed=0)
    first = CmpSystem(config).run(500).to_dict()
    second = CmpSystem(config).run(500).to_dict()
    assert first == second
