"""Unit tests for the ring-buffered tracer and trace-event schema."""

import json

import pytest

from repro.obs import (
    TRACE,
    TraceEvent,
    Tracer,
    tracing,
    validate_event,
    validate_trace_file,
)


class TestTraceEvent:
    def test_instant_phase_and_scope(self):
        event = TraceEvent(name="tx", cat="fsoi", cycle=7, node=3, lane="meta")
        assert event.ph == "i"
        chrome = event.to_chrome()
        assert chrome["ph"] == "i"
        assert chrome["s"] == "t"
        assert chrome["ts"] == 7
        assert chrome["pid"] == 3
        assert chrome["tid"] == "meta"

    def test_span_phase_carries_dur(self):
        event = TraceEvent(name="tx", cat="fsoi", cycle=7, dur=4)
        chrome = event.to_chrome()
        assert chrome["ph"] == "X"
        assert chrome["dur"] == 4
        assert "s" not in chrome

    def test_packet_and_extra_args_ride_in_args(self):
        event = TraceEvent(
            name="tx", cat="fsoi", cycle=1, packet=42, args={"dst": 5}
        )
        assert event.to_chrome()["args"] == {"packet": 42, "dst": 5}

    def test_defaults_for_missing_identity(self):
        chrome = TraceEvent(name="x", cat="c", cycle=0).to_chrome()
        assert chrome["pid"] == 0       # no node -> pid 0
        assert chrome["tid"] == "c"     # no lane -> category lane


class TestTracer:
    def test_emit_and_len(self):
        tracer = Tracer(capacity=8)
        tracer.emit("a", cat="x")
        tracer.emit("b", cat="y", cycle=3)
        assert len(tracer) == 2
        assert tracer.emitted == 2

    def test_cycle_defaults_to_tracer_cycle(self):
        tracer = Tracer()
        tracer.cycle = 99
        tracer.emit("a", cat="x")
        assert next(tracer.events()).cycle == 99

    def test_ring_drops_oldest_and_counts(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.emit(f"e{i}", cat="x")
        assert len(tracer) == 3
        assert tracer.emitted == 5
        assert tracer.dropped == 2
        assert [e.name for e in tracer.events()] == ["e2", "e3", "e4"]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_category_allow_list_filters_at_emit(self):
        tracer = Tracer(categories=["fsoi"])
        tracer.emit("keep", cat="fsoi")
        tracer.emit("drop", cat="coherence")
        assert [e.name for e in tracer.events()] == ["keep"]
        assert tracer.emitted == 1

    def test_event_filters_compose(self):
        tracer = Tracer()
        tracer.emit("tx", cat="fsoi", node=1, lane="meta", packet=10)
        tracer.emit("tx", cat="fsoi", node=1, lane="data", packet=11)
        tracer.emit("rx", cat="fsoi", node=2, lane="meta", packet=10)
        assert len(list(tracer.events(node=1))) == 2
        assert len(list(tracer.events(node=1, lane="meta"))) == 1
        assert len(list(tracer.events(packet=10))) == 2
        assert len(list(tracer.events(name="rx", cat="fsoi"))) == 1
        assert not list(tracer.events(node=99))

    def test_category_counts_sorted(self):
        tracer = Tracer()
        tracer.emit("a", cat="z")
        tracer.emit("b", cat="a")
        tracer.emit("c", cat="z")
        assert tracer.category_counts() == {"a": 1, "z": 2}

    def test_clear(self):
        tracer = Tracer(capacity=2)
        for i in range(4):
            tracer.emit("e", cat="x")
        tracer.clear()
        assert len(tracer) == 0 and tracer.emitted == 0 and tracer.dropped == 0


class TestExport:
    def test_write_jsonl_roundtrip_validates(self, tmp_path):
        tracer = Tracer()
        tracer.emit("tx", cat="fsoi", cycle=1, node=0, lane="meta", dur=4)
        tracer.emit("collision", cat="fsoi", cycle=2, node=3, senders=[1, 2])
        path = tmp_path / "t.jsonl"
        assert tracer.write_jsonl(path) == 2
        assert validate_trace_file(path) == 2
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["ph"] == "X"
        assert lines[1]["args"]["senders"] == [1, 2]

    def test_write_jsonl_applies_filters(self, tmp_path):
        tracer = Tracer()
        tracer.emit("a", cat="fsoi", node=0)
        tracer.emit("b", cat="fsoi", node=1)
        path = tmp_path / "t.jsonl"
        assert tracer.write_jsonl(path, node=1) == 1
        assert json.loads(path.read_text())["name"] == "b"

    def test_write_chrome_json_shape(self, tmp_path):
        tracer = Tracer()
        tracer.emit("a", cat="fsoi", cycle=5)
        path = tmp_path / "t.json"
        assert tracer.write_chrome_json(path) == 1
        data = json.loads(path.read_text())
        assert isinstance(data["traceEvents"], list)
        validate_event(data["traceEvents"][0])


class TestValidation:
    def good(self):
        return {"name": "tx", "cat": "fsoi", "ph": "i", "ts": 1, "pid": 0,
                "tid": "meta", "s": "t"}

    def test_good_event_passes(self):
        validate_event(self.good())

    @pytest.mark.parametrize("key", ["name", "cat", "ph", "ts", "pid", "tid"])
    def test_missing_required_key_rejected(self, key):
        event = self.good()
        del event[key]
        with pytest.raises(ValueError, match=key):
            validate_event(event)

    def test_bad_phase_rejected(self):
        event = self.good()
        event["ph"] = "B"
        with pytest.raises(ValueError, match="phase"):
            validate_event(event)

    def test_span_without_dur_rejected(self):
        event = self.good()
        event["ph"] = "X"
        del event["s"]
        with pytest.raises(ValueError, match="dur"):
            validate_event(event)

    def test_non_numeric_ts_rejected(self):
        event = self.good()
        event["ts"] = "later"
        with pytest.raises(ValueError, match="ts"):
            validate_event(event)

    def test_file_validation_reports_line_numbers(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(self.good()) + "\n" + "{not json}\n"
        )
        with pytest.raises(ValueError, match=":2"):
            validate_trace_file(path)

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n")
        with pytest.raises(ValueError, match="empty"):
            validate_trace_file(path)


class TestTracingContext:
    def test_enables_then_restores_disabled(self):
        assert not TRACE.enabled
        with tracing() as tracer:
            assert tracer is TRACE
            assert TRACE.enabled
        assert not TRACE.enabled

    def test_events_survive_exit(self):
        with tracing() as tracer:
            TRACE.emit("a", cat="x")
        assert [e.name for e in tracer.events()] == ["a"]

    def test_entry_clears_previous_trace(self):
        with tracing() as tracer:
            TRACE.emit("old", cat="x")
        with tracing() as tracer:
            TRACE.emit("new", cat="x")
        assert [e.name for e in tracer.events()] == ["new"]

    def test_capacity_and_categories_applied(self):
        with tracing(capacity=2, categories=["keep"]) as tracer:
            for i in range(3):
                TRACE.emit(f"e{i}", cat="keep")
            TRACE.emit("x", cat="other")
        assert len(tracer) == 2
        assert tracer.dropped == 1
        assert all(e.cat == "keep" for e in tracer.events())

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            with tracing(capacity=0):
                pass
