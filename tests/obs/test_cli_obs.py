"""The observability CLI surface: ``run --timeline/--health``,
``trace --summary/--timeline``, ``profile --json``, ``faults
--strict-health`` and the ``repro top`` dashboard.

Everything drives :func:`repro.cli.main` exactly as a shell would and
asserts on the printed contract — exit codes, report lines, and the
validity of every file the commands leave behind.
"""

import json

import pytest

from repro.cli import main
from repro.obs import (
    load_timeline_jsonl,
    validate_openmetrics,
    validate_trace_file,
)

RUN = ["--app", "fft", "--nodes", "16", "--cycles", "1500", "--seed", "3"]


class TestRunTimeline:
    def test_timeline_and_openmetrics_exports(self, tmp_path, capsys):
        timeline = tmp_path / "run.timeline.jsonl"
        metrics = tmp_path / "metrics.txt"
        code = main(["run", *RUN, "--timeline", str(timeline),
                     "--openmetrics", str(metrics)])
        out = capsys.readouterr().out
        assert code == 0
        assert "timeline      15 windows of 100 cycles" in out
        assert "openmetrics" in out
        loaded = load_timeline_jsonl(timeline)
        assert loaded["meta"]["app"] == "fft"
        assert len(loaded["cycles"]) == 15
        assert validate_openmetrics(metrics.read_text()) > 0

    def test_clean_run_reports_ok_health(self, capsys):
        code = main(["run", *RUN, "--health"])
        out = capsys.readouterr().out
        assert code == 0
        assert "health: OK (no events)" in out

    def test_strict_health_passes_clean_runs(self, capsys):
        assert main(["run", *RUN, "--strict-health"]) == 0
        assert "health: OK" in capsys.readouterr().out


class TestFaultsHealth:
    def test_lane_kill_fails_strict_health(self, capsys):
        code = main([
            "faults", "--app", "ba", "--nodes", "16", "--cycles", "6000",
            "--kill", "3:data:500", "--strict-health",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "starvation" in out
        assert "backoff_storm" in out
        assert "--strict-health" in out


class TestTraceCli:
    def test_summary_and_merged_timeline(self, tmp_path, capsys):
        out_path = tmp_path / "trace.jsonl"
        code = main(["trace", *RUN, "--out", str(out_path),
                     "--summary", "--timeline"])
        out = capsys.readouterr().out
        assert code == 0
        assert "counter events merged" in out
        assert "trace summary" in out or "events by category" in out.lower()
        assert validate_trace_file(out_path) > 0

    def test_overflow_prints_drop_warning(self, tmp_path, capsys):
        out_path = tmp_path / "trace.jsonl"
        code = main(["trace", *RUN, "--out", str(out_path),
                     "--buffer", "100"])
        out = capsys.readouterr().out
        assert code == 0
        assert "warning: ring buffer overflowed" in out


class TestProfileCli:
    def test_json_report_is_parseable(self, capsys):
        code = main(["profile", *RUN, "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["app"] == "fft"
        assert report["cycles"] == 1500
        assert report["total_cycles"] == 1500
        assert report["phases"]
        for phase in report["phases"].values():
            assert set(phase) == {"seconds", "share"}


class TestTopCli:
    def test_once_renders_final_frame_and_archive(self, tmp_path, capsys):
        archive = tmp_path / "top.timeline.jsonl"
        code = main(["top", *RUN, "--once", "--out", str(archive)])
        out = capsys.readouterr().out
        assert code == 0
        assert "repro top — fft on fsoi, 16 nodes, seed 3" in out
        assert "health OK" in out
        assert "cycle 1,500/1,500 (100%)" in out
        assert f"timeline: 15 windows -> {archive}" in out
        assert len(load_timeline_jsonl(archive)["cycles"]) == 15

    def test_row_budget_cut_points_at_flag(self, capsys):
        main(["top", *RUN, "--once", "--rows", "3"])
        out = capsys.readouterr().out
        assert "more paths; raise --rows)" in out
        # exactly 3 sparkline rows survive the cut
        assert sum(
            1 for line in out.splitlines() if line.startswith("  network.")
            or line.startswith("  run.") or line.startswith("  sync.")
        ) == 3

    def test_from_renders_archived_timeline(self, tmp_path, capsys):
        archive = tmp_path / "top.timeline.jsonl"
        main(["top", *RUN, "--once", "--out", str(archive)])
        capsys.readouterr()
        code = main(["top", "--from", str(archive)])
        out = capsys.readouterr().out
        assert code == 0
        assert "repro top — fft on fsoi, 16 nodes, seed 3" in out
        # archived frames have no run target, so no progress/eta block
        assert "cycle 1,500/1,500" not in out

    def test_custom_paths_restrict_rows(self, capsys):
        main(["top", *RUN, "--once", "--paths", "network.packets_*"])
        out = capsys.readouterr().out
        assert "network.packets_delivered" in out
        assert "run.instructions" not in out

    def test_archive_matches_uninterrupted_run(self, tmp_path, capsys):
        """The sliced driver loop samples the same windows as one
        ``repro run --timeline`` of the same seed."""
        top_archive = tmp_path / "top.timeline.jsonl"
        run_archive = tmp_path / "run.timeline.jsonl"
        main(["top", *RUN, "--once", "--out", str(top_archive)])
        main(["run", *RUN, "--timeline", str(run_archive)])
        capsys.readouterr()
        assert top_archive.read_text() == run_archive.read_text()
