"""Tests for the corona-style token-ring optical crossbar."""

import numpy as np
import pytest

from repro.corona.network import CoronaConfig, CoronaNetwork
from repro.net.packet import LaneKind, Packet


def make(**kwargs):
    kwargs.setdefault("num_nodes", 16)
    return CoronaNetwork(CoronaConfig(**kwargs))


def run(net, cycles, start=0):
    for cycle in range(start, start + cycles):
        net.tick(cycle)


class TestTokenArbitration:
    def test_single_packet_waits_for_token(self):
        net = make()
        p = Packet(src=5, dst=3, lane=LaneKind.META)
        net.try_send(p, 0)
        run(net, 60)
        assert p.deliver_cycle > 0
        # Token wait bounded by one full round.
        wait = p.first_tx_cycle - p.enqueue_cycle
        assert 0 <= wait <= net.config.token_round_cycles + 1

    def test_no_collisions_ever(self):
        """All contenders for one destination serialize on the token."""
        net = make()
        packets = [
            Packet(src=src, dst=0, lane=LaneKind.META) for src in range(1, 9)
        ]
        for p in packets:
            net.try_send(p, 0)
        run(net, 300)
        assert all(p.deliver_cycle > 0 for p in packets)
        assert all(p.retries == 0 for p in packets)
        # Transmissions never overlap on the channel.
        spans = sorted(
            (p.final_tx_cycle, p.final_tx_cycle + 2) for p in packets
        )
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert s2 >= e1

    def test_token_held_during_data_serialization(self):
        net = make()
        a = Packet(src=1, dst=0, lane=LaneKind.DATA)
        b = Packet(src=2, dst=0, lane=LaneKind.DATA)
        net.try_send(a, 0)
        net.try_send(b, 0)
        run(net, 120)
        assert abs(a.final_tx_cycle - b.final_tx_cycle) >= 5

    def test_distinct_destinations_parallel(self):
        net = make()
        a = Packet(src=1, dst=0, lane=LaneKind.META)
        b = Packet(src=2, dst=3, lane=LaneKind.META)
        net.try_send(a, 0)
        net.try_send(b, 0)
        run(net, 60)
        # Independent channels: both go within one token round.
        assert max(a.deliver_cycle, b.deliver_cycle) <= 20


class TestBookkeeping:
    def test_injection_limit(self):
        net = make(injection_queue=2)
        assert net.try_send(Packet(src=0, dst=1, lane=LaneKind.META), 0)
        assert net.try_send(Packet(src=0, dst=2, lane=LaneKind.META), 0)
        assert not net.try_send(Packet(src=0, dst=3, lane=LaneKind.META), 0)

    def test_quiescence_and_conservation(self):
        net = make(num_nodes=8)
        delivered = []
        for node in range(8):
            net.set_delivery_callback(node, lambda p: delivered.append(p.uid))
        rng = np.random.default_rng(1)
        sent = []
        for cycle in range(200):
            for src in range(8):
                if rng.random() < 0.05:
                    dst = int(rng.integers(0, 7))
                    dst = dst if dst < src else dst + 1
                    p = Packet(src=src, dst=dst, lane=LaneKind.META)
                    if net.try_send(p, cycle):
                        sent.append(p.uid)
            net.tick(cycle)
        cycle = 200
        while not net.quiescent() and cycle < 2000:
            net.tick(cycle)
            cycle += 1
        assert net.quiescent()
        assert sorted(delivered) == sorted(sent)

    def test_token_wait_recorded(self):
        net = make()
        net.try_send(Packet(src=9, dst=2, lane=LaneKind.META), 0)
        run(net, 40)
        waits = net.stats.group.as_dict()["token_wait"]
        assert waits["count"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CoronaConfig(token_round_cycles=0)
