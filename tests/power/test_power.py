"""Tests for the energy/power models (Figure 8)."""

import pytest

from repro.power.mesh_power import MeshPowerModel
from repro.power.optical import FsoiPowerModel
from repro.power.system import EnergyReport, SystemPowerModel


class TestFsoiPower:
    model = FsoiPowerModel()

    def test_static_power_matches_paper(self):
        # §7.2: "an insignificant 1.8 W of average power" for 16 nodes.
        static = self.model.static_power(16)
        assert 1.0 < static < 2.0

    def test_energy_per_bit(self):
        # 0.18 pJ/bit transmit energy at 40 Gbps.
        energy = self.model.transmit_energy(1)
        assert energy == pytest.approx(0.1815e-12, rel=0.01)

    def test_receivers_always_on_dominate(self):
        static = self.model.static_power(16)
        rx_only = (
            self.model.receivers_per_node() * self.model.link_power.receiver * 16
        )
        assert rx_only / static > 0.9

    def test_average_power_includes_dynamic(self):
        quiet = self.model.average_power(0, 10_000, 16)
        busy = self.model.average_power(10**9, 10_000, 16)
        assert busy > quiet
        assert quiet == pytest.approx(self.model.static_power(16))

    def test_zero_cycles(self):
        assert self.model.average_power(0, 0, 16) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            self.model.transmit_energy(-1)
        with pytest.raises(ValueError):
            self.model.energy(0, -1, 16)


class TestMeshPower:
    model = MeshPowerModel()

    def test_dynamic_energy_composition(self):
        activity = {
            "buffer_writes": 100,
            "buffer_reads": 100,
            "flits_routed": 100,
            "link_flits": 100,
        }
        energy = self.model.dynamic_energy(activity)
        per_flit = (2.0 + 1.5 + 3.0 + 0.3 + 5.0) * 1e-12
        assert energy == pytest.approx(100 * per_flit)

    def test_static_dominates_at_low_activity(self):
        activity = {"buffer_writes": 10, "buffer_reads": 10, "flits_routed": 10, "link_flits": 10}
        total = self.model.energy(activity, 10_000, 16)
        static = self.model.static_power(16) * 10_000 / 3.3e9
        assert static / total > 0.99

    def test_network_gap_versus_fsoi(self):
        # Figure 8: mesh network energy ~20x the FSOI subsystem.
        seconds_cycles = 100_000
        mesh = self.model.energy({}, seconds_cycles, 16)
        fsoi = FsoiPowerModel().energy(10**7, seconds_cycles, 16)
        assert 10 < mesh / fsoi < 40


class TestEnergyReport:
    def make_report(self, network=1.0, core=10.0, leak=5.0, seconds=1.0, instr=100):
        return EnergyReport(
            network_energy=network,
            core_energy=core,
            leakage_energy=leak,
            seconds=seconds,
            instructions=instr,
        )

    def test_total_and_power(self):
        report = self.make_report()
        assert report.total_energy == 16.0
        assert report.average_power == 16.0

    def test_edp_scales_with_time_squared(self):
        fast = self.make_report(seconds=1.0)
        slow = self.make_report(seconds=2.0)
        assert slow.energy_delay_product() == 2 * fast.energy_delay_product()

    def test_relative_to_normalizes_work(self):
        baseline = self.make_report(instr=100)
        faster = self.make_report(network=0.5, core=5.0, leak=2.5, instr=200)
        rel = faster.relative_to(baseline)
        # Half the energy for twice the work -> quarter relative energy.
        assert rel["total"] == pytest.approx(0.25)
        assert rel["network"] + rel["core_cache"] + rel["leakage"] == pytest.approx(
            rel["total"]
        )

    def test_relative_requires_progress(self):
        with pytest.raises(ValueError):
            self.make_report().relative_to(self.make_report(instr=0))


class TestSystemPowerModel:
    def test_full_pipeline_on_cmp_results(self):
        from repro.cmp import run_app

        model = SystemPowerModel()
        mesh = run_app("ba", "mesh", num_nodes=16, cycles=3000)
        fsoi = run_app("ba", "fsoi", num_nodes=16, cycles=3000)
        report_mesh = model.report(mesh)
        report_fsoi = model.report(fsoi)
        # Paper §7.2: 156 W baseline vs 121 W FSOI; we check the band.
        assert 120 < report_mesh.average_power < 180
        assert report_fsoi.average_power < report_mesh.average_power
        rel = report_fsoi.relative_to(report_mesh)
        assert rel["total"] < 0.95  # energy savings
        assert rel["network"] < 0.1  # the ~20x network gap
        edp_gain = (
            report_mesh.energy_delay_product() / report_fsoi.energy_delay_product()
        )
        assert edp_gain > 1.2

    def test_idealized_networks_get_nominal_energy(self):
        from repro.cmp import run_app

        model = SystemPowerModel()
        l0 = run_app("ba", "l0", num_nodes=16, cycles=2000)
        report = model.report(l0)
        assert report.network_energy > 0
        assert report.network_energy < 1e-3  # dynamic bit energy only
