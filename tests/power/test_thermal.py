"""Tests for the §3.3 thermal model of the 3-D FSOI stack."""

import pytest

from repro.power.thermal import (
    CoolingOption,
    ThermalReport,
    ThermalStack,
)


class TestResistances:
    stack = ThermalStack()

    def test_conduction_resistance_scales_with_thickness(self):
        thin = self.stack.conduction_resistance(100e-6, 150.0)
        thick = self.stack.conduction_resistance(400e-6, 150.0)
        assert thick == pytest.approx(4 * thin)

    def test_microchannel_beats_air(self):
        assert self.stack.interface_resistance(
            CoolingOption.MICROCHANNEL
        ) < self.stack.interface_resistance(CoolingOption.AIR)

    def test_spreading_resistance_positive(self):
        assert self.stack.lateral_spreading_resistance() > 0

    def test_thicker_spreader_spreads_better(self):
        thin = ThermalStack(spreader_thickness=200e-6)
        thick = ThermalStack(spreader_thickness=800e-6)
        assert (
            thick.lateral_spreading_resistance()
            < thin.lateral_spreading_resistance()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ThermalStack(die_area=0)
        with pytest.raises(ValueError):
            ThermalStack(optical_layer_fraction=1.5)
        with pytest.raises(ValueError):
            self.stack.conduction_resistance(1e-6, 0)


class TestEvaluation:
    stack = ThermalStack()

    def test_paper_conclusion_air_insufficient(self):
        # §3.3: "continued scaling ... already making air cooling
        # increasingly insufficient"; at the measured ~150 W chip power
        # a displaced air path cannot hold the junctions.
        assert not self.stack.evaluate(150.0, CoolingOption.AIR).feasible

    def test_paper_conclusion_microchannels_work(self):
        # §3.3 / refs [33, 34]: microchannel liquid cooling carries the
        # full FSOI system comfortably.
        report = self.stack.evaluate(150.0, CoolingOption.MICROCHANNEL)
        assert report.feasible
        assert report.vcsel_margin > 10

    def test_spreader_is_marginal(self):
        # High-conductivity spreaders alone sit near the edge of the
        # envelope at full chip power — the VCSEL layer's 85 C limit
        # binds first.
        report = self.stack.evaluate(150.0, CoolingOption.DIAMOND_SPREADER)
        assert report.cmos_junction < 120
        assert not report.vcsel_ok

    def test_temperatures_monotone_in_power(self):
        low = self.stack.evaluate(50.0, CoolingOption.MICROCHANNEL)
        high = self.stack.evaluate(150.0, CoolingOption.MICROCHANNEL)
        assert high.cmos_junction > low.cmos_junction
        assert high.vcsel_layer > low.vcsel_layer

    def test_vcsel_hotter_than_cmos(self):
        # The photonics die dissipates through the GaAs substrate on
        # top of the CMOS layer, so it always runs at least as hot.
        report = self.stack.evaluate(150.0, CoolingOption.MICROCHANNEL)
        assert report.vcsel_layer >= report.cmos_junction

    def test_zero_power_is_ambient(self):
        report = self.stack.evaluate(0.0, CoolingOption.AIR)
        assert report.cmos_junction == pytest.approx(45.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            self.stack.evaluate(-1.0, CoolingOption.AIR)


class TestMaxPower:
    stack = ThermalStack()

    def test_ordering(self):
        air = self.stack.max_power(CoolingOption.AIR)
        spreader = self.stack.max_power(CoolingOption.DIAMOND_SPREADER)
        micro = self.stack.max_power(CoolingOption.MICROCHANNEL)
        assert micro > spreader > air

    def test_max_power_is_feasible_boundary(self):
        power = self.stack.max_power(CoolingOption.AIR)
        assert self.stack.evaluate(power, CoolingOption.AIR).feasible
        assert not self.stack.evaluate(power + 2, CoolingOption.AIR).feasible

    def test_survey_covers_all_options(self):
        survey = self.stack.survey(121.0)
        assert set(survey) == set(CoolingOption)
        assert all(isinstance(r, ThermalReport) for r in survey.values())
