"""ETA estimation and the live sweep progress line."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analytics import ETAEstimator, SweepTelemetry, format_eta
from repro.sweep import (
    PointOutcome,
    SweepHeartbeat,
    SweepSpec,
    make_point,
    run_sweep,
)


def _outcome(status="ok", cached=False, elapsed=1.0, app="oc"):
    point = make_point(app, "fsoi", cycles=100)
    return PointOutcome(
        point=point, status=status, key="k-" + app,
        result={"app": app} if status == "ok" else None,
        error=None if status == "ok" else "boom",
        cached=cached, elapsed=elapsed,
    )


class TestETAEstimator:
    def test_no_samples_means_no_estimate(self):
        eta = ETAEstimator()
        assert eta.eta_seconds(0, 10) is None

    def test_cached_points_carry_no_timing_signal(self):
        eta = ETAEstimator()
        eta.record(0.000001, cached=True)
        eta.record(0.000002, cached=True)
        assert eta.eta_seconds(2, 10) is None
        # ...and once an executed sample lands, they do not dilute it.
        eta.record(4.0)
        assert eta.mean_point_seconds == 4.0
        assert eta.eta_seconds(3, 10) == pytest.approx(7 * 4.0)

    def test_workers_divide_the_estimate(self):
        serial, pooled = ETAEstimator(workers=1), ETAEstimator(workers=4)
        for est in (serial, pooled):
            est.record(2.0)
        assert serial.eta_seconds(1, 9) == pytest.approx(16.0)
        assert pooled.eta_seconds(1, 9) == pytest.approx(4.0)

    def test_done_equals_total_means_zero(self):
        eta = ETAEstimator()
        eta.record(3.0)
        assert eta.eta_seconds(5, 5) == 0.0

    def test_negative_wall_times_are_clamped(self):
        eta = ETAEstimator()
        eta.record(-1.0)
        assert eta.eta_seconds(1, 4) == 0.0

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            ETAEstimator(workers=0)
        eta = ETAEstimator()
        eta.record(1.0)
        with pytest.raises(ValueError):
            eta.eta_seconds(5, 4)
        with pytest.raises(ValueError):
            eta.eta_seconds(-1, 4)

    @given(
        wall=st.floats(min_value=1e-3, max_value=1e3),
        total=st.integers(min_value=1, max_value=60),
        workers=st.integers(min_value=1, max_value=8),
    )
    def test_constant_wall_time_eta_is_monotone_and_nonnegative(
        self, wall, total, workers
    ):
        """Under constant per-point wall time the ETA only moves down."""
        eta = ETAEstimator(workers=workers)
        previous = None
        for done in range(1, total + 1):
            eta.record(wall)
            estimate = eta.eta_seconds(done, total)
            assert estimate is not None
            assert estimate >= 0.0
            if previous is not None:
                assert estimate <= previous + 1e-9
            previous = estimate
        assert previous == pytest.approx(0.0)


class TestFormatEta:
    @pytest.mark.parametrize("seconds,expected", [
        (None, "--"),
        (0.0, "0s"),
        (45.0, "45s"),
        (200.0, "3m20s"),
        (3720.0, "1h02m"),
        (-5.0, "0s"),
    ])
    def test_rendering(self, seconds, expected):
        assert format_eta(seconds) == expected


class TestSweepTelemetry:
    def test_counters_track_outcomes(self):
        telemetry = SweepTelemetry(total=4)
        telemetry.on_progress(1, 4, _outcome())
        telemetry.on_progress(2, 4, _outcome(cached=True, elapsed=0.0))
        telemetry.on_progress(3, 4, _outcome(status="failed"))
        assert (telemetry.ok, telemetry.from_cache, telemetry.failed) \
            == (2, 1, 1)
        line = telemetry.line()
        assert "[3/4]" in line
        assert "ok 1" in line and "cache 1" in line and "failed 1" in line

    def test_heartbeat_feeds_in_flight_labels(self):
        telemetry = SweepTelemetry(total=4)
        telemetry.on_heartbeat(SweepHeartbeat(
            elapsed=1.5, done=1, total=4,
            in_flight=("a/fsoi", "b/fsoi", "c/fsoi"), workers=2,
        ))
        line = telemetry.line()
        assert "running a/fsoi, b/fsoi, +1" in line
        assert telemetry.elapsed == 1.5

    def test_live_mode_redraws_one_line(self):
        stream = io.StringIO()
        telemetry = SweepTelemetry(total=2, live=True, stream=stream)
        telemetry.on_progress(1, 2, _outcome())
        telemetry.on_progress(2, 2, _outcome())
        telemetry.close()
        text = stream.getvalue()
        assert text.count("\r\x1b[2K") == 2
        assert text.endswith("\n")
        # close() is idempotent: no stray blank lines on a second call.
        telemetry.close()
        assert stream.getvalue() == text

    def test_non_live_mode_writes_nothing(self):
        stream = io.StringIO()
        telemetry = SweepTelemetry(total=1, stream=stream)
        telemetry.on_progress(1, 1, _outcome())
        telemetry.close()
        assert stream.getvalue() == ""

    def test_wired_into_run_sweep(self):
        spec = SweepSpec(apps=("ba", "lu"), networks=("fsoi",), cycles=200)
        telemetry = SweepTelemetry(total=2)
        report = run_sweep(
            spec, workers=1,
            progress=telemetry.on_progress,
            heartbeat=telemetry.on_heartbeat,
        )
        assert report.failed == 0
        assert telemetry.done == 2
        assert telemetry.ok == 2
        assert telemetry.eta.samples == 2
