"""The run ledger: ingestion, identity, selection, diffing."""

import json

import pytest

from repro.analytics import RunStore
from repro.faults import FaultPlan, LaneFault
from repro.sweep import SweepSpec, make_point, run_sweep


def _fake_execute(point_dict):
    return {
        "app": point_dict["app"],
        "network": point_dict["network"],
        "num_nodes": point_dict["num_nodes"],
        "cycles": point_dict["cycles"],
        "seed": point_dict["seed"],
        "instructions": 1000 * (1 + point_dict["seed"]),
        "packets_delivered": 50,
        "latency_breakdown": {"total": 10.0},
    }


class TestIngestReport:
    def test_roundtrip_preserves_results_and_timing(
        self, small_report, tmp_path
    ):
        with RunStore(tmp_path / "ledger.sqlite") as store:
            info = store.ingest_report(small_report, label="smoke")
            assert info.points == 2
            assert info.label == "smoke"
            points = store.select(info.run_id)
        assert len(points) == 2
        by_network = {p.network: p for p in points}
        assert set(by_network) == {"fsoi", "mesh"}
        for point in points:
            assert point.ok
            assert point.result["instructions"] > 0
            assert point.elapsed > 0.0  # live reports keep timings

    def test_reingest_is_idempotent(self, small_report, tmp_path):
        with RunStore(tmp_path / "ledger.sqlite") as store:
            first = store.ingest_report(small_report)
            second = store.ingest_report(small_report)
            assert first.run_id == second.run_id
            assert len(store.runs()) == 1
            assert len(store.select()) == 2

    def test_run_lookup(self, small_report, tmp_path):
        with RunStore(tmp_path / "ledger.sqlite") as store:
            info = store.ingest_report(small_report)
            assert store.run(info.run_id).points == 2
            with pytest.raises(KeyError):
                store.run("nope")


class TestIngestJsonl:
    def test_jsonl_and_metrics_archive(self, tmp_path):
        spec = SweepSpec(apps=("ba",), networks=("fsoi",), cycles=300)
        jsonl = tmp_path / "results.jsonl"
        metrics_dir = tmp_path / "metrics"
        run_sweep(spec, workers=1, jsonl_path=jsonl,
                  metrics_path=metrics_dir)
        with RunStore(tmp_path / "ledger.sqlite") as store:
            info = store.ingest_jsonl(jsonl, metrics_dir=metrics_dir)
            (point,) = store.select(info.run_id)
        assert point.metrics is not None
        assert point.metrics["run"]["cycles"] == 300

    def test_corrupt_lines_are_skipped(self, tmp_path):
        spec = SweepSpec(apps=("ba", "lu"), networks=("fsoi",), cycles=300)
        jsonl = tmp_path / "results.jsonl"
        run_sweep(spec, workers=1, jsonl_path=jsonl)
        with open(jsonl, "a") as handle:
            handle.write('{"index": 99, "truncat')  # interrupted write
        with RunStore(tmp_path / "ledger.sqlite") as store:
            info = store.ingest_jsonl(jsonl)
            assert info.points == 2


class TestSelect:
    def test_filters_and_aliases(self, tmp_path):
        points = [
            make_point("ba", "fsoi", num_nodes=16, seed=0, cycles=100),
            make_point("ba", "mesh", num_nodes=16, seed=0, cycles=100),
            make_point("lu", "fsoi", num_nodes=64, seed=1, cycles=100),
        ]
        report = run_sweep(points, workers=1, execute=_fake_execute)
        with RunStore(tmp_path / "ledger.sqlite") as store:
            store.ingest_report(report)
            assert len(store.select(network="fsoi")) == 2
            assert len(store.select(network="fsoi", nodes=16)) == 1
            assert len(store.select(app="lu", seed=1)) == 1
            assert len(store.select(status="ok")) == 3
            with pytest.raises(ValueError, match="unknown filter"):
                store.select(nope=1)

    def test_fault_plans_file_under_ledger_label(self, tmp_path):
        plan = FaultPlan(
            label="kill-3",
            lane_faults=(LaneFault(node=3, lane="meta"),),
        )
        anonymous = FaultPlan(
            lane_faults=(LaneFault(node=4, lane="meta"),),
        )
        points = [
            make_point("ba", "fsoi", cycles=100),
            make_point("ba", "fsoi", cycles=100, faults=plan),
            make_point("ba", "fsoi", cycles=100, faults=anonymous),
        ]
        report = run_sweep(points, workers=1, execute=_fake_execute)
        with RunStore(tmp_path / "ledger.sqlite") as store:
            store.ingest_report(report)
            assert len(store.select(faults="kill-3")) == 1
            assert len(store.select(faults="")) == 1  # fault-free
            anon = store.select(faults=anonymous.ledger_label())
            assert len(anon) == 1
            assert anon[0].faults_label == anonymous.content_hash()


class TestDiff:
    def test_paired_metric_deltas(self, tmp_path):
        points = [
            make_point("ba", "fsoi", seed=0, cycles=100),
            make_point("ba", "mesh", seed=0, cycles=100),
        ]
        fast = run_sweep(points, workers=1, execute=_fake_execute)

        def slower(point_dict):
            result = _fake_execute(point_dict)
            result["instructions"] //= 2
            return result

        slow = run_sweep(points, workers=1, execute=slower)
        with RunStore(tmp_path / "ledger.sqlite") as store:
            a = store.ingest_report(fast, code_version="va")
            b = store.ingest_report(slow, code_version="vb")
            assert a.run_id != b.run_id
            diff = store.diff(a.run_id, b.run_id)
        ipc_rows = [row for row in diff.rows if row.metric == "ipc"]
        assert len(ipc_rows) == 2
        assert all(row.relative == pytest.approx(-0.5) for row in ipc_rows)
        assert not diff.only_a and not diff.only_b
        rendered = diff.render(rel_threshold=0.01)
        assert "ipc" in rendered and "-50.0%" in rendered

    def test_unshared_points_are_reported(self, tmp_path):
        a_points = [make_point("ba", "fsoi", cycles=100)]
        b_points = [make_point("lu", "fsoi", cycles=100)]
        with RunStore(tmp_path / "ledger.sqlite") as store:
            a = store.ingest_report(
                run_sweep(a_points, workers=1, execute=_fake_execute),
                code_version="va",
            )
            b = store.ingest_report(
                run_sweep(b_points, workers=1, execute=_fake_execute),
                code_version="vb",
            )
            diff = store.diff(a.run_id, b.run_id)
        assert not diff.rows
        assert diff.only_a == ("ba/fsoi/n16/s0",)
        assert diff.only_b == ("lu/fsoi/n16/s0",)


class TestOnDisk:
    def test_store_survives_reopen(self, small_report, tmp_path):
        path = tmp_path / "ledger.sqlite"
        with RunStore(path) as store:
            info = store.ingest_report(small_report)
        with RunStore(path) as store:
            assert store.run(info.run_id).points == 2
            assert len(store.select(network="fsoi")) == 1

    def test_point_rows_store_canonical_json(self, small_report, tmp_path):
        with RunStore(tmp_path / "ledger.sqlite") as store:
            info = store.ingest_report(small_report)
            (fsoi,) = store.select(info.run_id, network="fsoi")
        # Round-trips through SQLite as plain JSON documents.
        assert json.dumps(fsoi.point)  # serializable
        assert fsoi.sweep_point().network == "fsoi"
        assert fsoi.label() == "oc/fsoi/n16/s0"
