"""Shared fixtures for the analytics tests.

``small_report`` is one real fsoi-vs-mesh sweep, run once per session:
the ledger, validation and report tests all consume it read-only, so
there is no reason to pay for the simulation more than once.
"""

import pytest

from repro.sweep import SweepSpec, run_sweep

SMALL_CYCLES = 2_500


@pytest.fixture(scope="session")
def small_report():
    spec = SweepSpec(apps=("oc",), networks=("fsoi", "mesh"),
                     cycles=SMALL_CYCLES)
    report = run_sweep(spec, workers=1)
    assert report.failed == 0
    return report
