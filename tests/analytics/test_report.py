"""ReportBundle rendering: terminal, Markdown, self-contained HTML."""

from repro.analytics import ReportBundle, ResultRow, validate
from repro.analytics.ledger import RunInfo


def _bundle(**overrides):
    base = dict(
        title="repro report — test",
        rows=[
            ResultRow(label="oc/fsoi/n16/s0", status="ok", cached=False,
                      ipc=9.35, latency=5.25),
            ResultRow(label="oc/mesh/n16/s0", status="ok", cached=True,
                      ipc=7.32, latency=18.32),
            ResultRow(label="ba/fsoi/n16/s0", status="failed", cached=False,
                      error="synthetic failure"),
        ],
        speedups={"16 nodes": 1.278},
        wall_seconds=1.9,
        generated_at="2026-01-01T00:00:00+00:00",
    )
    base.update(overrides)
    return ReportBundle(**base)


class TestCounts:
    def test_summary_counts(self):
        bundle = _bundle()
        assert bundle.counts == {
            "total": 3, "ok": 2, "failed": 1, "from_cache": 1,
        }


class TestTerminal:
    def test_contains_rows_speedups_and_errors(self):
        text = _bundle().to_terminal()
        assert "3 points: 2 ok (1 from cache), 1 failed" in text
        assert "oc/fsoi/n16/s0" in text
        assert "cache" in text
        assert "synthetic failure" in text
        assert "1.278x" in text  # bar chart value

    def test_run_info_line(self):
        bundle = _bundle(run_info=RunInfo(
            run_id="abc123", created_at="2026-01-01", code_version="v9",
            label="", source="x", points=3,
        ))
        assert "ledger run abc123" in bundle.to_terminal()


class TestMarkdown:
    def test_tables_and_validation(self, small_report):
        bundle = _bundle(validation=validate(small_report))
        text = bundle.to_markdown()
        assert "| point | IPC | latency | status |" in text
        assert "| `oc/fsoi/n16/s0` | 9.350 | 5.25 | ok |" in text
        assert "**5 pass / 0 fail / 2 skipped**" in text
        assert "| 16 nodes | 1.278x |" in text
        assert text.rstrip().endswith("_generated 2026-01-01T00:00:00+00:00_")


class TestHtml:
    def test_self_contained_document(self, small_report):
        html = _bundle(validation=validate(small_report)).to_html()
        assert html.startswith("<!doctype html>")
        assert "<style>" in html          # inline CSS, no external assets
        assert "http" not in html.split("generated")[0]
        assert 'class="pass"' in html
        assert 'class="skipped"' in html

    def test_labels_are_escaped(self):
        bundle = _bundle(rows=[ResultRow(
            label="<script>alert(1)</script>", status="ok", cached=False,
        )])
        html = bundle.to_html()
        assert "<script>alert" not in html
        assert "&lt;script&gt;" in html


class TestWrite:
    def test_suffix_dispatch(self, tmp_path):
        bundle = _bundle()
        html_path = tmp_path / "report.HTML"
        md_path = tmp_path / "report.md"
        bundle.write(html_path)
        bundle.write(md_path)
        assert html_path.read_text().startswith("<!doctype html>")
        assert md_path.read_text().startswith("# repro report — test")
