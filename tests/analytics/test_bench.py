"""Bench snapshots and the regression gate's direction/threshold logic."""

import json

import pytest

from repro.analytics import (
    BenchSnapshot,
    compare_snapshots,
    git_sha,
    load_snapshot,
    previous_snapshot,
    run_bench,
    snapshot_path,
)


def _snapshot(sha="abc", created_at="2026-01-01T00:00:00+00:00", **metrics):
    return BenchSnapshot(
        sha=sha, code_version="v1", created_at=created_at,
        python="3.x", metrics=metrics,
    )


class TestSnapshotFiles:
    def test_write_load_roundtrip(self, tmp_path):
        snap = _snapshot(**{"sweep.cold_seconds": 1.5,
                            "profile.fsoi.cycles_per_sec": 900.0})
        path = snap.write(tmp_path)
        assert path == snapshot_path(tmp_path, "abc")
        loaded = load_snapshot(path)
        assert loaded.sha == snap.sha
        assert loaded.metrics == snap.metrics

    def test_previous_snapshot_picks_latest_and_excludes_self(self, tmp_path):
        _snapshot(sha="old", created_at="2026-01-01T00:00:00+00:00",
                  x_seconds=1.0).write(tmp_path)
        _snapshot(sha="new", created_at="2026-02-01T00:00:00+00:00",
                  x_seconds=2.0).write(tmp_path)
        assert previous_snapshot(tmp_path).sha == "new"
        assert previous_snapshot(tmp_path, exclude_sha="new").sha == "old"

    def test_previous_snapshot_ignores_corrupt_files(self, tmp_path):
        (tmp_path / "BENCH_junk.json").write_text("{not json")
        assert previous_snapshot(tmp_path) is None
        _snapshot(sha="ok").write(tmp_path)
        assert previous_snapshot(tmp_path).sha == "ok"

    def test_git_sha_is_nonempty(self):
        assert git_sha()


class TestCompareDirections:
    def test_slower_seconds_regress(self):
        previous = _snapshot(**{"sweep.cold_seconds": 1.0})
        current = _snapshot(sha="b", **{"sweep.cold_seconds": 1.5})
        comparison = compare_snapshots(current, previous, threshold=0.20)
        assert not comparison.ok
        (row,) = comparison.regressions
        assert row.relative == pytest.approx(0.5)

    def test_faster_seconds_never_regress(self):
        previous = _snapshot(**{"sweep.cold_seconds": 1.0,
                                "profile.fsoi.net.us_per_cycle": 10.0})
        current = _snapshot(sha="b", **{"sweep.cold_seconds": 0.1,
                                        "profile.fsoi.net.us_per_cycle": 1.0})
        assert compare_snapshots(current, previous).ok

    def test_lower_throughput_regresses(self):
        previous = _snapshot(**{"profile.fsoi.cycles_per_sec": 1000.0,
                                "sweep.cache_hit_rate": 1.0})
        current = _snapshot(sha="b",
                            **{"profile.fsoi.cycles_per_sec": 500.0,
                               "sweep.cache_hit_rate": 0.5})
        comparison = compare_snapshots(current, previous)
        assert {row.metric for row in comparison.regressions} == {
            "profile.fsoi.cycles_per_sec", "sweep.cache_hit_rate",
        }

    def test_threshold_is_strict(self):
        previous = _snapshot(**{"sweep.cold_seconds": 1.0})
        at_threshold = _snapshot(sha="b", **{"sweep.cold_seconds": 1.2})
        past = _snapshot(sha="c", **{"sweep.cold_seconds": 1.21})
        assert compare_snapshots(at_threshold, previous, threshold=0.2).ok
        assert not compare_snapshots(past, previous, threshold=0.2).ok

    def test_only_shared_metrics_compare(self):
        previous = _snapshot(**{"sweep.cold_seconds": 1.0,
                                "gone_seconds": 9.0})
        current = _snapshot(sha="b", **{"sweep.cold_seconds": 1.0,
                                        "fresh_seconds": 1.0})
        comparison = compare_snapshots(current, previous)
        assert [row.metric for row in comparison.rows] \
            == ["sweep.cold_seconds"]
        assert "gone_seconds" in comparison.render()

    def test_bad_threshold_raises(self):
        snap = _snapshot(**{"sweep.cold_seconds": 1.0})
        with pytest.raises(ValueError):
            compare_snapshots(snap, snap, threshold=0.0)

    def test_render_marks_regressions(self):
        previous = _snapshot(**{"sweep.cold_seconds": 1.0})
        current = _snapshot(sha="b", **{"sweep.cold_seconds": 2.0})
        text = compare_snapshots(current, previous).render()
        assert "REGRESSED" in text
        assert "FAIL: 1 metric(s) regressed" in text

    def test_render_labels_direction(self):
        previous = _snapshot(**{"sweep.cold_seconds": 1.0,
                                "profile.fsoi.cycles_per_sec": 1000.0})
        current = _snapshot(sha="b", **{"sweep.cold_seconds": 2.0,
                                        "profile.fsoi.cycles_per_sec": 2000.0})
        text = compare_snapshots(current, previous).render()
        assert "100.0% worse" in text   # the slowdown
        assert "100.0% better" in text  # the throughput gain

    def test_noise_floor_absorbs_tiny_absolute_deltas(self):
        # A 30% swing on a 1 ms metric is scheduler jitter; the same
        # relative swing on a 1 s metric is a real regression.
        previous = _snapshot(**{"sweep.warm_seconds": 0.001,
                                "profile.fsoi.cal.us_per_cycle": 2.0})
        current = _snapshot(sha="b",
                            **{"sweep.warm_seconds": 0.0013,
                               "profile.fsoi.cal.us_per_cycle": 2.6})
        assert compare_snapshots(current, previous, threshold=0.2).ok

    def test_noise_floor_does_not_mask_real_regressions(self):
        previous = _snapshot(**{"sweep.cold_seconds": 1.0,
                                "profile.fsoi.net.us_per_cycle": 10.0})
        current = _snapshot(sha="b",
                            **{"sweep.cold_seconds": 1.3,
                               "profile.fsoi.net.us_per_cycle": 13.0})
        comparison = compare_snapshots(current, previous, threshold=0.2)
        assert {row.metric for row in comparison.regressions} == {
            "sweep.cold_seconds", "profile.fsoi.net.us_per_cycle",
        }


class TestRunBench:
    def test_tiny_suite_produces_all_metric_families(self, tmp_path):
        snap = run_bench(micro_cycles=150, macro_cycles=100, sha="test")
        metrics = snap.metrics
        assert metrics["sweep.cache_hit_rate"] == 1.0
        assert metrics["sweep.cold_seconds"] > 0
        assert metrics["sweep.warm_seconds"] > 0
        assert metrics["suite.total_seconds"] > 0
        for network in ("fsoi", "mesh"):
            assert metrics[f"profile.{network}.cycles_per_sec"] > 0
            assert metrics[f"profile.{network}.network.us_per_cycle"] > 0
        path = snap.write(tmp_path)
        assert json.loads(path.read_text())["sha"] == "test"
        # Identical snapshots always pass their own gate.
        assert compare_snapshots(snap, load_snapshot(path)).ok
