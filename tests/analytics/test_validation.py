"""Paper-figure tolerance bands over synthetic and real runs."""

import pytest

from repro.analytics import RunStore, validate
from repro.analytics.validation import RunContext, default_checks
from repro.sweep import make_point


def _pair(app="ba", network="fsoi", nodes=16, seed=0, instructions=1000,
          cycles=100, fsoi=None, **extras):
    point = make_point(app, network, num_nodes=nodes, seed=seed,
                       cycles=cycles, **extras).to_dict()
    result = {
        "instructions": instructions,
        "cycles": cycles,
        "packets_delivered": 10,
        "latency_breakdown": {"total": 10.0},
    }
    if fsoi is not None:
        result["fsoi"] = fsoi
    return point, result


def _check(key):
    (found,) = [c for c in default_checks() if c.key == key]
    return found


class TestSpeedupChecks:
    def test_fig6_passes_inside_band(self):
        context = RunContext((
            _pair(network="fsoi", instructions=1360),
            _pair(network="mesh", instructions=1000),
        ))
        result = _check("fig6-speedup-16").run(context)
        assert result.status == "pass"
        assert result.value == pytest.approx(1.36)

    def test_fig6_fails_below_band(self):
        context = RunContext((
            _pair(network="fsoi", instructions=900),
            _pair(network="mesh", instructions=1000),
        ))
        result = _check("fig6-speedup-16").run(context)
        assert result.status == "fail"
        assert result.value == pytest.approx(0.9)

    def test_fig7_skips_without_64_node_points(self):
        context = RunContext((
            _pair(network="fsoi"), _pair(network="mesh"),
        ))
        result = _check("fig7-speedup-64").run(context)
        assert result.status == "skipped"
        assert result.value is None

    def test_speedups_pair_on_every_axis_but_network(self):
        context = RunContext((
            _pair(network="fsoi", seed=0, instructions=1500),
            _pair(network="mesh", seed=0, instructions=1000),
            _pair(network="fsoi", seed=1, instructions=2000),
            _pair(network="mesh", seed=1, instructions=1000),
            _pair(network="fsoi", seed=2),  # no mesh partner: dropped
        ))
        assert context.paired_speedups(nodes=16) == [1.5, 2.0]


class TestBackoffCheck:
    def test_sixty_cycle_ceiling_fails_regardless_of_model(self):
        context = RunContext((
            _pair(fsoi={
                "meta_tx_probability": 0.05,
                "meta_resolution_delay": 75.0,
            }),
        ))
        result = _check("fig4-backoff").run(context)
        assert result.status == "fail"
        assert result.value == float("inf")
        assert ">= 60 cycles" in result.detail

    def test_skips_without_resolved_collisions(self):
        context = RunContext((
            _pair(fsoi={"meta_tx_probability": 0.0,
                        "meta_resolution_delay": 0.0}),
        ))
        result = _check("fig4-backoff").run(context)
        assert result.status == "skipped"


class TestMembwCheck:
    def test_delta_between_lowest_and_highest_bandwidth(self):
        context = RunContext((
            _pair(network="mesh", instructions=1000),
            _pair(network="fsoi", instructions=1300, memory_gbps=8.8),
            _pair(network="fsoi", instructions=1360, memory_gbps=52.8),
        ))
        result = _check("table4-membw").run(context)
        assert result.status == "pass"
        assert result.value == pytest.approx(0.06)

    def test_bandwidth_regression_fails(self):
        context = RunContext((
            _pair(network="mesh", instructions=1000),
            _pair(network="fsoi", instructions=1300, memory_gbps=8.8),
            _pair(network="fsoi", instructions=1200, memory_gbps=52.8),
        ))
        result = _check("table4-membw").run(context)
        assert result.status == "fail"

    def test_skips_with_a_single_bandwidth(self):
        context = RunContext((
            _pair(network="mesh", instructions=1000),
            _pair(network="fsoi", instructions=1300, memory_gbps=8.8),
        ))
        result = _check("table4-membw").run(context)
        assert result.status == "skipped"


class TestRealRun:
    """The acceptance bar: a real fsoi-vs-mesh sweep passes the bands."""

    def test_small_sweep_passes_fig3_fig4_and_energy(self, small_report):
        report = validate(small_report)
        by_key = {r.check.key: r for r in report.results}
        assert by_key["fig3-collision"].status == "pass"
        assert by_key["fig4-backoff"].status == "pass"
        assert by_key["fig6-speedup-16"].status == "pass"
        assert by_key["fig8-network-energy"].status == "pass"
        assert by_key["fig8-total-energy"].status == "pass"
        # Axes the grid did not sweep skip instead of failing.
        assert by_key["fig7-speedup-64"].status == "skipped"
        assert by_key["table4-membw"].status == "skipped"
        assert report.ok
        assert (report.passed, report.failed, report.skipped) == (5, 0, 2)

    def test_every_source_shape_validates_identically(
        self, small_report, tmp_path
    ):
        from_report = validate(small_report)
        records = [o.record(i) for i, o in enumerate(small_report.outcomes)]
        from_records = validate(records)
        with RunStore(tmp_path / "ledger.sqlite") as store:
            info = store.ingest_report(small_report)
            from_ledger = validate(store.select(info.run_id))
        values = [
            [r.value for r in report.results]
            for report in (from_report, from_records, from_ledger)
        ]
        assert values[0] == values[1] == values[2]


class TestReportRendering:
    def test_render_and_to_dict(self, small_report):
        report = validate(small_report)
        text = report.render()
        assert "5 pass, 0 fail, 2 skipped" in text
        assert "[PASS] Figure 3" in text
        assert "[skip] Figure 7" in text
        data = report.to_dict()
        assert data["passed"] == 5
        assert len(data["checks"]) == 7
        assert all("band" in check for check in data["checks"])

    def test_failures_cite_their_tolerance_source(self):
        context = RunContext((
            _pair(network="fsoi", instructions=900),
            _pair(network="mesh", instructions=1000),
        ))
        report = validate(context, checks=[_check("fig6-speedup-16")])
        assert not report.ok
        assert "EXPERIMENTS.md" in report.render()
