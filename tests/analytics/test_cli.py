"""The ``repro report`` / ``repro bench`` / ``repro sweep --live`` CLI."""

import json

from repro.analytics import BenchSnapshot
from repro.cli import build_parser, main


def _write_jsonl(report, path):
    with open(path, "w") as handle:
        for index, outcome in enumerate(report.outcomes):
            handle.write(json.dumps(outcome.record(index)) + "\n")
    return path


def _write_snapshot(path, sha="base", scale=1.0):
    snap = BenchSnapshot(
        sha=sha, code_version="v1",
        created_at="2026-01-01T00:00:00+00:00", python="3.x",
        metrics={
            "sweep.cold_seconds": 1.0 * scale,
            "profile.fsoi.cycles_per_sec": 1000.0 / scale,
        },
    )
    path.write_text(json.dumps(snap.to_dict()))
    return path


class TestReportCli:
    def test_from_jsonl_validates_and_writes_html(
        self, small_report, tmp_path, capsys
    ):
        jsonl = _write_jsonl(small_report, tmp_path / "results.jsonl")
        out = tmp_path / "report.html"
        code = main([
            "report", "--from", str(jsonl),
            "--ledger", str(tmp_path / "ledger.sqlite"),
            "--out", str(out),
        ])
        printed = capsys.readouterr().out
        assert code == 0
        assert "paper-figure validation: 5 pass, 0 fail, 2 skipped" in printed
        assert "ledger run" in printed
        assert out.read_text().startswith("<!doctype html>")

    def test_diff_with_empty_ledger_explains_itself(
        self, small_report, tmp_path, capsys
    ):
        jsonl = _write_jsonl(small_report, tmp_path / "results.jsonl")
        code = main([
            "report", "--from", str(jsonl),
            "--ledger", str(tmp_path / "ledger.sqlite"), "--diff",
        ])
        assert code == 0
        assert "no other run" in capsys.readouterr().out

    def test_empty_ledger_flag_skips_ingestion(
        self, small_report, tmp_path, capsys
    ):
        jsonl = _write_jsonl(small_report, tmp_path / "results.jsonl")
        assert main(["report", "--from", str(jsonl), "--ledger", ""]) == 0
        printed = capsys.readouterr().out
        assert "ledger run" not in printed
        assert not list(tmp_path.glob("*.sqlite"))

    def test_fresh_sweep_end_to_end(self, tmp_path, capsys):
        code = main([
            "report", "--cycles", "2500",
            "--cache-dir", str(tmp_path / "cache"),
            "--ledger", str(tmp_path / "ledger.sqlite"),
        ])
        printed = capsys.readouterr().out
        assert code == 0
        assert "FSOI speedup over mesh" in printed
        assert "[PASS] Figure 3" in printed
        assert "[PASS] Figure 4" in printed

    def test_parser_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.networks == "fsoi,mesh"
        assert args.nodes == "16"
        assert args.cycles == 8_000
        assert args.ledger == ".repro-ledger.sqlite"


class TestBenchCli:
    def test_doctored_slowdown_fails_the_gate(self, tmp_path, capsys):
        base = _write_snapshot(tmp_path / "base.json", sha="base")
        slow = _write_snapshot(tmp_path / "slow.json", sha="slow", scale=1.5)
        code = main([
            "bench", "--snapshot", str(slow),
            "--compare", "--against", str(base),
        ])
        printed = capsys.readouterr().out
        assert code == 1
        assert "REGRESSED" in printed
        assert "FAIL" in printed

    def test_identical_snapshots_pass(self, tmp_path, capsys):
        base = _write_snapshot(tmp_path / "base.json")
        code = main([
            "bench", "--snapshot", str(base),
            "--compare", "--against", str(base),
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_threshold_flag_tightens_the_gate(self, tmp_path, capsys):
        base = _write_snapshot(tmp_path / "base.json", sha="base")
        slow = _write_snapshot(tmp_path / "slow.json", sha="slow", scale=1.1)
        args = ["bench", "--snapshot", str(slow),
                "--compare", "--against", str(base)]
        assert main(args) == 0
        assert main(args + ["--threshold", "0.05"]) == 1
        capsys.readouterr()

    def test_compare_without_baseline_is_not_an_error(
        self, tmp_path, capsys
    ):
        snap = _write_snapshot(tmp_path / "only.json")
        code = main([
            "bench", "--snapshot", str(snap), "--compare",
            "--root", str(tmp_path / "empty"),
        ])
        assert code == 0
        assert "no previous snapshot" in capsys.readouterr().out

    def test_tiny_real_suite_writes_snapshot(self, tmp_path, capsys):
        code = main([
            "bench", "--micro-cycles", "100", "--macro-cycles", "100",
            "--root", str(tmp_path),
        ])
        assert code == 0
        (path,) = tmp_path.glob("BENCH_*.json")
        snapshot = json.loads(path.read_text())
        assert snapshot["metrics"]["sweep.cache_hit_rate"] == 1.0
        assert "snapshot ->" in capsys.readouterr().out


class TestSweepLive:
    ARGS = ["sweep", "--apps", "ba", "--networks", "fsoi",
            "--cycles", "300", "--no-cache"]

    def test_live_replaces_per_point_lines(self, capsys):
        assert main(self.ARGS + ["--live"]) == 0
        printed = capsys.readouterr().out
        assert "eta" in printed
        assert "\r" in printed
        assert "] ba/fsoi" not in printed  # no per-point lines

    def test_default_lines_carry_cache_and_failure_counts(self, capsys):
        assert main(self.ARGS) == 0
        printed = capsys.readouterr().out
        assert "(cache 0, failed 0)" in printed
