"""Tests for the slotted-vs-unslotted ablation (§4.3.2, ref [40])."""

import numpy as np
import pytest

from repro.core.network import FsoiConfig, FsoiNetwork
from repro.net.packet import LaneKind, Packet
from repro.workloads.traffic import BernoulliTraffic, TrafficDriver


def drain(net, start, limit=20_000):
    cycle = start
    while not net.quiescent() and cycle < start + limit:
        net.tick(cycle)
        cycle += 1


class TestUnslottedBasics:
    def test_solo_packet_delivered_any_start_cycle(self):
        net = FsoiNetwork(FsoiConfig(num_nodes=4, slotted=False))
        p = Packet(src=0, dst=1, lane=LaneKind.META)
        for cycle in range(3):
            net.tick(cycle)
        net.try_send(p, 3)  # an off-slot cycle
        for cycle in range(3, 20):
            net.tick(cycle)
        assert p.first_tx_cycle == 3  # no alignment wait
        assert p.deliver_cycle == 5

    def test_partial_overlap_collides(self):
        """Slot-offset transmissions that would be safe when slotted
        corrupt each other in pure-ALOHA mode."""
        net = FsoiNetwork(FsoiConfig(num_nodes=4, slotted=False, seed=3))
        a = Packet(src=0, dst=3, lane=LaneKind.META)
        b = Packet(src=2, dst=3, lane=LaneKind.META)
        net.tick(0)
        net.try_send(a, 0)  # enqueue during cycle 0; transmits cycle 1
        net.tick(1)
        net.try_send(b, 1)  # starts cycle 2: overlaps a's [1, 3)
        for cycle in range(2, 100):
            net.tick(cycle)
        drain(net, 100)
        assert a.retries >= 1 and b.retries >= 1
        assert int(net.stats.delivered) == 2  # both retransmitted fine

    def test_slotted_mode_tolerates_offset_starts(self):
        """The same offered pattern in the slotted design does NOT
        collide: both transmissions land in distinct slots."""
        net = FsoiNetwork(FsoiConfig(num_nodes=4, slotted=True, seed=3))
        a = Packet(src=0, dst=3, lane=LaneKind.META)
        b = Packet(src=2, dst=3, lane=LaneKind.META)
        net.try_send(a, 0)  # transmits in slot [0, 2)
        net.tick(0)
        net.try_send(b, 1)  # waits for the slot starting at cycle 2
        for cycle in range(1, 40):
            net.tick(cycle)
        assert a.retries == 0 and b.retries == 0

    def test_conservation_under_load(self):
        net = FsoiNetwork(FsoiConfig(num_nodes=8, slotted=False, seed=9))
        delivered = []
        for node in range(8):
            net.set_delivery_callback(node, lambda p: delivered.append(p.uid))
        rng = np.random.default_rng(0)
        sent = []
        for cycle in range(500):
            for src in range(8):
                if rng.random() < 0.06:
                    dst = int(rng.integers(0, 7))
                    dst = dst if dst < src else dst + 1
                    p = Packet(src=src, dst=dst, lane=LaneKind.META)
                    if net.try_send(p, cycle):
                        sent.append(p.uid)
            net.tick(cycle)
        drain(net, 500)
        assert net.quiescent()
        assert sorted(delivered) == sorted(sent)


class TestSlottingReducesCollisions:
    def test_aloha_factor(self):
        """Ref [40]: slotting roughly halves the vulnerable window, so
        the unslotted channel shows clearly more collisions at the same
        offered load."""
        rates = {}
        for slotted in (True, False):
            net = FsoiNetwork(FsoiConfig(num_nodes=16, slotted=slotted, seed=4))
            # Unsynchronized offers so the unslotted mode is exercised.
            traffic = BernoulliTraffic(p=0.08, slot_cycles=1)
            TrafficDriver(net, traffic, seed=6).run(6000)
            rates[slotted] = net.collision_rate(LaneKind.META)
        assert rates[False] > 1.4 * rates[True]
        assert rates[True] > 0  # both operate in the colliding regime
