"""Tests for the one-hot PID encoding (paper footnote 7)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.network import FsoiConfig, FsoiNetwork
from repro.core.optimizations import OptimizationConfig
from repro.net.packet import LaneKind, Packet, merged_one_hot, one_hot_senders


class TestEncoding:
    def test_single_sender(self):
        assert one_hot_senders(merged_one_hot([3], 8), 8) == [3]

    def test_exact_decoding(self):
        merged = merged_one_hot([1, 4, 6], 8)
        assert one_hot_senders(merged, 8) == [1, 4, 6]

    @given(st.sets(st.integers(min_value=0, max_value=15), min_size=1, max_size=8))
    def test_roundtrip_is_exact(self, senders):
        """Unlike PID/~PID, one-hot decoding never includes innocents."""
        merged = merged_one_hot(senders, 16)
        assert set(one_hot_senders(merged, 16)) == senders

    def test_out_of_range_sender(self):
        with pytest.raises(ValueError):
            merged_one_hot([8], 8)

    def test_bad_pattern(self):
        with pytest.raises(ValueError):
            one_hot_senders(1 << 8, 8)


class TestNetworkIntegration:
    def _collide(self, one_hot):
        config = FsoiConfig(
            num_nodes=4,
            optimizations=OptimizationConfig(resolution_hints=True),
            one_hot_pid=one_hot,
            seed=11,
        )
        net = FsoiNetwork(config)
        # Senders 0 and 2 share destination 3's receiver 0.
        a = Packet(src=0, dst=3, lane=LaneKind.DATA)
        b = Packet(src=2, dst=3, lane=LaneKind.DATA)
        net.try_send(a, 0)
        net.try_send(b, 0)
        for cycle in range(120):
            net.tick(cycle)
        return net

    def test_one_hot_hints_always_correct(self):
        net = self._collide(one_hot=True)
        hints = net.hint_summary()
        assert hints["issued"] == 1
        assert hints["correct"] == 1
        assert hints["wrong_winner"] == 0
        assert hints["ignored"] == 0

    def test_both_encodings_deliver(self):
        for one_hot in (False, True):
            net = self._collide(one_hot=one_hot)
            assert int(net.stats.delivered) == 2
