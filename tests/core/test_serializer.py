"""Tests for the lane serializer/deserializer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.serializer import LaneDeserializer, LaneSerializer, mini_cycle_of
from repro.net.packet import DATA_PACKET_BITS, META_PACKET_BITS


class TestMiniCycles:
    def test_first_bit(self):
        assert mini_cycle_of(0) == (0, 0)

    def test_wraps_at_twelve(self):
        assert mini_cycle_of(11) == (0, 11)
        assert mini_cycle_of(12) == (1, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            mini_cycle_of(-1)
        with pytest.raises(ValueError):
            mini_cycle_of(0, bits_per_cycle=0)


class TestLatency:
    def test_table3_slot_lengths(self):
        # The serializer independently re-derives the lane slot lengths.
        assert LaneSerializer(vcsels=3).cycles_for(META_PACKET_BITS) == 2
        assert LaneSerializer(vcsels=6).cycles_for(DATA_PACKET_BITS) == 5

    def test_padding_can_add_a_cycle(self):
        tight = LaneSerializer(vcsels=3, padding_bits=0)
        padded = LaneSerializer(vcsels=3, padding_bits=1)
        assert tight.cycles_for(72) == 2
        assert padded.cycles_for(72) == 3  # 73 bits > 2 x 36

    def test_validation(self):
        with pytest.raises(ValueError):
            LaneSerializer(vcsels=0)
        with pytest.raises(ValueError):
            LaneSerializer(padding_bits=-1)
        with pytest.raises(ValueError):
            LaneSerializer().cycles_for(0)


class TestDataIntegrity:
    def test_known_pattern(self):
        serializer = LaneSerializer(vcsels=3)
        payload = 0xDEADBEEFCAFE123455  # 72-bit pattern (18 hex digits)
        frames = serializer.serialize(payload, 72)
        assert len(frames) == 2
        recovered = LaneDeserializer(serializer).deserialize(frames, 72)
        assert recovered == payload

    def test_frames_shape(self):
        frames = LaneSerializer(vcsels=6).serialize((1 << 360) - 1, 360)
        assert len(frames) == 5
        assert all(len(frame) == 6 for frame in frames)
        assert all(word == 0xFFF for frame in frames for word in frame)

    @given(
        st.integers(min_value=0, max_value=(1 << 72) - 1),
        st.integers(min_value=0, max_value=5),
    )
    def test_roundtrip_any_payload(self, payload, padding):
        serializer = LaneSerializer(vcsels=3, padding_bits=padding)
        frames = serializer.serialize(payload, 72)
        assert LaneDeserializer(serializer).deserialize(frames, 72) == payload

    @given(st.integers(min_value=0, max_value=(1 << 360) - 1))
    def test_roundtrip_data_packets(self, payload):
        serializer = LaneSerializer(vcsels=6)
        frames = serializer.serialize(payload, 360)
        assert LaneDeserializer(serializer).deserialize(frames, 360) == payload

    def test_payload_width_checked(self):
        with pytest.raises(ValueError):
            LaneSerializer().serialize(1 << 72, 72)

    def test_frame_shape_checked(self):
        serializer = LaneSerializer(vcsels=3)
        frames = serializer.serialize(5, 72)
        with pytest.raises(ValueError):
            LaneDeserializer(serializer).deserialize(
                [frame[:-1] for frame in frames], 72
            )

    def test_word_range_checked(self):
        serializer = LaneSerializer(vcsels=3)
        frames = serializer.serialize(5, 72)
        frames[0][0] = 1 << 12
        with pytest.raises(ValueError):
            LaneDeserializer(serializer).deserialize(frames, 72)


class TestSkewIntegration:
    def test_layout_padding_roundtrips(self):
        """Padding derived from real chip geometry still round-trips."""
        from repro.core.layout import ChipLayout

        layout = ChipLayout()
        padding = layout.max_padding_bits()
        assert padding >= 1
        serializer = LaneSerializer(vcsels=3, padding_bits=padding)
        frames = serializer.serialize(0xABCDEF, 72)
        recovered = LaneDeserializer(serializer).deserialize(frames, 72)
        assert recovered == 0xABCDEF
