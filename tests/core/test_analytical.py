"""Tests for the paper's analytical collision models (Figures 3 and 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analytical import (
    bandwidth_latency,
    collision_probability,
    normalized_collision_probability,
    optimal_meta_bandwidth,
    pathological_expected_retries,
    resolution_delay,
    simulate_burst_resolution,
)


class TestCollisionProbability:
    def test_zero_traffic_no_collisions(self):
        assert collision_probability(0.0) == 0.0

    def test_increases_with_load(self):
        values = [collision_probability(p) for p in (0.01, 0.1, 0.2, 0.33)]
        assert values == sorted(values)

    def test_more_receivers_fewer_collisions(self):
        for p in (0.05, 0.2, 0.33):
            r1 = collision_probability(p, receivers=1)
            r2 = collision_probability(p, receivers=2)
            r4 = collision_probability(p, receivers=4)
            assert r1 > r2 > r4

    def test_two_receivers_roughly_halve(self):
        # §7.3: 2 receivers "roughly reduce collisions by half".
        p = 0.1
        ratio = collision_probability(p, receivers=2) / collision_probability(
            p, receivers=1
        )
        assert ratio == pytest.approx(0.5, abs=0.1)

    def test_weak_dependence_on_n(self):
        # Figure 3's caption: the result depends on N only weakly.
        p = 0.2
        n16 = normalized_collision_probability(p, num_nodes=16)
        n64 = normalized_collision_probability(p, num_nodes=64)
        assert n16 == pytest.approx(n64, rel=0.15)

    def test_matches_monte_carlo(self):
        """The closed form must agree with a direct Monte-Carlo of the
        slotted channel (the paper's own validation methodology)."""
        rng = np.random.default_rng(7)
        n, p, r, trials = 16, 0.15, 2, 30_000
        collisions = 0
        for _ in range(trials):
            sending = rng.random(n) < p
            targets = np.where(sending, rng.integers(0, n - 1, n), -1)
            targets = np.where(targets >= np.arange(n), targets + 1, targets)
            # Node 0's receivers: senders partitioned by rank % r.
            hits = [0] * r
            for src in range(1, n):
                if sending[src] and targets[src] == 0:
                    hits[(src - 1) % r] += 1
            if any(h > 1 for h in hits):
                collisions += 1
        measured = collisions / trials
        assert measured == pytest.approx(collision_probability(p, n, r), rel=0.15)

    @given(st.floats(min_value=0, max_value=1))
    def test_is_a_probability(self, p):
        assert 0.0 <= collision_probability(p) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            collision_probability(1.5)
        with pytest.raises(ValueError):
            collision_probability(0.1, num_nodes=2)
        with pytest.raises(ValueError):
            collision_probability(0.1, receivers=0)


class TestBandwidthAllocation:
    def test_optimum_is_paper_value(self):
        # §4.3.1: the optimal latency occurs at B_M = 0.285.
        assert optimal_meta_bandwidth() == pytest.approx(0.285, abs=0.01)

    def test_optimum_motivates_3_to_6_split(self):
        # 3 meta VCSELs out of 9 transmit VCSELs ~ 0.33, the nearest
        # integer split to the 0.285 optimum.
        b = optimal_meta_bandwidth()
        assert abs(3 / 9 - b) < abs(2 / 9 - b)
        assert abs(3 / 9 - b) < abs(4 / 9 - b)

    def test_latency_is_convex_around_optimum(self):
        best = optimal_meta_bandwidth()
        at_best = bandwidth_latency(best)
        assert bandwidth_latency(best - 0.1) > at_best
        assert bandwidth_latency(best + 0.1) > at_best

    def test_latency_validates_domain(self):
        with pytest.raises(ValueError):
            bandwidth_latency(0.0)
        with pytest.raises(ValueError):
            bandwidth_latency(1.0)


class TestPathologicalBurst:
    def test_fixed_window_livelock(self):
        # §4.3.2: fixed window of 3, 63 senders -> ~8.2e10 retries.
        assert pathological_expected_retries(63, 3) == pytest.approx(8.2e10, rel=0.05)

    def test_larger_window_helps(self):
        assert pathological_expected_retries(63, 8) < pathological_expected_retries(
            63, 3
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            pathological_expected_retries(1, 3)
        with pytest.raises(ValueError):
            pathological_expected_retries(10, 1)

    def test_exponential_backoff_resolves_burst(self):
        # §4.3.2: B=1.1 -> ~26 retries; B=2 -> ~5 retries.  Exact values
        # depend on accounting; the reproduction checks the ~5x gap and
        # that both are astronomically below the fixed-window case.
        retries_11, cycles_11 = simulate_burst_resolution(63, 2.7, 1.1, trials=150)
        retries_20, cycles_20 = simulate_burst_resolution(63, 2.7, 2.0, trials=150)
        assert 10 < retries_11 < 40
        assert 2 < retries_20 < 10
        assert retries_11 > 3 * retries_20
        assert cycles_11 > cycles_20

    def test_burst_validation(self):
        with pytest.raises(ValueError):
            simulate_burst_resolution(1, 2.7, 1.1)


class TestResolutionDelay:
    def test_paper_operating_point_region(self):
        # §4.3.2: computed delay 7.26 cycles at W=2.7, B=1.1 (simulated
        # 6.8-9.6).  Our numerical model lands in the same band.
        delay = resolution_delay(2.7, 1.1, background_rate=0.01)
        assert 6.0 < delay < 10.5

    def test_b11_beats_b2(self):
        # Figure 4: B=1.1 gives a decidedly lower delay than B=2.
        assert resolution_delay(2.7, 1.1) < resolution_delay(2.7, 2.0)

    def test_tiny_window_is_bad(self):
        assert resolution_delay(1.0, 1.1) > resolution_delay(2.7, 1.1)

    def test_background_rate_mild_effect(self):
        # Figure 4: G=1% vs G=10% has negligible impact on the optimum.
        low = resolution_delay(2.7, 1.1, background_rate=0.01)
        high = resolution_delay(2.7, 1.1, background_rate=0.10)
        assert high == pytest.approx(low, rel=0.25)
        assert high >= low * 0.95

    def test_deterministic_given_seed(self):
        assert resolution_delay(2.7, 1.1, seed=5) == resolution_delay(
            2.7, 1.1, seed=5
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            resolution_delay(0.5, 1.1)
        with pytest.raises(ValueError):
            resolution_delay(2.7, 0.9)
        with pytest.raises(ValueError):
            resolution_delay(2.7, 1.1, num_colliders=1)
        with pytest.raises(ValueError):
            resolution_delay(2.7, 1.1, background_rate=1.0)


class TestMonteCarloTier:
    """§7.3's middle validation tier: Monte Carlo vs the closed form."""

    def test_matches_closed_form_across_design_space(self):
        from repro.core.analytical import monte_carlo_collision_probability

        for p in (0.05, 0.15, 0.33):
            for receivers in (1, 2, 4):
                mc = monte_carlo_collision_probability(p, receivers=receivers)
                cf = collision_probability(p, receivers=receivers)
                assert mc == pytest.approx(cf, rel=0.4, abs=3e-4), (p, receivers)

    def test_two_receivers_halve_monte_carlo_too(self):
        from repro.core.analytical import monte_carlo_collision_probability

        one = monte_carlo_collision_probability(0.2, receivers=1)
        two = monte_carlo_collision_probability(0.2, receivers=2)
        assert two / one == pytest.approx(0.5, abs=0.12)

    def test_deterministic(self):
        from repro.core.analytical import monte_carlo_collision_probability

        assert monte_carlo_collision_probability(
            0.1, seed=3
        ) == monte_carlo_collision_probability(0.1, seed=3)

    def test_validation(self):
        from repro.core.analytical import monte_carlo_collision_probability

        with pytest.raises(ValueError):
            monte_carlo_collision_probability(1.5)
        with pytest.raises(ValueError):
            monte_carlo_collision_probability(0.1, num_nodes=2)
