"""Tests for the back-off policy, lane/slot configuration and phase array."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.backoff import BackoffPolicy
from repro.core.lanes import LaneConfig
from repro.core.phase_array import PhaseArray
from repro.net.packet import LaneKind


class TestBackoffPolicy:
    def test_paper_defaults(self):
        policy = BackoffPolicy()
        assert policy.start_window == 2.7
        assert policy.base == 1.1

    def test_window_growth(self):
        policy = BackoffPolicy(2.7, 1.1)
        assert policy.window(1) == pytest.approx(2.7)
        assert policy.window(2) == pytest.approx(2.97)
        assert policy.window(10) == pytest.approx(2.7 * 1.1**9)

    def test_window_clamped(self):
        policy = BackoffPolicy(2.0, 2.0, max_window=64)
        assert policy.window(50) == 64

    def test_base_one_is_fixed_window(self):
        policy = BackoffPolicy(3.0, 1.0)
        assert policy.window(1) == policy.window(100) == 3.0

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=2**31))
    def test_draw_within_window(self, retry, seed):
        policy = BackoffPolicy(2.7, 1.1)
        rng = np.random.default_rng(seed)
        draw = policy.draw_delay_slots(rng, retry)
        assert 1 <= draw <= int(np.ceil(policy.window(retry)))

    def test_expected_delay_matches_draws(self):
        policy = BackoffPolicy(4.0, 1.0)
        rng = np.random.default_rng(0)
        draws = [policy.draw_delay_slots(rng, 1) for _ in range(20_000)]
        assert np.mean(draws) == pytest.approx(policy.expected_delay_slots(1), rel=0.02)

    def test_retry_is_one_based(self):
        with pytest.raises(ValueError):
            BackoffPolicy().window(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(start_window=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(base=0.9)
        with pytest.raises(ValueError):
            BackoffPolicy(start_window=10, max_window=5)


class TestLaneConfig:
    lanes = LaneConfig()

    def test_slot_lengths_table3(self):
        # 72-bit meta over 3x12 bits/cycle = 2 cycles; 360-bit data over
        # 6x12 = 5 cycles.
        assert self.lanes.slot_cycles(LaneKind.META) == 2
        assert self.lanes.slot_cycles(LaneKind.DATA) == 5

    def test_lane_widths(self):
        assert self.lanes.lane_width_bits(LaneKind.META) == 36
        assert self.lanes.lane_width_bits(LaneKind.DATA) == 72

    def test_receiver_partition_even(self):
        # 15 senders over 2 receivers: 8 / 7 split, deterministic.
        counts = [0, 0]
        for src in range(16):
            if src == 5:
                continue
            counts[self.lanes.receiver_for(LaneKind.META, src, 5, 16)] += 1
        assert sorted(counts) == [7, 8]

    def test_receiver_for_rejects_self(self):
        with pytest.raises(ValueError):
            self.lanes.receiver_for(LaneKind.META, 3, 3, 16)

    def test_slot_alignment(self):
        assert self.lanes.slot_aligned(0, LaneKind.DATA)
        assert self.lanes.slot_aligned(10, LaneKind.DATA)
        assert not self.lanes.slot_aligned(3, LaneKind.DATA)

    def test_next_slot_start(self):
        assert self.lanes.next_slot_start(0, LaneKind.DATA) == 0
        assert self.lanes.next_slot_start(1, LaneKind.DATA) == 5
        assert self.lanes.next_slot_start(5, LaneKind.DATA) == 5
        assert self.lanes.next_slot_start(7, LaneKind.META) == 8

    def test_vcsel_count_paper_estimate(self):
        # §4.1: N=16, k~9-10 bits per node -> "approximately 2000 VCSELs".
        per_node = self.lanes.total_vcsels_per_node(16, dedicated=True)
        total = per_node * 16
        assert 1500 < total < 3000

    def test_phase_array_constant_vcsels(self):
        assert self.lanes.total_vcsels_per_node(64, dedicated=False) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            LaneConfig(meta_vcsels=0)
        with pytest.raises(ValueError):
            LaneConfig(queue_capacity=0)
        with pytest.raises(ValueError):
            LaneConfig(meta_receivers=0)
        with pytest.raises(ValueError):
            LaneConfig(confirmation_delay=0)


class TestPhaseArray:
    def test_first_steer_pays_setup(self):
        opa = PhaseArray()
        assert opa.steer(3) == 1

    def test_same_target_free(self):
        opa = PhaseArray()
        opa.steer(3)
        assert opa.steer(3) == 0

    def test_retarget_pays_again(self):
        opa = PhaseArray()
        opa.steer(3)
        opa.steer(3)
        assert opa.steer(7) == 1

    def test_retarget_fraction(self):
        opa = PhaseArray()
        for target in (1, 1, 2, 2, 2, 3):
            opa.steer(target)
        assert opa.retarget_fraction == pytest.approx(3 / 6)

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseArray(setup_cycles=-1)
        with pytest.raises(ValueError):
            PhaseArray().steer(-2)
