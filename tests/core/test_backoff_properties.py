"""Property-based invariants of the §4.3.2 back-off policy.

The paper's schedule: retry ``r`` draws from a window of
``W * B^(r-1)`` slots (clamped at ``max_window``).  Whatever W/B/r a
caller picks, the window must follow that law, never shrink below one
slot, and every drawn delay must land inside it.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backoff import BackoffPolicy

windows = st.floats(min_value=1.0, max_value=64.0, allow_nan=False,
                    allow_infinity=False)
bases = st.floats(min_value=1.0, max_value=3.0, allow_nan=False,
                  allow_infinity=False)
retries = st.integers(min_value=1, max_value=40)


@given(start=windows, base=bases, retry=retries)
@settings(max_examples=100, deadline=None)
def test_window_follows_exponential_law(start, base, retry):
    policy = BackoffPolicy(start_window=start, base=base)
    expected = min(start * base ** (retry - 1), policy.max_window)
    assert math.isclose(policy.window(retry), expected, rel_tol=1e-12)


@given(start=windows, base=bases, retry=retries)
@settings(max_examples=100, deadline=None)
def test_window_never_below_one_slot(start, base, retry):
    assert BackoffPolicy(start_window=start, base=base).window(retry) >= 1.0


@given(start=windows, base=bases, retry=st.integers(min_value=1, max_value=39))
@settings(max_examples=100, deadline=None)
def test_windows_never_shrink_with_retry_count(start, base, retry):
    policy = BackoffPolicy(start_window=start, base=base)
    assert policy.window(retry + 1) >= policy.window(retry)


@given(start=windows, base=bases, retry=retries,
       seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=100, deadline=None)
def test_drawn_delay_lands_inside_the_window(start, base, retry, seed):
    policy = BackoffPolicy(start_window=start, base=base)
    delay = policy.draw_delay_slots(np.random.default_rng(seed), retry)
    assert isinstance(delay, int)
    assert 1 <= delay <= math.ceil(policy.window(retry))


@given(start=windows, base=bases, retry=retries)
@settings(max_examples=50, deadline=None)
def test_expected_delay_is_mean_of_uniform_draw(start, base, retry):
    policy = BackoffPolicy(start_window=start, base=base)
    span = max(1, math.ceil(policy.window(retry)))
    assert policy.expected_delay_slots(retry) == (1 + span) / 2.0


@given(start=windows, retry=retries)
@settings(max_examples=50, deadline=None)
def test_degenerate_base_gives_fixed_window(start, retry):
    policy = BackoffPolicy(start_window=start, base=1.0)
    assert policy.window(retry) == policy.window(1)


@given(start=windows, base=bases, retry=retries)
@settings(max_examples=100, deadline=None)
def test_span_is_ceiling_of_window(start, base, retry):
    policy = BackoffPolicy(start_window=start, base=base)
    assert policy.span(retry) == max(1, math.ceil(policy.window(retry)))
    assert isinstance(policy.span(retry), int)
    assert policy.span(retry) >= 1


@given(start=windows, base=bases, retry=retries,
       seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=100, deadline=None)
def test_drawn_delay_lands_inside_the_span(start, base, retry, seed):
    policy = BackoffPolicy(start_window=start, base=base)
    delay = policy.draw_delay_slots(np.random.default_rng(seed), retry)
    assert 1 <= delay <= policy.span(retry)


@given(start=windows, base=bases, retry=st.integers(min_value=1, max_value=12),
       seed=st.integers(min_value=0, max_value=2**16 - 1))
@settings(max_examples=25, deadline=None)
def test_empirical_mean_converges_to_expected_delay(start, base, retry, seed):
    """Under a fixed seed, the mean of many draws must converge to
    ``expected_delay_slots`` — the quantity the Figure 4 analytical
    model and the give-up accounting both lean on.

    A uniform draw over {1..span} has variance < span^2/12, so with
    20_000 draws the standard error is below span/165; a 5-sigma band
    (~3% of span) makes the test deterministic-in-practice per seed.
    """
    policy = BackoffPolicy(start_window=start, base=base)
    rng = np.random.default_rng(seed)
    draws = 20_000
    mean = (
        sum(policy.draw_delay_slots(rng, retry) for _ in range(draws)) / draws
    )
    span = policy.span(retry)
    tolerance = 5.0 * span / math.sqrt(12.0 * draws)
    assert abs(mean - policy.expected_delay_slots(retry)) <= tolerance + 1e-9
