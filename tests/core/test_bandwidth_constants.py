"""Tests for deriving the §4.3.1 bandwidth-split constants."""

import pytest

from repro.core.analytical import (
    bandwidth_constants,
    optimal_meta_bandwidth,
)


class TestDerivation:
    def test_paper_mix_reproduces_paper_optimum(self):
        """The measured ~2:1 meta:data mix lands B_M at the paper's 0.285."""
        constants = bandwidth_constants(2000, 1000)
        assert optimal_meta_bandwidth(constants) == pytest.approx(0.285, abs=0.01)

    def test_more_meta_traffic_shifts_optimum_up(self):
        heavy_meta = optimal_meta_bandwidth(bandwidth_constants(4000, 1000))
        balanced = optimal_meta_bandwidth(bandwidth_constants(2000, 1000))
        heavy_data = optimal_meta_bandwidth(bandwidth_constants(1000, 1000))
        assert heavy_meta > balanced > heavy_data

    def test_constants_positive(self):
        assert all(c > 0 for c in bandwidth_constants(100, 100))

    def test_validation(self):
        with pytest.raises(ValueError):
            bandwidth_constants(0, 0)
        with pytest.raises(ValueError):
            bandwidth_constants(-1, 5)


class TestFromMeasuredRun:
    def test_cmp_mix_yields_paper_band(self):
        """Close the loop: derive the constants from an actual 16-node
        FSOI run's packet mix and check the optimum motivates the
        3-meta / 6-data VCSEL split."""
        from repro.cmp import run_app

        result = run_app("ba", "fsoi", num_nodes=16, cycles=4000)
        meta = result.fsoi["meta_transmissions"]
        data = result.fsoi["data_transmissions"]
        assert meta > data > 0  # requests/acks outnumber data replies
        constants = bandwidth_constants(meta, data)
        optimum = optimal_meta_bandwidth(constants)
        assert 0.22 < optimum < 0.38
        # 3/9 is the nearest feasible integer split.
        assert abs(3 / 9 - optimum) < abs(5 / 9 - optimum)
