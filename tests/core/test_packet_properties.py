"""Property-based invariants of the PID/~PID collision code (§4.3.2).

The receiver sees the OR of simultaneous optical headers.  The code's
safety property: the merged header of *any* set of two or more
distinct senders is always flagged corrupt (some bit set in both PID
and ~PID), while a single sender's header never is — no false
negatives, no false alarms.  The hint decode must always include every
true participant.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.confirmation import ConfirmationChannel
from repro.core.lanes import LaneConfig
from repro.core.network import FsoiConfig, FsoiNetwork
from repro.net.packet import (
    LaneKind,
    Packet,
    candidate_senders,
    collision_detected,
    merged_header,
    merged_one_hot,
    one_hot_senders,
)
from repro.obs import tracing

id_bits = st.integers(min_value=2, max_value=10)


@st.composite
def distinct_senders(draw, min_size=2):
    bits = draw(id_bits)
    senders = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << bits) - 1),
            min_size=min_size, max_size=6, unique=True,
        )
    )
    return bits, senders


@given(data=distinct_senders(min_size=2))
@settings(max_examples=200, deadline=None)
def test_merged_headers_from_distinct_senders_always_flag_corrupt(data):
    bits, senders = data
    pid, pidc = merged_header(senders, id_bits=bits)
    assert collision_detected(pid, pidc)


@given(bits=id_bits, data=st.data())
@settings(max_examples=200, deadline=None)
def test_single_sender_never_flags_corrupt(bits, data):
    sender = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
    pid, pidc = merged_header([sender], id_bits=bits)
    assert not collision_detected(pid, pidc)
    # The lone sender decodes back out of its own header.
    assert candidate_senders(pid, pidc, [sender], id_bits=bits) == [sender]


@given(data=distinct_senders(min_size=1))
@settings(max_examples=200, deadline=None)
def test_candidates_always_include_every_true_participant(data):
    bits, senders = data
    pid, pidc = merged_header(senders, id_bits=bits)
    candidates = candidate_senders(
        pid, pidc, range(1 << bits), id_bits=bits
    )
    assert set(senders) <= set(candidates)


@given(data=distinct_senders(min_size=2))
@settings(max_examples=200, deadline=None)
def test_duplicate_transmissions_do_not_unflag_a_collision(data):
    """OR-ing a sender's header twice changes nothing (light is light)."""
    bits, senders = data
    once = merged_header(senders, id_bits=bits)
    twice = merged_header(senders + senders, id_bits=bits)
    assert once == twice
    assert collision_detected(*twice)


@given(nodes=st.integers(min_value=2, max_value=64), data=st.data())
@settings(max_examples=200, deadline=None)
def test_one_hot_merge_decodes_exact_participant_set(nodes, data):
    senders = data.draw(
        st.lists(st.integers(min_value=0, max_value=nodes - 1),
                 min_size=1, max_size=8, unique=True)
    )
    merged = merged_one_hot(senders, nodes)
    assert one_hot_senders(merged, nodes) == sorted(senders)


# -- collided slots are always detected (per physical receiver) ------------
#
# A receiver only merges headers of senders that its §4.3.1 static
# partition actually routes to it; the detection property must hold per
# *receiver*, not just per destination.


@st.composite
def slot_traffic(draw):
    """One destination's slot: a set of distinct concurrent senders."""
    num_nodes = draw(st.sampled_from([4, 16, 64]))
    dst = draw(st.integers(min_value=0, max_value=num_nodes - 1))
    senders = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_nodes - 1),
            min_size=1, max_size=min(8, num_nodes - 1), unique=True,
        ).filter(lambda s: dst not in s)
    )
    lane = draw(st.sampled_from([LaneKind.META, LaneKind.DATA]))
    return num_nodes, dst, senders, lane


@given(traffic=slot_traffic())
@settings(max_examples=200, deadline=None)
def test_collided_slot_always_detected_per_receiver(traffic):
    """Group a slot's senders by receiver; every shared receiver flags."""
    num_nodes, dst, senders, lane = traffic
    lanes = LaneConfig()
    bits = FsoiConfig(num_nodes=num_nodes).id_bits
    by_receiver: dict[int, list[int]] = {}
    for src in senders:
        rx = lanes.receiver_for(lane, src, dst, num_nodes)
        by_receiver.setdefault(rx, []).append(src)
    for group in by_receiver.values():
        pid, pidc = merged_header(group, id_bits=bits)
        if len(group) >= 2:
            # The PID/~PID OR-merge must flag every true collision.
            assert collision_detected(pid, pidc)
        else:
            # A solo sender's header is clean and self-identifying.
            assert not collision_detected(pid, pidc)
            assert candidate_senders(pid, pidc, group, id_bits=bits) == group


# -- the confirmation channel never collides by construction ---------------


@given(
    delay=st.integers(min_value=1, max_value=5),
    received=st.lists(st.integers(min_value=0, max_value=200),
                      min_size=1, max_size=40),
)
@settings(max_examples=100, deadline=None)
def test_confirmation_delivered_exactly_once_at_fixed_delay(delay, received):
    """Every scheduled confirmation fires exactly once, at cycle+delay."""
    channel = ConfirmationChannel(num_nodes=16, delay=delay)
    arrivals: dict[int, list[int]] = {}
    current = {"cycle": 0}
    for index, cycle in enumerate(received):
        promised = channel.send_confirmation(
            cycle,
            (lambda i=index: arrivals.setdefault(i, []).append(current["cycle"])),
        )
        assert promised == cycle + delay
    for cycle in range(max(received) + delay + 1):
        current["cycle"] = cycle
        channel.tick(cycle)
    assert channel.pending() == 0
    for index, cycle in enumerate(received):
        assert arrivals[index] == [cycle + delay]


def test_confirmation_arrivals_never_overlap_per_sender():
    """No collisions by construction, observed on a real contended run.

    A node starts at most one packet per lane per slot, so the
    confirmations it receives back on a lane are at least one slot
    apart — even under heavy contention and retransmission.  The trace
    layer makes the per-arrival timing observable.
    """
    num_nodes = 16
    config = FsoiConfig(num_nodes=num_nodes)
    net = FsoiNetwork(config)
    rng = random.Random(7)
    with tracing(capacity=1 << 20) as tracer:
        for cycle in range(6000):
            if cycle < 200 and rng.random() < 0.8:
                src = rng.randrange(num_nodes)
                dst = (src + rng.randrange(1, num_nodes)) % num_nodes
                lane = LaneKind.META if rng.random() < 0.5 else LaneKind.DATA
                net.try_send(Packet(src=src, dst=dst, lane=lane), cycle)
            net.tick(cycle)
            if cycle >= 200 and net.quiescent():
                break
    assert net.quiescent(), "traffic failed to drain"
    assert tracer.dropped == 0
    confirmations = list(tracer.events(name="confirmation", cat="fsoi"))
    assert len(confirmations) > 50  # contention actually happened
    by_sender: dict[tuple[int, str], list[int]] = {}
    for event in confirmations:
        by_sender.setdefault((event.node, event.lane), []).append(event.cycle)
    slot_len = {
        lane.value: config.lanes.slot_cycles(lane)
        for lane in (LaneKind.META, LaneKind.DATA)
    }
    for (node, lane), cycles in by_sender.items():
        cycles.sort()
        gaps = [b - a for a, b in zip(cycles, cycles[1:])]
        assert all(gap >= slot_len[lane] for gap in gaps), (
            f"node {node} {lane}: confirmation arrivals {cycles} "
            f"violate the {slot_len[lane]}-cycle slot spacing"
        )
