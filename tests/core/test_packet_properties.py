"""Property-based invariants of the PID/~PID collision code (§4.3.2).

The receiver sees the OR of simultaneous optical headers.  The code's
safety property: the merged header of *any* set of two or more
distinct senders is always flagged corrupt (some bit set in both PID
and ~PID), while a single sender's header never is — no false
negatives, no false alarms.  The hint decode must always include every
true participant.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.packet import (
    candidate_senders,
    collision_detected,
    merged_header,
    merged_one_hot,
    one_hot_senders,
)

id_bits = st.integers(min_value=2, max_value=10)


@st.composite
def distinct_senders(draw, min_size=2):
    bits = draw(id_bits)
    senders = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << bits) - 1),
            min_size=min_size, max_size=6, unique=True,
        )
    )
    return bits, senders


@given(data=distinct_senders(min_size=2))
@settings(max_examples=200, deadline=None)
def test_merged_headers_from_distinct_senders_always_flag_corrupt(data):
    bits, senders = data
    pid, pidc = merged_header(senders, id_bits=bits)
    assert collision_detected(pid, pidc)


@given(bits=id_bits, data=st.data())
@settings(max_examples=200, deadline=None)
def test_single_sender_never_flags_corrupt(bits, data):
    sender = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
    pid, pidc = merged_header([sender], id_bits=bits)
    assert not collision_detected(pid, pidc)
    # The lone sender decodes back out of its own header.
    assert candidate_senders(pid, pidc, [sender], id_bits=bits) == [sender]


@given(data=distinct_senders(min_size=1))
@settings(max_examples=200, deadline=None)
def test_candidates_always_include_every_true_participant(data):
    bits, senders = data
    pid, pidc = merged_header(senders, id_bits=bits)
    candidates = candidate_senders(
        pid, pidc, range(1 << bits), id_bits=bits
    )
    assert set(senders) <= set(candidates)


@given(data=distinct_senders(min_size=2))
@settings(max_examples=200, deadline=None)
def test_duplicate_transmissions_do_not_unflag_a_collision(data):
    """OR-ing a sender's header twice changes nothing (light is light)."""
    bits, senders = data
    once = merged_header(senders, id_bits=bits)
    twice = merged_header(senders + senders, id_bits=bits)
    assert once == twice
    assert collision_detected(*twice)


@given(nodes=st.integers(min_value=2, max_value=64), data=st.data())
@settings(max_examples=200, deadline=None)
def test_one_hot_merge_decodes_exact_participant_set(nodes, data):
    senders = data.draw(
        st.lists(st.integers(min_value=0, max_value=nodes - 1),
                 min_size=1, max_size=8, unique=True)
    )
    merged = merged_one_hot(senders, nodes)
    assert one_hot_senders(merged, nodes) == sorted(senders)
