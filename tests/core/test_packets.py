"""Tests for packets and the PID/~PID collision-detection code."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.packet import (
    DATA_PACKET_BITS,
    META_PACKET_BITS,
    LaneKind,
    Packet,
    candidate_senders,
    collision_detected,
    merged_header,
)


class TestPacketSizes:
    def test_table3_sizes(self):
        assert META_PACKET_BITS == 72
        assert DATA_PACKET_BITS == 360
        assert LaneKind.META.flits == 1
        assert LaneKind.DATA.flits == 5

    def test_packet_bits_follow_lane(self):
        p = Packet(src=0, dst=1, lane=LaneKind.DATA)
        assert p.bits == 360 and p.flits == 5

    def test_self_packet_rejected(self):
        with pytest.raises(ValueError):
            Packet(src=2, dst=2, lane=LaneKind.META)

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError):
            Packet(src=-1, dst=2, lane=LaneKind.META)

    def test_uids_unique(self):
        a = Packet(src=0, dst=1, lane=LaneKind.META)
        b = Packet(src=0, dst=1, lane=LaneKind.META)
        assert a.uid != b.uid


class TestLatencyComponents:
    def test_components_sum_to_total(self):
        p = Packet(src=0, dst=1, lane=LaneKind.META)
        p.enqueue_cycle = 10
        p.scheduled_cycle = 12   # 2 cycles of intentional spacing
        p.first_tx_cycle = 16    # 4 cycles queued
        p.final_tx_cycle = 24    # 8 cycles of collision resolution
        p.deliver_cycle = 27     # 3 cycles in the network
        assert p.scheduling_delay == 2
        assert p.queuing_delay == 4
        assert p.resolution_delay == 8
        assert p.network_delay == 3
        assert p.total_delay == 17
        assert (
            p.scheduling_delay + p.queuing_delay + p.resolution_delay + p.network_delay
            == p.total_delay
        )


class TestPidCode:
    def test_single_sender_consistent(self):
        pid, pidc = merged_header([5], id_bits=4)
        assert not collision_detected(pid, pidc)
        assert pid == 5 and pidc == 0b1010

    def test_two_senders_always_detected(self):
        for a in range(8):
            for b in range(8):
                if a == b:
                    continue
                assert collision_detected(*merged_header([a, b], id_bits=3))

    def test_id_width_checked(self):
        with pytest.raises(ValueError):
            merged_header([9], id_bits=3)

    @given(st.sets(st.integers(min_value=0, max_value=63), min_size=2, max_size=6))
    def test_any_multiway_collision_detected(self, senders):
        assert collision_detected(*merged_header(senders, id_bits=6))

    @given(st.sets(st.integers(min_value=0, max_value=63), min_size=1, max_size=6))
    def test_candidates_superset_of_participants(self, senders):
        """§5.2: the candidate set always contains all true colliders."""
        pid, pidc = merged_header(senders, id_bits=6)
        candidates = candidate_senders(pid, pidc, range(64), id_bits=6)
        assert senders.issubset(set(candidates))

    def test_candidates_exact_for_single_sender(self):
        pid, pidc = merged_header([42], id_bits=6)
        assert candidate_senders(pid, pidc, range(64), id_bits=6) == [42]

    def test_candidates_can_include_innocents(self):
        # 0b01 and 0b10 merge to pid=0b11, pidc=0b11: every 2-bit id fits.
        pid, pidc = merged_header([1, 2], id_bits=2)
        assert candidate_senders(pid, pidc, range(4), id_bits=2) == [0, 1, 2, 3]

    def test_candidates_validates_ids(self):
        with pytest.raises(ValueError):
            candidate_senders(1, 2, [99], id_bits=3)
