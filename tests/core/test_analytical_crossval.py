"""Simulator-vs-analytical cross-validation (§4.3, Figures 3 and 4).

The paper validates its design methodology by checking that the
cycle-level simulator "agrees well with the trend of theoretical
calculations".  These tests close the same loop inside the repo: drive
the real :class:`~repro.core.network.FsoiNetwork` with Bernoulli traffic
and compare its measured collision statistics against the closed form
(:func:`collision_probability`), the mid-tier Monte Carlo
(:func:`monte_carlo_collision_probability`) and the Figure 4 delay model
(:func:`resolution_delay`).

Tolerances are deliberately loose and stated per comparison: the
analytical channel is memoryless while the simulator's retransmissions
are correlated (a collided sender *will* retransmit shortly after, which
raises both the measured load and the clustering of collisions).  The
paper itself reports a computed resolution delay of 7.26 cycles against
simulated values "between 6.8 and 9.6" — a ~30% band — and we hold the
same order of agreement at every operating point.
"""

import numpy as np
import pytest

from repro.core.analytical import (
    collision_probability,
    monte_carlo_collision_probability,
    resolution_delay,
)
from repro.core.network import FsoiConfig, FsoiNetwork
from repro.net.packet import LaneKind, Packet

#: (injection probability per node per meta slot, node count, seed).
#: Three operating points spanning injection rate and system size.
OPERATING_POINTS = [
    pytest.param(0.08, 16, 11, id="light-16"),
    pytest.param(0.18, 16, 12, id="heavy-16"),
    pytest.param(0.12, 8, 13, id="medium-8"),
]


def bernoulli_meta_run(p, num_nodes, seed, cycles=24_000):
    """Drive the simulator with Bernoulli meta traffic; return the net.

    Every meta slot boundary each node offers a fresh packet with
    probability ``p`` to a uniform random peer.  Retransmissions ride on
    top, so the *measured* transmission probability (the closed form's
    ``p``) is read back from the network rather than assumed.
    """
    net = FsoiNetwork(FsoiConfig(num_nodes=num_nodes, seed=seed))
    rng = np.random.default_rng(seed)
    slot = net.lanes.slot_cycles(LaneKind.META)
    for cycle in range(cycles):
        if cycle % slot == 0:
            offered = rng.random(num_nodes) < p
            targets = rng.integers(0, num_nodes - 1, num_nodes)
            for src in np.flatnonzero(offered):
                dst = int(targets[src])
                if dst >= src:
                    dst += 1
                net.try_send(Packet(src=int(src), dst=dst, lane=LaneKind.META),
                             cycle)
        net.tick(cycle)
    return net


class TestCollisionRateCrossValidation:
    """Figure 3: simulator collision rate vs the closed form."""

    @pytest.mark.parametrize("p, num_nodes, seed", OPERATING_POINTS)
    def test_simulator_matches_closed_form(self, p, num_nodes, seed):
        net = bernoulli_meta_run(p, num_nodes, seed)
        measured_p = net.transmission_probability(LaneKind.META)
        simulated = net.collision_events_per_node_slot(LaneKind.META)
        receivers = net.lanes.receivers(LaneKind.META)
        predicted = collision_probability(measured_p, num_nodes, receivers)
        assert simulated > 0.0, "operating point produced no collisions"
        # Retransmission clustering makes the simulator run hotter than
        # the memoryless model (measured ratios 1.4-1.7x across these
        # points), but the closed form must stay a same-order lower
        # bound: hold the ratio inside [1.0, 2.0].
        assert predicted <= simulated <= 2.0 * predicted

    @pytest.mark.parametrize("p, num_nodes, seed", OPERATING_POINTS)
    def test_retransmissions_raise_measured_load(self, p, num_nodes, seed):
        net = bernoulli_meta_run(p, num_nodes, seed)
        measured_p = net.transmission_probability(LaneKind.META)
        # Collisions force retries, so measured load >= offered load; a
        # sub-offered measurement would mean the driver lost packets.
        assert measured_p >= p * 0.95
        assert measured_p < min(1.0, 2.0 * p)


class TestMonteCarloCrossValidation:
    """The mid-tier Monte Carlo must agree tightly with the closed form
    (both model the identical memoryless channel)."""

    @pytest.mark.parametrize(
        "p, num_nodes, receivers",
        [(0.08, 16, 2), (0.18, 16, 2), (0.12, 8, 2), (0.15, 16, 4)],
    )
    def test_monte_carlo_matches_closed_form(self, p, num_nodes, receivers):
        closed = collision_probability(p, num_nodes, receivers)
        mc = monte_carlo_collision_probability(
            p, num_nodes, receivers, trials=40_000, seed=5
        )
        assert mc == pytest.approx(closed, rel=0.12, abs=2e-3)


class TestResolutionDelayCrossValidation:
    """Figure 4: measured resolution delay vs the numerical model."""

    @pytest.mark.parametrize("p, num_nodes, seed", OPERATING_POINTS)
    def test_mean_resolution_delay_in_model_band(self, p, num_nodes, seed):
        net = bernoulli_meta_run(p, num_nodes, seed)
        simulated = net.mean_resolution_delay(LaneKind.META)
        assert simulated > 0.0, "no collided packets at this operating point"
        backoff = net.config.backoff
        predicted = resolution_delay(
            backoff.start_window,
            backoff.base,
            background_rate=net.transmission_probability(LaneKind.META),
            slot_cycles=net.lanes.slot_cycles(LaneKind.META),
            confirmation_delay=net.confirmations.delay,
            trials=8_000,
            seed=seed,
        )
        # The paper's own agreement band (7.26 computed vs 6.8-9.6
        # simulated) is roughly [0.9x, 1.35x]; the full simulator also
        # pays queueing and slot-alignment latencies the abstract model
        # omits, so accept [0.6x, 2.2x] and a sanity ceiling.
        assert 0.6 * predicted <= simulated <= 2.2 * predicted
        assert simulated < 60.0

    def test_paper_operating_point(self):
        """§4.3.2's headline numbers: computed 7.26 cycles, simulated
        6.8-9.6, for W=2.7, B=1.1 at light background load."""
        predicted = resolution_delay(2.7, 1.1, background_rate=0.01)
        assert 5.5 <= predicted <= 10.0
