"""Tests for the shared Interconnect base class and its statistics."""

import pytest

from repro.net.interface import Interconnect, InterconnectStats
from repro.net.packet import LaneKind, Packet


class _Null(Interconnect):
    """Minimal concrete network: delivers on demand."""

    def try_send(self, packet, cycle):
        packet.enqueue_cycle = cycle
        packet.scheduled_cycle = cycle
        self.stats.sent.add()
        return True

    def tick(self, cycle):
        pass

    def force_deliver(self, packet, cycle):
        packet.first_tx_cycle = packet.scheduled_cycle
        packet.final_tx_cycle = packet.scheduled_cycle
        self._deliver(packet, cycle)


class TestBaseClass:
    def test_requires_two_nodes(self):
        with pytest.raises(ValueError):
            _Null(1)

    def test_callback_invoked_on_delivery(self):
        net = _Null(4)
        seen = []
        net.set_delivery_callback(2, seen.append)
        p = Packet(src=0, dst=2, lane=LaneKind.META)
        net.try_send(p, 0)
        net.force_deliver(p, 5)
        assert seen == [p]
        assert p.deliver_cycle == 5

    def test_missing_callback_is_fine(self):
        net = _Null(4)
        p = Packet(src=0, dst=1, lane=LaneKind.META)
        net.try_send(p, 0)
        net.force_deliver(p, 3)  # no callback installed: no crash
        assert int(net.stats.delivered) == 1

    def test_node_range_checked(self):
        net = _Null(4)
        with pytest.raises(ValueError):
            net.set_delivery_callback(4, lambda p: None)
        with pytest.raises(ValueError):
            net.can_accept(-1, LaneKind.META)

    def test_quiescent_default(self):
        net = _Null(4)
        assert net.quiescent()
        p = Packet(src=0, dst=1, lane=LaneKind.META)
        net.try_send(p, 0)
        assert not net.quiescent()
        net.force_deliver(p, 1)
        assert net.quiescent()


class TestStats:
    def test_breakdown_fields(self):
        stats = InterconnectStats()
        p = Packet(src=0, dst=1, lane=LaneKind.META)
        p.enqueue_cycle = 0
        p.scheduled_cycle = 2
        p.first_tx_cycle = 4
        p.final_tx_cycle = 8
        p.deliver_cycle = 10
        stats.record_delivery(p)
        breakdown = stats.breakdown()
        assert breakdown["scheduling"] == 2
        assert breakdown["queuing"] == 2
        assert breakdown["collision_resolution"] == 4
        assert breakdown["network"] == 2
        assert breakdown["total"] == 10

    def test_means_accumulate(self):
        stats = InterconnectStats()
        for total in (10, 20):
            p = Packet(src=0, dst=1, lane=LaneKind.META)
            p.enqueue_cycle = 0
            p.scheduled_cycle = 0
            p.first_tx_cycle = 0
            p.final_tx_cycle = 0
            p.deliver_cycle = total
            stats.record_delivery(p)
        assert stats.breakdown()["total"] == 15
