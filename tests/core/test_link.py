"""Tests for the end-to-end optical link (Table 1)."""

import pytest

from repro.core.link import LinkPower, OpticalLink
from repro.optics.path import FreeSpacePath
from repro.util.units import CM


class TestTable1:
    """Each assertion checks a Table 1 entry against the model."""

    link = OpticalLink()

    def test_path_loss(self):
        assert self.link.table1()["optical_path_loss_db"] == pytest.approx(2.6, abs=0.3)

    def test_snr(self):
        # Paper: 7.5 dB.  Standard Gaussian OOK theory puts BER 1e-10 at
        # Q = 6.36, i.e. 8.0 dB under the 10*log10(Q) convention; see
        # EXPERIMENTS.md for the discrepancy note.
        assert self.link.snr_db() == pytest.approx(8.0, abs=0.7)

    def test_ber(self):
        assert 1e-12 < self.link.ber() < 1e-8

    def test_jitter_order_of_magnitude(self):
        # Paper: 1.7 ps cycle-to-cycle (incl. deterministic components).
        assert 0.3e-12 < self.link.random_jitter_rms() < 2.5e-12

    def test_data_rate_supported(self):
        assert self.link.feasible()

    def test_bits_per_cpu_cycle(self):
        assert self.link.bits_per_cpu_cycle == 12  # 40 GHz / 3.3 GHz

    def test_bit_time(self):
        assert self.link.bit_time == pytest.approx(25e-12)

    def test_received_powers_ordered(self):
        p1, p0 = self.link.received_powers()
        assert p1 > p0 > 0

    def test_photocurrents_track_extinction(self):
        i1, i0 = self.link.photocurrents()
        dark = self.link.detector.dark_current
        assert (i1 - dark) / (i0 - dark) == pytest.approx(11.0, rel=1e-6)

    def test_table1_has_all_headline_keys(self):
        table = self.link.table1()
        for key in (
            "optical_path_loss_db", "snr_db", "ber", "jitter_ps",
            "data_rate_gbps", "laser_driver_mw", "receiver_mw",
        ):
            assert key in table

    def test_validation(self):
        with pytest.raises(ValueError):
            OpticalLink(data_rate=0)


class TestTiming:
    def test_padding_bits_for_skew(self):
        link = OpticalLink()
        short = FreeSpacePath(distance=0.5 * CM)
        bits = link.serializer_padding_bits(short)
        # Paper fn. 2: delay differences up to tens of ps ~ 3 comm cycles.
        assert 1 <= bits <= 4

    def test_no_padding_for_equal_paths(self):
        link = OpticalLink()
        assert link.serializer_padding_bits(link.path) == 0


class TestLinkPower:
    def test_energy_per_bit(self):
        # (6.3 + 0.96) mW / 40 Gbps ~ 0.18 pJ/bit.
        epb = LinkPower().energy_per_bit(40e9)
        assert epb == pytest.approx(0.1815e-12, rel=0.01)

    def test_transmitter_active(self):
        assert LinkPower().transmitter_active == pytest.approx(7.26e-3)

    def test_energy_per_bit_validates_rate(self):
        with pytest.raises(ValueError):
            LinkPower().energy_per_bit(0)
