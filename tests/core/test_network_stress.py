"""Stress and corner-case tests for the FSOI network."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backoff import BackoffPolicy
from repro.core.network import FsoiConfig, FsoiNetwork
from repro.core.optimizations import OptimizationConfig
from repro.net.packet import LaneKind, Packet


def drain(net, start, limit=20_000):
    cycle = start
    while not net.quiescent() and cycle < start + limit:
        net.tick(cycle)
        cycle += 1
    return cycle


class TestBurstResolution:
    def test_all_to_one_burst_resolves(self):
        """The §4.3.2 pathological case inside the real simulator: every
        node fires at one victim simultaneously; exponential back-off
        must get everyone through."""
        net = FsoiNetwork(FsoiConfig(num_nodes=16, seed=21))
        packets = [
            Packet(src=src, dst=0, lane=LaneKind.META) for src in range(1, 16)
        ]
        for p in packets:
            assert net.try_send(p, 0)
        net.tick(0)
        end = drain(net, 1)
        assert net.quiescent(), f"burst not drained by {end}"
        assert all(p.deliver_cycle > 0 for p in packets)
        assert max(p.retries for p in packets) >= 2

    def test_fixed_window_much_slower_than_tuned(self):
        def burst_time(policy, seed=3):
            net = FsoiNetwork(
                FsoiConfig(num_nodes=16, backoff=policy, seed=seed)
            )
            packets = [
                Packet(src=s, dst=0, lane=LaneKind.META) for s in range(1, 16)
            ]
            for p in packets:
                net.try_send(p, 0)
            net.tick(0)
            drain(net, 1)
            return max(p.deliver_cycle for p in packets)

        tuned = burst_time(BackoffPolicy(2.7, 1.1))
        fixed = burst_time(BackoffPolicy(2.7, 1.0, max_window=3))
        assert fixed > tuned

    def test_sustained_overload_keeps_draining(self):
        """Offered load beyond one receiver's capacity must still make
        progress (queues refuse, nothing wedges)."""
        net = FsoiNetwork(FsoiConfig(num_nodes=8, seed=5))
        rng = np.random.default_rng(0)
        sent = 0
        for cycle in range(600):
            if cycle % 2 == 0:
                for src in range(1, 8):
                    p = Packet(src=src, dst=0, lane=LaneKind.META)
                    if net.try_send(p, cycle):
                        sent += 1
            net.tick(cycle)
        drain(net, 600)
        assert net.quiescent()
        assert int(net.stats.delivered) == sent
        assert int(net.stats.refused) > 0  # backpressure engaged


class TestPhaseArrayStats:
    def test_retarget_fraction_reported(self):
        net = FsoiNetwork(FsoiConfig(num_nodes=16, phase_array=True, seed=2))
        for dst in (1, 2, 1, 3):
            net.try_send(Packet(src=0, dst=dst, lane=LaneKind.META), 0)
        drain(net, 0)
        summary = net.phase_array_summary()
        assert summary["sends"] == 4
        assert summary["retargets"] == 4  # 1, 2, back to 1, then 3
        assert summary["retarget_fraction"] == 1.0

    def test_dedicated_summary_empty(self):
        net = FsoiNetwork(FsoiConfig(num_nodes=16, phase_array=False))
        assert net.phase_array_summary() == {}


class TestHintMisidentification:
    def test_wrong_winner_and_ignored_paths(self):
        """With the ambiguous 2-bit PID space, force a mis-identified
        winner: candidates include innocents, so over many collisions
        some hints go to non-colliders."""
        opts = OptimizationConfig(resolution_hints=True)
        net = FsoiNetwork(FsoiConfig(num_nodes=4, optimizations=opts, seed=7))
        rng = np.random.default_rng(1)
        for cycle in range(1200):
            if cycle % 5 == 0:
                for src in (0, 2):  # persistent colliders at dst 3
                    net.try_send(
                        Packet(src=src, dst=3, lane=LaneKind.DATA), cycle
                    )
                if rng.random() < 0.5:
                    net.try_send(
                        Packet(src=1, dst=0, lane=LaneKind.DATA), cycle
                    )
            net.tick(cycle)
        drain(net, 1200)
        hints = net.hint_summary()
        assert hints["issued"] > 10
        # src 0 and 2 merge to pid=0b10|0b00... candidates can include 1
        # and 3; some hints miss.
        assert hints["correct"] + hints["wrong_winner"] + hints["ignored"] == (
            hints["issued"]
        )


class TestDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_same_seed_same_outcome(self, seed):
        def run(seed):
            net = FsoiNetwork(FsoiConfig(num_nodes=8, seed=seed))
            rng = np.random.default_rng(42)  # same traffic both times
            for cycle in range(200):
                if cycle % 2 == 0 and rng.random() < 0.4:
                    src = int(rng.integers(0, 8))
                    dst = (src + 1 + int(rng.integers(0, 7))) % 8
                    if dst != src:
                        net.try_send(
                            Packet(src=src, dst=dst, lane=LaneKind.META), cycle
                        )
                net.tick(cycle)
            return (
                int(net.stats.delivered),
                net.stats.total.mean,
                net.collision_rate(LaneKind.META),
            )

        assert run(seed) == run(seed)
