"""Tests for the confirmation channel and mini-cycle reservations."""

import pytest

from repro.core.confirmation import ConfirmationChannel, MiniCycleReservations


class TestConfirmationChannel:
    def test_fixed_delay(self):
        channel = ConfirmationChannel(4, delay=2)
        fired = []
        arrival = channel.send_confirmation(10, lambda: fired.append("ok"))
        assert arrival == 12
        channel.tick(11)
        assert fired == []
        channel.tick(12)
        assert fired == ["ok"]

    def test_insertion_order_within_cycle(self):
        channel = ConfirmationChannel(4)
        fired = []
        channel.send_confirmation(5, lambda: fired.append("a"))
        channel.send_confirmation(5, lambda: fired.append("b"))
        channel.tick(7)
        assert fired == ["a", "b"]

    def test_counts_confirmations_and_signals(self):
        channel = ConfirmationChannel(4)
        channel.send_confirmation(0, lambda: None)
        channel.send_signal(0, lambda: None)
        channel.send_signal(0, lambda: None)
        assert channel.confirmations_sent == 1
        assert channel.signals_sent == 2

    def test_pending_drains(self):
        channel = ConfirmationChannel(4)
        channel.send_confirmation(0, lambda: None)
        assert channel.pending() == 1
        channel.tick(2)
        assert channel.pending() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ConfirmationChannel(4, delay=0)


class TestMiniCycleReservations:
    def test_reserve_distinct_slots(self):
        table = MiniCycleReservations(mini_cycles=12)
        slots = {table.reserve(f"lock{i}") for i in range(12)}
        assert slots == set(range(12))

    def test_exhaustion_returns_none(self):
        table = MiniCycleReservations(mini_cycles=2)
        table.reserve("a")
        table.reserve("b")
        assert table.reserve("c") is None

    def test_rereserve_same_owner(self):
        table = MiniCycleReservations()
        first = table.reserve("a")
        assert table.reserve("a") == first
        assert table.free_slots == 11

    def test_release_frees_slot(self):
        table = MiniCycleReservations(mini_cycles=1)
        table.reserve("a")
        table.release("a")
        assert table.reserve("b") == 0

    def test_release_unknown_is_noop(self):
        MiniCycleReservations().release("ghost")

    def test_slot_of(self):
        table = MiniCycleReservations()
        slot = table.reserve("x")
        assert table.slot_of("x") == slot
        assert table.slot_of("y") is None
