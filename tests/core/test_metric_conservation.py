"""Conservation laws over the FSOI network's counters.

Every transmission has exactly one fate — delivered, collided, or
corrupted by a signaling error — and every §5.2 resolution hint has
exactly one outcome.  Random traffic of any shape must therefore
satisfy, once the network drains:

* per lane: ``transmissions == delivered + collided_transmissions +
  error_corrupted``
* ``hints_issued == hints_correct + hints_wrong_winner +
  hints_ignored``

A counter added to one branch but not its siblings (or an event
double-counted) breaks the ledger immediately, so these tests guard
every future change to the collision/back-off/hint paths at once.
"""

import random

import pytest

from repro.core.network import FsoiConfig, FsoiNetwork
from repro.core.optimizations import OptimizationConfig
from repro.net.packet import LaneKind, Packet

NUM_NODES = 16
MAX_CYCLES = 60_000


def drive(net: FsoiNetwork, seed: int, packets: int = 300,
          inject_window: int = 400, reply_fraction: float = 0.4) -> None:
    """Inject seeded random traffic, then tick until the network drains."""
    rng = random.Random(seed)
    schedule: dict[int, list[Packet]] = {}
    for _ in range(packets):
        src = rng.randrange(NUM_NODES)
        dst = rng.randrange(NUM_NODES - 1)
        if dst >= src:
            dst += 1
        lane = LaneKind.META if rng.random() < 0.5 else LaneKind.DATA
        packet = Packet(
            src=src, dst=dst, lane=lane,
            expects_data_reply=(
                lane is LaneKind.META and rng.random() < reply_fraction
            ),
        )
        schedule.setdefault(rng.randrange(inject_window), []).append(packet)

    for cycle in range(MAX_CYCLES):
        for packet in schedule.pop(cycle, ()):
            net.try_send(packet, cycle)
        net.tick(cycle)
        if not schedule and net.quiescent():
            return
    raise AssertionError(f"network failed to drain in {MAX_CYCLES} cycles")


def lane_counters(net: FsoiNetwork, lane: LaneKind) -> dict[str, int]:
    return {key: c.value for key, c in net._lane_stats[lane].items()}


def assert_transmission_ledger(net: FsoiNetwork) -> None:
    for lane in (LaneKind.META, LaneKind.DATA):
        c = lane_counters(net, lane)
        explained = c["delivered"] + c["collided_tx"] + c["error_tx"]
        if net._injector is not None:
            # Fault injection adds three more transmission fates: lost
            # in a dark lane/dead receiver, corrupted by the injector,
            # or received as a duplicate after a dropped confirmation.
            f = {key: counter.value
                 for key, counter in net._fault_lane_stats[lane].items()}
            explained += (
                f["fault_lost"] + f["injected_corrupt"] + f["duplicate_rx"]
            )
        assert c["tx"] == explained, f"{lane.value} ledger broken: {c}"
        # Deliveries can't exceed what the CMP layer handed over.
        assert c["delivered"] <= c["tx"]


def assert_hint_ledger(net: FsoiNetwork) -> None:
    h = {key: c.value for key, c in net._hint_stats.items()}
    assert h["issued"] == h["correct"] + h["wrong_winner"] + h["ignored"], (
        f"hint ledger broken: {h}"
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_transmissions_conserved_baseline(seed):
    net = FsoiNetwork(FsoiConfig(num_nodes=NUM_NODES, seed=seed))
    drive(net, seed, packets=400, inject_window=150)
    assert_transmission_ledger(net)
    # The traffic must actually have exercised the collision machinery.
    collided = sum(
        lane_counters(net, lane)["collided_tx"]
        for lane in (LaneKind.META, LaneKind.DATA)
    )
    assert collided > 0


@pytest.mark.parametrize("seed", [0, 1])
def test_transmissions_conserved_with_signaling_errors(seed):
    net = FsoiNetwork(FsoiConfig(
        num_nodes=NUM_NODES, packet_error_rate=0.05, seed=seed
    ))
    drive(net, seed)
    assert_transmission_ledger(net)
    total_errors = sum(
        lane_counters(net, lane)["error_tx"]
        for lane in (LaneKind.META, LaneKind.DATA)
    )
    assert total_errors > 0  # the error branch fired


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_hints_conserved_with_all_optimizations(seed):
    net = FsoiNetwork(FsoiConfig(
        num_nodes=NUM_NODES,
        optimizations=OptimizationConfig.all(),
        seed=seed,
    ))
    drive(net, seed, packets=500, inject_window=300, reply_fraction=0.8)
    assert_transmission_ledger(net)
    assert_hint_ledger(net)
    assert net._hint_stats["issued"].value > 0  # hints actually issued


def test_hints_conserved_with_one_hot_pid():
    """Footnote 7: one-hot PIDs make every issued hint correct."""
    net = FsoiNetwork(FsoiConfig(
        num_nodes=NUM_NODES,
        optimizations=OptimizationConfig.all(),
        one_hot_pid=True,
        seed=3,
    ))
    drive(net, 3, packets=500, inject_window=300, reply_fraction=0.8)
    assert_hint_ledger(net)
    h = {key: c.value for key, c in net._hint_stats.items()}
    assert h["issued"] > 0
    assert h["wrong_winner"] == 0


@pytest.mark.parametrize("seed", [0, 1])
def test_transmissions_conserved_unslotted(seed):
    """The pure-ALOHA ablation keeps the same ledger."""
    net = FsoiNetwork(FsoiConfig(
        num_nodes=NUM_NODES, slotted=False, seed=seed
    ))
    drive(net, seed)
    assert_transmission_ledger(net)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_no_silent_loss_under_faults(seed):
    """Graceful degradation's conservation law: kill one VCSEL lane and
    drop 5% of confirmations, and every packet handed to the network is
    still either delivered or *explicitly* given up — nothing vanishes
    into the fault paths silently.
    """
    from repro.faults import ConfirmationDrop, FaultPlan, LaneFault

    plan = FaultPlan(
        label="conservation",
        lane_faults=(LaneFault(3, "data"),),       # permanent VCSEL death
        confirmation_drops=(ConfirmationDrop(0.05),),
        giveup_retries=12,
        seed=seed,
    )
    net = FsoiNetwork(FsoiConfig(num_nodes=NUM_NODES, faults=plan, seed=seed))
    drive(net, seed, packets=400, inject_window=300)
    assert_transmission_ledger(net)

    summary = net.fault_summary()
    sent = int(net.stats.sent)
    delivered = int(net.stats.delivered)
    gave_up = summary["gave_up_lost"] + summary["gave_up_delivered"]
    assert sent == delivered + summary["gave_up_lost"], (
        f"silent loss: sent {sent}, delivered {delivered}, "
        f"gave up {gave_up}, summary {summary}"
    )
    # The plan must actually have bitten: node 3's dead data lane forces
    # give-ups, and the confirmation channel lost pulses.
    assert summary["gave_up_lost"] > 0
    assert summary["confirm_dropped"] > 0
    assert summary["lane_down_events"] == 1
