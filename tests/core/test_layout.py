"""Tests for the Figure 1c chip layout model."""

import math

import pytest

from repro.core.layout import ChipLayout
from repro.util.units import CM


class TestGeometry:
    layout = ChipLayout(num_nodes=16, chip_width=1.4 * CM)

    def test_requires_square(self):
        with pytest.raises(ValueError):
            ChipLayout(num_nodes=12)
        with pytest.raises(ValueError):
            ChipLayout(chip_width=0)

    def test_positions_inside_die(self):
        for node in range(16):
            x, y = self.layout.position(node)
            assert 0 < x < 1.4 * CM
            assert 0 < y < 1.4 * CM

    def test_position_bounds_checked(self):
        with pytest.raises(ValueError):
            self.layout.position(16)

    def test_distance_symmetric(self):
        assert self.layout.distance(0, 5) == self.layout.distance(5, 0)

    def test_no_hop_to_self(self):
        with pytest.raises(ValueError):
            self.layout.distance(3, 3)

    def test_diagonal_is_longest(self):
        corner = self.layout.distance(0, 15)
        for src in range(16):
            for dst in range(src + 1, 16):
                assert self.layout.distance(src, dst) <= corner + 1e-12

    def test_adjacent_distance_is_pitch(self):
        pitch = 1.4 * CM / 4
        assert self.layout.distance(0, 1) == pytest.approx(pitch)

    def test_diagonal_value(self):
        expected = math.hypot(3, 3) * (1.4 * CM / 4)
        assert self.layout.distance(0, 15) == pytest.approx(expected)


class TestLinkClosure:
    def test_default_layout_closes(self):
        assert ChipLayout().all_links_close()

    def test_oversized_die_fails(self):
        # A 5 cm die puts the diagonal far beyond the 2 cm budget.
        assert not ChipLayout(chip_width=5 * CM).all_links_close()

    def test_worst_pair_loss_exceeds_best(self):
        layout = ChipLayout()
        losses = layout.loss_table()
        assert losses[layout.worst_pair()] == max(losses.values())

    def test_loss_monotone_in_distance(self):
        layout = ChipLayout()
        near = layout.path_for(0, 1).loss_db()
        far = layout.path_for(0, 15).loss_db()
        assert far > near


class TestSynchrony:
    def test_padding_matches_paper_footnote(self):
        # §4.2 fn. 2: skews equivalent to ~3 communication cycles.
        assert 1 <= ChipLayout().max_padding_bits() <= 4

    def test_worst_pair_needs_no_padding(self):
        layout = ChipLayout()
        assert layout.padding_bits(*layout.worst_pair()) == 0


class TestMirrors:
    def test_mirror_budget(self):
        # §3.2: at most ~n^2 fixed mirrors (times per-hop bounces).
        layout = ChipLayout(num_nodes=16)
        assert layout.mirror_count() == 16 * 15 * 2
