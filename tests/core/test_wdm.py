"""Tests for the §2 WDM feasibility model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.link import OpticalLink
from repro.wdm import WdmBusDesign


class TestInventory:
    def test_rings_per_node(self):
        # A modulator and a drop filter per wavelength per node.
        assert WdmBusDesign(wavelengths=16).rings_per_node == 32

    def test_total_rings(self):
        assert WdmBusDesign(num_nodes=16, wavelengths=16).total_rings == 512

    def test_validation(self):
        with pytest.raises(ValueError):
            WdmBusDesign(num_nodes=1)
        with pytest.raises(ValueError):
            WdmBusDesign(wavelengths=0)
        with pytest.raises(ValueError):
            WdmBusDesign(laser_efficiency=0.0)


class TestLossBudget:
    def test_loss_grows_with_nodes(self):
        losses = [
            WdmBusDesign(num_nodes=n).worst_case_loss_db() for n in (8, 16, 32)
        ]
        assert losses == sorted(losses)

    def test_loss_grows_with_wavelengths(self):
        few = WdmBusDesign(wavelengths=4).worst_case_loss_db()
        many = WdmBusDesign(wavelengths=32).worst_case_loss_db()
        assert many > few

    def test_ring_passby_dominates_at_scale(self):
        """§2: 'using multiple wavelengths exponentially amplifies the
        losses' — the per-ring term dwarfs everything else."""
        design = WdmBusDesign(num_nodes=64, wavelengths=16)
        ring_term = design.ring_passby_loss_db * design.rings_on_bus
        assert ring_term > 0.6 * design.worst_case_loss_db()

    def test_sixteen_by_sixteen_does_not_close(self):
        # The §2 argument quantified: a flat 16-node, 16-wavelength
        # shared bus blows its power budget outright.
        assert not WdmBusDesign(num_nodes=16, wavelengths=16).evaluate().closes

    def test_small_system_closes(self):
        assert WdmBusDesign(num_nodes=4, wavelengths=2).evaluate().closes

    @given(st.integers(min_value=2, max_value=64))
    def test_margin_decreases_with_scale(self, n):
        small = WdmBusDesign(num_nodes=n)
        bigger = WdmBusDesign(num_nodes=n + 8)
        assert bigger.link_margin_db() < small.link_margin_db()


class TestScalingCollapse:
    def test_max_wavelengths_shrinks_with_nodes(self):
        counts = [
            WdmBusDesign(num_nodes=n).max_wavelengths() for n in (8, 16, 32, 64)
        ]
        assert counts == sorted(counts, reverse=True)
        assert counts[-1] <= 2  # 64 nodes: the shared bus is done

    def test_aggregate_bandwidth_capped(self):
        """The §2 punchline in bandwidth terms: aggregate bandwidth of
        the closing design *falls* as the system grows."""
        from dataclasses import replace

        def best_bandwidth(n):
            design = WdmBusDesign(num_nodes=n)
            usable = design.max_wavelengths()
            if usable == 0:
                return 0.0
            return replace(design, wavelengths=usable).aggregate_bandwidth()

        assert best_bandwidth(64) < best_bandwidth(16) < best_bandwidth(8)


class TestFsoiContrast:
    def test_fsoi_loss_constant_in_scale(self):
        """FSOI's whole §2 rebuttal: its hop loss is a property of the
        die geometry (2.6 dB), not of how many nodes share a medium."""
        fsoi_loss = OpticalLink().path.loss_db()
        wdm_16 = WdmBusDesign(num_nodes=16).worst_case_loss_db()
        wdm_64 = WdmBusDesign(num_nodes=64).worst_case_loss_db()
        assert fsoi_loss < 3.0
        assert wdm_16 > 10 * fsoi_loss
        assert wdm_64 > 25 * fsoi_loss

    def test_fsoi_needs_no_tuning_power(self):
        # Every WDM ring is thermally stabilized; FSOI has no resonant
        # device to tune.  At 64 nodes that's watts of static power.
        assert WdmBusDesign(num_nodes=64).tuning_power() > 2.0
