"""Tests for the §4.2 chip-synchronous timing budget."""

import pytest

from repro.core.clocking import ClockDistribution, TimingBudget


class TestTimingBudget:
    def test_uncertainty_composition(self):
        budget = TimingBudget(
            bit_period=25e-12,
            skew=1e-12,
            total_jitter_rms=1e-12,
            residual_path_skew=2e-12,
        )
        assert budget.uncertainty == pytest.approx(1e-12 + 2e-12 + 7e-12)

    def test_margin_sign_matches_closes(self):
        tight = TimingBudget(25e-12, 20e-12, 1e-12, 2e-12)
        loose = TimingBudget(25e-12, 1e-12, 0.3e-12, 1e-12)
        assert not tight.closes and tight.margin < 0
        assert loose.closes and loose.margin > 0


class TestClockDistribution:
    def test_paper_assumption_holds_optically(self):
        """§4.2: chip-synchronous 40 Gbps sampling closes with an
        optically distributed clock."""
        assert ClockDistribution(optical=True).budget().closes

    def test_electrical_tree_fails_at_40gbps(self):
        """...and would not with a conventional global electrical tree —
        the quantitative reason the paper suggests optical clocking."""
        assert not ClockDistribution(optical=False).budget().closes

    def test_optical_skew_advantage(self):
        optical = ClockDistribution(optical=True)
        electrical = ClockDistribution(optical=False)
        assert optical.skew < electrical.skew

    def test_max_rate_ordering(self):
        optical = ClockDistribution(optical=True).max_data_rate()
        electrical = ClockDistribution(optical=False).max_data_rate()
        assert optical >= 40e9  # covers the Table 1 operating point
        assert electrical < 25e9

    def test_jitter_adds_in_quadrature(self):
        import math

        dist = ClockDistribution()
        link_jitter = dist.link.random_jitter_rms()
        expected = math.hypot(dist.source_jitter_rms, link_jitter)
        assert dist.total_jitter_rms() == pytest.approx(expected)

    def test_worse_delay_lines_shrink_margin(self):
        fine = ClockDistribution(delay_line_resolution=1e-12)
        coarse = ClockDistribution(delay_line_resolution=4e-12)
        assert coarse.budget().margin < fine.budget().margin
