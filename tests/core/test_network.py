"""Tests for the cycle-level FSOI network simulator."""

import pytest

from repro.core.backoff import BackoffPolicy
from repro.core.network import FsoiConfig, FsoiNetwork
from repro.core.optimizations import OptimizationConfig
from repro.net.packet import LaneKind, Packet


def make_network(**kwargs) -> FsoiNetwork:
    kwargs.setdefault("num_nodes", 4)
    return FsoiNetwork(FsoiConfig(**kwargs))


def run(network: FsoiNetwork, cycles: int) -> None:
    for cycle in range(cycles):
        network.tick(cycle)


def meta(src, dst, **kw):
    return Packet(src=src, dst=dst, lane=LaneKind.META, **kw)


def data(src, dst, **kw):
    return Packet(src=src, dst=dst, lane=LaneKind.DATA, **kw)


class TestSoloTiming:
    def test_meta_packet_timing(self):
        net = make_network()
        p = meta(0, 1)
        assert net.try_send(p, 0)
        run(net, 10)
        # Slot [0,2): received at cycle 1, delivered after 1 decode cycle.
        assert p.final_tx_cycle == 0
        assert p.deliver_cycle == 2
        assert p.network_delay == 2
        assert p.retries == 0

    def test_data_packet_timing(self):
        net = make_network()
        p = data(0, 1)
        net.try_send(p, 0)
        run(net, 10)
        assert p.deliver_cycle == 5  # slot [0,5), received 4, +1 decode

    def test_off_slot_enqueue_waits_for_boundary(self):
        net = make_network()
        p = meta(0, 1)
        run(net, 1)  # advance past cycle 0
        net.try_send(p, 1)
        for cycle in range(1, 10):
            net.tick(cycle)
        assert p.first_tx_cycle == 2  # next meta slot boundary
        assert p.queuing_delay == 1

    def test_confirmation_counted(self):
        net = make_network()
        net.try_send(meta(0, 1), 0)
        run(net, 10)
        assert net.confirmations.confirmations_sent == 1

    def test_on_confirmed_hook_fires(self):
        net = make_network()
        fired = []
        p = meta(0, 1)
        p.on_confirmed = lambda: fired.append(True)
        net.try_send(p, 0)
        run(net, 2)
        assert not fired  # confirmation arrives at receive+2 = cycle 3
        run_from = 2
        for cycle in range(run_from, 5):
            net.tick(cycle)
        assert fired == [True]

    def test_lanes_are_independent(self):
        net = make_network()
        m, d = meta(0, 1), data(0, 1)
        net.try_send(m, 0)
        net.try_send(d, 0)
        run(net, 10)
        assert m.deliver_cycle == 2 and d.deliver_cycle == 5


class TestQueueing:
    def test_queue_capacity_refuses(self):
        net = make_network()
        for i in range(net.lanes.queue_capacity):
            assert net.try_send(meta(0, 1), 0)
        assert not net.try_send(meta(0, 1), 0)
        assert int(net.stats.refused) == 1

    def test_can_accept_tracks_capacity(self):
        net = make_network()
        assert net.can_accept(0, LaneKind.META)
        for _ in range(net.lanes.queue_capacity):
            net.try_send(meta(0, 1), 0)
        assert not net.can_accept(0, LaneKind.META)

    def test_back_to_back_slots(self):
        net = make_network()
        first, second = meta(0, 1), meta(0, 2)
        net.try_send(first, 0)
        net.try_send(second, 0)
        run(net, 10)
        assert first.final_tx_cycle == 0
        assert second.final_tx_cycle == 2  # immediately following slot


class TestCollisions:
    """With N=4 and 2 receivers, destination 3's senders 0 and 2 share
    receiver 0 (ranks 0 and 2), while sender 1 uses receiver 1."""

    def test_same_receiver_collides(self):
        net = make_network()
        a, b = meta(0, 3), meta(2, 3)
        net.try_send(a, 0)
        net.try_send(b, 0)
        run(net, 60)
        assert a.retries + b.retries >= 2  # both failed at least once
        assert a.deliver_cycle > 2 and b.deliver_cycle > 2
        assert int(net.stats.delivered) == 2  # both retransmitted fine
        stats = net.stats.group.as_dict()["meta"]
        assert stats["collision_events"] >= 1
        assert stats["collided_transmissions"] >= 2

    def test_different_receivers_no_collision(self):
        net = make_network()
        a, b = meta(0, 3), meta(1, 3)
        net.try_send(a, 0)
        net.try_send(b, 0)
        run(net, 10)
        assert a.deliver_cycle == 2 and b.deliver_cycle == 2
        assert a.retries == b.retries == 0

    def test_different_destinations_no_collision(self):
        net = make_network()
        a, b = meta(0, 1), meta(2, 3)
        net.try_send(a, 0)
        net.try_send(b, 0)
        run(net, 10)
        assert a.retries == b.retries == 0

    def test_resolution_delay_recorded(self):
        net = make_network()
        a, b = meta(0, 3), meta(2, 3)
        net.try_send(a, 0)
        net.try_send(b, 0)
        run(net, 60)
        assert a.resolution_delay > 0 or b.resolution_delay > 0
        assert net.stats.resolution.mean > 0

    def test_collision_rate_accounts_transmissions(self):
        net = make_network()
        net.try_send(meta(0, 3), 0)
        net.try_send(meta(2, 3), 0)
        run(net, 60)
        assert net.collision_rate(LaneKind.META) > 0
        assert net.collision_events_per_node_slot(LaneKind.META) > 0


class TestErrors:
    def test_signaling_error_behaves_like_collision(self):
        # §4.3.1: errors and collisions are handled by the same mechanism.
        net = make_network(packet_error_rate=0.5, seed=3)
        packets = [meta(0, 1) for _ in range(6)]
        for p in packets:
            net.try_send(p, 0)
        run(net, 300)
        assert int(net.stats.delivered) == 6  # all eventually delivered
        errors = net.stats.group.as_dict()["meta"]["error_corrupted"]
        assert errors > 0
        assert any(p.retries > 0 for p in packets)


class TestPhaseArray:
    def test_setup_penalty_on_retarget(self):
        net = make_network(phase_array=True)
        p = meta(0, 1)
        net.try_send(p, 0)
        run(net, 10)
        assert p.deliver_cycle == 3  # +1 steering cycle

    def test_same_target_no_penalty(self):
        net = make_network(phase_array=True)
        first, second = meta(0, 1), meta(0, 1)
        net.try_send(first, 0)
        net.try_send(second, 0)
        run(net, 12)
        assert first.network_delay == 3
        assert second.network_delay == 2  # already steered at node 1


class TestRequestSpacing:
    def test_second_request_spaced(self):
        opts = OptimizationConfig(request_spacing=True)
        net = make_network(optimizations=opts)
        a = meta(0, 1, expects_data_reply=True)
        b = meta(0, 2, expects_data_reply=True)
        net.try_send(a, 0)
        net.try_send(b, 0)
        assert a.scheduling_delay == 0
        assert b.scheduling_delay == net.lanes.slot_cycles(LaneKind.DATA)

    def test_non_requests_not_spaced(self):
        opts = OptimizationConfig(request_spacing=True)
        net = make_network(optimizations=opts)
        a = meta(0, 1)
        net.try_send(a, 0)
        assert a.scheduling_delay == 0


class TestResolutionHints:
    def test_winner_retransmits_next_slot(self):
        opts = OptimizationConfig(resolution_hints=True)
        net = make_network(optimizations=opts, seed=1)
        a, b = data(0, 3), data(2, 3)
        net.try_send(a, 0)
        net.try_send(b, 0)
        run(net, 120)
        hints = net.hint_summary()
        assert hints["issued"] == 1
        winner = a if a.final_tx_cycle == 5 else b
        assert winner.final_tx_cycle == 5  # the very next data slot
        assert int(net.stats.delivered) == 2

    def test_hints_only_on_data_lane(self):
        opts = OptimizationConfig(resolution_hints=True)
        net = make_network(optimizations=opts)
        net.try_send(meta(0, 3), 0)
        net.try_send(meta(2, 3), 0)
        run(net, 60)
        assert net.hint_summary()["issued"] == 0

    def test_expectation_narrows_candidates(self):
        opts = OptimizationConfig(resolution_hints=True)
        net = make_network(optimizations=opts, seed=2)
        net.expect_data_from(3, 0)
        net.expect_data_from(3, 2)
        a, b = data(0, 3), data(2, 3)
        net.try_send(a, 0)
        net.try_send(b, 0)
        run(net, 120)
        assert net.hint_summary()["correct"] == 1


class TestConservation:
    def test_every_packet_delivered_exactly_once(self):
        import numpy as np

        net = make_network(num_nodes=8, seed=9)
        delivered = []
        for node in range(8):
            net.set_delivery_callback(node, lambda p: delivered.append(p.uid))
        rng = np.random.default_rng(0)
        sent = []
        for cycle in range(400):
            if cycle % 2 == 0:
                for src in range(8):
                    if rng.random() < 0.2:
                        dst = int(rng.integers(0, 7))
                        dst = dst if dst < src else dst + 1
                        lane = LaneKind.DATA if rng.random() < 0.3 else LaneKind.META
                        p = Packet(src=src, dst=dst, lane=lane)
                        if net.try_send(p, cycle):
                            sent.append(p.uid)
            net.tick(cycle)
        drain = 400
        while not net.quiescent() and drain < 5000:
            net.tick(drain)
            drain += 1
        assert net.quiescent()
        assert sorted(delivered) == sorted(sent)
        assert len(set(delivered)) == len(delivered)

    def test_quiescent_empty_network(self):
        assert make_network().quiescent()


class TestBreakdownConsistency:
    def test_components_sum_to_total(self):
        net = make_network(seed=4)
        packets = [meta(0, 3), meta(2, 3), data(1, 0), meta(1, 2)]
        for p in packets:
            net.try_send(p, 0)
        run(net, 120)
        breakdown = net.stats.breakdown()
        parts = (
            breakdown["queuing"]
            + breakdown["scheduling"]
            + breakdown["network"]
            + breakdown["collision_resolution"]
        )
        assert parts == pytest.approx(breakdown["total"])
