"""Tests for the queueing-theory models, validated against the simulator."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.network import FsoiConfig, FsoiNetwork
from repro.core.queueing import (
    aloha_capacity,
    aloha_throughput,
    lane_goodput,
    lane_queuing_delay,
    lane_success_probability,
    md1_waiting_time,
    saturation_load,
)
from repro.workloads.traffic import BernoulliTraffic, TrafficDriver


class TestAloha:
    def test_capacity_at_unit_load(self):
        assert aloha_throughput(1.0) == pytest.approx(aloha_capacity())

    def test_zero_load_zero_throughput(self):
        assert aloha_throughput(0.0) == 0.0

    @given(st.floats(min_value=0.0, max_value=10.0))
    def test_never_exceeds_capacity(self, load):
        assert aloha_throughput(load) <= aloha_capacity() + 1e-12

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            aloha_throughput(-0.1)


class TestLaneModel:
    def test_success_monotone_decreasing_in_load(self):
        values = [lane_success_probability(p) for p in (0.0, 0.1, 0.2, 0.33)]
        assert values == sorted(values, reverse=True)

    def test_more_receivers_more_success(self):
        assert lane_success_probability(0.2, receivers=4) > (
            lane_success_probability(0.2, receivers=1)
        )

    def test_success_tracks_simulated_collision_rate(self):
        """1 - P(success) is the first-order per-transmission collision
        rate; the simulator measures somewhat higher because
        retransmissions feed back extra load."""
        p = 0.15
        network = FsoiNetwork(FsoiConfig(num_nodes=16, seed=2))
        traffic = BernoulliTraffic(p=p / 2, slot_cycles=1)
        TrafficDriver(network, traffic, seed=4).run(8000)
        from repro.net.packet import LaneKind

        measured = network.collision_rate(LaneKind.META)
        predicted = 1 - lane_success_probability(p)
        assert predicted < measured < 3 * predicted

    def test_goodput_peaks_inside_domain(self):
        peak = saturation_load()
        assert 0.5 < peak <= 1.0  # partitioned receivers push it far right
        assert lane_goodput(peak) >= lane_goodput(peak - 0.2)

    def test_operating_point_far_below_saturation(self):
        # §7.4's claim in queueing terms: the measured operating loads
        # (a few percent per slot) sit deep inside the stable region.
        assert saturation_load() > 10 * 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            lane_success_probability(1.5)
        with pytest.raises(ValueError):
            lane_success_probability(0.1, num_nodes=2)


class TestMd1:
    def test_zero_load_zero_wait(self):
        assert md1_waiting_time(0.0, 2.0) == 0.0

    def test_saturation_diverges(self):
        assert md1_waiting_time(0.5, 2.0) == math.inf

    def test_wait_grows_with_load(self):
        low = md1_waiting_time(0.05, 2.0)
        high = md1_waiting_time(0.3, 2.0)
        assert high > low > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            md1_waiting_time(-0.1, 2.0)
        with pytest.raises(ValueError):
            md1_waiting_time(0.1, 0.0)


class TestAgainstSimulator:
    @pytest.mark.parametrize("p", [0.05, 0.15, 0.30])
    def test_queuing_delay_prediction(self, p):
        """The M/D/1 + slot-alignment estimate lands within ~25% of the
        cycle simulator's measured queuing component for unsynchronized
        arrivals (offers on every cycle, same per-slot load)."""
        network = FsoiNetwork(FsoiConfig(num_nodes=16, seed=2))
        traffic = BernoulliTraffic(p=p / 2, slot_cycles=1)
        TrafficDriver(network, traffic, seed=4).run(8000)
        measured = network.stats.queuing.mean
        predicted = lane_queuing_delay(p, slot_cycles=2)
        assert predicted == pytest.approx(measured, rel=0.25)

    def test_slot_synchronized_arrivals_wait_less(self):
        """Offers aligned to slot boundaries skip the alignment wait —
        the generators' slot gating is itself a small optimization."""
        p = 0.15
        synced = FsoiNetwork(FsoiConfig(num_nodes=16, seed=2))
        TrafficDriver(synced, BernoulliTraffic(p=p, slot_cycles=2), seed=4).run(6000)
        free = FsoiNetwork(FsoiConfig(num_nodes=16, seed=2))
        TrafficDriver(free, BernoulliTraffic(p=p / 2, slot_cycles=1), seed=4).run(6000)
        assert synced.stats.queuing.mean < free.stats.queuing.mean

    def test_goodput_prediction(self):
        p = 0.2
        network = FsoiNetwork(FsoiConfig(num_nodes=16, seed=3))
        traffic = BernoulliTraffic(p=p, slot_cycles=2)
        driver = TrafficDriver(network, traffic, seed=5)
        driver.run(8000)
        slots = 8000 / 2
        measured = int(network.stats.delivered) / (slots * 16)
        # Offered p per slot; retransmissions push the attempt rate above
        # p, so measured goodput ~ offered rate (stable region).
        assert measured == pytest.approx(p, rel=0.15)
