"""Tests for §5 optimization machinery (flags, reservations, expectations)."""

import pytest

from repro.core.optimizations import (
    ExpectedReplies,
    OptimizationConfig,
    SlotReservations,
)


class TestOptimizationConfig:
    def test_none_disables_everything(self):
        opts = OptimizationConfig.none()
        assert not any(
            (
                opts.confirmation_ack,
                opts.llsc_subscription,
                opts.request_spacing,
                opts.resolution_hints,
                opts.split_writeback,
            )
        )

    def test_all_enables_everything(self):
        opts = OptimizationConfig.all()
        assert all(
            (
                opts.confirmation_ack,
                opts.llsc_subscription,
                opts.request_spacing,
                opts.resolution_hints,
                opts.split_writeback,
            )
        )

    def test_individually_selectable(self):
        opts = OptimizationConfig(resolution_hints=True)
        assert opts.resolution_hints and not opts.request_spacing


class TestSlotReservations:
    def test_reserve_then_conflict(self):
        table = SlotReservations()
        assert table.reserve(10)
        assert not table.reserve(10)

    def test_next_free_skips_reserved(self):
        table = SlotReservations()
        table.reserve(5)
        table.reserve(6)
        assert table.next_free(5) == 7
        assert table.next_free(4) == 4

    def test_prune_drops_stale(self):
        table = SlotReservations(horizon_slots=4)
        table.reserve(0)
        table.reserve(100)
        table.prune(100)
        assert table.live_count == 1
        assert table.reserve(0)  # stale slot reusable

    def test_is_reserved(self):
        table = SlotReservations()
        table.reserve(3)
        assert table.is_reserved(3)
        assert not table.is_reserved(4)


class TestExpectedReplies:
    def test_expect_and_fulfil(self):
        expected = ExpectedReplies()
        expected.expect(4)
        assert expected.is_expected(4)
        expected.fulfil(4)
        assert not expected.is_expected(4)

    def test_counts_multiple(self):
        expected = ExpectedReplies()
        expected.expect(4)
        expected.expect(4)
        expected.fulfil(4)
        assert expected.is_expected(4)
        expected.fulfil(4)
        assert not expected.is_expected(4)

    def test_fulfil_unknown_is_noop(self):
        ExpectedReplies().fulfil(9)

    def test_expected_nodes(self):
        expected = ExpectedReplies()
        expected.expect(1)
        expected.expect(5)
        assert expected.expected_nodes() == {1, 5}
