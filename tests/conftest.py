"""Shared pytest configuration for the test tree."""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden result snapshots under tests/data/ "
        "instead of comparing against them (commit the diff afterwards)",
    )
