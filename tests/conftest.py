"""Shared pytest configuration and engine-equivalence helpers.

Two engine toggles in :class:`~repro.cmp.CmpConfig` claim to be
invisible in every measured quantity: ``fast_forward`` (the next-event
loop) and ``vectorized`` (the columnar core engine).  Both equivalence
suites — ``tests/cmp/test_fastforward.py`` and
``tests/cmp/test_vector_equivalence.py`` — share the run-both-and-diff
machinery here instead of duplicating it.
"""

import json

import pytest

from repro.cmp import CmpConfig, CmpSystem
from repro.faults import ConfirmationDrop, FaultPlan, LaneFault
from repro.sweep import canonical_json

#: One representative fault plan exercised by both equivalence suites:
#: a lane outage window plus stochastic confirmation drops, so the
#: retry/backoff and fault-clock paths are covered.
EQUIVALENCE_FAULT_PLAN = FaultPlan(
    label="engine-equivalence",
    lane_faults=(LaneFault(3, "data", start=200, end=900),),
    confirmation_drops=(ConfirmationDrop(0.05),),
    seed=11,
)


def run_engine(cycles: int = 1200, **config_kwargs):
    """Run one configuration; return its ``(result, metrics)`` pair."""
    system = CmpSystem(CmpConfig(**config_kwargs))
    result = system.run(cycles)
    metrics = json.loads(canonical_json(system.metrics_registry().snapshot()))
    return result, metrics


def run_engine_pair(flag: str, cycles: int = 1200, **config_kwargs):
    """Run a config twice with engine toggle ``flag`` on and off.

    ``flag`` is a :class:`CmpConfig` boolean field name
    (``"fast_forward"`` or ``"vectorized"``).  Returns the
    ``[(result, metrics), ...]`` pairs in (enabled, disabled) order.
    """
    return [
        run_engine(cycles=cycles, **{flag: enabled}, **config_kwargs)
        for enabled in (True, False)
    ]


def assert_engines_equivalent(candidate, reference):
    """Byte-identical results (minus loop accounting) and metrics.

    ``candidate``/``reference`` are ``(result, metrics)`` pairs from
    :func:`run_engine`.  The ``loop`` field is excluded from the diff —
    it exists to *describe* the loop difference — and both loops are
    returned for the caller's engine-specific window checks.
    """
    cand_result, cand_metrics = candidate
    ref_result, ref_metrics = reference
    cand_dict = cand_result.to_dict()
    ref_dict = ref_result.to_dict()
    cand_loop = cand_dict.pop("loop")
    ref_loop = ref_dict.pop("loop")
    assert canonical_json(cand_dict) == canonical_json(ref_dict)
    assert cand_metrics == ref_metrics
    return cand_loop, ref_loop


def compare_engine_pair(flag: str, cycles: int = 1200, **config_kwargs):
    """Run a pair, diff it, and check the flag's loop contract.

    Runs ``flag`` on vs off for one configuration, asserts full
    equivalence, applies the flag's loop-accounting contract and hands
    back the enabled run's loop dict:

    * ``fast_forward`` — the naive loop skips nothing, and the fast
      loop's executed + skipped covers the same window.
    * ``vectorized`` — the columnar engine must not change what the
      simulation loop *does* at all, so the loops are identical.
    """
    candidate, reference = run_engine_pair(flag, cycles=cycles, **config_kwargs)
    cand_loop, ref_loop = assert_engines_equivalent(candidate, reference)
    if flag == "fast_forward":
        assert ref_loop["skipped_cycles"] == 0
        total = cand_loop["executed_cycles"] + cand_loop["skipped_cycles"]
        assert total == ref_loop["executed_cycles"]
    else:
        assert cand_loop == ref_loop
    return cand_loop


@pytest.fixture
def compare_engines():
    """Fixture handle on :func:`compare_engine_pair` for plain tests.

    Hypothesis-driven tests should import the function directly (a
    function-scoped fixture inside ``@given`` trips health checks).
    """
    return compare_engine_pair


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden result snapshots under tests/data/ "
        "instead of comparing against them (commit the diff afterwards)",
    )
