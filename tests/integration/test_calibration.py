"""Calibration pins: measured workload behaviour matches its signature.

These tests guard the substitution contract of DESIGN.md — each
application signature must actually produce the miss rate it encodes,
across the whole suite, so the speedup spread stays anchored to the
paper's reported characteristics.
"""

import pytest

from repro.cmp import run_app
from repro.workloads import APPLICATIONS


def measured_miss_rate(result) -> float:
    l1 = result.l1
    accesses = sum(
        l1[k]
        for k in ("read_hits", "write_hits", "read_misses", "write_misses",
                  "upgrades")
    )
    misses = l1["read_misses"] + l1["write_misses"] + l1["upgrades"]
    return misses / max(1, accesses)


def signature_target(sig) -> float:
    private = 1 - sig.shared_fraction - sig.stream_fraction
    return (
        sig.shared_fraction * 0.9
        + sig.stream_fraction
        + private * sig.private_cold_fraction
    )


@pytest.mark.parametrize("label", sorted(APPLICATIONS))
def test_measured_miss_rate_tracks_target(label):
    sig = APPLICATIONS[label]
    result = run_app(label, "l0", num_nodes=16, cycles=3000)
    measured = measured_miss_rate(result)
    target = signature_target(sig)
    # Shared-pool dynamics, sync spinning and hot-set displacement add
    # noise; the contract is a broad band around the target.
    assert measured == pytest.approx(target, rel=0.45), (
        f"{label}: measured {measured:.4f} vs target {target:.4f}"
    )


def test_suite_average_in_paper_band():
    """§6: the suite-wide average miss rate is ~4.8% (range 0.8-15.6%)."""
    rates = [
        measured_miss_rate(run_app(label, "l0", num_nodes=16, cycles=3000))
        for label in sorted(APPLICATIONS)
    ]
    average = sum(rates) / len(rates)
    assert 0.03 < average < 0.075
    assert min(rates) < 0.02
    assert 0.10 < max(rates) < 0.22
