"""End-to-end sanity: every application on every network makes progress,
and the paper's headline orderings hold on short runs."""

import pytest

from repro.cmp import run_app
from repro.workloads import APPLICATIONS

CYCLES = 2500


@pytest.mark.parametrize("app", sorted(APPLICATIONS))
def test_every_app_runs_on_fsoi(app):
    result = run_app(app, "fsoi", num_nodes=16, cycles=CYCLES)
    assert result.instructions > 0
    assert result.packets_delivered > 0
    assert all(count >= 0 for count in result.instructions_per_core)


@pytest.mark.parametrize("network", ["mesh", "l0", "lr1", "lr2", "corona"])
def test_every_network_runs_ocean(network):
    result = run_app("oc", network, num_nodes=16, cycles=CYCLES)
    assert result.instructions > 0
    assert result.packets_delivered > 0


class TestHeadlineOrderings:
    """The qualitative results the paper's evaluation rests on."""

    @pytest.fixture(scope="class")
    def runs(self):
        apps = ("oc", "mp")
        nets = ("mesh", "fsoi", "l0", "lr1", "lr2")
        return {
            (app, net): run_app(app, net, num_nodes=16, cycles=6000)
            for app in apps
            for net in nets
        }

    def test_fsoi_beats_mesh(self, runs):
        for app in ("oc", "mp"):
            assert runs[(app, "fsoi")].ipc > runs[(app, "mesh")].ipc

    def test_l0_bounds_fsoi(self, runs):
        for app in ("oc", "mp"):
            assert runs[(app, "l0")].ipc >= runs[(app, "fsoi")].ipc * 0.98

    def test_fsoi_tracks_l0_more_closely_than_lr1(self, runs):
        # §7.1: FSOI outperforms the aggressive Lr1/Lr2 configurations.
        for app in ("oc", "mp"):
            assert runs[(app, "fsoi")].ipc > runs[(app, "lr1")].ipc

    def test_lr1_beats_lr2(self, runs):
        for app in ("oc", "mp"):
            assert runs[(app, "lr1")].ipc > runs[(app, "lr2")].ipc

    def test_fsoi_latency_far_below_mesh(self, runs):
        for app in ("oc", "mp"):
            fsoi = runs[(app, "fsoi")].latency_breakdown["total"]
            mesh = runs[(app, "mesh")].latency_breakdown["total"]
            assert fsoi < mesh / 2

    def test_fsoi_latency_near_paper_value(self, runs):
        # Figure 6a: ~7.5 cycles average in the 16-node system.
        for app in ("oc", "mp"):
            total = runs[(app, "fsoi")].latency_breakdown["total"]
            assert 4.0 < total < 12.0


class TestScaling:
    def test_64_node_gap_wider_than_16(self):
        # Figure 7: the FSOI advantage grows with system size.
        speedups = {}
        for nodes in (16, 64):
            mesh = run_app("mp", "mesh", num_nodes=nodes, cycles=4000)
            fsoi = run_app("mp", "fsoi", num_nodes=nodes, cycles=4000)
            speedups[nodes] = fsoi.ipc / mesh.ipc
        assert speedups[64] > speedups[16]

    def test_corona_close_but_behind_fsoi(self):
        # §7.1: FSOI is ~1.06x a corona-style design at 64 nodes.
        corona = run_app("mp", "corona", num_nodes=64, cycles=4000)
        fsoi = run_app("mp", "fsoi", num_nodes=64, cycles=4000)
        ratio = fsoi.ipc / corona.ipc
        assert 0.98 < ratio < 1.25


class TestCollisionBehaviour:
    def test_collision_rates_in_paper_band(self):
        # Figure 10 caption: data collision rate 3%..21%, avg 9.4% before
        # optimization; meta rates a few percent.
        result = run_app("em", "fsoi", num_nodes=16, cycles=6000)
        assert 0.0 < result.fsoi["data_collision_rate"] < 0.25
        assert 0.0 < result.fsoi["meta_collision_rate"] < 0.15

    def test_optimizations_cut_data_collisions(self):
        from repro.core.optimizations import OptimizationConfig

        base = run_app("em", "fsoi", cycles=6000)
        opt = run_app(
            "em", "fsoi", cycles=6000, optimizations=OptimizationConfig.all()
        )
        assert (
            opt.fsoi["data_collision_rate"] < base.fsoi["data_collision_rate"]
        )

    def test_sensitive_apps_gain_more(self):
        light = run_app("ws", "mesh", cycles=5000)
        light_f = run_app("ws", "fsoi", cycles=5000)
        heavy = run_app("mp", "mesh", cycles=5000)
        heavy_f = run_app("mp", "fsoi", cycles=5000)
        assert heavy_f.ipc / heavy.ipc > light_f.ipc / light.ipc
