"""The example scripts must stay importable and expose a main()."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parents[2] / "examples").glob("*.py"),
    key=lambda p: p.name,
)


def load(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 3  # the deliverable minimum


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    module = load(path)
    assert callable(getattr(module, "main", None)), f"{path.name} has no main()"
    assert module.__doc__, f"{path.name} has no module docstring"


def test_collision_tuning_analytics_run():
    """The cheap (analytics-only) steps of collision_tuning run fast
    enough to exercise here."""
    module = load(next(p for p in EXAMPLES if p.stem == "collision_tuning"))
    module.step1_receivers()
    module.step2_bandwidth_split()
