"""Documentation-rot guards: referenced modules and files must exist."""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parents[2]
DOCS = sorted(ROOT.glob("*.md")) + sorted((ROOT / "docs").glob("*.md"))


def referenced_modules():
    pattern = re.compile(r"`(repro(?:\.[a-z_0-9]+)+)`")
    out = set()
    for doc in DOCS:
        for match in pattern.finditer(doc.read_text()):
            name = match.group(1)
            # Strip trailing attribute-looking segments conservatively:
            # try the full name first, then its parent.
            out.add(name)
    return sorted(out)


@pytest.mark.parametrize("name", referenced_modules())
def test_referenced_module_exists(name):
    """Every `repro.x.y` mentioned in the docs imports (or is an
    attribute of an importable parent)."""
    try:
        importlib.import_module(name)
        return
    except ImportError:
        parent, _, attr = name.rpartition(".")
        module = importlib.import_module(parent)
        assert hasattr(module, attr), f"{name} referenced in docs but missing"


def test_referenced_benchmarks_exist():
    pattern = re.compile(r"`(bench_[a-z0-9_]+\.py)`")
    for doc in DOCS:
        for match in pattern.finditer(doc.read_text()):
            target = ROOT / "benchmarks" / match.group(1)
            assert target.exists(), f"{doc.name} references missing {match.group(1)}"


def test_referenced_examples_exist():
    pattern = re.compile(r"`?examples/([a-z0-9_]+\.py)`?")
    for doc in DOCS:
        for match in pattern.finditer(doc.read_text()):
            target = ROOT / "examples" / match.group(1)
            assert target.exists(), f"{doc.name} references missing {match.group(1)}"


def test_core_documents_present():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE"):
        assert (ROOT / name).exists()


def test_design_covers_every_figure_and_table():
    design = (ROOT / "DESIGN.md").read_text()
    for exp in ("Table 1", "Table 2", "Table 3", "Table 4",
                "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7",
                "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11"):
        assert exp in design, f"DESIGN.md missing {exp}"


def test_experiments_covers_every_figure_and_table():
    experiments = (ROOT / "EXPERIMENTS.md").read_text()
    for exp in ("Table 1", "Table 2", "Table 4", "Figure 3", "Figure 4",
                "Figure 5", "Figure 6", "Figure 7", "Figure 8",
                "Figure 9", "Figure 10", "Figure 11"):
        assert exp in experiments, f"EXPERIMENTS.md missing {exp}"
