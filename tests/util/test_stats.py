"""Tests for counters, latency stats, histograms and stat groups."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    Counter,
    Histogram,
    LatencyStat,
    StatGroup,
    geometric_mean,
)


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([3.7]) == pytest.approx(3.7)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=10), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        g = geometric_mean(values)
        assert min(values) <= g * (1 + 1e-9)
        assert g <= max(values) * (1 + 1e-9)


class TestCounter:
    def test_starts_zero(self):
        assert Counter("x").value == 0

    def test_add_default_and_amount(self):
        c = Counter("x")
        c.add()
        c.add(4)
        assert int(c) == 5

    def test_reset(self):
        c = Counter("x")
        c.add(3)
        c.reset()
        assert c.value == 0


class TestLatencyStat:
    def test_empty_summary_is_zero(self):
        stat = LatencyStat("t")
        assert stat.mean == 0.0
        assert stat.percentile(50) == 0.0

    def test_mean_min_max(self):
        stat = LatencyStat("t")
        for v in (1, 2, 3, 10):
            stat.record(v)
        assert stat.mean == pytest.approx(4.0)
        assert stat.minimum == 1
        assert stat.maximum == 10

    def test_percentile_nearest_rank(self):
        stat = LatencyStat("t")
        for v in range(1, 11):
            stat.record(v)
        assert stat.percentile(50) == 5
        assert stat.percentile(100) == 10
        assert stat.percentile(0) == 1

    def test_percentile_range_checked(self):
        stat = LatencyStat("t")
        stat.record(1)
        with pytest.raises(ValueError):
            stat.percentile(101)

    def test_percentile_range_checked_even_when_empty(self):
        # Historically an out-of-range q on an empty stat returned 0.0
        # silently; a bad quantile is a caller bug regardless of count.
        stat = LatencyStat("t")
        with pytest.raises(ValueError):
            stat.percentile(-1)
        with pytest.raises(ValueError):
            stat.percentile(100.5)

    def test_nan_rejected(self):
        stat = LatencyStat("t")
        with pytest.raises(ValueError):
            stat.record(math.nan)
        assert stat.count == 0

    def test_sorted_cache_invalidated_by_record(self):
        stat = LatencyStat("t")
        stat.record(10)
        assert stat.percentile(50) == 10
        stat.record(1)
        stat.record(2)
        assert stat.percentile(0) == 1
        assert stat.percentile(100) == 10

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_percentiles_bounded_by_extremes(self, values):
        stat = LatencyStat("t")
        for v in values:
            stat.record(v)
        for q in (0, 25, 50, 75, 100):
            assert stat.minimum <= stat.percentile(q) <= stat.maximum

    def test_summary_keys(self):
        stat = LatencyStat("t")
        stat.record(2)
        assert set(stat.summary()) == {"count", "mean", "min", "p50", "p95", "max"}


class TestHistogram:
    def test_binning(self):
        h = Histogram("h", 0, 100, 10)
        h.record(5)    # bin 0
        h.record(15)   # bin 1
        h.record(95)   # bin 9
        assert h.bins[0] == 1 and h.bins[1] == 1 and h.bins[9] == 1

    def test_overflow_bin(self):
        h = Histogram("h", 0, 10, 5)
        h.record(10)
        h.record(1000)
        assert h.bins[5] == 2

    def test_underflow_clamped(self):
        h = Histogram("h", 0, 10, 5)
        h.record(-3)
        assert h.bins[0] == 1

    def test_fractions_sum_to_one(self):
        h = Histogram("h", 0, 10, 5)
        for v in (0, 3, 5, 100):
            h.record(v)
        assert sum(h.fractions()) == pytest.approx(1.0)

    def test_fractions_empty(self):
        assert sum(Histogram("h", 0, 10, 5).fractions()) == 0.0

    def test_mode_fraction(self):
        h = Histogram("h", 0, 10, 2)
        for v in (1, 2, 3, 7):
            h.record(v)
        assert h.mode_fraction() == pytest.approx(0.75)

    def test_edges(self):
        h = Histogram("h", 0, 10, 2)
        assert h.edges() == [0, 5, 10]

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Histogram("h", 5, 5, 2)
        with pytest.raises(ValueError):
            Histogram("h", 0, 10, 0)

    @given(st.lists(st.floats(min_value=-50, max_value=500), max_size=60))
    def test_count_conserved(self, values):
        h = Histogram("h", 0, 100, 7)
        for v in values:
            h.record(v)
        assert sum(h.bins) == h.count == len(values)

    def test_float_edge_just_below_hi_stays_in_last_regular_bin(self):
        # (value - lo) / bin_width can round up to nbins for values a few
        # ulps below hi; those must land in the last regular bin, not
        # raise IndexError or spill into overflow.
        h = Histogram("h", 0.0, 0.3, 3)
        h.record(math.nextafter(0.3, 0.0))
        assert h.bins[2] == 1
        assert h.bins[3] == 0

    def test_nan_rejected(self):
        h = Histogram("h", 0, 10, 5)
        with pytest.raises(ValueError):
            h.record(math.nan)
        assert h.count == 0

    @given(st.floats(min_value=-1e9, max_value=1e9),
           st.floats(min_value=1e-6, max_value=1e9),
           st.integers(min_value=1, max_value=40),
           st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e12, max_value=1e12), max_size=40))
    def test_record_never_raises_for_finite_input(self, lo, width, nbins, values):
        h = Histogram("h", lo, lo + width, nbins)
        for v in values:
            h.record(v)
        assert sum(h.bins) == len(values)


class TestStatGroup:
    def test_counters_cached(self):
        g = StatGroup("g")
        assert g.counter("a") is g.counter("a")

    def test_nested_groups(self):
        g = StatGroup("top")
        g.group("net").counter("sent").add(3)
        assert g.as_dict()["net"]["sent"] == 3

    def test_as_dict_latency(self):
        g = StatGroup("g")
        g.latency("lat").record(7)
        assert g.as_dict()["lat"]["mean"] == 7

    def test_as_dict_histogram(self):
        g = StatGroup("g")
        g.histogram("h", 0, 10, 2).record(1)
        assert g.as_dict()["h"]["count"] == 1
