"""Tests for the named, seeded RNG streams."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import RngHub, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_name_sensitive(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_root_sensitive(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_fits_63_bits(self):
        assert 0 <= derive_seed(123, "stream") < 2**63

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=40))
    def test_always_in_range(self, root, name):
        assert 0 <= derive_seed(root, name) < 2**63

    @given(st.integers(min_value=0, max_value=1000))
    def test_distinct_names_rarely_collide(self, root):
        seeds = {derive_seed(root, f"n{i}") for i in range(50)}
        assert len(seeds) == 50


class TestRngHub:
    def test_stream_cached(self):
        hub = RngHub(7)
        assert hub.stream("x") is hub.stream("x")

    def test_streams_independent(self):
        hub = RngHub(7)
        a = hub.stream("a").random(100)
        b = hub.stream("b").random(100)
        assert not np.allclose(a, b)

    def test_reproducible_across_hubs(self):
        first = RngHub(11).stream("traffic").random(10)
        second = RngHub(11).stream("traffic").random(10)
        assert np.allclose(first, second)

    def test_different_seeds_differ(self):
        first = RngHub(11).stream("traffic").random(10)
        second = RngHub(12).stream("traffic").random(10)
        assert not np.allclose(first, second)

    def test_construction_order_irrelevant(self):
        hub1 = RngHub(3)
        hub1.stream("a")
        ones = hub1.stream("b").random(5)
        hub2 = RngHub(3)
        twos = hub2.stream("b").random(5)  # "a" never created here
        assert np.allclose(ones, twos)

    def test_child_namespaced(self):
        hub = RngHub(5)
        child = hub.child("fsoi")
        assert child.root_seed != hub.root_seed
        a = child.stream("x").random(5)
        b = hub.stream("x").random(5)
        assert not np.allclose(a, b)

    def test_child_deterministic(self):
        a = RngHub(5).child("net").stream("s").random(4)
        b = RngHub(5).child("net").stream("s").random(4)
        assert np.allclose(a, b)

    def test_repr_mentions_seed(self):
        assert "root_seed=9" in repr(RngHub(9))
