"""Tests for physical-unit helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.units import (
    db_to_linear,
    dbm_to_watts,
    linear_to_db,
    watts_to_dbm,
)


class TestDecibels:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)

    def test_ten_db_is_ten(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)

    def test_three_db_is_double(self):
        assert db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)
        with pytest.raises(ValueError):
            linear_to_db(-1.0)

    @given(st.floats(min_value=-60, max_value=60))
    def test_roundtrip(self, db):
        assert linear_to_db(db_to_linear(db)) == pytest.approx(db, abs=1e-9)


class TestDbm:
    def test_zero_dbm_is_one_milliwatt(self):
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_watts_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            watts_to_dbm(0.0)

    @given(st.floats(min_value=-60, max_value=30))
    def test_roundtrip(self, dbm):
        assert watts_to_dbm(dbm_to_watts(dbm)) == pytest.approx(dbm, abs=1e-9)
