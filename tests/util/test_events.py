"""Tests for the event queue, cycle calendar and simulation loop."""

import pytest

from repro.util.events import CycleCalendar, EventQueue, Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        fired = []
        q.schedule(5, lambda: fired.append("late"))
        q.schedule(1, lambda: fired.append("early"))
        for e in q.pop_due(10):
            e.action()
        assert fired == ["early", "late"]

    def test_same_time_insertion_order(self):
        q = EventQueue()
        fired = []
        for i in range(5):
            q.schedule(3, lambda i=i: fired.append(i))
        for e in q.pop_due(3):
            e.action()
        assert fired == [0, 1, 2, 3, 4]

    def test_pop_due_respects_now(self):
        q = EventQueue()
        q.schedule(2, lambda: None)
        q.schedule(8, lambda: None)
        assert len(q.pop_due(5)) == 1
        assert len(q) == 1

    def test_cancelled_events_do_not_fire(self):
        q = EventQueue()
        fired = []
        handle = q.schedule(1, lambda: fired.append("a"))
        handle.cancel()
        assert q.pop_due(5) == []
        assert fired == []

    def test_next_time_skips_cancelled(self):
        q = EventQueue()
        first = q.schedule(1, lambda: None)
        q.schedule(4, lambda: None)
        first.cancel()
        assert q.next_time() == 4

    def test_next_time_empty(self):
        assert EventQueue().next_time() is None

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1, lambda: None)


class TestCycleCalendar:
    def test_run_due_runs_everything_at_or_before(self):
        cal = CycleCalendar()
        fired = []
        cal.schedule(3, lambda: fired.append(3))
        cal.schedule(1, lambda: fired.append(1))
        cal.schedule(7, lambda: fired.append(7))
        cal.run_due(5)
        assert fired == [1, 3]
        assert len(cal) == 1
        cal.run_due(7)
        assert fired == [1, 3, 7]
        assert not cal

    def test_same_cycle_insertion_order(self):
        cal = CycleCalendar()
        fired = []
        for i in range(5):
            cal.schedule(2, lambda i=i: fired.append(i))
        cal.run_due(2)
        assert fired == [0, 1, 2, 3, 4]

    def test_next_cycle(self):
        cal = CycleCalendar()
        assert cal.next_cycle() is None
        cal.schedule(9, lambda: None)
        cal.schedule(4, lambda: None)
        assert cal.next_cycle() == 4
        cal.run_due(4)
        assert cal.next_cycle() == 9

    def test_no_stale_past_keys(self):
        # The dict-of-lists predecessor left entries scheduled for a
        # cycle that had already been drained unreachable forever; the
        # heap runs them on the next drain instead.
        cal = CycleCalendar()
        fired = []
        cal.run_due(10)
        cal.schedule(3, lambda: fired.append("late-scheduled"))
        cal.run_due(10)
        assert fired == ["late-scheduled"]

    def test_action_may_reschedule(self):
        cal = CycleCalendar()
        fired = []
        cal.schedule(1, lambda: cal.schedule(5, lambda: fired.append(5)))
        cal.run_due(1)
        assert cal.next_cycle() == 5
        cal.run_due(5)
        assert fired == [5]


class _Ticker:
    def __init__(self):
        self.cycles = []

    def tick(self, cycle):
        self.cycles.append(cycle)


class TestSimulator:
    def test_run_until(self):
        sim = Simulator()
        ticker = _Ticker()
        sim.add_clocked(ticker)
        assert sim.run(5) == 5
        assert ticker.cycles == [0, 1, 2, 3, 4]

    def test_events_fire_before_ticks(self):
        sim = Simulator()
        order = []
        sim.add_clocked(type("T", (), {"tick": lambda self, c: order.append(("tick", c))})())
        sim.schedule_at(2, lambda: order.append(("event", 2)))
        sim.run(3)
        assert order.index(("event", 2)) < order.index(("tick", 2))

    def test_schedule_in_relative(self):
        sim = Simulator()
        fired = []
        sim.schedule_in(3, lambda: fired.append(sim.cycle))
        sim.run(10)
        assert fired == [3]

    def test_stop_ends_run(self):
        sim = Simulator()
        sim.schedule_at(4, sim.stop)
        assert sim.run(100) == 5  # cycle 4 completes, then the loop exits

    def test_resume_after_stop(self):
        sim = Simulator()
        sim.schedule_at(2, sim.stop)
        sim.run(100)
        assert sim.run(10) == 10

    def test_clocked_registration_order(self):
        sim = Simulator()
        order = []
        for name in "abc":
            sim.add_clocked(
                type("T", (), {"tick": lambda self, c, n=name: order.append(n)})()
            )
        sim.run(1)
        assert order == ["a", "b", "c"]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.run(5)
        with pytest.raises(ValueError):
            sim.schedule_at(2, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule_in(-1, lambda: None)

    def test_event_can_schedule_event(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1, lambda: sim.schedule_in(2, lambda: fired.append(sim.cycle)))
        sim.run(10)
        assert fired == [3]
