"""Tests for the event queue and simulation loop."""

import pytest

from repro.util.events import EventQueue, Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        fired = []
        q.schedule(5, lambda: fired.append("late"))
        q.schedule(1, lambda: fired.append("early"))
        for e in q.pop_due(10):
            e.action()
        assert fired == ["early", "late"]

    def test_same_time_insertion_order(self):
        q = EventQueue()
        fired = []
        for i in range(5):
            q.schedule(3, lambda i=i: fired.append(i))
        for e in q.pop_due(3):
            e.action()
        assert fired == [0, 1, 2, 3, 4]

    def test_pop_due_respects_now(self):
        q = EventQueue()
        q.schedule(2, lambda: None)
        q.schedule(8, lambda: None)
        assert len(q.pop_due(5)) == 1
        assert len(q) == 1

    def test_cancelled_events_do_not_fire(self):
        q = EventQueue()
        fired = []
        handle = q.schedule(1, lambda: fired.append("a"))
        handle.cancel()
        assert q.pop_due(5) == []
        assert fired == []

    def test_next_time_skips_cancelled(self):
        q = EventQueue()
        first = q.schedule(1, lambda: None)
        q.schedule(4, lambda: None)
        first.cancel()
        assert q.next_time() == 4

    def test_next_time_empty(self):
        assert EventQueue().next_time() is None

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1, lambda: None)


class _Ticker:
    def __init__(self):
        self.cycles = []

    def tick(self, cycle):
        self.cycles.append(cycle)


class TestSimulator:
    def test_run_until(self):
        sim = Simulator()
        ticker = _Ticker()
        sim.add_clocked(ticker)
        assert sim.run(5) == 5
        assert ticker.cycles == [0, 1, 2, 3, 4]

    def test_events_fire_before_ticks(self):
        sim = Simulator()
        order = []
        sim.add_clocked(type("T", (), {"tick": lambda self, c: order.append(("tick", c))})())
        sim.schedule_at(2, lambda: order.append(("event", 2)))
        sim.run(3)
        assert order.index(("event", 2)) < order.index(("tick", 2))

    def test_schedule_in_relative(self):
        sim = Simulator()
        fired = []
        sim.schedule_in(3, lambda: fired.append(sim.cycle))
        sim.run(10)
        assert fired == [3]

    def test_stop_ends_run(self):
        sim = Simulator()
        sim.schedule_at(4, sim.stop)
        assert sim.run(100) == 5  # cycle 4 completes, then the loop exits

    def test_resume_after_stop(self):
        sim = Simulator()
        sim.schedule_at(2, sim.stop)
        sim.run(100)
        assert sim.run(10) == 10

    def test_clocked_registration_order(self):
        sim = Simulator()
        order = []
        for name in "abc":
            sim.add_clocked(
                type("T", (), {"tick": lambda self, c, n=name: order.append(n)})()
            )
        sim.run(1)
        assert order == ["a", "b", "c"]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.run(5)
        with pytest.raises(ValueError):
            sim.schedule_at(2, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule_in(-1, lambda: None)

    def test_event_can_schedule_event(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1, lambda: sim.schedule_in(2, lambda: fired.append(sim.cycle)))
        sim.run(10)
        assert fired == [3]
