"""Tests for the Table 3 configuration presets."""

import pytest

from repro.config import SystemConfig, table3


class TestTable3:
    def test_16_node_preset(self):
        config = table3(16)
        assert config.num_nodes == 16
        assert config.memory_channels == 4
        assert not config.phase_array

    def test_64_node_preset(self):
        config = table3(64)
        assert config.memory_channels == 8
        assert config.phase_array

    def test_other_sizes_rejected(self):
        with pytest.raises(ValueError):
            table3(32)

    def test_render_contains_key_rows(self):
        text = table3(16).render()
        for fragment in (
            "3.3 GHz",
            "8 KB, 2-way, 32 B line",
            "8.8 GB/s, latency 200 cycles",
            "12 bits per CPU cycle",
            "6/3/1 bits",
            "W=2.7, B=1.1",
            "dedicated per destination",
        ):
            assert fragment in text, fragment

    def test_render_64_mentions_phase_array(self):
        assert "phase-array" in table3(64).render()

    def test_rows_are_pairs(self):
        for key, value in table3(16).rows():
            assert isinstance(key, str) and isinstance(value, str)
