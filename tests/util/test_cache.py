"""Tests for the set-associative cache array."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.cache import CacheArray


class TestGeometry:
    def test_from_geometry_table3_l1(self):
        array = CacheArray.from_geometry(8192, 32, 2)
        assert array.num_sets == 128
        assert array.ways == 2

    def test_from_geometry_rejects_ragged(self):
        with pytest.raises(ValueError):
            CacheArray.from_geometry(128, 32, 3)  # 4 lines / 3 ways

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheArray(0, 2)
        with pytest.raises(ValueError):
            CacheArray(4, 0)


class TestResidency:
    def test_insert_then_contains(self):
        array = CacheArray(4, 2)
        array.insert(3)
        assert array.contains(3)
        assert not array.contains(7)

    def test_touch_hit_miss_counters(self):
        array = CacheArray(4, 2)
        array.insert(1)
        assert array.touch(1)
        assert not array.touch(2)
        assert array.hits == 1 and array.misses == 1
        assert array.miss_rate == pytest.approx(0.5)

    def test_reinsert_is_noop(self):
        array = CacheArray(4, 2)
        array.insert(1)
        assert array.insert(1) is None
        assert array.resident_lines().count(1) == 1

    def test_remove(self):
        array = CacheArray(4, 2)
        array.insert(1)
        assert array.remove(1)
        assert not array.remove(1)
        assert not array.contains(1)


class TestEviction:
    def test_lru_victim(self):
        array = CacheArray(1, 2)
        array.insert(10)
        array.insert(20)
        array.touch(10)          # 20 becomes LRU
        assert array.insert(30) == 20

    def test_eviction_counted(self):
        array = CacheArray(1, 1)
        array.insert(1)
        array.insert(2)
        assert array.evictions == 1

    def test_same_set_only(self):
        array = CacheArray(2, 1)
        array.insert(0)   # set 0
        array.insert(1)   # set 1
        assert array.insert(2) == 0  # set 0 again: evicts 0, not 1
        assert array.contains(1)

    def test_unevictable_lines_skipped(self):
        pinned = {10}
        array = CacheArray(1, 2, is_evictable=lambda line: line not in pinned)
        array.insert(10)
        array.insert(20)
        assert array.insert(30) == 20  # 10 is pinned despite being LRU

    def test_all_pinned_raises(self):
        array = CacheArray(1, 1, is_evictable=lambda line: False)
        array.insert(1)
        with pytest.raises(RuntimeError):
            array.insert(2)

    @given(st.lists(st.integers(min_value=0, max_value=300), max_size=120))
    def test_never_exceeds_capacity(self, lines):
        array = CacheArray(8, 2)
        for line in lines:
            array.insert(line)
        residents = array.resident_lines()
        assert len(residents) <= 16
        assert len(set(residents)) == len(residents)  # no duplicates

    @given(st.lists(st.integers(min_value=0, max_value=64), max_size=80))
    def test_insert_makes_resident(self, lines):
        array = CacheArray(4, 2)
        for line in lines:
            array.insert(line)
            assert array.contains(line)
