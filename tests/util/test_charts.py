"""Tests for the terminal chart helpers."""

import pytest

from repro.util.charts import bar_chart, grouped_bars, heatmap, series


class TestBarChart:
    def test_longest_bar_is_max(self):
        text = bar_chart({"big": 4.0, "small": 1.0}, width=8)
        lines = text.splitlines()
        assert lines[0].count("█") == 8
        assert lines[1].count("█") == 2

    def test_title(self):
        assert bar_chart({"a": 1.0}, title="T").splitlines()[0] == "T"

    def test_values_printed(self):
        assert "4.00" in bar_chart({"a": 4.0})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_fractional_blocks(self):
        text = bar_chart({"a": 1.0, "b": 0.9}, width=10)
        b_line = text.splitlines()[1]
        assert len(b_line.split()[1]) == 9  # 9 cells for 90%


class TestGroupedBars:
    def test_structure(self):
        text = grouped_bars(
            {"oc": {"fsoi": 1.4, "mesh": 1.0}, "mp": {"fsoi": 1.5, "mesh": 1.0}}
        )
        assert "oc:" in text and "mp:" in text
        assert text.count("fsoi") == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            grouped_bars({})


class TestSeries:
    def test_axes_and_legend(self):
        text = series([0, 1, 2], {"fsoi": [1, 2, 3], "mesh": [3, 2, 1]})
        assert "o=fsoi" in text and "x=mesh" in text
        assert "┤" in text

    def test_marks_plotted(self):
        text = series([0, 1], {"a": [0.0, 1.0]})
        assert text.count("o") >= 2

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            series([0, 1], {"a": [1.0]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            series([], {})


class TestHeatmap:
    def test_shading_scales(self):
        text = heatmap([[0.0, 1.0], [0.5, 0.0]])
        lines = text.splitlines()
        assert "█" in lines[0]
        assert lines[0].startswith("  ")  # zero cell blank

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            heatmap([])
