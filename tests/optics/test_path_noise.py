"""Tests for the free-space path budget and the OOK noise chain."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.optics.noise import ReceiverNoise, ber_from_q, q_from_ber
from repro.optics.path import FreeSpacePath
from repro.util.units import CM, UM


class TestFreeSpacePath:
    def test_loss_matches_table1(self):
        # Table 1: 2.6 dB optical path loss on the 2 cm diagonal.
        assert FreeSpacePath().loss_db() == pytest.approx(2.6, abs=0.3)

    def test_budget_components_compose(self):
        path = FreeSpacePath()
        budget = path.loss_budget()
        parts = sum(v for k, v in budget.items() if k != "total_db")
        assert parts == pytest.approx(budget["total_db"], abs=1e-9)

    def test_receiver_clip_dominates(self):
        budget = FreeSpacePath().loss_budget()
        others = [v for k, v in budget.items() if k not in ("total_db", "receiver_clip_db")]
        assert budget["receiver_clip_db"] > max(others)

    def test_shorter_hop_less_loss(self):
        assert FreeSpacePath(distance=1 * CM).loss_db() < FreeSpacePath().loss_db()

    def test_bigger_receiver_lens_less_loss(self):
        from repro.optics.lens import MicroLens

        big = FreeSpacePath(rx_lens=MicroLens(aperture=300 * UM, transmission=0.995))
        assert big.loss_db() < FreeSpacePath().loss_db()

    def test_propagation_delay(self):
        # 2 cm at the speed of light ~ 66.7 ps.
        assert FreeSpacePath().propagation_delay() == pytest.approx(66.7e-12, rel=0.01)

    def test_skew_between_paths(self):
        long = FreeSpacePath(distance=2 * CM)
        short = FreeSpacePath(distance=0.5 * CM)
        skew = long.skew_versus(short)
        assert skew == pytest.approx(1.5e-2 / 3e8, rel=0.01)
        assert long.skew_versus(long) == 0.0

    def test_substrate_clip_negligible(self):
        # The diverging beam easily fits the 90 um lens through 430 um of GaAs.
        assert FreeSpacePath().substrate_clip() > 0.999


class TestOokTheory:
    def test_q_six_point_four_is_ber_1e_10(self):
        assert ber_from_q(6.36) == pytest.approx(1e-10, rel=0.3)

    def test_ber_monotone_decreasing(self):
        assert ber_from_q(7.0) < ber_from_q(6.0) < ber_from_q(5.0)

    def test_negative_q_rejected(self):
        with pytest.raises(ValueError):
            ber_from_q(-1.0)

    def test_q_from_ber_range_checked(self):
        with pytest.raises(ValueError):
            q_from_ber(0.7)

    @given(st.floats(min_value=1.0, max_value=8.0))
    def test_inverse_roundtrip(self, q):
        assert q_from_ber(ber_from_q(q)) == pytest.approx(q, rel=1e-6)


class TestReceiverNoise:
    def test_thermal_sigma(self):
        noise = ReceiverNoise(bandwidth=36e9, input_noise_density=32e-12)
        assert noise.thermal_sigma == pytest.approx(32e-12 * 36e9**0.5)

    def test_shot_noise_raises_level_sigma(self):
        noise = ReceiverNoise()
        assert noise.level_sigma(100e-6) > noise.level_sigma(0.0)

    def test_q_improves_with_signal(self):
        noise = ReceiverNoise()
        assert noise.q_factor(80e-6, 8e-6) > noise.q_factor(40e-6, 4e-6)

    def test_q_requires_separated_levels(self):
        with pytest.raises(ValueError):
            ReceiverNoise().q_factor(1e-6, 1e-6)

    def test_snr_db_definition(self):
        import math

        noise = ReceiverNoise()
        q = noise.q_factor(80e-6, 8e-6)
        assert noise.snr_db(80e-6, 8e-6) == pytest.approx(10 * math.log10(q))

    def test_validation(self):
        with pytest.raises(ValueError):
            ReceiverNoise(bandwidth=0)
        with pytest.raises(ValueError):
            ReceiverNoise(input_noise_density=0)
        with pytest.raises(ValueError):
            ReceiverNoise().level_sigma(-1e-6)
