"""Tests for Gaussian beam propagation."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.optics.gaussian import GaussianBeam
from repro.util.units import NM, UM

WAVELENGTH = 980 * NM


def beam(waist_um=45.0, n=1.0):
    return GaussianBeam(waist=waist_um * UM, wavelength=WAVELENGTH, refractive_index=n)


class TestGeometry:
    def test_rayleigh_range(self):
        b = beam(45.0)
        expected = math.pi * (45e-6) ** 2 / WAVELENGTH
        assert b.rayleigh_range == pytest.approx(expected)

    def test_radius_at_waist(self):
        assert beam().radius_at(0.0) == pytest.approx(45e-6)

    def test_radius_at_rayleigh_range_is_sqrt2(self):
        b = beam()
        assert b.radius_at(b.rayleigh_range) == pytest.approx(45e-6 * math.sqrt(2))

    def test_radius_monotone(self):
        b = beam()
        radii = [b.radius_at(z * 1e-3) for z in range(0, 30)]
        assert radii == sorted(radii)

    def test_index_slows_divergence(self):
        in_gaas = beam(2.5, n=3.52)
        in_air = beam(2.5, n=1.0)
        assert in_gaas.radius_at(430e-6) < in_air.radius_at(430e-6)

    def test_divergence_half_angle(self):
        b = beam(2.5)
        assert b.divergence_half_angle == pytest.approx(
            WAVELENGTH / (math.pi * 2.5e-6)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianBeam(waist=0, wavelength=WAVELENGTH)
        with pytest.raises(ValueError):
            GaussianBeam(waist=1e-6, wavelength=-1)
        with pytest.raises(ValueError):
            GaussianBeam(waist=1e-6, wavelength=WAVELENGTH, refractive_index=0.5)
        with pytest.raises(ValueError):
            beam().radius_at(-1.0)


class TestAperture:
    def test_transmission_in_unit_interval(self):
        t = beam().aperture_transmission(0.02, 95e-6)
        assert 0.0 < t < 1.0

    def test_large_aperture_passes_everything(self):
        t = beam().aperture_transmission(0.02, 5e-3)
        assert t == pytest.approx(1.0, abs=1e-6)

    def test_one_over_e2_radius_aperture(self):
        # An aperture at the 1/e^2 radius passes 1 - e^-2 ~ 86.5%.
        b = beam()
        t = b.aperture_transmission(0.0, 45e-6)
        assert t == pytest.approx(1 - math.exp(-2), rel=1e-6)

    def test_rejects_bad_aperture(self):
        with pytest.raises(ValueError):
            beam().aperture_transmission(0.01, 0.0)

    @given(
        st.floats(min_value=1.0, max_value=100.0),
        st.floats(min_value=0.001, max_value=0.05),
    )
    def test_transmission_increases_with_aperture(self, radius_um, z):
        b = beam()
        small = b.aperture_transmission(z, radius_um * UM)
        large = b.aperture_transmission(z, 2 * radius_um * UM)
        assert large >= small


class TestOptimalWaist:
    def test_confocal_value(self):
        w = GaussianBeam.optimal_waist_for_range(WAVELENGTH, 0.02)
        assert w == pytest.approx(math.sqrt(WAVELENGTH * 0.02 / math.pi))
        assert 70e-6 < w < 90e-6  # ~79 um for the paper's 2 cm hop

    @given(st.floats(min_value=10e-6, max_value=200e-6))
    def test_is_a_minimum(self, other_waist):
        distance = 0.02
        best = GaussianBeam.optimal_waist_for_range(WAVELENGTH, distance)
        ref = GaussianBeam(best, WAVELENGTH).radius_at(distance)
        alt = GaussianBeam(other_waist, WAVELENGTH).radius_at(distance)
        assert ref <= alt * (1 + 1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianBeam.optimal_waist_for_range(0, 0.02)


class TestCollimation:
    def test_collimated_by_resets_waist_and_medium(self):
        b = beam(2.5, n=3.52).collimated_by(40e-6)
        assert b.waist == 40e-6
        assert b.refractive_index == 1.0
