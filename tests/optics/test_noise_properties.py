"""Property-based invariants of the OOK noise chain (optics/noise.py).

The fault injector's thermal-droop path leans on this module (droop dB
-> scaled photocurrents -> Q -> BER), so its mathematical backbone gets
property coverage: the Q<->BER bijection must round-trip, BER must fall
monotonically as received power rises, and the domain edges must raise
rather than silently return garbage.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optics.noise import ReceiverNoise, ber_from_q, q_from_ber

# erfcinv loses precision as BER collapses toward 0 (Q >~ 8 puts BER
# under 1e-15); keep the round-trip domain where the inverse is stable.
qs = st.floats(min_value=0.05, max_value=8.0,
               allow_nan=False, allow_infinity=False)
currents = st.floats(min_value=1e-7, max_value=5e-3,
                     allow_nan=False, allow_infinity=False)


class TestQBerRoundTrip:
    @given(q=qs)
    @settings(max_examples=200, deadline=None)
    def test_q_to_ber_and_back(self, q):
        assert q_from_ber(ber_from_q(q)) == pytest.approx(q, rel=1e-9)

    @given(q1=qs, q2=qs)
    @settings(max_examples=100, deadline=None)
    def test_ber_strictly_decreasing_in_q(self, q1, q2):
        lo, hi = sorted((q1, q2))
        if hi - lo > 1e-9:
            assert ber_from_q(hi) < ber_from_q(lo)

    def test_zero_q_is_coin_flip(self):
        assert ber_from_q(0.0) == pytest.approx(0.5)

    @given(q=qs)
    @settings(max_examples=100, deadline=None)
    def test_ber_always_in_half_open_unit_interval(self, q):
        ber = ber_from_q(q)
        assert 0.0 < ber < 0.5


class TestBerMonotoneInPower:
    @given(i0=st.floats(min_value=0.0, max_value=1e-4,
                        allow_nan=False, allow_infinity=False),
           i1=currents, boost=st.floats(min_value=1.01, max_value=10.0,
                                        allow_nan=False, allow_infinity=False))
    @settings(max_examples=150, deadline=None)
    def test_more_signal_current_never_hurts(self, i0, i1, boost):
        """Raising I1 (more received power) must not raise the BER —
        exactly the chain the thermal-droop fault walks in reverse."""
        noise = ReceiverNoise()
        i1 = max(i1, i0 + 1e-9)
        assert noise.ber(i1 * boost, i0) <= noise.ber(i1, i0)

    @given(i1=currents, scale=st.floats(min_value=0.05, max_value=0.95,
                                        allow_nan=False, allow_infinity=False))
    @settings(max_examples=150, deadline=None)
    def test_uniform_droop_raises_ber(self, i1, scale):
        """Scaling both rails down (a VCSEL power droop preserves the
        extinction ratio) strictly shrinks the Q factor: thermal noise
        is power-independent, so the eye closes.  Compared in the Q
        domain because BER underflows to exactly 0.0 at healthy
        photocurrents (Q > ~40)."""
        noise = ReceiverNoise()
        i0 = 0.05 * i1
        assert noise.q_factor(i1 * scale, i0 * scale) < noise.q_factor(i1, i0)

    @given(i1=currents)
    @settings(max_examples=100, deadline=None)
    def test_shot_noise_keeps_q_below_thermal_only_bound(self, i1):
        noise = ReceiverNoise()
        q = noise.q_factor(i1, 0.0)
        thermal_only = i1 / (2.0 * noise.thermal_sigma)
        assert q <= thermal_only + 1e-12


class TestDomainEdges:
    def test_negative_q_raises(self):
        with pytest.raises(ValueError):
            ber_from_q(-1e-9)

    @pytest.mark.parametrize("ber", [0.0, 0.5, 1.0, -0.1])
    def test_ber_outside_open_interval_raises(self, ber):
        with pytest.raises(ValueError):
            q_from_ber(ber)

    def test_ber_approaching_half_gives_vanishing_q(self):
        assert q_from_ber(0.5 - 1e-12) == pytest.approx(0.0, abs=1e-5)

    def test_negative_photocurrent_raises(self):
        with pytest.raises(ValueError):
            ReceiverNoise().level_sigma(-1e-9)

    def test_inverted_eye_raises(self):
        with pytest.raises(ValueError):
            ReceiverNoise().q_factor(1e-5, 2e-5)

    @pytest.mark.parametrize(
        "kwargs", [{"bandwidth": 0.0}, {"bandwidth": -1.0},
                   {"input_noise_density": 0.0},
                   {"input_noise_density": -1e-12}],
    )
    def test_unphysical_receiver_raises(self, kwargs):
        with pytest.raises(ValueError):
            ReceiverNoise(**kwargs)
