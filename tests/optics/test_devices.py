"""Tests for VCSEL, photodetector, micro-lens and micro-mirror models."""

import math

import pytest

from repro.optics.lens import MicroLens
from repro.optics.mirror import MicroMirror, MirrorPath
from repro.optics.photodetector import Photodetector
from repro.optics.vcsel import Vcsel
from repro.util.units import UM


class TestVcsel:
    def test_li_curve_below_threshold(self):
        assert Vcsel().optical_power(0.0001) == 0.0

    def test_li_curve_slope(self):
        v = Vcsel()
        p1 = v.optical_power(0.5e-3)
        p2 = v.optical_power(0.6e-3)
        assert (p2 - p1) / 0.1e-3 == pytest.approx(v.slope_efficiency)

    def test_electrical_power_table1(self):
        # Table 1: 0.96 mW = 0.48 mA at 2 V.
        assert Vcsel().electrical_power == pytest.approx(0.96e-3)

    def test_ook_levels_ratio_and_mean(self):
        v = Vcsel()
        p1, p0 = v.ook_levels()
        assert p1 / p0 == pytest.approx(v.extinction_ratio)
        assert (p1 + p0) / 2 == pytest.approx(v.average_optical_power)

    def test_supports_40gbps(self):
        assert Vcsel().supports_data_rate(40e9)

    def test_parasitic_pole_caps_unequalized_bandwidth(self):
        v = Vcsel()
        assert v.modulation_bandwidth(equalized=False) < v.parasitic_pole * 1.01
        assert v.modulation_bandwidth(equalized=False) < v.modulation_bandwidth()

    def test_bandwidth_grows_with_bias(self):
        low = Vcsel(bias_current=0.3e-3)
        high = Vcsel(bias_current=0.9e-3)
        assert high.modulation_bandwidth() > low.modulation_bandwidth()

    def test_beam_waist_is_half_aperture(self):
        assert Vcsel().beam_waist == pytest.approx(2.5 * UM)

    def test_validation(self):
        with pytest.raises(ValueError):
            Vcsel(bias_current=0.1e-3)  # below threshold
        with pytest.raises(ValueError):
            Vcsel(extinction_ratio=0.9)


class TestPhotodetector:
    def test_photocurrent_linear(self):
        pd = Photodetector()
        base = pd.photocurrent(0.0)
        assert pd.photocurrent(1e-3) - base == pytest.approx(0.5e-3)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            Photodetector().photocurrent(-1e-6)

    def test_quantum_efficiency_below_unity(self):
        assert 0.0 < Photodetector().quantum_efficiency(980e-9) <= 1.0

    def test_unphysical_responsivity_rejected(self):
        with pytest.raises(ValueError):
            Photodetector(responsivity=2.0)

    def test_rc_bandwidth(self):
        pd = Photodetector()
        bw = pd.rc_bandwidth(50.0)
        assert bw == pytest.approx(1 / (2 * math.pi * 50 * 100e-15))

    def test_rc_bandwidth_validates_load(self):
        with pytest.raises(ValueError):
            Photodetector().rc_bandwidth(0.0)

    def test_shot_noise_scales_sqrt(self):
        pd = Photodetector()
        s1 = pd.shot_noise_sigma(10e-6, 36e9)
        s4 = pd.shot_noise_sigma(40e-6, 36e9)
        assert s4 / s1 == pytest.approx(2.0)


class TestMicroLens:
    def test_defaults_match_table1_tx(self):
        assert MicroLens().aperture == pytest.approx(90 * UM)

    def test_clip_combines_aperture_and_element(self):
        from repro.optics.gaussian import GaussianBeam

        lens = MicroLens(transmission=0.9)
        beam = GaussianBeam(waist=45e-6, wavelength=980e-9)
        t = lens.clip(beam, 0.0)
        assert t == pytest.approx(0.9 * (1 - math.exp(-2)), rel=1e-6)

    def test_collimate_fill_factor(self):
        from repro.optics.gaussian import GaussianBeam

        beam = GaussianBeam(waist=2.5e-6, wavelength=980e-9, refractive_index=3.52)
        out = MicroLens().collimate(beam, fill_factor=0.5)
        assert out.waist == pytest.approx(0.5 * 45e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroLens(aperture=0)
        with pytest.raises(ValueError):
            MicroLens(transmission=1.5)


class TestMirrors:
    def test_two_bounces(self):
        assert MirrorPath(MicroMirror(0.99), bounces=2).transmission == pytest.approx(
            0.9801
        )

    def test_zero_bounces_lossless(self):
        assert MirrorPath(bounces=0).transmission == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroMirror(reflectivity=0.0)
        with pytest.raises(ValueError):
            MirrorPath(bounces=-1)
