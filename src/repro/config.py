"""System configuration presets (paper Table 3).

Collects every default the reproduction uses into one printable
structure so experiments can show exactly what they ran — the analogue
of the paper's Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.coherence.directory import DirectoryConfig
from repro.coherence.l1 import L1Config
from repro.core.backoff import BackoffPolicy
from repro.core.lanes import LaneConfig
from repro.core.link import OpticalLink
from repro.cpu.core import CoreConfig
from repro.cpu.memctrl import MemoryConfig

__all__ = ["SystemConfig", "table3"]


@dataclass(frozen=True)
class SystemConfig:
    """One row of Table 3: a named, fully specified system."""

    name: str
    num_nodes: int
    memory_channels: int
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: L1Config = field(default_factory=L1Config)
    directory: DirectoryConfig = field(default_factory=DirectoryConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    lanes: LaneConfig = field(default_factory=LaneConfig)
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    link: OpticalLink = field(default_factory=OpticalLink)
    phase_array: bool = False

    def rows(self) -> list[tuple[str, str]]:
        """Human-readable (parameter, value) rows, Table 3 style."""
        link = self.link
        return [
            ("System", f"{self.name} ({self.num_nodes} nodes)"),
            ("Core clock", f"{link.core_clock / 1e9:.1f} GHz, 45 nm"),
            ("Issue rate / MSHRs",
             f"{self.core.ipc} eff. IPC, {self.core.mshr_limit} MSHRs"),
            ("L1 D cache (private)",
             f"{self.l1.capacity_bytes // 1024} KB, {self.l1.ways}-way, "
             f"{self.l1.line_bytes} B line"),
            ("L2 (shared slice)", f"{self.directory.l2_latency}-cycle access"),
            ("Dir. request queue",
             f"{self.directory.request_queue_depth} entries"),
            ("Memory channel",
             f"{self.memory.bandwidth_bytes_per_cycle * link.core_clock / 1e9:.1f}"
             f" GB/s, latency {self.memory.latency} cycles"),
            ("Number of channels", str(self.memory_channels)),
            ("Network packets",
             "flit 72-bit, data packet 5 flits, meta packet 1 flit"),
            ("VCSEL",
             f"{link.data_rate / 1e9:.0f} GHz, "
             f"{link.bits_per_cpu_cycle} bits per CPU cycle"),
            ("Array",
             "phase-array w/ 1 cycle setup" if self.phase_array
             else "dedicated per destination"),
            ("Lane widths",
             f"{self.lanes.data_vcsels}/{self.lanes.meta_vcsels}/"
             f"{self.lanes.confirmation_vcsels} bits data/meta/confirmation"),
            ("Receivers",
             f"{self.lanes.data_receivers} data, {self.lanes.meta_receivers}"
             f" meta, 1 confirmation"),
            ("Outgoing queue",
             f"{self.lanes.queue_capacity} packets per lane"),
            ("Back-off", f"W={self.backoff.start_window}, B={self.backoff.base}"),
        ]

    def render(self) -> str:
        width = max(len(k) for k, _v in self.rows())
        return "\n".join(f"{k:<{width}}  {v}" for k, v in self.rows())


def table3(num_nodes: int = 16) -> SystemConfig:
    """The paper's evaluated systems: 16-way dedicated or 64-way OPA.

    >>> table3(16).memory_channels
    4
    >>> table3(64).phase_array
    True
    """
    if num_nodes not in (16, 64):
        raise ValueError(f"the paper evaluates 16 or 64 nodes, not {num_nodes}")
    return SystemConfig(
        name="FSOI CMP",
        num_nodes=num_nodes,
        memory_channels=4 if num_nodes == 16 else 8,
        phase_array=num_nodes == 64,
    )
