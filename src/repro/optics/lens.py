"""Micro-lens model.

Micro-lenses collimate the VCSEL's diverging output at the transmitter
and focus the arriving beam onto the photodetector at the receiver
(paper §3.2).  Table 1 specifies a 90 µm aperture at the transmitter and
190 µm at the receiver.  Each lens contributes a small insertion loss
(Fresnel reflection of an anti-reflection-coated surface pair) and clips
the tail of the Gaussian beam that falls outside its aperture.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.optics.gaussian import GaussianBeam
from repro.util.units import UM

__all__ = ["MicroLens"]


@dataclass(frozen=True)
class MicroLens:
    """A refractive micro-lens.

    Parameters
    ----------
    aperture:
        Clear aperture *diameter*, meters.
    transmission:
        Bulk + surface transmission of the element itself (AR-coated
        GaAs or polymer; ~0.98-0.99), excluding aperture clipping.
    focal_length:
        Paraxial focal length, meters.  Only used for spot-size
        calculations; the collimation itself is treated as ideal.
    """

    aperture: float = 90 * UM
    transmission: float = 0.99
    focal_length: float = 150 * UM

    def __post_init__(self) -> None:
        if self.aperture <= 0:
            raise ValueError(f"aperture must be positive: {self.aperture}")
        if not 0 < self.transmission <= 1:
            raise ValueError(f"transmission must be in (0, 1]: {self.transmission}")

    @property
    def radius(self) -> float:
        return self.aperture / 2.0

    def clip(self, beam: GaussianBeam, distance_from_waist: float) -> float:
        """Power fraction surviving this lens for a beam arriving from
        ``distance_from_waist`` meters away (clipping x element loss)."""
        clipping = beam.aperture_transmission(distance_from_waist, self.radius)
        return clipping * self.transmission

    def collimate(self, beam: GaussianBeam, fill_factor: float = 0.7) -> GaussianBeam:
        """Collimate ``beam`` into a new waist sized to this lens.

        The collimated waist is ``fill_factor x radius``; filling the
        aperture much beyond ~0.7 trades collimation for clipping loss at
        the lens itself (a standard design rule).
        """
        if not 0 < fill_factor <= 1:
            raise ValueError(f"fill factor must be in (0, 1]: {fill_factor}")
        return beam.collimated_by(self.radius * fill_factor)

    def focused_spot_radius(self, beam: GaussianBeam) -> float:
        """Diffraction-limited focused spot radius on the detector, meters.

        w_spot = lambda * f / (pi * w_in) for an input beam of radius
        ``w_in`` at the lens (taken as the beam waist for a collimated
        arrival).
        """
        import math

        return beam.wavelength * self.focal_length / (math.pi * beam.waist)
