"""Receiver noise, Q factor, SNR and bit-error rate for OOK.

The FSOI link uses simple on-off keying (paper §4.3.2), detected by a
photodiode + transimpedance amplifier (TIA) + limiting amplifier chain
(Table 1: 36 GHz bandwidth, 15000 V/A gain).  Link quality follows the
standard Gaussian-noise OOK theory:

* Q factor  ``Q = (I1 - I0) / (sigma1 + sigma0)``
* BER       ``BER = 0.5 * erfc(Q / sqrt(2))``

where ``I1``/``I0`` are the photocurrents of the two symbols and the
sigmas combine the TIA's input-referred thermal noise with per-level
shot noise.  We report ``SNR_dB = 10 log10(Q)``, which lands at ~8 dB
for BER 1e-10 (the paper quotes 7.5 dB; see EXPERIMENTS.md for the
discrepancy note).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.special import erfc, erfcinv

__all__ = ["ReceiverNoise", "ber_from_q", "q_from_ber"]

ELECTRON_CHARGE = 1.602_176_634e-19  # coulombs


def ber_from_q(q: float) -> float:
    """Bit-error rate of an OOK link with Gaussian noise at Q factor ``q``.

    >>> 9e-11 < ber_from_q(6.36) < 1.2e-10
    True
    """
    if q < 0:
        raise ValueError(f"negative Q factor: {q}")
    return 0.5 * float(erfc(q / math.sqrt(2.0)))


def q_from_ber(ber: float) -> float:
    """Inverse of :func:`ber_from_q`.

    >>> round(q_from_ber(ber_from_q(6.0)), 6)
    6.0
    """
    if not 0 < ber < 0.5:
        raise ValueError(f"BER must be in (0, 0.5): {ber}")
    return math.sqrt(2.0) * float(erfcinv(2.0 * ber))


@dataclass(frozen=True)
class ReceiverNoise:
    """Noise model of the TIA + limiting-amplifier receiver chain.

    Parameters
    ----------
    bandwidth:
        Receiver noise bandwidth, Hz (Table 1: 36 GHz).
    input_noise_density:
        TIA input-referred current noise density, A/sqrt(Hz).  The
        default (32 pA/sqrt(Hz)) is calibrated so the Table 1 link
        budget yields BER ~1e-10.
    transimpedance_gain:
        TIA gain, V/A (Table 1: 15000); informational — the decision
        statistics are computed in the current domain.
    """

    bandwidth: float = 36e9
    input_noise_density: float = 32e-12
    transimpedance_gain: float = 15000.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive: {self.bandwidth}")
        if self.input_noise_density <= 0:
            raise ValueError(
                f"noise density must be positive: {self.input_noise_density}"
            )

    @property
    def thermal_sigma(self) -> float:
        """RMS input-referred thermal noise current, amperes."""
        return self.input_noise_density * math.sqrt(self.bandwidth)

    def level_sigma(self, photocurrent: float) -> float:
        """Total RMS noise at a symbol level (thermal + shot), amperes."""
        if photocurrent < 0:
            raise ValueError(f"negative photocurrent: {photocurrent}")
        shot = math.sqrt(2.0 * ELECTRON_CHARGE * photocurrent * self.bandwidth)
        return math.hypot(self.thermal_sigma, shot)

    def q_factor(self, current_one: float, current_zero: float) -> float:
        """OOK Q factor for symbol currents ``current_one`` > ``current_zero``."""
        if current_one <= current_zero:
            raise ValueError(
                f"I1 must exceed I0: {current_one} <= {current_zero}"
            )
        sigma1 = self.level_sigma(current_one)
        sigma0 = self.level_sigma(current_zero)
        return (current_one - current_zero) / (sigma1 + sigma0)

    def ber(self, current_one: float, current_zero: float) -> float:
        """Bit-error rate for the given symbol currents."""
        return ber_from_q(self.q_factor(current_one, current_zero))

    def snr_db(self, current_one: float, current_zero: float) -> float:
        """SNR in dB, defined as ``10 log10(Q)``."""
        return 10.0 * math.log10(self.q_factor(current_one, current_zero))
