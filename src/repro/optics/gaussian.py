"""Gaussian beam propagation and aperture clipping.

The FSOI link's dominant loss mechanism is the finite aperture of the
receiving micro-lens relative to the diffraction-spread beam after a
~2 cm free-space hop (paper §3.2, Table 1's 2.6 dB optical path loss).
A fundamental-mode VCSEL emits a TEM00 Gaussian beam, so the standard
Gaussian-beam formulas apply:

* Rayleigh range        ``z_R = pi * w0^2 * n / lambda``
* radius at distance z  ``w(z) = w0 * sqrt(1 + (z/z_R)^2)``
* power through a centred circular aperture of radius a:
  ``T = 1 - exp(-2 a^2 / w^2)``
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["GaussianBeam"]


@dataclass(frozen=True)
class GaussianBeam:
    """A TEM00 Gaussian beam at a waist.

    Parameters
    ----------
    waist:
        1/e² intensity radius ``w0`` at the waist, meters.
    wavelength:
        Vacuum wavelength, meters.
    refractive_index:
        Index of the propagation medium (1.0 for free space, ~3.5 inside
        the GaAs substrate the back-emitting VCSEL shines through).
    """

    waist: float
    wavelength: float
    refractive_index: float = 1.0

    def __post_init__(self) -> None:
        if self.waist <= 0:
            raise ValueError(f"waist must be positive: {self.waist}")
        if self.wavelength <= 0:
            raise ValueError(f"wavelength must be positive: {self.wavelength}")
        if self.refractive_index < 1.0:
            raise ValueError(f"refractive index < 1: {self.refractive_index}")

    @property
    def rayleigh_range(self) -> float:
        """Distance over which the beam stays roughly collimated, meters."""
        return math.pi * self.waist**2 * self.refractive_index / self.wavelength

    @property
    def divergence_half_angle(self) -> float:
        """Far-field half-angle divergence, radians."""
        return self.wavelength / (math.pi * self.waist * self.refractive_index)

    def radius_at(self, z: float) -> float:
        """1/e² beam radius after propagating ``z`` meters from the waist."""
        if z < 0:
            raise ValueError(f"negative propagation distance: {z}")
        return self.waist * math.sqrt(1.0 + (z / self.rayleigh_range) ** 2)

    def aperture_transmission(self, z: float, aperture_radius: float) -> float:
        """Fraction of power passing a centred circular aperture at ``z``.

        >>> beam = GaussianBeam(waist=45e-6, wavelength=980e-9)
        >>> 0.0 < beam.aperture_transmission(0.02, 95e-6) < 1.0
        True
        """
        if aperture_radius <= 0:
            raise ValueError(f"aperture radius must be positive: {aperture_radius}")
        w = self.radius_at(z)
        return 1.0 - math.exp(-2.0 * (aperture_radius / w) ** 2)

    def collimated_by(self, new_waist: float) -> "GaussianBeam":
        """Return the beam re-waisted by an ideal lens (e.g. a collimator).

        An ideal micro-lens placed one focal length from the source waist
        produces a new waist at the lens; we model only the resulting
        waist size, which is what the downstream clipping loss depends on.
        The new beam propagates in free space (index 1).
        """
        return GaussianBeam(
            waist=new_waist, wavelength=self.wavelength, refractive_index=1.0
        )

    @staticmethod
    def optimal_waist_for_range(wavelength: float, distance: float) -> float:
        """Waist that minimises beam radius at ``distance`` (confocal choice).

        Setting ``z_R = distance`` minimises ``w(distance)``, giving
        ``w0 = sqrt(lambda * distance / pi)``.  For 980 nm over 2 cm this
        is ~79 µm — the reason the paper's receiver lens (190 µm aperture)
        is about twice the transmitter lens (90 µm).
        """
        if wavelength <= 0 or distance <= 0:
            raise ValueError("wavelength and distance must be positive")
        return math.sqrt(wavelength * distance / math.pi)
