"""Vertical-cavity surface-emitting laser (VCSEL) model.

Table 1 of the paper specifies the transmitter device: 5 µm aperture,
235 Ω / 90 fF parasitics, 0.14 mA threshold, 11:1 extinction ratio, and
0.96 mW drive power (0.48 mA at 2 V).  This module reproduces those
figures from a standard rate-equation-derived small-signal model:

* L-I curve: ``P_opt = eta * (I - I_th)`` above threshold, ~0 below.
* Modulation bandwidth limited by the relaxation oscillation frequency,
  which grows as ``sqrt(I - I_th)``, and by the parasitic RC pole.
* OOK levels: the driver switches between a low current near threshold
  and a high current, giving the specified extinction ratio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.units import FF, UM

__all__ = ["Vcsel"]


@dataclass(frozen=True)
class Vcsel:
    """A directly modulated 980-nm VCSEL.

    Default values reproduce Table 1's transmitter entries.

    Parameters
    ----------
    aperture:
        Emission aperture diameter, meters (sets the emitted beam waist).
    threshold_current:
        Lasing threshold, amperes.
    slope_efficiency:
        Optical power per unit current above threshold, W/A.
    parasitic_resistance, parasitic_capacitance:
        Electrical parasitics of the mesa + pad, ohms and farads.
    bias_current:
        Average drive current during transmission, amperes.
    drive_voltage:
        Forward voltage at the bias point, volts.
    extinction_ratio:
        OOK high/low optical power ratio (11:1 in Table 1).
    d_factor:
        Relaxation-oscillation D-factor, Hz per sqrt(A); sets the
        intrinsic modulation bandwidth.  The default (32 GHz/sqrt(mA)) is
        chosen so the 0.48 mA bias point reaches the 40 Gbps of Table 1 —
        aggressive relative to today's record tunnel-junction VCSELs
        (paper refs [21, 22] demonstrate ~27 GHz relaxation oscillation),
        consistent with the paper's forward-looking device assumptions.
    """

    aperture: float = 5 * UM
    threshold_current: float = 0.14e-3
    slope_efficiency: float = 0.5
    parasitic_resistance: float = 235.0
    parasitic_capacitance: float = 90 * FF
    bias_current: float = 0.48e-3
    drive_voltage: float = 2.0
    extinction_ratio: float = 11.0
    d_factor: float = 32e9 / math.sqrt(1e-3)  # 32 GHz per sqrt(mA)

    def __post_init__(self) -> None:
        if self.bias_current <= self.threshold_current:
            raise ValueError(
                "bias current must exceed threshold for lasing: "
                f"{self.bias_current} <= {self.threshold_current}"
            )
        if self.extinction_ratio <= 1.0:
            raise ValueError(f"extinction ratio must exceed 1: {self.extinction_ratio}")

    # -- static (power) ---------------------------------------------------

    def optical_power(self, current: float) -> float:
        """L-I curve: emitted optical power at ``current``, watts."""
        return max(0.0, self.slope_efficiency * (current - self.threshold_current))

    @property
    def average_optical_power(self) -> float:
        """Mean emitted power at the bias point, watts."""
        return self.optical_power(self.bias_current)

    @property
    def electrical_power(self) -> float:
        """DC electrical drive power (Table 1: 0.96 mW), watts."""
        return self.bias_current * self.drive_voltage

    def ook_levels(self) -> tuple[float, float]:
        """(P1, P0) optical power levels for on-off keying, watts.

        The average equals :attr:`average_optical_power` and the ratio
        equals :attr:`extinction_ratio`:  P1 = 2 r P / (r + 1).
        """
        mean = self.average_optical_power
        r = self.extinction_ratio
        p1 = 2.0 * r * mean / (r + 1.0)
        return p1, p1 / r

    # -- dynamic (bandwidth) ----------------------------------------------

    @property
    def relaxation_oscillation_frequency(self) -> float:
        """Intrinsic small-signal resonance, Hz (grows as sqrt(I - I_th))."""
        return self.d_factor * math.sqrt(self.bias_current - self.threshold_current)

    @property
    def parasitic_pole(self) -> float:
        """RC pole of the parasitics, Hz."""
        rc = self.parasitic_resistance * self.parasitic_capacitance
        return 1.0 / (2.0 * math.pi * rc)

    @property
    def intrinsic_bandwidth(self) -> float:
        """Intrinsic 3-dB bandwidth, Hz (~1.55 f_R for a well-damped laser)."""
        return 1.55 * self.relaxation_oscillation_frequency

    def modulation_bandwidth(self, equalized: bool = True) -> float:
        """3-dB modulation bandwidth, Hz.

        With ``equalized=True`` (the default, matching Table 1's design)
        the laser driver's pre-emphasis cancels the parasitic RC pole —
        the 235 Ohm x 90 fF parasitics alone would cap the link at
        ~7.5 GHz, so the 43 GHz driver must equalize them to reach
        40 Gbps.  With ``equalized=False`` the parasitic pole combines
        with the intrinsic one: ``1/f^2 = 1/f_i^2 + 1/f_p^2``.
        """
        f_intrinsic = self.intrinsic_bandwidth
        if equalized:
            return f_intrinsic
        f_parasitic = self.parasitic_pole
        return 1.0 / math.sqrt(1.0 / f_intrinsic**2 + 1.0 / f_parasitic**2)

    def supports_data_rate(self, bits_per_second: float) -> bool:
        """Whether OOK at ``bits_per_second`` fits in the modulation band.

        The usual engineering rule for NRZ-OOK is a 3-dB bandwidth of at
        least ~0.7x the bit rate.

        >>> Vcsel().supports_data_rate(40e9)
        True
        """
        return self.modulation_bandwidth() >= 0.7 * bits_per_second

    @property
    def beam_waist(self) -> float:
        """Emitted Gaussian beam waist radius, meters (half the aperture)."""
        return self.aperture / 2.0
