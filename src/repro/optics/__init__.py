"""Photonic device and free-space propagation models.

This package is the physical substrate of the FSOI link (paper §3 and
Table 1).  It provides closed-form models — in place of the paper's
DAVINCI device simulations — for:

* :mod:`repro.optics.gaussian` — Gaussian beam propagation and aperture
  clipping, the physics of the free-space hop.
* :mod:`repro.optics.vcsel` — the vertical-cavity surface-emitting laser:
  L-I curve, parasitics, relaxation-oscillation bandwidth, drive power.
* :mod:`repro.optics.photodetector` — resonant-cavity photodiode:
  responsivity, capacitance, RC bandwidth.
* :mod:`repro.optics.lens` / :mod:`repro.optics.mirror` — passive
  micro-optics with per-element transmission.
* :mod:`repro.optics.path` — the composed transmitter-lens → mirrors →
  receiver-lens free-space path and its loss budget.
* :mod:`repro.optics.noise` — receiver noise (thermal + shot), Q factor,
  SNR and BER for on-off keying.

:class:`repro.core.link.OpticalLink` assembles these into the end-to-end
link whose parameters reproduce Table 1, and
:class:`repro.core.layout.ChipLayout` composes per-pair links across the
Figure 1c floorplan.
"""

from repro.optics.gaussian import GaussianBeam
from repro.optics.lens import MicroLens
from repro.optics.mirror import MicroMirror
from repro.optics.noise import ReceiverNoise, ber_from_q, q_from_ber
from repro.optics.path import FreeSpacePath
from repro.optics.photodetector import Photodetector
from repro.optics.vcsel import Vcsel

__all__ = [
    "GaussianBeam",
    "MicroLens",
    "MicroMirror",
    "ReceiverNoise",
    "ber_from_q",
    "q_from_ber",
    "FreeSpacePath",
    "Photodetector",
    "Vcsel",
]
