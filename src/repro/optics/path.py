"""The composed free-space optical path and its loss budget.

One FSOI hop (Figure 2 of the paper) is:

    VCSEL -> GaAs substrate -> transmitter micro-lens (collimation)
          -> micro-mirror bounces across the chip
          -> receiver micro-lens (focusing) -> photodetector

The default geometry reproduces Table 1's *worst case*: a 2 cm diagonal
hop at 980 nm with a 90 µm transmitter lens and a 190 µm receiver lens,
for a total optical path loss of ~2.6 dB.  The dominant term is
diffraction: a beam launched from a 45 µm radius aperture spreads to
~145 µm (1/e²) after 2 cm, so the 95 µm receiver aperture clips ~2.4 dB;
mirror and lens insertion losses make up the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.optics.gaussian import GaussianBeam
from repro.optics.lens import MicroLens
from repro.optics.mirror import MirrorPath
from repro.util.units import CM, NM, SPEED_OF_LIGHT, UM, linear_to_db

__all__ = ["FreeSpacePath"]

GAAS_INDEX = 3.52  # refractive index of GaAs at 980 nm


@dataclass(frozen=True)
class FreeSpacePath:
    """A single transmitter-to-receiver free-space hop.

    Parameters
    ----------
    distance:
        Free-space propagation distance, meters (Table 1: 2 cm for the
        chip-diagonal worst case).
    wavelength:
        Optical wavelength, meters (Table 1: 980 nm).
    tx_lens, rx_lens:
        The collimating and focusing micro-lenses (Table 1: 90 µm and
        190 µm apertures).
    mirrors:
        Mirror-bounce segment of the path.
    substrate_thickness:
        GaAs substrate the back-emitting VCSEL shines through before the
        transmitter lens, meters (paper §4.2: 430 µm).
    source_waist:
        Beam waist radius at the VCSEL aperture, meters.
    launch_efficiency:
        Mode-match / residual-clipping efficiency of collimation at the
        transmitter (beam tails lost at the collimator when the lens is
        filled).
    fill_factor:
        Fraction of the transmitter lens radius used as the collimated
        beam waist.
    """

    distance: float = 2 * CM
    wavelength: float = 980 * NM
    tx_lens: MicroLens = field(default_factory=lambda: MicroLens(aperture=90 * UM, transmission=0.995))
    rx_lens: MicroLens = field(default_factory=lambda: MicroLens(aperture=190 * UM, transmission=0.995))
    mirrors: MirrorPath = field(default_factory=MirrorPath)
    substrate_thickness: float = 430 * UM
    source_waist: float = 2.5 * UM
    launch_efficiency: float = 0.98
    fill_factor: float = 1.0

    def source_beam(self) -> GaussianBeam:
        """The diverging beam inside the GaAs substrate."""
        return GaussianBeam(
            waist=self.source_waist,
            wavelength=self.wavelength,
            refractive_index=GAAS_INDEX,
        )

    def collimated_beam(self) -> GaussianBeam:
        """The beam after the transmitter lens, propagating in free space."""
        return self.tx_lens.collimate(self.source_beam(), self.fill_factor)

    # -- loss budget ------------------------------------------------------

    def substrate_clip(self) -> float:
        """Power fraction surviving the transmitter lens aperture."""
        return self.source_beam().aperture_transmission(
            self.substrate_thickness, self.tx_lens.radius
        )

    def receiver_clip(self) -> float:
        """Power fraction of the spread beam caught by the receiver lens."""
        return self.collimated_beam().aperture_transmission(
            self.distance, self.rx_lens.radius
        )

    def transmission(self) -> float:
        """End-to-end power fraction delivered to the photodetector.

        Combines substrate-side clipping, transmitter lens insertion loss
        and launch efficiency, mirror bounces, receiver-side clipping and
        receiver lens insertion loss.
        """
        return (
            self.substrate_clip()
            * self.tx_lens.transmission
            * self.launch_efficiency
            * self.mirrors.transmission
            * self.receiver_clip()
            * self.rx_lens.transmission
        )

    def loss_db(self) -> float:
        """Total optical path loss in dB (Table 1: 2.6 dB).

        >>> 2.0 < FreeSpacePath().loss_db() < 3.2
        True
        """
        return -linear_to_db(self.transmission())

    # -- timing -----------------------------------------------------------

    def propagation_delay(self) -> float:
        """Time of flight over the free-space hop, seconds (~67 ps at 2 cm)."""
        return self.distance / SPEED_OF_LIGHT

    def skew_versus(self, other: "FreeSpacePath") -> float:
        """Path-delay difference against another hop, seconds.

        The paper pads the faster paths with extra serializer bits and
        digital delay lines so the chip stays synchronous (§4.2 fn. 2);
        this is the skew those delay lines must absorb.
        """
        return abs(self.propagation_delay() - other.propagation_delay())

    def loss_budget(self) -> dict[str, float]:
        """Per-component loss in dB, for reporting Table 1's budget."""
        return {
            "substrate_clip_db": -linear_to_db(self.substrate_clip()),
            "tx_lens_db": -linear_to_db(self.tx_lens.transmission),
            "launch_db": -linear_to_db(self.launch_efficiency),
            "mirrors_db": -linear_to_db(self.mirrors.transmission),
            "receiver_clip_db": -linear_to_db(self.receiver_clip()),
            "rx_lens_db": -linear_to_db(self.rx_lens.transmission),
            "total_db": self.loss_db(),
        }
