"""Resonant-cavity photodetector model.

The paper's receivers are GaAs resonant-cavity photodiodes fabricated on
the same substrate as the VCSELs (§3.1, refs [24, 25]); Table 1 gives a
responsivity of 0.5 A/W and a capacitance of 100 fF.  The photodiode's
RC time constant with the transimpedance amplifier's input resistance
sets the front-end bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.units import FF, UM

__all__ = ["Photodetector"]

ELECTRON_CHARGE = 1.602_176_634e-19  # coulombs


@dataclass(frozen=True)
class Photodetector:
    """A resonant-cavity-enhanced photodiode.

    Defaults reproduce Table 1's receiver entries.

    Parameters
    ----------
    responsivity:
        Photocurrent per received optical power, A/W.
    capacitance:
        Junction + pad capacitance, farads.
    diameter:
        Active-area diameter, meters; must be large enough to catch the
        focused spot from the receiving micro-lens.
    dark_current:
        Reverse-bias dark current, amperes (small; contributes shot noise).
    """

    responsivity: float = 0.5
    capacitance: float = 100 * FF
    diameter: float = 20 * UM
    dark_current: float = 10e-9

    def __post_init__(self) -> None:
        if not 0 < self.responsivity <= 1.3:
            # Beyond ~1.26 A/W at 980 nm would exceed unity quantum efficiency.
            raise ValueError(f"unphysical responsivity: {self.responsivity}")
        if self.capacitance <= 0:
            raise ValueError(f"capacitance must be positive: {self.capacitance}")

    def photocurrent(self, optical_power: float) -> float:
        """Signal current for ``optical_power`` watts, amperes."""
        if optical_power < 0:
            raise ValueError(f"negative optical power: {optical_power}")
        return self.responsivity * optical_power + self.dark_current

    def quantum_efficiency(self, wavelength: float) -> float:
        """Fraction of photons converted to carriers at ``wavelength``.

        eta = R * h * c / (q * lambda).
        """
        h = 6.626_070_15e-34
        c = 299_792_458.0
        return self.responsivity * h * c / (ELECTRON_CHARGE * wavelength)

    def rc_bandwidth(self, load_resistance: float) -> float:
        """Front-end RC 3-dB bandwidth into ``load_resistance``, Hz."""
        if load_resistance <= 0:
            raise ValueError(f"load resistance must be positive: {load_resistance}")
        return 1.0 / (2.0 * math.pi * load_resistance * self.capacitance)

    def shot_noise_sigma(self, photocurrent: float, bandwidth: float) -> float:
        """RMS shot-noise current for a given signal level, amperes."""
        if photocurrent < 0 or bandwidth <= 0:
            raise ValueError("photocurrent must be >= 0 and bandwidth > 0")
        return math.sqrt(2.0 * ELECTRON_CHARGE * photocurrent * bandwidth)
