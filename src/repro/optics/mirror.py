"""Micro-mirror model.

Fixed micro-mirrors fabricated on silicon or polymer by micro-molding
(paper §3.2) fold the free-space optical path above the chip so any
transmitter can reach any receiver.  Each reflection costs a small loss
(metallic or dielectric coating reflectivity).  The paper needs at most
``n^2`` fixed mirrors for ``n`` nodes; a typical cross-chip path bounces
off two mirrors (up from the transmitter, across, down to the receiver).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MicroMirror", "MirrorPath"]


@dataclass(frozen=True)
class MicroMirror:
    """A fixed, flat micro-mirror.

    Parameters
    ----------
    reflectivity:
        Power reflectivity per bounce (protected-gold or dielectric
        coatings reach 0.98-0.995 at 980 nm).
    """

    reflectivity: float = 0.99

    def __post_init__(self) -> None:
        if not 0 < self.reflectivity <= 1:
            raise ValueError(f"reflectivity must be in (0, 1]: {self.reflectivity}")


@dataclass(frozen=True)
class MirrorPath:
    """A sequence of mirror bounces along one free-space hop."""

    mirror: MicroMirror = MicroMirror()
    bounces: int = 2

    def __post_init__(self) -> None:
        if self.bounces < 0:
            raise ValueError(f"negative bounce count: {self.bounces}")

    @property
    def transmission(self) -> float:
        """Total power fraction surviving all bounces.

        >>> MirrorPath(MicroMirror(0.99), bounces=2).transmission
        0.9801
        """
        return self.mirror.reflectivity**self.bounces
