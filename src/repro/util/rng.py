"""Deterministic, named random-number streams.

Every stochastic decision in the reproduction (packet destinations,
back-off slot choices, workload generation, Monte-Carlo sampling) draws
from a *named stream* derived from a single experiment seed.  Two runs
with the same seed therefore produce identical results regardless of the
order in which subsystems are constructed, and changing one subsystem's
draw pattern does not perturb any other subsystem.

The derivation uses SHA-256 over ``(root_seed, name)`` so stream seeds are
statistically independent and stable across Python versions (unlike
``hash()``, which is salted per process).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "RngHub"]

_MASK_63 = (1 << 63) - 1


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 63-bit child seed from ``root_seed`` and ``name``.

    >>> derive_seed(42, "backoff") == derive_seed(42, "backoff")
    True
    >>> derive_seed(42, "backoff") != derive_seed(42, "traffic")
    True
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & _MASK_63


class RngHub:
    """A factory of independent named :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    root_seed:
        The experiment-level seed.  All streams are derived from it.

    Examples
    --------
    >>> hub = RngHub(7)
    >>> a = hub.stream("node0.backoff")
    >>> b = hub.stream("node1.backoff")
    >>> a is hub.stream("node0.backoff")   # streams are cached
    True
    >>> float(a.random()) != float(b.random())
    True
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(derive_seed(self.root_seed, name))
            self._streams[name] = generator
        return generator

    def child(self, name: str) -> "RngHub":
        """Return a hub whose streams are all namespaced under ``name``.

        Useful for handing a subsystem its own private seed space.
        """
        return RngHub(derive_seed(self.root_seed, f"child:{name}"))

    def __repr__(self) -> str:
        return f"RngHub(root_seed={self.root_seed}, streams={len(self._streams)})"
