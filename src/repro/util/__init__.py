"""Simulation kernel utilities shared by every subsystem.

This package provides the small, dependency-free substrate the rest of the
reproduction is built on:

* :mod:`repro.util.rng` — named, seeded random-number streams so that every
  experiment is reproducible bit-for-bit.
* :mod:`repro.util.events` — a discrete-event scheduler plus a cycle-driven
  clock abstraction used by the network and CMP simulators.
* :mod:`repro.util.stats` — counters, histograms and latency accumulators
  used for all reported metrics.
* :mod:`repro.util.units` — physical-unit helpers (dB, dBm, data rates) for
  the photonics models.
"""

from repro.util.events import Event, EventQueue, Simulator
from repro.util.rng import RngHub, derive_seed
from repro.util.stats import Counter, Histogram, LatencyStat, StatGroup

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "RngHub",
    "derive_seed",
    "Counter",
    "Histogram",
    "LatencyStat",
    "StatGroup",
]
