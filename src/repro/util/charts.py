"""Terminal-friendly charts for benchmark and example output.

The benchmark harness prints the paper's figures as text; these helpers
render the shapes (grouped bars for the speedup figures, line series
for sweeps, heatmaps for traffic matrices) so the output reads like the
figure, not just its data.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["bar_chart", "grouped_bars", "series", "sparkline", "heatmap"]

_BLOCKS = " ▏▎▍▌▋▊▉█"
_SHADES = " ░▒▓█"
_SPARKS = " ▁▂▃▄▅▆▇█"


def _bar(value: float, maximum: float, width: int) -> str:
    """A horizontal bar of fractional-block resolution."""
    if maximum <= 0:
        return ""
    filled = max(0.0, value / maximum) * width
    whole = int(filled)
    remainder = int((filled - whole) * (len(_BLOCKS) - 1))
    bar = "█" * whole
    if remainder and whole < width:
        bar += _BLOCKS[remainder]
    return bar


def bar_chart(
    data: Mapping[str, float],
    width: int = 40,
    title: str = "",
    fmt: str = "{:.2f}",
) -> str:
    """One bar per key, scaled to the maximum value.

    >>> print(bar_chart({"a": 2.0, "b": 1.0}, width=4, title="t"))
    t
    a  ████ 2.00
    b  ██ 1.00
    """
    if not data:
        raise ValueError("no data to chart")
    label_width = max(len(k) for k in data)
    maximum = max(data.values())
    lines = [title] if title else []
    for key, value in data.items():
        lines.append(
            f"{key:<{label_width}}  {_bar(value, maximum, width)} "
            + fmt.format(value)
        )
    return "\n".join(lines)


def grouped_bars(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 30,
    title: str = "",
    fmt: str = "{:.2f}",
) -> str:
    """Figure-6b style: for each group (app), one bar per series (network)."""
    if not groups:
        raise ValueError("no data to chart")
    series_names = list(next(iter(groups.values())))
    maximum = max(
        value for bars in groups.values() for value in bars.values()
    )
    label_width = max(
        max(len(g) for g in groups), max(len(s) for s in series_names)
    )
    lines = [title] if title else []
    for group, bars in groups.items():
        lines.append(f"{group}:")
        for name in series_names:
            value = bars[name]
            lines.append(
                f"  {name:<{label_width}} {_bar(value, maximum, width)} "
                + fmt.format(value)
            )
    return "\n".join(lines)


def series(
    xs: Sequence[float],
    ys: Mapping[str, Sequence[float]],
    height: int = 10,
    width: int = 60,
    title: str = "",
) -> str:
    """A multi-line scatter/line plot on a character grid."""
    if not ys or not xs:
        raise ValueError("no data to chart")
    for name, values in ys.items():
        if len(values) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")
    lo_x, hi_x = min(xs), max(xs)
    all_y = [v for values in ys.values() for v in values]
    lo_y, hi_y = min(all_y), max(all_y)
    span_x = (hi_x - lo_x) or 1.0
    span_y = (hi_y - lo_y) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@"
    for index, (name, values) in enumerate(ys.items()):
        mark = markers[index % len(markers)]
        for x, y in zip(xs, values):
            col = int((x - lo_x) / span_x * (width - 1))
            row = height - 1 - int((y - lo_y) / span_y * (height - 1))
            grid[row][col] = mark
    lines = [title] if title else []
    lines.append(f"{hi_y:8.3g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 8 + " │" + "".join(row))
    lines.append(f"{lo_y:8.3g} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + f"{lo_x:<.3g}" + " " * (width - 12) + f"{hi_x:>.3g}")
    legend = "   ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(ys)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def sparkline(
    values: Sequence[float],
    width: int = 40,
    maximum: float | None = None,
) -> str:
    """A one-line vertical-block sparkline of a numeric series.

    Longer series are bucketed down to ``width`` cells (bucket mean);
    shorter ones render one cell per value.  Values scale against
    ``maximum`` (default: the series max); negatives clamp to the
    baseline block, which suits the timeline's per-window deltas
    (counters never go down, gauges rarely dip below zero).

    >>> sparkline([0, 1, 2, 3], width=4)
    ' ▂▅█'
    """
    if not values:
        raise ValueError("no data to chart")
    if width < 1:
        raise ValueError(f"sparkline width must be >= 1: {width}")
    vals = [float(v) for v in values]
    if len(vals) > width:
        bucketed = []
        for cell in range(width):
            lo = cell * len(vals) // width
            hi = max(lo + 1, (cell + 1) * len(vals) // width)
            bucketed.append(sum(vals[lo:hi]) / (hi - lo))
        vals = bucketed
    top = max(vals) if maximum is None else float(maximum)
    if top <= 0:
        return _SPARKS[0] * len(vals)
    steps = len(_SPARKS) - 1
    return "".join(
        _SPARKS[min(steps, int(max(0.0, v) / top * steps))] for v in vals
    )


def heatmap(matrix: Sequence[Sequence[float]], title: str = "") -> str:
    """A shaded-block rendering of e.g. a traffic matrix."""
    if not matrix or not matrix[0]:
        raise ValueError("no data to chart")
    maximum = max(max(row) for row in matrix) or 1.0
    lines = [title] if title else []
    for row in matrix:
        cells = []
        for value in row:
            shade = int(value / maximum * (len(_SHADES) - 1))
            cells.append(_SHADES[shade] * 2)
        lines.append("".join(cells))
    return "\n".join(lines)
