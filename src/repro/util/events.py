"""Discrete-event scheduler and cycle-driven clock.

The reproduction uses a hybrid simulation style, mirroring the paper's
simulator ("all memory transactions are modeled using an event-driven
framework"):

* **Events** model long-latency asynchronous activities — memory channel
  completions, directory timeouts, confirmation arrivals.
* **Clocked components** (network routers, FSOI lanes, cores) register a
  per-cycle ``tick`` callback; the simulator advances one processor cycle
  at a time, firing due events first, then ticking every clocked component
  in registration order.

Determinism: events scheduled for the same cycle fire in insertion order
(a monotone sequence number breaks heap ties), and clocked components tick
in registration order, so a run is a pure function of (config, seed).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Protocol

__all__ = ["CycleCalendar", "Event", "EventQueue", "Clocked", "Simulator"]


class CycleCalendar:
    """A heap-backed ``(cycle, action)`` calendar for the tick loops.

    The simulator's hot loops used to keep ``dict[int, list]`` calendars
    popped at every cycle; the dict made "earliest pending cycle" an O(n)
    scan, which the fast-forward engine needs at every step.  This class
    is the lean replacement: a binary heap of ``(cycle, seq, action)``
    tuples, where the monotone ``seq`` preserves insertion order within
    a cycle — actions due at the same cycle run exactly as the dict ran
    them.  Unlike :class:`EventQueue` there are no cancellable handles
    and no per-event objects; the entries are bare tuples.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        # The heap list is created once and only ever mutated in place,
        # so an owner on a per-cycle path may cache a reference to it
        # and guard `run_due` behind `heap and heap[0][0] <= cycle` —
        # the guard is several times cheaper than the call it saves.
        self._heap: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(self, cycle: int, action: Callable[[], None]) -> None:
        """File ``action`` to run at ``cycle``."""
        self._seq += 1
        heapq.heappush(self._heap, (cycle, self._seq, action))

    def next_cycle(self) -> int | None:
        """Earliest pending cycle, or ``None`` when empty — O(1)."""
        return self._heap[0][0] if self._heap else None

    def run_due(self, cycle: int) -> None:
        """Run every action due at or before ``cycle``, in (cycle, seq)
        order.  Actions scheduled *during* the sweep at a due cycle run
        in the same sweep (the callers all schedule strictly forward)."""
        heap = self._heap
        while heap and heap[0][0] <= cycle:
            heapq.heappop(heap)[2]()


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by ``(time, seq)``."""

    time: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing (it stays in the heap lazily)."""
        self.cancelled = True


class EventQueue:
    """A binary-heap event queue with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: int, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run at ``time``; returns a cancellable handle."""
        if time < 0:
            raise ValueError(f"cannot schedule event in negative time: {time}")
        event = Event(time=int(time), seq=self._seq, action=action)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def next_time(self) -> int | None:
        """Time of the earliest pending (non-cancelled) event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def pop_due(self, now: int) -> list[Event]:
        """Remove and return all events due at or before ``now``, in order."""
        due: list[Event] = []
        while self._heap and self._heap[0].time <= now:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                due.append(event)
        return due


class Clocked(Protocol):
    """Anything with a per-cycle ``tick``.  Registered on a :class:`Simulator`."""

    def tick(self, cycle: int) -> None:  # pragma: no cover - protocol
        ...


class Simulator:
    """The top-level simulation loop.

    Combines an event queue with a list of clocked components.  Each cycle:

    1. fire all events scheduled for this cycle (insertion order), then
    2. call ``tick(cycle)`` on every registered component (registration
       order).

    The loop stops at ``run(until)`` or when :meth:`stop` is called from
    inside a callback (the current cycle still completes).
    """

    def __init__(self) -> None:
        self.cycle = 0
        self.events = EventQueue()
        self._clocked: list[Clocked] = []
        self._stop_requested = False

    # -- registration ---------------------------------------------------

    def add_clocked(self, component: Clocked) -> None:
        """Register a component whose ``tick`` runs every cycle."""
        self._clocked.append(component)

    def schedule_in(self, delay: int, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.events.schedule(self.cycle + delay, action)

    def schedule_at(self, time: int, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at an absolute cycle ``time`` (>= now)."""
        if time < self.cycle:
            raise ValueError(f"cannot schedule in the past: {time} < {self.cycle}")
        return self.events.schedule(time, action)

    # -- control --------------------------------------------------------

    def stop(self) -> None:
        """Request the run loop to stop after the current cycle."""
        self._stop_requested = True

    def step(self) -> None:
        """Advance exactly one cycle."""
        for event in self.events.pop_due(self.cycle):
            event.action()
        for component in self._clocked:
            component.tick(self.cycle)
        self.cycle += 1

    def run(self, until: int) -> int:
        """Run until cycle ``until`` (exclusive) or :meth:`stop`.

        Returns the cycle at which the run stopped.
        """
        self._stop_requested = False
        while self.cycle < until and not self._stop_requested:
            self.step()
        return self.cycle
