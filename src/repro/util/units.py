"""Physical-unit helpers for the photonics and power models.

Conventions used throughout :mod:`repro.optics` and :mod:`repro.power`:

* lengths in **meters**, areas in m².
* optical power in **watts** (helpers convert to/from dBm).
* loss/gain ratios as linear factors (helpers convert to/from dB).
* currents in amperes, voltages in volts, energy in joules.
"""

from __future__ import annotations

import math

__all__ = [
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "UM",
    "NM",
    "MM",
    "CM",
    "GHZ",
    "GBPS",
    "MW",
    "FF",
    "PS",
    "SPEED_OF_LIGHT",
]

# Scale factors: multiply a value in the named unit to obtain SI.
UM = 1e-6     # micrometers -> meters
NM = 1e-9     # nanometers -> meters
MM = 1e-3     # millimeters -> meters
CM = 1e-2     # centimeters -> meters
GHZ = 1e9     # gigahertz -> hertz
GBPS = 1e9    # gigabits/s -> bits/s
MW = 1e-3     # milliwatts -> watts
FF = 1e-15    # femtofarads -> farads
PS = 1e-12    # picoseconds -> seconds

SPEED_OF_LIGHT = 299_792_458.0  # m/s, in vacuum


def db_to_linear(db: float) -> float:
    """Convert a dB power ratio to a linear factor.

    >>> round(db_to_linear(3.0103), 3)
    2.0
    """
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB.  Requires ``ratio > 0``."""
    if ratio <= 0:
        raise ValueError(f"dB of non-positive ratio: {ratio}")
    return 10.0 * math.log10(ratio)


def dbm_to_watts(dbm: float) -> float:
    """Convert dBm to watts.

    >>> dbm_to_watts(0.0)
    0.001
    """
    return 1e-3 * db_to_linear(dbm)


def watts_to_dbm(watts: float) -> float:
    """Convert watts to dBm.  Requires ``watts > 0``."""
    if watts <= 0:
        raise ValueError(f"dBm of non-positive power: {watts}")
    return linear_to_db(watts / 1e-3)
