"""Statistics primitives used for every reported metric.

The paper reports packet latencies broken into components (queuing,
scheduling, network, collision resolution), collision rates, energy and
speedups.  All of those are accumulated with the three primitives here:

* :class:`Counter` — a named monotonically increasing count.
* :class:`LatencyStat` — mean/min/max/percentile accumulator for samples.
* :class:`Histogram` — fixed-bin histogram (used e.g. for Figure 5's
  reply-latency distribution).

:class:`StatGroup` is a lightweight registry so subsystems can expose all
of their stats as one nested, printable dictionary.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["Counter", "LatencyStat", "Histogram", "StatGroup", "geometric_mean"]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; the paper's speedup aggregation.

    >>> round(geometric_mean([1.0, 4.0]), 3)
    2.0
    """
    values = list(values)
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


class Counter:
    """A named event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class LatencyStat:
    """Accumulates scalar samples; reports count/mean/min/max/percentiles.

    Samples are kept (as floats) so percentiles are exact; the experiments
    here record at most a few hundred thousand samples per run.
    """

    __slots__ = ("name", "samples", "_sorted")

    def __init__(self, name: str):
        self.name = name
        self.samples: list[float] = []
        self._sorted: list[float] | None = None

    def record(self, value: float) -> None:
        value = float(value)
        if value != value:  # NaN check without a math-module call
            raise ValueError(f"{self.name}: cannot record NaN")
        self.samples.append(value)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return self.total / len(self.samples) if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile; ``q`` in [0, 100].

        An out-of-range ``q`` raises even when no samples were recorded
        (a bad quantile is a caller bug regardless of sample count).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q}")
        if not self.samples:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self.samples)
        rank = max(0, math.ceil(q / 100.0 * len(self._sorted)) - 1)
        return self._sorted[rank]

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": self.maximum,
        }

    def __repr__(self) -> str:
        return f"LatencyStat({self.name}: n={self.count}, mean={self.mean:.2f})"


class Histogram:
    """Fixed-width-bin histogram with an overflow bin.

    Parameters
    ----------
    lo, hi:
        Range covered by the regular bins.
    nbins:
        Number of regular bins; samples >= ``hi`` land in the overflow
        bin, samples < ``lo`` in bin 0 (clamped).
    """

    def __init__(self, name: str, lo: float, hi: float, nbins: int):
        if hi <= lo:
            raise ValueError("hi must exceed lo")
        if nbins < 1:
            raise ValueError("need at least one bin")
        self.name = name
        self.lo = float(lo)
        self.hi = float(hi)
        self.nbins = int(nbins)
        self.bins = [0] * (self.nbins + 1)  # last bin = overflow
        self.count = 0

    @property
    def bin_width(self) -> float:
        return (self.hi - self.lo) / self.nbins

    def record(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError(f"{self.name}: cannot record NaN")
        self.count += 1
        if value >= self.hi:
            self.bins[self.nbins] += 1
            return
        # Float division can round a value just below ``hi`` up to index
        # ``nbins``; clamp to keep every in-range sample in a regular bin.
        index = int((value - self.lo) / self.bin_width)
        self.bins[min(self.nbins - 1, max(0, index))] += 1

    def fractions(self) -> list[float]:
        """Per-bin fraction of all samples (sums to 1 when count > 0)."""
        if self.count == 0:
            return [0.0] * len(self.bins)
        return [b / self.count for b in self.bins]

    def edges(self) -> list[float]:
        """Left edges of the regular bins (overflow bin starts at ``hi``)."""
        return [self.lo + i * self.bin_width for i in range(self.nbins)] + [self.hi]

    def mode_fraction(self) -> float:
        """Fraction of samples in the most populated bin."""
        return max(self.fractions())

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count})"


class StatGroup:
    """A registry of named stats, nestable, rendered as plain dicts."""

    def __init__(self, name: str):
        self.name = name
        self._counters: dict[str, Counter] = {}
        self._latencies: dict[str, LatencyStat] = {}
        self._histograms: dict[str, Histogram] = {}
        self._children: dict[str, "StatGroup"] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def latency(self, name: str) -> LatencyStat:
        if name not in self._latencies:
            self._latencies[name] = LatencyStat(name)
        return self._latencies[name]

    def histogram(self, name: str, lo: float, hi: float, nbins: int) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, lo, hi, nbins)
        return self._histograms[name]

    def group(self, name: str) -> "StatGroup":
        if name not in self._children:
            self._children[name] = StatGroup(name)
        return self._children[name]

    def as_dict(self) -> dict:
        out: dict = {}
        for key, counter in self._counters.items():
            out[key] = counter.value
        for key, lat in self._latencies.items():
            out[key] = lat.summary()
        for key, hist in self._histograms.items():
            out[key] = {"count": hist.count, "fractions": hist.fractions()}
        for key, child in self._children.items():
            out[key] = child.as_dict()
        return out

    def __repr__(self) -> str:
        return f"StatGroup({self.name})"
