"""Set-associative cache array with LRU replacement.

Tracks *which lines are resident* (tags only — the reproduction never
needs line contents); the coherence controllers own the protocol state.
Table 3's L1 D-cache is 8 KB 2-way with 32 B lines (deliberately scaled
down, following the paper's §6 note, to mimic realistic miss rates),
i.e. 128 sets x 2 ways.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["CacheArray"]


@dataclass(slots=True)
class _Way:
    line: int
    last_use: int


class CacheArray:
    """Tag array: residency + LRU victims.

    Parameters
    ----------
    num_sets, ways:
        Geometry; a line maps to set ``line % num_sets``.
    is_evictable:
        Optional predicate consulted before choosing a victim — lines in
        transient coherence states must not be evicted (their MSHR
        holds them); the controller passes its own check here.
    """

    def __init__(
        self,
        num_sets: int,
        ways: int,
        is_evictable: Optional[Callable[[int], bool]] = None,
    ):
        if num_sets < 1 or ways < 1:
            raise ValueError("cache geometry must be positive")
        self.num_sets = num_sets
        self.ways = ways
        self.is_evictable = is_evictable or (lambda line: True)
        self._sets: list[list[_Way]] = [[] for _ in range(num_sets)]
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @classmethod
    def from_geometry(cls, capacity_bytes: int, line_bytes: int, ways: int,
                      is_evictable: Optional[Callable[[int], bool]] = None
                      ) -> "CacheArray":
        """Build from capacity/line-size/associativity (e.g. 8 KB, 32 B, 2).

        >>> CacheArray.from_geometry(8192, 32, 2).num_sets
        128
        """
        lines = capacity_bytes // line_bytes
        if lines % ways != 0:
            raise ValueError("capacity not divisible into sets")
        return cls(lines // ways, ways, is_evictable)

    def _set_of(self, line: int) -> list[_Way]:
        return self._sets[line % self.num_sets]

    def contains(self, line: int) -> bool:
        return any(w.line == line for w in self._set_of(line))

    def touch(self, line: int) -> bool:
        """Record a use; returns True on hit (and updates LRU)."""
        self._clock += 1
        for way in self._set_of(line):
            if way.line == line:
                way.last_use = self._clock
                self.hits += 1
                return True
        self.misses += 1
        return False

    def insert(self, line: int) -> Optional[int]:
        """Insert ``line``; returns the evicted victim line, if any.

        If the set is full of un-evictable lines, raises — callers must
        size MSHRs below associativity pressure or pre-check.
        """
        self._clock = clock = self._clock + 1
        target = self._sets[line % self.num_sets]
        for way in target:
            if way.line == line:  # already resident (refill race)
                way.last_use = clock
                return None
        if len(target) < self.ways:
            target.append(_Way(line, clock))
            return None
        # Pick the least-recently-used evictable way with a plain scan:
        # sets are tiny (2 ways in Table 3's geometry), so a listcomp
        # plus min(key=...) costs more than it saves.  last_use values
        # are unique (the clock is monotone), so "first strictly
        # smaller" picks the same way min() would.
        is_evictable = self.is_evictable
        victim = None
        for way in target:
            if is_evictable(way.line) and (
                victim is None or way.last_use < victim.last_use
            ):
                victim = way
        if victim is None:
            raise RuntimeError(
                f"no evictable way in set {line % self.num_sets}; "
                "too many transient lines in one set"
            )
        target.remove(victim)
        target.append(_Way(line, clock))
        self.evictions += 1
        return victim.line

    def remove(self, line: int) -> bool:
        """Drop ``line`` (external invalidation); True if it was present."""
        target = self._set_of(line)
        for way in target:
            if way.line == line:
                target.remove(way)
                return True
        return False

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def resident_lines(self) -> list[int]:
        return [w.line for s in self._sets for w in s]
