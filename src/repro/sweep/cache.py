"""Content-addressed on-disk cache of sweep results.

A cached entry is keyed by ``sha256(canonical-JSON(point) + code
version)``: the *full* experiment configuration — every axis value,
optimization flag and extra ``CmpConfig`` kwarg — plus a *code-version
tag* that defaults to a hash of the ``repro`` package sources.  Editing
any simulator source therefore invalidates every cached result
automatically, while re-running an identical sweep (or resuming an
interrupted one) recomputes nothing that already finished.

Entries are one JSON file each, fanned out over 256 subdirectories by
key prefix, and written atomically (temp file + ``os.replace``) so an
interrupted sweep never leaves a truncated entry behind.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Optional

from repro.sweep.spec import SweepPoint, canonical_json

__all__ = ["ResultCache", "code_version", "point_key"]

_code_version_cache: dict[str, str] = {}


def code_version() -> str:
    """A 12-hex tag identifying the current ``repro`` source tree.

    SHA-256 over the contents of every ``*.py`` file in the installed
    ``repro`` package, in sorted path order.  Any source edit changes
    the tag, invalidating all previously cached results.
    """
    import repro

    root = Path(repro.__file__).parent
    key = str(root)
    cached = _code_version_cache.get(key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    tag = digest.hexdigest()[:12]
    _code_version_cache[key] = tag
    return tag


def point_key(point: SweepPoint, version: Optional[str] = None) -> str:
    """The content-addressed cache key of ``point``."""
    payload = canonical_json(point.to_dict()) + "\0" + (version or code_version())
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:40]


class ResultCache:
    """On-disk result store for sweep points.

    Parameters
    ----------
    root:
        Cache directory (created on first write).
    version:
        Code-version tag folded into every key; defaults to
        :func:`code_version`.  Pass a fixed string to pin a cache
        across code changes (e.g. for golden-result storage).
    """

    def __init__(self, root, version: Optional[str] = None):
        self.root = Path(root)
        self.version = version or code_version()
        self.hits = 0
        self.misses = 0

    def key(self, point: SweepPoint) -> str:
        return point_key(point, self.version)

    def path_for(self, point: SweepPoint) -> Path:
        key = self.key(point)
        return self.root / key[:2] / f"{key}.json"

    def get(self, point: SweepPoint) -> Optional[dict]:
        """The cached result dict for ``point``, or None."""
        path = self.path_for(point)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return entry["result"]

    def put(self, point: SweepPoint, result: dict, elapsed: float = 0.0) -> Path:
        """Store ``result`` (a ``CmpResults.to_dict()``-style dict)."""
        path = self.path_for(point)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "code_version": self.version,
            "elapsed_seconds": round(float(elapsed), 6),
            "point": point.to_dict(),
            "result": result,
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as handle:
            handle.write(canonical_json(entry))
        os.replace(tmp, path)
        return path

    def __contains__(self, point: SweepPoint) -> bool:
        return self.path_for(point).exists()

    def entries(self) -> int:
        """Number of cached results on disk (any code version)."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.json"):
            path.unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache(root={str(self.root)!r}, version={self.version!r}, "
            f"hits={self.hits}, misses={self.misses})"
        )


def _normalized(result: Any) -> dict:
    """Round-trip a result dict through canonical JSON.

    Guarantees the dict a caller sees is identical whether it was just
    computed (and may still hold numpy scalars or tuples) or re-loaded
    from the cache — the basis of the cold-vs-cached determinism
    guarantee.
    """
    return json.loads(canonical_json(result))
