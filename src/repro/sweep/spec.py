"""Declarative sweep specifications.

Every figure and table of the paper is a sweep over
(application x network x node count x seed x optimization) points; a
:class:`SweepSpec` names those axes once and expands to the cartesian
grid of :class:`SweepPoint` s.  A point is the *unit of work* of the
sweep engine: it serializes to a canonical JSON dict (the basis of the
on-disk cache key, see :mod:`repro.sweep.cache`), reconstructs the
exact :class:`repro.cmp.CmpConfig` it describes, and is cheap to ship
to a worker process.

Beyond the regular axes, a point can carry a :class:`Variant` — a
labelled bundle of extra ``CmpConfig`` keyword arguments (narrower
FSOI lanes, scaled mesh links, memory bandwidth, ...) used by the
sensitivity studies (Figure 11, Table 4).  Variant values are stored
in their JSON encoding so points stay hashable and canonical.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence, Union

from repro.cmp.system import NETWORK_KINDS, CmpConfig
from repro.core.lanes import LaneConfig
from repro.core.optimizations import OptimizationConfig
from repro.faults.plan import FaultPlan
from repro.workloads import APPLICATIONS

__all__ = [
    "OPTIMIZATION_FLAGS",
    "SweepPoint",
    "SweepSpec",
    "Variant",
    "canonical_json",
    "make_point",
]

#: The five independently switchable §5 mechanisms, in field order.
OPTIMIZATION_FLAGS = tuple(
    f.name for f in dataclasses.fields(OptimizationConfig)
)

#: ``CmpConfig`` keyword arguments that arrive as dataclasses and must
#: be rebuilt from their JSON dict form inside a worker process.
_EXTRA_DECODERS = {
    "fsoi_lanes": lambda data: LaneConfig(**data),
    "faults": FaultPlan.from_dict,
}


def _json_default(value: Any):
    """JSON fallback for numpy scalars/arrays leaking out of results."""
    import numpy as np

    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serializable: {value!r} ({type(value).__name__})")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, stable floats."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=_json_default
    )


def _normalize_optimizations(
    spec: Union[None, str, OptimizationConfig, Iterable[str]]
) -> tuple[str, ...]:
    """Normalize any optimization description to a sorted flag tuple."""
    if spec is None:
        return ()
    if isinstance(spec, OptimizationConfig):
        return tuple(
            sorted(name for name in OPTIMIZATION_FLAGS if getattr(spec, name))
        )
    if isinstance(spec, str):
        if spec == "none":
            return ()
        if spec == "all":
            return tuple(sorted(OPTIMIZATION_FLAGS))
        spec = [part for part in spec.split(",") if part]
    flags = tuple(sorted(set(spec)))
    unknown = [name for name in flags if name not in OPTIMIZATION_FLAGS]
    if unknown:
        raise ValueError(
            f"unknown optimization flags {unknown}; "
            f"choose from {sorted(OPTIMIZATION_FLAGS)}"
        )
    return flags


def _encode_extra(key: str, value: Any) -> str:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        if key not in _EXTRA_DECODERS:
            raise ValueError(
                f"config kwarg {key!r} is a dataclass the sweep engine "
                "cannot rebuild in a worker; supported dataclass kwargs: "
                f"{sorted(_EXTRA_DECODERS)}"
            )
        value = dataclasses.asdict(value)
    return canonical_json(value)


def _encode_extras(kwargs: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(
        (key, _encode_extra(key, kwargs[key])) for key in sorted(kwargs)
    )


@dataclass(frozen=True)
class Variant:
    """A labelled bundle of extra ``CmpConfig`` keyword arguments.

    ``config`` holds each value in canonical-JSON form so variants (and
    the points carrying them) are hashable and serialize exactly.
    Build with :meth:`make`::

        Variant.make("narrow", fsoi_lanes=LaneConfig(data_vcsels=3))
    """

    label: str = ""
    config: tuple[tuple[str, str], ...] = ()

    @classmethod
    def make(cls, label: str = "", **config_kwargs: Any) -> "Variant":
        return cls(label=label, config=_encode_extras(config_kwargs))

    def config_dict(self) -> dict[str, Any]:
        """The decoded (JSON-level) keyword arguments."""
        return {key: json.loads(encoded) for key, encoded in self.config}


@dataclass(frozen=True)
class SweepPoint:
    """One experiment of a sweep: everything needed to run it.

    ``optimizations`` is the sorted tuple of enabled §5 flag names
    (empty = the §4 baseline); ``extras`` are extra ``CmpConfig``
    keyword arguments in ``(name, canonical-JSON value)`` form.
    """

    app: str
    network: str
    num_nodes: int
    cycles: int
    seed: int
    optimizations: tuple[str, ...] = ()
    variant: str = ""
    extras: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.app not in APPLICATIONS:
            raise ValueError(
                f"unknown application {self.app!r}; known: {sorted(APPLICATIONS)}"
            )
        if self.network not in NETWORK_KINDS:
            raise ValueError(
                f"unknown network {self.network!r}; choose from {NETWORK_KINDS}"
            )
        if self.num_nodes < 2:
            raise ValueError(f"need at least 2 nodes: {self.num_nodes}")
        if self.cycles < 1:
            raise ValueError(f"need a positive cycle count: {self.cycles}")

    # -- construction of the experiment --------------------------------

    def optimization_config(self) -> OptimizationConfig:
        return OptimizationConfig(**{name: True for name in self.optimizations})

    def config_kwargs(self) -> dict[str, Any]:
        """Decoded extra ``CmpConfig`` keyword arguments."""
        out: dict[str, Any] = {}
        for key, encoded in self.extras:
            value = json.loads(encoded)
            decoder = _EXTRA_DECODERS.get(key)
            out[key] = decoder(value) if decoder else value
        return out

    def to_config(self) -> CmpConfig:
        return CmpConfig(
            num_nodes=self.num_nodes,
            app=self.app,
            network=self.network,
            seed=self.seed,
            optimizations=self.optimization_config(),
            **self.config_kwargs(),
        )

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "app": self.app,
            "network": self.network,
            "num_nodes": self.num_nodes,
            "cycles": self.cycles,
            "seed": self.seed,
            "optimizations": list(self.optimizations),
            "variant": self.variant,
            "extras": {key: json.loads(enc) for key, enc in self.extras},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepPoint":
        return cls(
            app=data["app"],
            network=data["network"],
            num_nodes=int(data["num_nodes"]),
            cycles=int(data["cycles"]),
            seed=int(data["seed"]),
            optimizations=tuple(data.get("optimizations", ())),
            variant=data.get("variant", ""),
            extras=_encode_extras(data.get("extras", {})),
        )

    def label(self) -> str:
        """Short human-readable identity for tables and logs."""
        parts = [self.app, self.network, f"n{self.num_nodes}", f"s{self.seed}"]
        if self.optimizations:
            parts.append("+opt")
        if self.variant:
            parts.append(self.variant)
        if any(key == "faults" for key, _encoded in self.extras):
            parts.append("+flt")
        return "/".join(parts)


def make_point(
    app: str,
    network: str,
    num_nodes: int = 16,
    cycles: int = 8000,
    seed: int = 0,
    optimizations: Union[None, str, OptimizationConfig, Iterable[str]] = None,
    variant: str = "",
    **config_kwargs: Any,
) -> SweepPoint:
    """Build one :class:`SweepPoint` from plain experiment arguments.

    ``config_kwargs`` are extra :class:`repro.cmp.CmpConfig` fields
    (``fsoi_lanes=LaneConfig(...)``, ``memory_gbps=...``, ...).
    """
    return SweepPoint(
        app=app,
        network=network,
        num_nodes=num_nodes,
        cycles=cycles,
        seed=seed,
        optimizations=_normalize_optimizations(optimizations),
        variant=variant,
        extras=_encode_extras(config_kwargs),
    )


@dataclass(frozen=True)
class SweepSpec:
    """A cartesian grid of experiments.

    Expansion order is deterministic: the product of
    ``apps x networks x nodes x seeds x optimizations x variants x
    faults`` with the last axis varying fastest.  Optimization sets and
    non-empty fault plans apply only to the ``fsoi`` network (they rely
    on its confirmation channel / optical substrate — see
    :class:`repro.cmp.CmpConfig`); every other network gets exactly one
    baseline point per (app, nodes, seed, variant) combination.

    A non-empty :class:`repro.faults.FaultPlan` travels inside the
    point's ``extras`` in canonical-JSON form, so the on-disk cache key
    automatically covers the full fault schedule (docs/faults.md).
    """

    apps: tuple[str, ...]
    networks: tuple[str, ...]
    nodes: tuple[int, ...] = (16,)
    seeds: tuple[int, ...] = (0,)
    cycles: int = 8000
    optimizations: tuple[Union[str, OptimizationConfig], ...] = ("none",)
    variants: tuple[Variant, ...] = (Variant(),)
    faults: tuple[FaultPlan, ...] = (FaultPlan(),)

    def __post_init__(self) -> None:
        if not self.apps or not self.networks:
            raise ValueError("a sweep needs at least one app and one network")
        if not self.nodes or not self.seeds or not self.optimizations:
            raise ValueError("every sweep axis needs at least one value")
        if not self.faults:
            raise ValueError("the faults axis needs at least one plan")
        for plan in self.faults:
            if not isinstance(plan, FaultPlan):
                raise ValueError(f"not a FaultPlan: {plan!r}")
        # Validate eagerly so a bad spec fails before any work is queued.
        for entry in self.optimizations:
            _normalize_optimizations(entry)
        for app in self.apps:
            if app not in APPLICATIONS:
                raise ValueError(
                    f"unknown application {app!r}; known: {sorted(APPLICATIONS)}"
                )
        for network in self.networks:
            if network not in NETWORK_KINDS:
                raise ValueError(
                    f"unknown network {network!r}; choose from {NETWORK_KINDS}"
                )

    def points(self) -> list[SweepPoint]:
        """Expand the grid (deterministic order, duplicates removed)."""
        out: list[SweepPoint] = []
        seen: set[SweepPoint] = set()
        for app, network, num_nodes, seed in itertools.product(
            self.apps, self.networks, self.nodes, self.seeds
        ):
            if network == "fsoi":
                opt_sets = [
                    _normalize_optimizations(entry)
                    for entry in self.optimizations
                ]
                fault_plans = list(self.faults)
            else:
                opt_sets = [()]
                fault_plans = [FaultPlan()]
            for flags, variant, plan in itertools.product(
                opt_sets, self.variants, fault_plans
            ):
                extras = variant.config
                if not plan.is_empty():
                    # Keep extras sorted by key so the point (and its
                    # cache key) round-trips through to_dict/from_dict.
                    extras = tuple(sorted(
                        extras
                        + (("faults", canonical_json(plan.to_dict())),)
                    ))
                point = SweepPoint(
                    app=app,
                    network=network,
                    num_nodes=num_nodes,
                    cycles=self.cycles,
                    seed=seed,
                    optimizations=flags,
                    variant=variant.label,
                    extras=extras,
                )
                if point not in seen:
                    seen.add(point)
                    out.append(point)
        return out

    def __len__(self) -> int:
        return len(self.points())

    # -- serialization (CLI spec files) ---------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "apps": list(self.apps),
            "networks": list(self.networks),
            "nodes": list(self.nodes),
            "seeds": list(self.seeds),
            "cycles": self.cycles,
            "optimizations": [
                ",".join(_normalize_optimizations(entry)) or "none"
                for entry in self.optimizations
            ],
            "variants": [
                {"label": v.label, "config": v.config_dict()}
                for v in self.variants
            ],
            "faults": [plan.to_dict() for plan in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        variants = tuple(
            Variant(
                label=entry.get("label", ""),
                config=_encode_extras(entry.get("config", {})),
            )
            for entry in data.get("variants", [{}])
        ) or (Variant(),)
        faults = tuple(
            FaultPlan.from_dict(entry) for entry in data.get("faults", [{}])
        ) or (FaultPlan(),)
        return cls(
            apps=tuple(data["apps"]),
            networks=tuple(data["networks"]),
            nodes=tuple(int(n) for n in data.get("nodes", (16,))),
            seeds=tuple(int(s) for s in data.get("seeds", (0,))),
            cycles=int(data.get("cycles", 8000)),
            optimizations=tuple(data.get("optimizations", ("none",))),
            variants=variants,
            faults=faults,
        )
