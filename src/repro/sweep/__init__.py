"""Parallel experiment sweeps with on-disk result caching.

The substrate behind every figure/table regeneration: declare the grid
once (:class:`SweepSpec`), run it across cores (:func:`run_sweep`),
and let the content-addressed cache (:class:`ResultCache`) skip every
point that was already computed with the current code version.

Quick start::

    from repro.sweep import SweepSpec, run_sweep

    spec = SweepSpec(
        apps=("ba", "lu", "oc", "ro"),
        networks=("fsoi", "mesh"),
        seeds=(0, 1),
        cycles=4000,
    )
    report = run_sweep(spec, workers=4, cache_dir=".repro-sweep-cache",
                       jsonl_path="results.jsonl")
    print(report.paired_speedups("fsoi", baseline="mesh"))

See ``docs/sweeps.md`` for the spec format, caching/invalidation
rules, resume semantics and worker-count guidance; the CLI entry point
is ``repro sweep``.
"""

from repro.sweep.cache import ResultCache, code_version, point_key
from repro.sweep.runner import (
    PointOutcome,
    PointTimeout,
    SweepHeartbeat,
    SweepReport,
    execute_point,
    load_jsonl,
    metrics_filename,
    run_sweep,
    timeline_filename,
)
from repro.sweep.spec import (
    SweepPoint,
    SweepSpec,
    Variant,
    canonical_json,
    make_point,
)

__all__ = [
    "PointOutcome",
    "PointTimeout",
    "ResultCache",
    "SweepHeartbeat",
    "SweepPoint",
    "SweepReport",
    "SweepSpec",
    "Variant",
    "canonical_json",
    "code_version",
    "execute_point",
    "load_jsonl",
    "make_point",
    "metrics_filename",
    "point_key",
    "run_sweep",
    "timeline_filename",
]
