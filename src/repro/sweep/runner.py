"""The parallel sweep runner.

:func:`run_sweep` fans the points of a :class:`repro.sweep.SweepSpec`
out across worker processes (``ProcessPoolExecutor``), with:

* **caching** — points whose key (config + code version) is already in
  the :class:`repro.sweep.cache.ResultCache` are served from disk
  without touching the simulator; an interrupted sweep therefore
  resumes where it stopped.
* **crash isolation** — a worker that raises marks its point failed; a
  worker that *dies* (segfault, ``os._exit``) breaks the pool, which is
  rebuilt and the in-flight points retried once — a point that kills
  the pool twice is marked failed without sinking the sweep.
* **per-point timeout** — enforced inside the worker via ``SIGALRM``
  so a runaway point fails cleanly and its worker survives.
* **deterministic JSONL streaming** — results are written in point
  order (a reorder buffer holds out-of-order completions), each line
  canonical JSON, so the output file is byte-identical regardless of
  worker count and of whether points came cold or from the cache.

``workers <= 1`` runs points inline in the calling process — same code
path through :func:`_worker`, no subprocesses — which is also what the
determinism tests compare the parallel runs against.
"""

from __future__ import annotations

import functools
import json
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Sequence, Union

from repro.cmp.results import CmpResults
from repro.cmp.sweep import SweepSummary
from repro.sweep.cache import ResultCache, _normalized
from repro.sweep.spec import SweepPoint, SweepSpec, canonical_json

__all__ = [
    "PointOutcome",
    "PointTimeout",
    "SweepHeartbeat",
    "SweepReport",
    "execute_point",
    "load_jsonl",
    "metrics_filename",
    "run_sweep",
    "timeline_filename",
]


class PointTimeout(Exception):
    """A point exceeded the per-point timeout."""


def execute_point(
    point_dict: dict,
    metrics_dir: Optional[str] = None,
    timeline_dir: Optional[str] = None,
    timeline_window: int = 100,
) -> dict:
    """Run one experiment; the default worker payload.

    Takes and returns plain dicts so the call crosses process
    boundaries with no custom pickling.  With ``metrics_dir`` set, the
    run's full metrics-registry snapshot (see
    :meth:`repro.cmp.CmpSystem.metrics_registry`) is archived there as
    ``<label>_<hash>.json`` before the result is returned.  With
    ``timeline_dir`` set, the run executes under the windowed timeline
    collector (:func:`repro.obs.timeline.timelining`, sampling every
    ``timeline_window`` cycles) and the per-window delta archive lands
    there as ``<label>_<hash>.timeline.jsonl``.  Timeline collection is
    non-perturbing — the result is bit-identical to an untimelined run
    apart from the ``loop`` executed/skipped bookkeeping split.
    """
    from repro.cmp.system import CmpSystem

    point = SweepPoint.from_dict(point_dict)
    system = CmpSystem(point.to_config())
    if timeline_dir is not None:
        from repro.obs.timeline import timelining

        with timelining(window=timeline_window) as timeline:
            result = system.run(point.cycles).to_dict()
        directory = Path(timeline_dir)
        directory.mkdir(parents=True, exist_ok=True)
        timeline.write_jsonl(directory / timeline_filename(point))
    else:
        result = system.run(point.cycles).to_dict()
    if metrics_dir is not None:
        directory = Path(metrics_dir)
        directory.mkdir(parents=True, exist_ok=True)
        system.metrics_registry().write(directory / metrics_filename(point))
    return result


def metrics_filename(point: SweepPoint) -> str:
    """Deterministic per-point metrics archive filename.

    The label keeps the file recognisable; the content-hash suffix
    disambiguates points whose labels coincide (e.g. same grid at two
    cycle counts).
    """
    import hashlib

    digest = hashlib.sha256(
        canonical_json(point.to_dict()).encode()
    ).hexdigest()[:10]
    return f"{point.label().replace('/', '_')}_{digest}.json"


def timeline_filename(point: SweepPoint) -> str:
    """Deterministic per-point timeline archive filename.

    Same stem as :func:`metrics_filename` (label + content hash) so a
    point's metrics snapshot and timeline archive sit side by side.
    """
    return metrics_filename(point)[: -len(".json")] + ".timeline.jsonl"


def _worker(
    point_dict: dict,
    timeout: Optional[float],
    execute: Callable[[dict], dict],
) -> dict:
    """Execute one point under an optional SIGALRM deadline.

    Runs in a worker process (or inline for serial sweeps).  The alarm
    fires inside this process only, so a timeout fails the point
    without poisoning the pool.
    """
    use_alarm = (
        timeout is not None
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if use_alarm:
        def _on_alarm(signum, frame):
            raise PointTimeout(f"point exceeded {timeout:g}s timeout")

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return _normalized(execute(point_dict))
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


@dataclass(frozen=True)
class SweepHeartbeat:
    """A periodic liveness pulse from :func:`run_sweep`.

    Emitted between point completions (every ``heartbeat_interval``
    seconds in the pool path; before each point inline), so a live
    display can show progress even while every worker is deep inside a
    long point.  ``in_flight`` holds the labels of the points most
    likely occupying workers right now: the pool executes submissions
    in index order, so the lowest-index unfinished points are the ones
    on CPUs (an approximation — the pool does not expose true
    per-worker assignment).

    ``latest_window`` carries the most recent timeline window
    (``{"cycle", "deltas": {path: value}}``) when the sweep collects
    timelines and runs points inline — the payload ``repro top``
    renders as live sparklines.  ``None`` otherwise: pool workers hold
    their own process-local collectors, so the parent has no live
    window to forward.
    """

    elapsed: float
    done: int
    total: int
    in_flight: tuple[str, ...]
    workers: int
    latest_window: Optional[dict] = None


@dataclass
class PointOutcome:
    """What happened to one sweep point."""

    point: SweepPoint
    status: str                       # "ok" | "failed"
    key: str
    result: Optional[dict] = None     # CmpResults.to_dict() shape when ok
    error: Optional[str] = None
    cached: bool = False
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def cmp_results(self) -> CmpResults:
        if self.result is None:
            raise ValueError(f"point {self.point.label()} has no result")
        return CmpResults.from_dict(self.result)

    def record(self, index: int) -> dict:
        """The JSONL record (deterministic fields only — no timings)."""
        return {
            "index": index,
            "key": self.key,
            "point": self.point.to_dict(),
            "status": self.status,
            "result": self.result,
            "error": self.error,
        }


@dataclass
class SweepReport:
    """Aggregated outcome of one :func:`run_sweep` call."""

    outcomes: list[PointOutcome]
    wall_seconds: float = 0.0
    workers: int = 1
    jsonl_path: Optional[Path] = None

    # -- counters --------------------------------------------------------

    @property
    def ok(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def from_cache(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def executed(self) -> int:
        """Points that actually ran the simulator (cache misses)."""
        return sum(1 for o in self.outcomes if o.ok and not o.cached)

    # -- fast-forward accounting (docs/performance.md) -------------------

    @property
    def executed_cycles(self) -> int:
        """Cycles the successful points actually ticked through."""
        return sum(
            o.result.get("loop", {}).get("executed_cycles", 0)
            for o in self.outcomes
            if o.ok and o.result is not None
        )

    @property
    def skipped_cycles(self) -> int:
        """Cycles the successful points fast-forwarded past."""
        return sum(
            o.result.get("loop", {}).get("skipped_cycles", 0)
            for o in self.outcomes
            if o.ok and o.result is not None
        )

    @property
    def skip_ratio(self) -> float:
        """Fraction of simulated cycles covered by fast-forward jumps.

        Zero both when nothing skipped and when the loop counters are
        absent (results produced before they existed, e.g. replayed
        from an old cache).
        """
        total = self.executed_cycles + self.skipped_cycles
        return self.skipped_cycles / total if total else 0.0

    # -- result access ---------------------------------------------------

    def results(self) -> list[tuple[SweepPoint, CmpResults]]:
        """(point, results) for every successful point, in sweep order."""
        return [(o.point, o.cmp_results()) for o in self.outcomes if o.ok]

    def result_for(self, **match: Any) -> CmpResults:
        """The unique successful result whose point matches ``match``.

        >>> # report.result_for(app="oc", network="fsoi", seed=1)
        """
        found = [
            o for o in self.outcomes
            if o.ok and all(getattr(o.point, k) == v for k, v in match.items())
        ]
        if not found:
            raise KeyError(f"no successful point matching {match}")
        if len(found) > 1:
            raise KeyError(f"{len(found)} points match {match}; be more specific")
        return found[0].cmp_results()

    def summary(
        self, metric: Callable[[CmpResults], float], **match: Any
    ) -> SweepSummary:
        """Summary statistics of ``metric`` over matching points."""
        values = [
            metric(o.cmp_results())
            for o in self.outcomes
            if o.ok and all(getattr(o.point, k) == v for k, v in match.items())
        ]
        return SweepSummary(tuple(values))

    def paired_speedups(
        self, network: str, baseline: str, metric: str = "ipc"
    ) -> SweepSummary:
        """Speedup of ``network`` over ``baseline``, paired per point.

        Pairs share every axis except the network (app, nodes, seed,
        optimizations, variant), so workload randomness cancels — the
        same pairing :func:`repro.cmp.sweep.paired_speedups` uses.
        """
        def pair_key(point: SweepPoint):
            return (point.app, point.num_nodes, point.cycles, point.seed,
                    point.variant, point.extras)

        fast: dict[Any, CmpResults] = {}
        base: dict[Any, CmpResults] = {}
        for outcome in self.outcomes:
            if not outcome.ok:
                continue
            if outcome.point.network == network:
                fast[pair_key(outcome.point)] = outcome.cmp_results()
            elif outcome.point.network == baseline:
                base[pair_key(outcome.point)] = outcome.cmp_results()
        ratios = tuple(
            getattr(fast[key], metric) / getattr(base[key], metric)
            for key in fast
            if key in base
        )
        return SweepSummary(ratios)


class _OrderedJsonlWriter:
    """Streams records to disk in point order despite o-o-o completion."""

    def __init__(self, path: Optional[Path]):
        self.path = Path(path) if path else None
        self._handle = None
        if self.path:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w")
        self._buffer: dict[int, dict] = {}
        self._next = 0

    def add(self, index: int, record: dict) -> None:
        if self._handle is None:
            return
        self._buffer[index] = record
        while self._next in self._buffer:
            line = canonical_json(self._buffer.pop(self._next))
            self._handle.write(line + "\n")
            self._next += 1
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def load_jsonl(path, *, strict: bool = True) -> list[dict]:
    """Read back a results file written by :func:`run_sweep`.

    With ``strict=True`` (the default) a malformed line raises
    ``ValueError`` naming the line number.  ``strict=False`` skips
    corrupt or truncated lines — an interrupted sweep leaves at most a
    truncated final record behind, and cross-run ingestion (the
    analytics ledger) wants the surviving records rather than nothing.
    """
    records = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{number}: corrupt JSONL record: {exc}"
                    ) from exc
                continue
            records.append(record)
    return records


def run_sweep(
    spec: Union[SweepSpec, Sequence[SweepPoint]],
    *,
    workers: int = 1,
    cache_dir=None,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    jsonl_path=None,
    metrics_path=None,
    timeline_path=None,
    timeline_window: int = 100,
    code_version: Optional[str] = None,
    execute: Callable[[dict], dict] = execute_point,
    progress: Optional[Callable[[int, int, PointOutcome], None]] = None,
    heartbeat: Optional[Callable[[SweepHeartbeat], None]] = None,
    heartbeat_interval: float = 1.0,
    max_crash_retries: int = 1,
) -> SweepReport:
    """Run every point of ``spec``; returns a :class:`SweepReport`.

    Parameters
    ----------
    spec:
        A :class:`SweepSpec` or an explicit point list.
    workers:
        Process count; ``<= 1`` runs inline (no subprocesses).
    cache_dir / cache:
        Enable the on-disk result cache (omit both to always compute).
    timeout:
        Per-point wall-clock limit in seconds; a timed-out point is
        marked failed.
    jsonl_path:
        Stream results here as canonical JSONL, in point order.
    metrics_path:
        Directory in which every *executed* point archives its full
        metrics-registry snapshot (one JSON file per point, named by
        :func:`metrics_filename`).  Cache hits skip the simulator and
        therefore do not write snapshots — archive metrics with the
        cache off, or on the cold pass.  A custom ``execute`` callable
        must accept a ``metrics_dir`` keyword to use this.
    timeline_path:
        Directory in which every *executed* point archives its windowed
        timeline (one JSONL file per point, named by
        :func:`timeline_filename`, sampled every ``timeline_window``
        cycles).  Same cache caveat as ``metrics_path``; a custom
        ``execute`` callable must accept ``timeline_dir`` and
        ``timeline_window`` keywords to use this.  Heartbeats gain a
        ``latest_window`` payload on the inline path.
    code_version:
        Override the cache's code-version tag (testing/pinning).
    execute:
        The per-point payload ``dict -> dict`` (default: build the
        ``CmpConfig`` and run :class:`repro.cmp.CmpSystem`).  Must be
        picklable (module-level) when ``workers > 1``.
    progress:
        Called as ``progress(done, total, outcome)`` after each point.
    heartbeat:
        Called with a :class:`SweepHeartbeat` between completions —
        every ``heartbeat_interval`` seconds while worker processes are
        busy, and before each point inline — so a live display (the
        CLI's ``--live`` line, :class:`repro.analytics.SweepTelemetry`)
        stays fresh during long points.
    max_crash_retries:
        How often a point may be retried after its worker process died
        before it is marked failed.
    """
    points = spec.points() if isinstance(spec, SweepSpec) else list(spec)
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir, version=code_version)
    if metrics_path is not None:
        # functools.partial of a module-level callable stays picklable
        # for the process-pool path.
        execute = functools.partial(execute, metrics_dir=str(metrics_path))
    if timeline_path is not None:
        execute = functools.partial(
            execute,
            timeline_dir=str(timeline_path),
            timeline_window=timeline_window,
        )
    started = time.perf_counter()
    writer = _OrderedJsonlWriter(jsonl_path)
    outcomes: list[Optional[PointOutcome]] = [None] * len(points)
    done_count = 0

    def finish(index: int, outcome: PointOutcome) -> None:
        nonlocal done_count
        outcomes[index] = outcome
        writer.add(index, outcome.record(index))
        done_count += 1
        if progress is not None:
            progress(done_count, len(points), outcome)

    def beat(in_flight: Sequence[str]) -> None:
        if heartbeat is not None:
            latest = None
            if timeline_path is not None and workers <= 1:
                # Inline points run against the process-global
                # collector, so its freshest window is ours to forward
                # (pool workers keep theirs process-local).
                from repro.obs.timeline import TIMELINE

                if len(TIMELINE):
                    latest = TIMELINE.latest_window()
            heartbeat(SweepHeartbeat(
                elapsed=time.perf_counter() - started,
                done=done_count,
                total=len(points),
                in_flight=tuple(in_flight),
                workers=max(1, workers),
                latest_window=latest,
            ))

    try:
        pending: list[int] = []
        for index, point in enumerate(points):
            key = cache.key(point) if cache else _uncached_key(point, code_version)
            hit = cache.get(point) if cache else None
            if hit is not None:
                finish(index, PointOutcome(
                    point=point, status="ok", key=key, result=hit, cached=True,
                ))
            else:
                pending.append(index)

        if workers <= 1:
            for index in pending:
                beat((points[index].label(),))
                finish(index, _run_inline(points[index], timeout, execute,
                                          cache, code_version))
        else:
            _run_pool(points, pending, workers, timeout, execute, cache,
                      code_version, max_crash_retries, finish,
                      beat if heartbeat is not None else None,
                      heartbeat_interval)
    finally:
        writer.close()

    assert all(outcome is not None for outcome in outcomes)
    return SweepReport(
        outcomes=list(outcomes),
        wall_seconds=time.perf_counter() - started,
        workers=max(1, workers),
        jsonl_path=Path(jsonl_path) if jsonl_path else None,
    )


def _uncached_key(point: SweepPoint, version: Optional[str]) -> str:
    from repro.sweep.cache import point_key

    return point_key(point, version)


def _outcome_from_result(point, key, result, cache, elapsed) -> PointOutcome:
    if cache is not None:
        cache.put(point, result, elapsed)
    return PointOutcome(
        point=point, status="ok", key=key, result=result, elapsed=elapsed,
    )


def _failure(point, key, error: str, elapsed: float = 0.0) -> PointOutcome:
    return PointOutcome(
        point=point, status="failed", key=key, error=error, elapsed=elapsed,
    )


def _run_inline(point, timeout, execute, cache, code_version) -> PointOutcome:
    key = cache.key(point) if cache else _uncached_key(point, code_version)
    begin = time.perf_counter()
    try:
        result = _worker(point.to_dict(), timeout, execute)
    except Exception as exc:  # noqa: BLE001 - crash isolation by design
        return _failure(point, key, f"{type(exc).__name__}: {exc}",
                        time.perf_counter() - begin)
    return _outcome_from_result(point, key, result, cache,
                                time.perf_counter() - begin)


def _run_pool(
    points, pending, workers, timeout, execute, cache, code_version,
    max_crash_retries, finish, beat=None, beat_interval: float = 1.0,
) -> None:
    """Fan ``pending`` point indices over a process pool.

    The pool is rebuilt whenever a worker dies; affected points are
    retried up to ``max_crash_retries`` times, then marked failed.
    With ``beat`` set, the completion wait wakes up every
    ``beat_interval`` seconds to emit a heartbeat naming the
    lowest-index in-flight points (the ones occupying workers).
    """
    crash_counts: dict[int, int] = {}
    while pending:
        retry: list[int] = []
        begin = time.perf_counter()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_worker, points[i].to_dict(), timeout, execute): i
                for i in pending
            }
            not_done = set(futures)
            while not_done:
                if beat is not None:
                    running = sorted(futures[f] for f in not_done)[:workers]
                    beat([points[i].label() for i in running])
                done, not_done = wait(
                    not_done,
                    timeout=beat_interval if beat is not None else None,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    index = futures[future]
                    point = points[index]
                    key = (cache.key(point) if cache
                           else _uncached_key(point, code_version))
                    elapsed = time.perf_counter() - begin
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        crash_counts[index] = crash_counts.get(index, 0) + 1
                        if crash_counts[index] > max_crash_retries:
                            finish(index, _failure(
                                point, key,
                                "BrokenProcessPool: worker process died",
                                elapsed,
                            ))
                        else:
                            retry.append(index)
                        continue
                    except Exception as exc:  # noqa: BLE001
                        finish(index, _failure(
                            point, key, f"{type(exc).__name__}: {exc}", elapsed,
                        ))
                        continue
                    finish(index, _outcome_from_result(
                        point, key, result, cache, elapsed,
                    ))
        pending = sorted(retry)
