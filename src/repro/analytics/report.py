"""Rendering for ``repro report``: terminal, Markdown and HTML.

A :class:`ReportBundle` gathers everything one report covers — the
sweep's per-point rows, the paper-figure validation verdicts, the
ledger identity of the run and (when available) the diff against the
previous ingested run — and renders it three ways:

* :meth:`to_terminal` — compact text, reusing
  :mod:`repro.util.charts` bars for the speedup figure;
* :meth:`to_markdown` — tables for a PR comment or commit artefact;
* :meth:`to_html` — one self-contained file (inline CSS, no external
  assets) suitable for a CI artefact that opens anywhere.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Optional

from repro.analytics.ledger import RunDiff, RunInfo
from repro.analytics.validation import ValidationReport
from repro.util.charts import bar_chart

__all__ = ["ReportBundle", "ResultRow"]


@dataclass(frozen=True)
class ResultRow:
    """One sweep point in the report's results table."""

    label: str
    status: str
    cached: bool
    ipc: Optional[float] = None
    latency: Optional[float] = None
    error: Optional[str] = None


@dataclass
class ReportBundle:
    """Everything one ``repro report`` invocation renders."""

    title: str
    rows: list[ResultRow] = field(default_factory=list)
    validation: Optional[ValidationReport] = None
    run_info: Optional[RunInfo] = None
    diff: Optional[RunDiff] = None
    speedups: dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0
    generated_at: str = ""

    def __post_init__(self) -> None:
        if not self.generated_at:
            self.generated_at = datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            )

    # -- shared fragments ----------------------------------------------

    @property
    def counts(self) -> dict[str, int]:
        return {
            "total": len(self.rows),
            "ok": sum(1 for r in self.rows if r.status == "ok"),
            "failed": sum(1 for r in self.rows if r.status != "ok"),
            "from_cache": sum(1 for r in self.rows if r.cached),
        }

    def _summary_line(self) -> str:
        c = self.counts
        line = (
            f"{c['total']} points: {c['ok']} ok "
            f"({c['from_cache']} from cache), {c['failed']} failed"
        )
        if self.wall_seconds:
            line += f", {self.wall_seconds:.1f}s wall"
        return line

    # -- terminal -------------------------------------------------------

    def to_terminal(self) -> str:
        lines = [self.title, f"  {self._summary_line()}"]
        if self.run_info:
            lines.append(
                f"  ledger run {self.run_info.run_id} "
                f"(code {self.run_info.code_version}, "
                f"{self.run_info.created_at})"
            )
        if self.rows:
            lines.append(f"  {'point':<30} {'IPC':>8} {'latency':>8}  status")
            for row in self.rows:
                ipc = f"{row.ipc:.3f}" if row.ipc is not None else "-"
                lat = f"{row.latency:.2f}" if row.latency is not None else "-"
                status = "cache" if row.cached else row.status
                lines.append(
                    f"  {row.label:<30} {ipc:>8} {lat:>8}  {status}"
                )
                if row.error:
                    lines.append(f"    {row.error}")
        if self.speedups:
            lines.append("")
            lines.append(bar_chart(
                self.speedups, width=30,
                title="  FSOI speedup over mesh (paired)", fmt="{:.3f}x",
            ))
        if self.validation:
            lines.append("")
            lines.append(self.validation.render())
        if self.diff:
            lines.append("")
            lines.append(self.diff.render())
        return "\n".join(lines)

    # -- markdown -------------------------------------------------------

    def to_markdown(self) -> str:
        lines = [f"# {self.title}", "", f"_{self._summary_line()}_", ""]
        if self.run_info:
            lines += [
                f"Ledger run `{self.run_info.run_id}` · code "
                f"`{self.run_info.code_version}` · {self.run_info.created_at}",
                "",
            ]
        if self.rows:
            lines += [
                "| point | IPC | latency | status |",
                "|---|---:|---:|---|",
            ]
            for row in self.rows:
                ipc = f"{row.ipc:.3f}" if row.ipc is not None else "-"
                lat = f"{row.latency:.2f}" if row.latency is not None else "-"
                status = "cache" if row.cached else row.status
                lines.append(f"| `{row.label}` | {ipc} | {lat} | {status} |")
            lines.append("")
        if self.speedups:
            lines += ["## Speedups (FSOI over mesh, paired)", ""]
            lines += [
                "| pairing | speedup |", "|---|---:|",
            ] + [
                f"| {name} | {value:.3f}x |"
                for name, value in self.speedups.items()
            ] + [""]
        if self.validation:
            v = self.validation
            lines += [
                "## Paper-figure validation",
                "",
                f"**{v.passed} pass / {v.failed} fail / {v.skipped} skipped**",
                "",
                "| check | figure | value | band | status |",
                "|---|---|---:|---|---|",
            ]
            for result in v.results:
                value = "-" if result.value is None else f"{result.value:.3f}"
                lines.append(
                    f"| {result.check.title} | {result.check.figure} "
                    f"| {value} | [{result.check.lo:g}, {result.check.hi:g}] "
                    f"| {result.status.upper()} |"
                )
            lines.append("")
            for result in v.results:
                if result.detail:
                    lines.append(
                        f"- **{result.check.key}**: {result.detail}"
                    )
            lines.append("")
        if self.diff:
            lines += ["## Diff vs previous run", "", "```",
                      self.diff.render(), "```", ""]
        lines.append(f"_generated {self.generated_at}_")
        return "\n".join(lines)

    # -- html -----------------------------------------------------------

    _CSS = """
    body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
           margin: 2rem auto; max-width: 60rem; color: #1a1a2e; }
    h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 1.6rem; }
    table { border-collapse: collapse; width: 100%; margin: .6rem 0; }
    th, td { border: 1px solid #d8d8e0; padding: .3rem .6rem;
             font-size: .85rem; text-align: left; }
    td.num { text-align: right; font-variant-numeric: tabular-nums; }
    .pass { background: #e4f5e4; } .fail { background: #fbe2e2; }
    .skipped { background: #f2f2f4; color: #666; }
    .muted { color: #666; font-size: .8rem; }
    code { background: #f2f2f4; padding: .1rem .25rem; border-radius: 3px; }
    """

    def to_html(self) -> str:
        esc = html.escape

        def table(headers, body_rows, classes=None) -> list[str]:
            out = ["<table><tr>"]
            out += [f"<th>{esc(h)}</th>" for h in headers]
            out.append("</tr>")
            for index, cells in enumerate(body_rows):
                cls = f' class="{classes[index]}"' if classes else ""
                out.append(f"<tr{cls}>")
                for cell, numeric in cells:
                    td = ' class="num"' if numeric else ""
                    out.append(f"<td{td}>{esc(str(cell))}</td>")
                out.append("</tr>")
            out.append("</table>")
            return out

        parts = [
            "<!doctype html><html><head><meta charset='utf-8'>",
            f"<title>{esc(self.title)}</title>",
            f"<style>{self._CSS}</style></head><body>",
            f"<h1>{esc(self.title)}</h1>",
            f"<p class='muted'>{esc(self._summary_line())}</p>",
        ]
        if self.run_info:
            parts.append(
                "<p class='muted'>ledger run "
                f"<code>{esc(self.run_info.run_id)}</code> · code "
                f"<code>{esc(self.run_info.code_version)}</code> · "
                f"{esc(self.run_info.created_at)}</p>"
            )
        if self.rows:
            parts.append("<h2>Results</h2>")
            parts += table(
                ["point", "IPC", "latency", "status"],
                [
                    [
                        (row.label, False),
                        (f"{row.ipc:.3f}" if row.ipc is not None else "-", True),
                        (f"{row.latency:.2f}"
                         if row.latency is not None else "-", True),
                        ("cache" if row.cached else row.status, False),
                    ]
                    for row in self.rows
                ],
            )
        if self.speedups:
            parts.append("<h2>Speedups (FSOI over mesh, paired)</h2>")
            parts += table(
                ["pairing", "speedup"],
                [
                    [(name, False), (f"{value:.3f}x", True)]
                    for name, value in self.speedups.items()
                ],
            )
        if self.validation:
            v = self.validation
            parts.append("<h2>Paper-figure validation</h2>")
            parts.append(
                f"<p><b>{v.passed} pass / {v.failed} fail / "
                f"{v.skipped} skipped</b></p>"
            )
            parts += table(
                ["check", "figure", "value", "band", "status", "detail"],
                [
                    [
                        (result.check.title, False),
                        (result.check.figure, False),
                        ("-" if result.value is None
                         else f"{result.value:.3f}", True),
                        (f"[{result.check.lo:g}, {result.check.hi:g}]", False),
                        (result.status.upper(), False),
                        (result.detail, False),
                    ]
                    for result in v.results
                ],
                classes=[result.status for result in v.results],
            )
        if self.diff:
            parts.append("<h2>Diff vs previous run</h2>")
            parts.append(f"<pre>{esc(self.diff.render())}</pre>")
        parts.append(
            f"<p class='muted'>generated {esc(self.generated_at)}</p>"
        )
        parts.append("</body></html>")
        return "".join(parts) + "\n"

    def write(self, path) -> None:
        """Write HTML (``.html``/``.htm``) or Markdown by suffix."""
        text = (
            self.to_html()
            if str(path).lower().endswith((".html", ".htm"))
            else self.to_markdown() + "\n"
        )
        with open(path, "w") as handle:
            handle.write(text)
