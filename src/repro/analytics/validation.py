"""Paper-figure validation: declarative tolerance bands over a run.

Each :class:`BandCheck` encodes one expectation from the paper's
figures/tables as a ``[lo, hi]`` band on a value extracted from a run's
results.  The bands are *the same tolerances the analytical
cross-validation suite pins down* (``tests/core/
test_analytical_crossval.py``) plus the repo's measured reproductions
recorded in ``EXPERIMENTS.md``:

* **Figure 3** — simulator collision rate over the closed form's
  prediction at the *measured* transmission probability must sit in
  ``[1.0, 2.0]`` (retransmission clustering makes the simulator run
  hotter than the memoryless model; the closed form stays a same-order
  lower bound).
* **Figure 4** — measured mean collision-resolution delay over the
  numerical back-off model's prediction in ``[0.6, 2.2]``, with the
  same 60-cycle sanity ceiling (the paper's own agreement band is
  7.26 computed vs 6.8–9.6 simulated).
* **Figures 6/7** — paired FSOI-over-mesh speedup geomeans (paper 1.36
  at 16 nodes, 1.75 at 64; repo measures 1.29 / 1.53).
* **Figure 8** — network-energy ratio mesh/FSOI (paper ~20x, repo
  18–25x) and total-energy ratio FSOI/mesh (paper 40.6% saving, repo
  25–44%).
* **Table 4** — more memory bandwidth must not *lower* the FSOI
  speedup (paper 1.32 → 1.36 from 8.8 to 52.8 GB/s).

A check whose inputs are absent from the run (no 64-node points, no
memory-bandwidth variants, no collisions at all) reports ``skipped``,
not ``fail`` — validation follows whatever grid the run actually swept.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.analytical import collision_probability, resolution_delay
from repro.core.backoff import BackoffPolicy
from repro.core.lanes import LaneConfig
from repro.net.packet import LaneKind

__all__ = [
    "BandCheck",
    "BandResult",
    "RunContext",
    "ValidationReport",
    "default_checks",
    "validate",
]


@dataclass(frozen=True)
class RunContext:
    """The (point, result) population a validation pass runs over.

    ``pairs`` holds ``(point_dict, result_dict)`` for every successful
    point — :class:`~repro.sweep.SweepReport` outcomes,
    :class:`~repro.analytics.RunStore` selections and raw JSONL records
    all reduce to this shape (see :func:`validate`).
    """

    pairs: tuple[tuple[dict, dict], ...]

    @classmethod
    def from_outcomes(cls, outcomes) -> "RunContext":
        return cls(tuple(
            (o.point.to_dict(), o.result) for o in outcomes if o.ok
        ))

    @classmethod
    def from_ledger(cls, points) -> "RunContext":
        return cls(tuple(
            (p.point, p.result) for p in points
            if p.ok and p.result is not None
        ))

    # -- selection helpers ---------------------------------------------

    def results(self, network: Optional[str] = None,
                nodes: Optional[int] = None) -> list[tuple[dict, dict]]:
        out = []
        for point, result in self.pairs:
            if network is not None and point["network"] != network:
                continue
            if nodes is not None and point["num_nodes"] != nodes:
                continue
            out.append((point, result))
        return out

    def paired_speedups(self, nodes: Optional[int] = None,
                        network: str = "fsoi",
                        baseline: str = "mesh") -> list[float]:
        """IPC ratios paired on every axis but the network."""
        def pair_key(point):
            return (
                point["app"], point["num_nodes"], point["cycles"],
                point["seed"], point.get("variant", ""),
            )

        def ipc(result):
            return result["instructions"] / result["cycles"]

        fast = {pair_key(p): r for p, r in self.results(network, nodes)}
        base = {pair_key(p): r for p, r in self.results(baseline, nodes)}
        return [
            ipc(fast[key]) / ipc(base[key])
            for key in sorted(set(fast) & set(base))
            if ipc(base[key]) > 0
        ]

    def energy_pairs(self, nodes: Optional[int] = None) -> list[tuple]:
        """(fsoi EnergyReport, mesh EnergyReport) per shared point."""
        from repro.cmp.results import CmpResults
        from repro.power import SystemPowerModel

        def pair_key(point):
            return (point["app"], point["num_nodes"], point["cycles"],
                    point["seed"], point.get("variant", ""))

        model = SystemPowerModel()
        fsoi = {pair_key(p): r for p, r in self.results("fsoi", nodes)}
        mesh = {pair_key(p): r for p, r in self.results("mesh", nodes)}
        return [
            (model.report(CmpResults.from_dict(fsoi[key])),
             model.report(CmpResults.from_dict(mesh[key])))
            for key in sorted(set(fsoi) & set(mesh))
        ]


def _geomean(values: Sequence[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _lane_config(point: dict) -> LaneConfig:
    extras = point.get("extras", {})
    if "fsoi_lanes" in extras:
        return LaneConfig(**extras["fsoi_lanes"])
    return LaneConfig()


@dataclass(frozen=True)
class BandCheck:
    """One declarative tolerance band.

    ``extract`` returns ``(value, detail)``; ``value=None`` marks the
    check skipped (inputs absent from the run).  ``source`` records
    where the tolerance comes from, so a failing report points at the
    test or document that pinned the band.
    """

    key: str
    figure: str
    title: str
    lo: float
    hi: float
    source: str
    extract: Callable[[RunContext], tuple[Optional[float], str]]

    def run(self, context: RunContext) -> "BandResult":
        value, detail = self.extract(context)
        if value is None:
            status = "skipped"
        elif self.lo <= value <= self.hi:
            status = "pass"
        else:
            status = "fail"
        return BandResult(check=self, value=value, status=status,
                          detail=detail)


@dataclass(frozen=True)
class BandResult:
    check: BandCheck
    value: Optional[float]
    status: str          # "pass" | "fail" | "skipped"
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "key": self.check.key,
            "figure": self.check.figure,
            "title": self.check.title,
            "band": [self.check.lo, self.check.hi],
            "source": self.check.source,
            "value": self.value,
            "status": self.status,
            "detail": self.detail,
        }


# -- extractors ----------------------------------------------------------

_CROSSVAL = "tests/core/test_analytical_crossval.py"


def _fig3_collision_ratio(context: RunContext):
    ratios = []
    for point, result in context.results(network="fsoi"):
        fsoi = result.get("fsoi", {})
        p = fsoi.get("meta_tx_probability", 0.0)
        simulated = fsoi.get("meta_collisions_per_node_slot", 0.0)
        if p <= 0.0 or simulated <= 0.0:
            continue
        lanes = _lane_config(point)
        predicted = collision_probability(
            p, point["num_nodes"], lanes.receivers(LaneKind.META)
        )
        if predicted > 0.0:
            ratios.append(simulated / predicted)
    if not ratios:
        return None, "no FSOI points with meta collisions"
    mean = sum(ratios) / len(ratios)
    return mean, (
        f"{len(ratios)} point(s), simulated/closed-form ratio "
        f"min {min(ratios):.2f} / mean {mean:.2f} / max {max(ratios):.2f}"
    )


def _fig4_delay_ratio(context: RunContext):
    ratios, delays = [], []
    backoff = BackoffPolicy()
    for point, result in context.results(network="fsoi"):
        fsoi = result.get("fsoi", {})
        delay = fsoi.get("meta_resolution_delay", 0.0)
        p = fsoi.get("meta_tx_probability", 0.0)
        if delay <= 0.0 or p <= 0.0:
            continue
        lanes = _lane_config(point)
        predicted = resolution_delay(
            backoff.start_window,
            backoff.base,
            background_rate=p,
            slot_cycles=lanes.slot_cycles(LaneKind.META),
            confirmation_delay=lanes.confirmation_delay,
            trials=4_000,
            seed=int(point["seed"]),
        )
        if predicted > 0.0:
            ratios.append(delay / predicted)
            delays.append(delay)
    if not ratios:
        return None, "no FSOI points with resolved collisions"
    if max(delays) >= 60.0:
        # The crossval suite's sanity ceiling: a delay this large means
        # back-off is broken regardless of what the model predicts.
        return float("inf"), f"resolution delay {max(delays):.1f} >= 60 cycles"
    mean = sum(ratios) / len(ratios)
    return mean, (
        f"{len(ratios)} point(s), measured/model ratio "
        f"min {min(ratios):.2f} / mean {mean:.2f} / max {max(ratios):.2f}; "
        f"delays {min(delays):.1f}-{max(delays):.1f} cycles"
    )


def _fig6_speedup(context: RunContext):
    speedups = context.paired_speedups(nodes=16)
    if not speedups:
        return None, "no paired 16-node fsoi/mesh points"
    gmean = _geomean(speedups)
    return gmean, (
        f"{len(speedups)} pair(s), gmean {gmean:.3f} "
        f"(paper 1.36, repo-measured 1.29)"
    )


def _fig7_speedup(context: RunContext):
    speedups = context.paired_speedups(nodes=64)
    if not speedups:
        return None, "no paired 64-node fsoi/mesh points"
    gmean = _geomean(speedups)
    return gmean, (
        f"{len(speedups)} pair(s), gmean {gmean:.3f} "
        f"(paper 1.75, repo-measured 1.53)"
    )


def _fig8_network_energy(context: RunContext):
    pairs = context.energy_pairs()
    if not pairs:
        return None, "no paired fsoi/mesh points"
    # Per-unit-work network energy, mesh over FSOI (Figure 8's ~20x).
    ratios = [
        (mesh.network_energy / mesh.instructions)
        / (fsoi.network_energy / fsoi.instructions)
        for fsoi, mesh in pairs
        if fsoi.network_energy > 0 and fsoi.instructions and mesh.instructions
    ]
    if not ratios:
        return None, "no pairs with nonzero network energy"
    gmean = _geomean(ratios)
    return gmean, (
        f"{len(ratios)} pair(s), mesh/FSOI network energy gmean "
        f"{gmean:.1f}x (paper ~20x, repo-measured 18-25x)"
    )


def _fig8_total_energy(context: RunContext):
    pairs = context.energy_pairs()
    if not pairs:
        return None, "no paired fsoi/mesh points"
    ratios = [fsoi.relative_to(mesh)["total"] for fsoi, mesh in pairs]
    gmean = _geomean(ratios)
    return gmean, (
        f"{len(ratios)} pair(s), FSOI/mesh total energy gmean {gmean:.3f} "
        f"(paper 0.594, repo-measured 0.56-0.75)"
    )


def _table4_membw(context: RunContext):
    """Speedup delta from the lowest to the highest swept memory bw."""
    by_bw: dict[float, list[float]] = {}
    for point, _result in context.results(network="fsoi"):
        bw = point.get("extras", {}).get("memory_gbps")
        if bw is None:
            continue
        by_bw.setdefault(float(bw), [])
    if len(by_bw) < 2:
        return None, "fewer than two swept memory_gbps variants"

    def speedups_at(bw: float) -> list[float]:
        sub = RunContext(tuple(
            (p, r) for p, r in context.pairs
            if p.get("extras", {}).get("memory_gbps") in (None, bw)
            and (p["network"] != "fsoi"
                 or p.get("extras", {}).get("memory_gbps") == bw)
        ))
        return sub.paired_speedups()

    low_bw, high_bw = min(by_bw), max(by_bw)
    low, high = speedups_at(low_bw), speedups_at(high_bw)
    if not low or not high:
        return None, "memory_gbps variants lack mesh baselines to pair with"
    delta = _geomean(high) - _geomean(low)
    return delta, (
        f"speedup gmean {_geomean(low):.3f} @ {low_bw:g} GB/s -> "
        f"{_geomean(high):.3f} @ {high_bw:g} GB/s "
        f"(paper 1.32 -> 1.36)"
    )


def default_checks() -> tuple[BandCheck, ...]:
    """The standard paper-figure band set."""
    return (
        BandCheck(
            key="fig3-collision",
            figure="Figure 3",
            title="meta collision rate vs closed form",
            lo=1.0, hi=2.0,
            source=f"{_CROSSVAL}::TestCollisionRateCrossValidation",
            extract=_fig3_collision_ratio,
        ),
        BandCheck(
            key="fig4-backoff",
            figure="Figure 4",
            title="collision-resolution delay vs back-off model",
            lo=0.6, hi=2.2,
            source=f"{_CROSSVAL}::TestResolutionDelayCrossValidation",
            extract=_fig4_delay_ratio,
        ),
        BandCheck(
            key="fig6-speedup-16",
            figure="Figure 6",
            title="FSOI speedup over mesh, 16 nodes (gmean)",
            lo=1.0, hi=2.0,
            source="EXPERIMENTS.md: paper 1.36, measured 1.29 (8-app gmean)",
            extract=_fig6_speedup,
        ),
        BandCheck(
            key="fig7-speedup-64",
            figure="Figure 7",
            title="FSOI speedup over mesh, 64 nodes (gmean)",
            lo=1.1, hi=2.2,
            source="EXPERIMENTS.md: paper 1.75, measured 1.53 (5-app gmean)",
            extract=_fig7_speedup,
        ),
        BandCheck(
            key="fig8-network-energy",
            figure="Figure 8",
            title="network energy ratio mesh/FSOI",
            lo=8.0, hi=40.0,
            source="EXPERIMENTS.md: paper ~20x, measured 18-25x",
            extract=_fig8_network_energy,
        ),
        BandCheck(
            key="fig8-total-energy",
            figure="Figure 8",
            title="total energy ratio FSOI/mesh",
            lo=0.5, hi=0.9,
            source="EXPERIMENTS.md: paper 40.6% saving, measured 25-44%",
            extract=_fig8_total_energy,
        ),
        BandCheck(
            key="table4-membw",
            figure="Table 4",
            title="speedup delta, low -> high memory bandwidth",
            lo=-0.02, hi=0.25,
            source="EXPERIMENTS.md: paper 1.32 -> 1.36, measured +0.02-0.05",
            extract=_table4_membw,
        ),
    )


@dataclass
class ValidationReport:
    """The outcome of one validation pass."""

    results: list[BandResult] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for r in self.results if r.status == "pass")

    @property
    def failed(self) -> int:
        return sum(1 for r in self.results if r.status == "fail")

    @property
    def skipped(self) -> int:
        return sum(1 for r in self.results if r.status == "skipped")

    @property
    def ok(self) -> bool:
        """True when nothing failed (skips do not fail a run)."""
        return self.failed == 0

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "failed": self.failed,
            "skipped": self.skipped,
            "checks": [r.to_dict() for r in self.results],
        }

    _MARKS = {"pass": "PASS", "fail": "FAIL", "skipped": "skip"}

    def render(self) -> str:
        """The terminal report."""
        lines = [
            f"paper-figure validation: {self.passed} pass, "
            f"{self.failed} fail, {self.skipped} skipped"
        ]
        for r in self.results:
            value = "-" if r.value is None else f"{r.value:.3f}"
            lines.append(
                f"  [{self._MARKS[r.status]}] {r.check.figure:<9} "
                f"{r.check.title:<47} {value:>8}  "
                f"band [{r.check.lo:g}, {r.check.hi:g}]"
            )
            if r.detail:
                lines.append(f"         {r.detail}")
            if r.status == "fail":
                lines.append(f"         tolerance source: {r.check.source}")
        return "\n".join(lines)


def validate(
    source,
    checks: Optional[Sequence[BandCheck]] = None,
) -> ValidationReport:
    """Run the band checks over a sweep's results.

    ``source`` may be a :class:`~repro.sweep.SweepReport`, a list of
    :class:`~repro.analytics.LedgerPoint`, a list of raw JSONL record
    dicts, or a ready :class:`RunContext`.
    """
    from repro.analytics.ledger import LedgerPoint
    from repro.sweep.runner import SweepReport

    if isinstance(source, RunContext):
        context = source
    elif isinstance(source, SweepReport):
        context = RunContext.from_outcomes(source.outcomes)
    elif isinstance(source, (list, tuple)) and source \
            and isinstance(source[0], LedgerPoint):
        context = RunContext.from_ledger(source)
    else:
        context = RunContext(tuple(
            (rec["point"], rec["result"])
            for rec in source
            if rec.get("status") == "ok" and rec.get("result") is not None
        ))
    report = ValidationReport()
    for check in checks or default_checks():
        report.results.append(check.run(context))
    return report
