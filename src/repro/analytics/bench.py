"""The performance regression gate: pinned suite, snapshots, compare.

``repro bench`` runs a *pinned* micro+macro suite and writes the
measurements to ``BENCH_<git-sha>.json`` at the repo root — the perf
trajectory of the project, one snapshot per commit.  ``repro bench
--compare`` diffs the fresh snapshot against the most recent previous
one and exits non-zero when any metric regressed past the threshold,
so a PR that makes the simulator slower fails loudly instead of
drifting.

The suite measures three layers:

* **micro** — per-subsystem cost of the cycle loop via the existing
  :class:`~repro.obs.PhaseProfiler`: microseconds per simulated cycle
  attributed to each phase (network, cores, memory, ...), plus overall
  cycles/second, for one pinned FSOI run and one pinned mesh run.
* **macro** — end-to-end wall time of a small pinned sweep, run cold
  into a throwaway cache.
* **cache** — the same sweep re-run warm: wall time and cache-hit rate
  (a hit rate below 1.0 means the content-addressed cache broke).

Metric direction is encoded in the name: ``*_seconds`` and
``*_us_per_cycle`` regress upward, ``*_per_sec`` and ``*_rate`` regress
downward.  Wall-clock noise is real, especially on shared CI — the
default threshold (20% relative) is deliberately generous, and the
compare report prints every metric so a human can spot a trend before
it trips the gate.
"""

from __future__ import annotations

import json
import platform
import subprocess
import tempfile
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional

__all__ = [
    "BenchComparison",
    "BenchSnapshot",
    "compare_snapshots",
    "git_sha",
    "load_snapshot",
    "previous_snapshot",
    "run_bench",
    "snapshot_path",
]

SCHEMA_VERSION = 1

#: Pinned experiment the micro profiles run (stable across PRs so the
#: trajectory stays comparable; bump SCHEMA_VERSION if it must change).
MICRO_APP = "oc"
MICRO_NODES = 16
MICRO_CYCLES = 2_000

#: Networks the micro profiles cover.  ``l0`` (the ideal single-cycle
#: network) is the coherence-dominated point: with transport reduced to
#: a calendar hop, ``profile.l0.coherence.us_per_cycle`` isolates the
#: protocol-dispatch cost the columnar coherence engine targets, free
#: of slot/collision bookkeeping noise.
MICRO_NETWORKS = ("fsoi", "mesh", "l0")

#: Pinned macro sweep grid.
MACRO_APPS = ("ba", "lu")
MACRO_NETWORKS = ("fsoi", "mesh")
MACRO_CYCLES = 800


def git_sha(root=None) -> str:
    """The short git revision, or the code-version tag outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.TimeoutExpired):
        pass
    from repro.sweep.cache import code_version

    return f"src-{code_version()}"


@dataclass
class BenchSnapshot:
    """One pinned-suite measurement, serialized as ``BENCH_<sha>.json``."""

    sha: str
    code_version: str
    created_at: str
    python: str
    metrics: dict[str, float] = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "sha": self.sha,
            "code_version": self.code_version,
            "created_at": self.created_at,
            "python": self.python,
            "metrics": dict(sorted(self.metrics.items())),
        }

    def write(self, root=".") -> Path:
        path = snapshot_path(root, self.sha)
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        return path


def snapshot_path(root, sha: str) -> Path:
    return Path(root) / f"BENCH_{sha}.json"


def load_snapshot(path) -> BenchSnapshot:
    with open(path) as handle:
        data = json.load(handle)
    return BenchSnapshot(
        sha=data["sha"],
        code_version=data.get("code_version", ""),
        created_at=data.get("created_at", ""),
        python=data.get("python", ""),
        metrics={k: float(v) for k, v in data.get("metrics", {}).items()},
        schema=int(data.get("schema", 0)),
    )


def previous_snapshot(root=".", exclude_sha: Optional[str] = None
                      ) -> Optional[BenchSnapshot]:
    """The most recent ``BENCH_*.json`` under ``root`` (by created_at)."""
    candidates = []
    for path in Path(root).glob("BENCH_*.json"):
        try:
            snap = load_snapshot(path)
        except (json.JSONDecodeError, KeyError):
            continue
        if exclude_sha is not None and snap.sha == exclude_sha:
            continue
        candidates.append(snap)
    if not candidates:
        return None
    return max(candidates, key=lambda snap: snap.created_at)


# -- the pinned suite -----------------------------------------------------

def _micro_profile(network: str, cycles: int, metrics: dict[str, float]) -> None:
    from repro.cmp import CmpConfig, CmpSystem
    from repro.obs import profiling

    config = CmpConfig(
        num_nodes=MICRO_NODES, app=MICRO_APP, network=network, seed=0
    )
    with profiling() as profiler:
        CmpSystem(config).run(cycles)
    prefix = f"profile.{network}"
    wall = profiler.wall_seconds
    # Per-cycle figures are per *simulated* cycle (executed + skipped):
    # a fast-forward jump covers its cycles at near-zero cost, and that
    # is exactly the speedup the trajectory should show.
    total = profiler.total_cycles
    if wall > 0 and total:
        metrics[f"{prefix}.cycles_per_sec"] = total / wall
    for phase, row in profiler.report().items():
        metrics[f"{prefix}.{phase}.us_per_cycle"] = (
            1e6 * row["seconds"] / max(1, total)
        )
    # "rate" suffix: higher is better under the direction-aware gate.
    metrics[f"{prefix}.skip_rate"] = profiler.skipped / max(1, total)


def _macro_sweep(cycles: int, workers: int, metrics: dict[str, float]) -> None:
    from repro.sweep import SweepSpec, run_sweep

    spec = SweepSpec(
        apps=MACRO_APPS, networks=MACRO_NETWORKS, cycles=cycles
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache:
        begin = time.perf_counter()
        cold = run_sweep(spec, workers=workers, cache_dir=cache)
        metrics["sweep.cold_seconds"] = time.perf_counter() - begin
        metrics["sweep.skip_rate"] = cold.skip_ratio
        begin = time.perf_counter()
        warm = run_sweep(spec, workers=workers, cache_dir=cache)
        metrics["sweep.warm_seconds"] = time.perf_counter() - begin
        total = len(warm.outcomes) or 1
        metrics["sweep.cache_hit_rate"] = warm.from_cache / total
        if cold.failed or warm.failed:
            raise RuntimeError(
                f"pinned macro sweep failed {cold.failed}+{warm.failed} points"
            )


def run_bench(
    *,
    micro_cycles: int = MICRO_CYCLES,
    macro_cycles: int = MACRO_CYCLES,
    workers: int = 1,
    sha: Optional[str] = None,
) -> BenchSnapshot:
    """Run the pinned micro+macro suite; returns the fresh snapshot."""
    metrics: dict[str, float] = {}
    begin = time.perf_counter()
    for network in MICRO_NETWORKS:
        _micro_profile(network, micro_cycles, metrics)
    _macro_sweep(macro_cycles, workers, metrics)
    metrics["suite.total_seconds"] = time.perf_counter() - begin
    return BenchSnapshot(
        sha=sha or git_sha(),
        code_version=_code_version(),
        created_at=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        python=platform.python_version(),
        metrics=metrics,
    )


def _code_version() -> str:
    from repro.sweep.cache import code_version

    return code_version()


# -- comparison -----------------------------------------------------------

def _lower_is_better(metric: str) -> bool:
    return metric.endswith("seconds") or metric.endswith("us_per_cycle")


#: Absolute deltas below these floors are timer/scheduler jitter, not
#: regressions: a 2 µs/cycle profiling phase or a 1 ms warm-cache replay
#: can move 30% between back-to-back runs of identical code, so the
#: relative threshold alone would make the gate flaky on small metrics.
_NOISE_FLOORS = (
    ("us_per_cycle", 1.0),   # per-phase timer resolution, µs/cycle
    ("seconds", 0.05),       # wall-clock scheduling jitter, s
)


def _noise_floor(metric: str) -> float:
    for suffix, floor in _NOISE_FLOORS:
        if metric.endswith(suffix):
            return floor
    return 0.0


@dataclass(frozen=True)
class CompareRow:
    metric: str
    previous: float
    current: float
    threshold: float

    @property
    def relative(self) -> float:
        """Relative change, signed so that positive = worse."""
        if self.previous == 0:
            return 0.0
        change = (self.current - self.previous) / abs(self.previous)
        return change if _lower_is_better(self.metric) else -change

    @property
    def regressed(self) -> bool:
        if self.relative <= self.threshold:
            return False
        return abs(self.current - self.previous) >= _noise_floor(self.metric)


@dataclass(frozen=True)
class BenchComparison:
    """The diff of two snapshots plus the gate verdict."""

    previous: BenchSnapshot
    current: BenchSnapshot
    rows: tuple[CompareRow, ...]

    @property
    def regressions(self) -> list[CompareRow]:
        return [row for row in self.rows if row.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"bench compare: {self.previous.sha} "
            f"({self.previous.created_at}) -> {self.current.sha}"
        ]
        for row in self.rows:
            mark = "REGRESSED" if row.regressed else "ok"
            direction = "worse" if row.relative > 0 else "better"
            lines.append(
                f"  {row.metric:<38} {row.previous:>12.4g} -> "
                f"{row.current:>12.4g}  "
                f"({100 * abs(row.relative):5.1f}% {direction})"
                f"  {mark}"
            )
        missing = sorted(set(self.previous.metrics) - set(self.current.metrics))
        for metric in missing:
            lines.append(f"  {metric:<38} disappeared from the suite")
        verdict = (
            "PASS: no metric regressed past threshold"
            if self.ok else
            f"FAIL: {len(self.regressions)} metric(s) regressed"
        )
        lines.append(verdict)
        return "\n".join(lines)


def compare_snapshots(
    current: BenchSnapshot,
    previous: BenchSnapshot,
    threshold: float = 0.20,
) -> BenchComparison:
    """Gate ``current`` against ``previous`` at a relative threshold.

    Only metrics present in both snapshots are compared (the suite may
    gain metrics over time); a metric moving in the *better* direction
    never regresses, however large the move.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive: {threshold}")
    rows = tuple(
        CompareRow(
            metric=metric,
            previous=previous.metrics[metric],
            current=current.metrics[metric],
            threshold=threshold,
        )
        for metric in sorted(set(current.metrics) & set(previous.metrics))
    )
    return BenchComparison(previous=previous, current=current, rows=rows)
