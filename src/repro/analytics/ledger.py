"""The run ledger: an on-disk store of sweep runs, queryable across runs.

``run_sweep`` leaves behind per-run artefacts — a JSONL results file
and, optionally, a directory of per-point metrics-registry archives —
but nothing relates one run to the next.  :class:`RunStore` ingests
those artefacts (or a live :class:`~repro.sweep.SweepReport`) into a
single SQLite file keyed by content hash, code version, fault-plan
label and timestamp, so the questions that need *two or more* runs
become one-liners::

    store = RunStore(".repro-ledger.sqlite")
    info = store.ingest_jsonl("results.jsonl", metrics_dir="metrics/")
    fsoi = store.select(network="fsoi", nodes=16)
    print(store.diff(info.run_id, older.run_id).render())

Identity & idempotence
----------------------
A run's default ``run_id`` is a content hash over its point keys and
code version, so re-ingesting the same results file is a no-op update
rather than a duplicate run.  Point rows carry the sweep cache key, so
a point can be correlated with its on-disk cache entry.

Fault plans
-----------
A point that carries a fault plan files under the plan's
:meth:`~repro.faults.FaultPlan.ledger_label` (explicit label, or the
plan's content hash for anonymous plans); fault-free points file under
``""``.  ``select(faults="thermal-3db")`` therefore retrieves one
tolerance-band population across every ingested run.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Iterable, Optional

from repro.sweep.cache import code_version as current_code_version
from repro.sweep.runner import (
    SweepReport,
    load_jsonl,
    metrics_filename,
    timeline_filename,
)
from repro.sweep.spec import SweepPoint, canonical_json

__all__ = ["LedgerPoint", "RunDiff", "RunInfo", "RunStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id       TEXT PRIMARY KEY,
    created_at   TEXT NOT NULL,
    code_version TEXT NOT NULL,
    label        TEXT NOT NULL DEFAULT '',
    source       TEXT NOT NULL DEFAULT '',
    points       INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS points (
    run_id       TEXT NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    idx          INTEGER NOT NULL,
    key          TEXT NOT NULL,
    app          TEXT NOT NULL,
    network      TEXT NOT NULL,
    num_nodes    INTEGER NOT NULL,
    cycles       INTEGER NOT NULL,
    seed         INTEGER NOT NULL,
    optimizations TEXT NOT NULL DEFAULT '',
    variant      TEXT NOT NULL DEFAULT '',
    faults_label TEXT NOT NULL DEFAULT '',
    status       TEXT NOT NULL,
    cached       INTEGER NOT NULL DEFAULT 0,
    elapsed      REAL NOT NULL DEFAULT 0.0,
    error        TEXT,
    point_json   TEXT NOT NULL,
    result_json  TEXT,
    metrics_json TEXT,
    timeline_json TEXT,
    PRIMARY KEY (run_id, idx)
);
CREATE INDEX IF NOT EXISTS points_by_axes
    ON points (network, num_nodes, app, seed);
"""


def _faults_label(point_dict: dict) -> str:
    """The ledger label of the point's fault plan ('' when fault-free)."""
    plan_dict = point_dict.get("extras", {}).get("faults")
    if not plan_dict:
        return ""
    from repro.faults.plan import FaultPlan

    return FaultPlan.from_dict(plan_dict).ledger_label()


@dataclass(frozen=True)
class RunInfo:
    """One ledger row of the ``runs`` table."""

    run_id: str
    created_at: str
    code_version: str
    label: str
    source: str
    points: int


@dataclass(frozen=True)
class LedgerPoint:
    """One ingested sweep point, result and metrics included."""

    run_id: str
    index: int
    key: str
    app: str
    network: str
    num_nodes: int
    cycles: int
    seed: int
    optimizations: str
    variant: str
    faults_label: str
    status: str
    cached: bool
    elapsed: float
    error: Optional[str]
    point: dict
    result: Optional[dict]
    metrics: Optional[dict]
    #: Parsed timeline archive ({"meta", "cycles", "deltas"} — the
    #: load_timeline_jsonl shape) when the run was ingested with a
    #: ``timeline_dir``; ``None`` otherwise.
    timeline: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def sweep_point(self) -> SweepPoint:
        return SweepPoint.from_dict(self.point)

    def label(self) -> str:
        return self.sweep_point().label()


#: Scalar metrics :meth:`RunStore.diff` compares, extracted from the
#: stored result dict (``CmpResults.to_dict()`` shape).
DIFF_METRICS = {
    "ipc": lambda r: r["instructions"] / r["cycles"] if r["cycles"] else 0.0,
    "latency": lambda r: r["latency_breakdown"]["total"],
    "packets_delivered": lambda r: r["packets_delivered"],
    "meta_collision_rate": lambda r: r.get("fsoi", {}).get(
        "meta_collision_rate"
    ),
}


@dataclass(frozen=True)
class DiffRow:
    """One (point, metric) comparison between two runs."""

    point_label: str
    metric: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def relative(self) -> float:
        """``(b - a) / a``; 0.0 when the baseline is zero."""
        return self.delta / self.a if self.a else 0.0


@dataclass(frozen=True)
class RunDiff:
    """Paired comparison of the points two runs share."""

    run_a: str
    run_b: str
    rows: tuple[DiffRow, ...]
    only_a: tuple[str, ...]
    only_b: tuple[str, ...]

    def changed(self, rel_threshold: float = 0.0) -> list[DiffRow]:
        return [
            row for row in self.rows if abs(row.relative) > rel_threshold
        ]

    def render(self, rel_threshold: float = 0.005) -> str:
        """A text table of the metrics that moved more than the threshold."""
        lines = [
            f"diff {self.run_a} -> {self.run_b}: "
            f"{len(self.rows)} shared comparisons, "
            f"{len(self.only_a)} only in A, {len(self.only_b)} only in B"
        ]
        moved = self.changed(rel_threshold)
        if not moved:
            lines.append(f"  no metric moved more than {100 * rel_threshold:g}%")
        for row in moved:
            lines.append(
                f"  {row.point_label:<30} {row.metric:<20} "
                f"{row.a:>10.4g} -> {row.b:>10.4g}  ({100 * row.relative:+.1f}%)"
            )
        return "\n".join(lines)


class RunStore:
    """SQLite-backed cross-run result store (see module docstring)."""

    def __init__(self, path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.executescript(_SCHEMA)
        try:
            # Migrate ledgers created before timeline ingestion existed;
            # a fresh schema raises "duplicate column name", which is
            # exactly the no-op we want.
            self._conn.execute(
                "ALTER TABLE points ADD COLUMN timeline_json TEXT"
            )
        except sqlite3.OperationalError:
            pass

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- ingestion ------------------------------------------------------

    def ingest_jsonl(
        self,
        jsonl_path,
        *,
        run_id: Optional[str] = None,
        label: str = "",
        metrics_dir=None,
        timeline_dir=None,
        code_version: Optional[str] = None,
        created_at: Optional[str] = None,
    ) -> RunInfo:
        """Ingest a ``run_sweep`` JSONL results file as one run.

        Corrupt/truncated lines are skipped (``load_jsonl`` non-strict):
        an interrupted sweep's surviving records still ingest.  With
        ``metrics_dir`` set, each point's metrics-registry archive
        (named by :func:`repro.sweep.metrics_filename`) is attached;
        with ``timeline_dir`` set, its windowed timeline archive
        (named by :func:`repro.sweep.timeline_filename`) likewise.
        """
        records = load_jsonl(jsonl_path, strict=False)
        rows = [
            {
                "index": rec["index"],
                "key": rec["key"],
                "point": rec["point"],
                "status": rec["status"],
                "result": rec.get("result"),
                "error": rec.get("error"),
                "cached": False,
                "elapsed": 0.0,
            }
            for rec in records
        ]
        return self._ingest(
            rows,
            run_id=run_id,
            label=label,
            source=str(jsonl_path),
            metrics_dir=metrics_dir,
            timeline_dir=timeline_dir,
            code_version=code_version,
            created_at=created_at,
        )

    def ingest_report(
        self,
        report: SweepReport,
        *,
        run_id: Optional[str] = None,
        label: str = "",
        metrics_dir=None,
        timeline_dir=None,
        code_version: Optional[str] = None,
        created_at: Optional[str] = None,
    ) -> RunInfo:
        """Ingest a live :class:`~repro.sweep.SweepReport` as one run.

        Unlike the JSONL path this preserves per-point timing and
        cache-hit flags (the JSONL file keeps deterministic fields
        only).
        """
        rows = [
            {
                "index": index,
                "key": outcome.key,
                "point": outcome.point.to_dict(),
                "status": outcome.status,
                "result": outcome.result,
                "error": outcome.error,
                "cached": outcome.cached,
                "elapsed": outcome.elapsed,
            }
            for index, outcome in enumerate(report.outcomes)
        ]
        source = str(report.jsonl_path) if report.jsonl_path else "<in-memory>"
        return self._ingest(
            rows,
            run_id=run_id,
            label=label,
            source=source,
            metrics_dir=metrics_dir,
            timeline_dir=timeline_dir,
            code_version=code_version,
            created_at=created_at,
        )

    def _ingest(
        self, rows, *, run_id, label, source, metrics_dir, timeline_dir,
        code_version, created_at,
    ) -> RunInfo:
        version = code_version or current_code_version()
        if run_id is None:
            digest = hashlib.sha256()
            for row in rows:
                digest.update(row["key"].encode())
                digest.update(b"\0")
            digest.update(version.encode())
            run_id = digest.hexdigest()[:12]
        stamp = created_at or datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        )
        info = RunInfo(
            run_id=run_id,
            created_at=stamp,
            code_version=version,
            label=label,
            source=source,
            points=len(rows),
        )
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO runs VALUES (?, ?, ?, ?, ?, ?)",
                (info.run_id, info.created_at, info.code_version,
                 info.label, info.source, info.points),
            )
            self._conn.execute("DELETE FROM points WHERE run_id = ?", (run_id,))
            for row in rows:
                point = row["point"]
                metrics = self._load_metrics(metrics_dir, point)
                timeline = self._load_timeline(timeline_dir, point)
                self._conn.execute(
                    "INSERT INTO points VALUES "
                    "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        run_id,
                        row["index"],
                        row["key"],
                        point["app"],
                        point["network"],
                        int(point["num_nodes"]),
                        int(point["cycles"]),
                        int(point["seed"]),
                        ",".join(point.get("optimizations", ())),
                        point.get("variant", ""),
                        _faults_label(point),
                        row["status"],
                        int(bool(row["cached"])),
                        float(row["elapsed"]),
                        row["error"],
                        canonical_json(point),
                        canonical_json(row["result"])
                        if row["result"] is not None else None,
                        canonical_json(metrics) if metrics is not None else None,
                        canonical_json(timeline)
                        if timeline is not None else None,
                    ),
                )
        return info

    @staticmethod
    def _load_metrics(metrics_dir, point_dict: dict) -> Optional[dict]:
        if metrics_dir is None:
            return None
        path = Path(metrics_dir) / metrics_filename(
            SweepPoint.from_dict(point_dict)
        )
        try:
            with open(path) as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    @staticmethod
    def _load_timeline(timeline_dir, point_dict: dict) -> Optional[dict]:
        """Parse a point's timeline archive; ``None`` when absent/corrupt.

        Missing archives are expected (cache hits never write one), so
        absence degrades to a NULL column rather than failing the
        ingest — the same policy as :meth:`_load_metrics`.
        """
        if timeline_dir is None:
            return None
        from repro.obs.timeline import load_timeline_jsonl

        path = Path(timeline_dir) / timeline_filename(
            SweepPoint.from_dict(point_dict)
        )
        try:
            return load_timeline_jsonl(path)
        except (FileNotFoundError, ValueError):
            return None

    # -- queries --------------------------------------------------------

    def runs(self) -> list[RunInfo]:
        """Every ingested run, newest first."""
        cursor = self._conn.execute(
            "SELECT run_id, created_at, code_version, label, source, points "
            "FROM runs ORDER BY created_at DESC, run_id"
        )
        return [RunInfo(*row) for row in cursor.fetchall()]

    def run(self, run_id: str) -> RunInfo:
        cursor = self._conn.execute(
            "SELECT run_id, created_at, code_version, label, source, points "
            "FROM runs WHERE run_id = ?", (run_id,)
        )
        row = cursor.fetchone()
        if row is None:
            raise KeyError(f"no run {run_id!r} in {self.path}")
        return RunInfo(*row)

    _FILTER_COLUMNS = {
        "app": "app",
        "network": "network",
        "nodes": "num_nodes",
        "num_nodes": "num_nodes",
        "cycles": "cycles",
        "seed": "seed",
        "variant": "variant",
        "faults": "faults_label",
        "faults_label": "faults_label",
        "status": "status",
    }

    def select(
        self, run_id: Optional[str] = None, **filters: Any
    ) -> list[LedgerPoint]:
        """Points matching the filters, across runs unless ``run_id`` set.

        >>> # store.select(network="fsoi", nodes=16)
        >>> # store.select(run_id, app="oc", faults="thermal-3db")
        """
        clauses, params = [], []
        if run_id is not None:
            clauses.append("run_id = ?")
            params.append(run_id)
        for name, value in filters.items():
            column = self._FILTER_COLUMNS.get(name)
            if column is None:
                raise ValueError(
                    f"unknown filter {name!r}; choose from "
                    f"{sorted(set(self._FILTER_COLUMNS))}"
                )
            clauses.append(f"{column} = ?")
            params.append(value)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        cursor = self._conn.execute(
            "SELECT run_id, idx, key, app, network, num_nodes, cycles, seed, "
            "optimizations, variant, faults_label, status, cached, elapsed, "
            "error, point_json, result_json, metrics_json, timeline_json "
            f"FROM points {where} ORDER BY run_id, idx",
            params,
        )
        out = []
        for row in cursor.fetchall():
            out.append(LedgerPoint(
                run_id=row[0], index=row[1], key=row[2], app=row[3],
                network=row[4], num_nodes=row[5], cycles=row[6], seed=row[7],
                optimizations=row[8], variant=row[9], faults_label=row[10],
                status=row[11], cached=bool(row[12]), elapsed=row[13],
                error=row[14],
                point=json.loads(row[15]),
                result=json.loads(row[16]) if row[16] else None,
                metrics=json.loads(row[17]) if row[17] else None,
                timeline=json.loads(row[18]) if row[18] else None,
            ))
        return out

    def diff(self, run_a: str, run_b: str) -> RunDiff:
        """Metric-by-metric comparison of the points two runs share.

        Points pair by their full configuration (the canonical point
        JSON), so only like-for-like experiments are compared; points
        present in one run only are reported, not silently dropped.
        """
        a_points = {
            canonical_json(p.point): p for p in self.select(run_a) if p.ok
        }
        b_points = {
            canonical_json(p.point): p for p in self.select(run_b) if p.ok
        }
        rows: list[DiffRow] = []
        for identity in sorted(set(a_points) & set(b_points)):
            pa, pb = a_points[identity], b_points[identity]
            for metric, extract in DIFF_METRICS.items():
                va, vb = extract(pa.result), extract(pb.result)
                if va is None or vb is None:
                    continue
                rows.append(DiffRow(
                    point_label=pa.label(), metric=metric,
                    a=float(va), b=float(vb),
                ))
        return RunDiff(
            run_a=run_a,
            run_b=run_b,
            rows=tuple(rows),
            only_a=tuple(sorted(
                a_points[k].label() for k in set(a_points) - set(b_points)
            )),
            only_b=tuple(sorted(
                b_points[k].label() for k in set(b_points) - set(a_points)
            )),
        )
