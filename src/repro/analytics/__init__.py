"""Cross-run analytics: run ledger, figure validation, perf gating.

Where :mod:`repro.obs` watches a *single* run from the inside, this
package looks *across* runs:

* :class:`RunStore` (``ledger.py``) — an SQLite ledger of sweep runs,
  ingested from ``run_sweep`` JSONL files or live reports, keyed by
  content hash, code version and fault-plan label, with ``select`` /
  ``diff`` queries.
* :func:`validate` (``validation.py``) — declarative tolerance bands
  that check a run against the paper's published curves (Figures 3, 4,
  6, 7, 8; Table 4), reusing the analytical models and the exact
  tolerances of ``tests/core/test_analytical_crossval.py``.
* :func:`run_bench` / :func:`compare_snapshots` (``bench.py``) — the
  pinned micro+macro perf suite behind ``repro bench``; snapshots land
  in ``BENCH_<git-sha>.json`` and ``--compare`` gates slowdowns.
* :class:`SweepTelemetry` / :class:`ETAEstimator` (``telemetry.py``) —
  live progress for long sweeps: done/cache/failed counters, worker
  heartbeats and a monotone ETA estimate.
* :class:`ReportBundle` (``report.py``) — terminal / Markdown / HTML
  rendering for ``repro report``.

See ``docs/analytics.md`` for the ledger schema, the validation-band
format and the bench workflow.
"""

from repro.analytics.bench import (
    BenchComparison,
    BenchSnapshot,
    compare_snapshots,
    git_sha,
    load_snapshot,
    previous_snapshot,
    run_bench,
    snapshot_path,
)
from repro.analytics.ledger import LedgerPoint, RunDiff, RunInfo, RunStore
from repro.analytics.report import ReportBundle, ResultRow
from repro.analytics.telemetry import ETAEstimator, SweepTelemetry, format_eta
from repro.analytics.validation import (
    BandCheck,
    BandResult,
    RunContext,
    ValidationReport,
    default_checks,
    validate,
)

__all__ = [
    "BandCheck",
    "BandResult",
    "BenchComparison",
    "BenchSnapshot",
    "ETAEstimator",
    "LedgerPoint",
    "ReportBundle",
    "ResultRow",
    "RunContext",
    "RunDiff",
    "RunInfo",
    "RunStore",
    "SweepTelemetry",
    "ValidationReport",
    "compare_snapshots",
    "default_checks",
    "format_eta",
    "git_sha",
    "load_snapshot",
    "previous_snapshot",
    "run_bench",
    "snapshot_path",
    "validate",
]
