"""Live sweep telemetry: ETA estimation and a one-line progress display.

:class:`ETAEstimator` turns the per-point wall times a sweep has
already paid into a remaining-time estimate; :class:`SweepTelemetry`
plugs into :func:`repro.sweep.run_sweep`'s ``progress``/``heartbeat``
callbacks and renders a live ``done/total · ok/cache/failed · ETA``
line (the CLI's ``repro sweep --live`` and ``repro report``).

The estimator deliberately stays simple — arithmetic mean of completed
point wall times, divided by the worker count — because it must hold
two properties the tests pin down:

* **never negative**, whatever mix of cached (instant) and computed
  points it has seen;
* **monotone non-increasing** under constant per-point wall time: with
  every point costing the same, each completion can only move the ETA
  down (by exactly ``mean / workers``).

Cached points complete in microseconds; feeding their near-zero wall
times into the mean would wildly underestimate the remaining *computed*
points, so :meth:`ETAEstimator.record` files cached completions
separately and the mean covers executed points only.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO

from repro.sweep.runner import PointOutcome, SweepHeartbeat

__all__ = ["ETAEstimator", "SweepTelemetry", "format_eta"]


class ETAEstimator:
    """Remaining-wall-time estimate from completed-point wall times."""

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ValueError(f"need at least one worker: {workers}")
        self.workers = workers
        self._executed_seconds = 0.0
        self._executed = 0
        self._cached = 0

    def record(self, seconds: float, cached: bool = False) -> None:
        """File one completed point's wall time."""
        if cached:
            self._cached += 1
            return
        self._executed += 1
        self._executed_seconds += max(0.0, float(seconds))

    @property
    def samples(self) -> int:
        return self._executed

    @property
    def mean_point_seconds(self) -> float:
        """Mean wall time of the executed (non-cached) points so far."""
        if not self._executed:
            return 0.0
        return self._executed_seconds / self._executed

    def eta_seconds(self, done: int, total: int) -> Optional[float]:
        """Estimated seconds until the sweep finishes, or ``None``.

        ``None`` until the first executed point completes (cached
        completions carry no timing signal).  Always ``>= 0.0`` and,
        for constant per-point wall times, non-increasing in ``done``.
        """
        if done < 0 or total < done:
            raise ValueError(f"bad progress counts: done={done}, total={total}")
        if not self._executed:
            return None
        remaining = total - done
        return max(0.0, remaining * self.mean_point_seconds / self.workers)


def format_eta(seconds: Optional[float]) -> str:
    """``1h02m`` / ``3m20s`` / ``45s`` / ``--`` for display."""
    if seconds is None:
        return "--"
    seconds = max(0.0, seconds)
    if seconds >= 3600:
        return f"{int(seconds // 3600)}h{int(seconds % 3600 // 60):02d}m"
    if seconds >= 60:
        return f"{int(seconds // 60)}m{int(seconds % 60):02d}s"
    return f"{seconds:.0f}s"


class SweepTelemetry:
    """Aggregates sweep progress and renders the ``--live`` line.

    Wire it up by passing the two bound methods to ``run_sweep``::

        telemetry = SweepTelemetry(total=len(points), workers=4)
        run_sweep(spec, workers=4,
                  progress=telemetry.on_progress,
                  heartbeat=telemetry.on_heartbeat)

    ``live=True`` redraws one carriage-return line per update;
    ``live=False`` keeps the counters (for a caller that prints its own
    per-point lines but still wants the summary/ETA).
    """

    def __init__(
        self,
        total: int,
        workers: int = 1,
        live: bool = False,
        stream: Optional[TextIO] = None,
    ):
        self.total = total
        self.done = 0
        self.ok = 0
        self.failed = 0
        self.from_cache = 0
        #: Simulation-loop counters summed over completed points, so the
        #: live line can show how much of the sweep is being
        #: fast-forwarded (a high skip fraction explains per-point wall
        #: times — and hence the ETA — dropping mid-sweep).
        self.executed_cycles = 0
        self.skipped_cycles = 0
        self.in_flight: tuple[str, ...] = ()
        self.elapsed = 0.0
        self.live = live
        self.stream = stream if stream is not None else sys.stdout
        self.eta = ETAEstimator(workers=workers)
        self._line_dirty = False

    # -- run_sweep callbacks -------------------------------------------

    def on_progress(self, done: int, total: int, outcome: PointOutcome) -> None:
        self.done = done
        self.total = total
        if outcome.ok:
            self.ok += 1
        else:
            self.failed += 1
        if outcome.cached:
            self.from_cache += 1
        if outcome.ok and outcome.result is not None:
            loop = outcome.result.get("loop", {})
            self.executed_cycles += loop.get("executed_cycles", 0)
            self.skipped_cycles += loop.get("skipped_cycles", 0)
        self.eta.record(outcome.elapsed, cached=outcome.cached)
        if self.live:
            self._redraw()

    def on_heartbeat(self, pulse: SweepHeartbeat) -> None:
        self.in_flight = pulse.in_flight
        self.elapsed = pulse.elapsed
        if self.live:
            self._redraw()

    # -- rendering ------------------------------------------------------

    def line(self) -> str:
        """The current progress line (no trailing newline)."""
        eta = self.eta.eta_seconds(self.done, self.total)
        parts = [
            f"[{self.done}/{self.total}]",
            f"ok {self.ok - self.from_cache}",
            f"cache {self.from_cache}",
            f"failed {self.failed}",
            f"eta {format_eta(eta)}",
        ]
        total_cycles = self.executed_cycles + self.skipped_cycles
        if self.skipped_cycles and total_cycles:
            parts.append(f"ff {100 * self.skipped_cycles / total_cycles:.0f}%")
        if self.in_flight and self.done < self.total:
            shown = ", ".join(self.in_flight[:2])
            if len(self.in_flight) > 2:
                shown += f", +{len(self.in_flight) - 2}"
            parts.append(f"running {shown}")
        return "  ".join(parts)

    def _redraw(self) -> None:
        self.stream.write("\r\x1b[2K" + self.line())
        self.stream.flush()
        self._line_dirty = True

    def close(self) -> None:
        """Terminate the live line (newline) if one was drawn."""
        if self._line_dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._line_dirty = False
