"""Waveguided WDM feasibility analysis (paper §2).

The paper's second section argues that the mainstream alternative —
planar waveguides with micro-ring WDM — faces compounding physical
costs on-chip: every ring on a shared waveguide adds insertion loss,
every ring needs thermal wavelength stabilization, and waveguide
crossings constrain topology.  This package turns those arguments into
numbers: :class:`repro.wdm.design.WdmBusDesign` computes the optical
power budget, ring count, thermal-tuning power and achievable aggregate
bandwidth of a shared-bus WDM interconnect as functions of node and
wavelength count, for direct comparison against the FSOI link whose
loss is a constant 2.6 dB regardless of scale.
"""

from repro.wdm.design import WdmBusDesign, WdmFeasibility

__all__ = ["WdmBusDesign", "WdmFeasibility"]
