"""The shared-bus WDM link budget (paper §2's challenges, quantified).

Topology modeled: a snake/ring waveguide visiting all N nodes.  Each
node carries, per wavelength it uses, a micro-ring modulator and a
micro-ring drop filter.  A worst-case signal:

1. enters from the (external, multi-wavelength) laser through a coupler;
2. propagates the full waveguide length;
3. passes *every other* ring on the bus off-resonance, paying the
   paper's 0.01-0.1 dB per device ("using multiple wavelengths
   exponentially amplifies the losses" — linear in dB);
4. crosses other waveguides where the floorplan demands;
5. is dropped into a photodetector.

Feasibility = received power at the worst drop ≥ receiver sensitivity.
The other §2 costs are side outputs: total ring count (fabrication
yield), thermal tuning power (each ring is actively stabilized), and
external laser wall-plug power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.units import CM, MW

__all__ = ["WdmBusDesign", "WdmFeasibility"]


@dataclass(frozen=True)
class WdmFeasibility:
    """The §2 scorecard of one WDM design point."""

    worst_case_loss_db: float
    link_margin_db: float
    total_rings: int
    tuning_power: float
    laser_power: float
    aggregate_bandwidth: float

    @property
    def closes(self) -> bool:
        return self.link_margin_db >= 0.0


@dataclass(frozen=True)
class WdmBusDesign:
    """A shared-waveguide WDM interconnect design point.

    Parameters (defaults representative of the paper's §2 citations)
    ----------
    num_nodes:
        Nodes on the shared waveguide.
    wavelengths:
        WDM channels carried (each needs a distinct ring pair per node
        that uses it).
    channel_rate:
        Per-wavelength modulation rate, bits/s (10 Gbps typical for
        carrier-depletion ring modulators of the era).
    ring_passby_loss_db:
        Insertion loss of passing one off-resonance ring (paper:
        0.01-0.1 dB per device; default mid-range).
    drop_loss_db:
        Loss of the final resonant drop into the receiver.
    waveguide_loss_db_per_cm:
        Propagation loss of the silicon waveguide.
    crossing_loss_db / num_crossings:
        Waveguide-crossing loss and how many the floorplan forces on
        the worst path (§2: crossings "severely limit the topology").
    coupler_loss_db:
        Fiber/grating coupling from the external laser, once.
    laser_power_per_channel:
        Optical power injected per wavelength, watts.
    receiver_sensitivity_dbm:
        Minimum received power for the BER target.
    ring_tuning_power:
        Thermal stabilization per ring, watts (paper: resistive thermal
        bias "substantially increases ... static energy consumption").
    laser_efficiency:
        Wall-plug efficiency of the external multi-wavelength source.
    """

    num_nodes: int = 16
    wavelengths: int = 16
    channel_rate: float = 10e9
    ring_passby_loss_db: float = 0.03
    drop_loss_db: float = 1.0
    waveguide_loss_db_per_cm: float = 1.5
    waveguide_length: float = 8 * CM
    crossing_loss_db: float = 0.1
    num_crossings: int = 8
    coupler_loss_db: float = 1.0
    laser_power_per_channel: float = 2 * MW
    receiver_sensitivity_dbm: float = -17.0
    ring_tuning_power: float = 2 * MW
    laser_efficiency: float = 0.1

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError(f"need at least 2 nodes: {self.num_nodes}")
        if self.wavelengths < 1:
            raise ValueError(f"need at least 1 wavelength: {self.wavelengths}")
        if not 0 < self.laser_efficiency <= 1:
            raise ValueError(f"laser efficiency out of (0,1]: {self.laser_efficiency}")

    # -- device inventory ---------------------------------------------------

    @property
    def rings_per_node(self) -> int:
        """Modulator + drop filter per wavelength at each node."""
        return 2 * self.wavelengths

    @property
    def total_rings(self) -> int:
        return self.num_nodes * self.rings_per_node

    @property
    def rings_on_bus(self) -> int:
        """Rings a worst-case signal passes by (all but its own drop)."""
        return self.total_rings - 1

    # -- §2 loss budget -----------------------------------------------------

    def worst_case_loss_db(self) -> float:
        """End-to-end loss of the worst wavelength/drop combination."""
        return (
            self.coupler_loss_db
            + self.waveguide_loss_db_per_cm * (self.waveguide_length / CM)
            + self.ring_passby_loss_db * self.rings_on_bus
            + self.crossing_loss_db * self.num_crossings
            + self.drop_loss_db
        )

    def link_margin_db(self) -> float:
        """Received power minus sensitivity at the worst drop, dB."""
        launch_dbm = 10 * math.log10(self.laser_power_per_channel / 1e-3)
        received_dbm = launch_dbm - self.worst_case_loss_db()
        return received_dbm - self.receiver_sensitivity_dbm

    # -- §2 power and bandwidth ------------------------------------------------

    def tuning_power(self) -> float:
        """Static thermal stabilization power for every ring, watts."""
        return self.total_rings * self.ring_tuning_power

    def laser_power(self) -> float:
        """Wall-plug power of the external source, watts."""
        return self.wavelengths * self.laser_power_per_channel / self.laser_efficiency

    def aggregate_bandwidth(self) -> float:
        """Raw shared-medium bandwidth, bits/s."""
        return self.wavelengths * self.channel_rate

    # -- scorecard ---------------------------------------------------------------

    def evaluate(self) -> WdmFeasibility:
        return WdmFeasibility(
            worst_case_loss_db=self.worst_case_loss_db(),
            link_margin_db=self.link_margin_db(),
            total_rings=self.total_rings,
            tuning_power=self.tuning_power(),
            laser_power=self.laser_power(),
            aggregate_bandwidth=self.aggregate_bandwidth(),
        )

    def max_wavelengths(self) -> int:
        """Largest channel count whose worst-case link still closes.

        The §2 punchline: because every added wavelength adds 2N rings
        to the shared bus, the loss budget caps the channel count —
        and therefore the aggregate bandwidth — as N grows.

        >>> WdmBusDesign(num_nodes=64).max_wavelengths() < (
        ...     WdmBusDesign(num_nodes=16).max_wavelengths())
        True
        """
        from dataclasses import replace

        count = 0
        for wavelengths in range(1, 257):
            candidate = replace(self, wavelengths=wavelengths)
            if candidate.link_margin_db() < 0:
                break
            count = wavelengths
        return count
