"""Chip-wide synchronous clocking budget (paper §4.2).

The FSOI design assumes "the whole chip is synchronous (e.g., using
optical clock distribution), no clock recovery circuit is needed".
That assumption has a budget behind it: every receiver samples a
40 Gbps eye, so the *total* timing uncertainty — clock skew between any
transmitter/receiver pair, clock jitter, link random jitter, and
residual path skew after serializer padding — must fit inside the 25 ps
bit period with margin.

This module adds those contributions up, the way a link designer's
timing-closure spreadsheet would, and reports whether chip-synchronous
sampling closes.  An optically distributed clock (broadcast from a
single source through the same free-space layer) is modeled as a
near-zero-skew distribution with only receiver-local conversion skew.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.link import OpticalLink

__all__ = ["ClockDistribution", "TimingBudget"]


@dataclass(frozen=True)
class TimingBudget:
    """The timing-closure scorecard for one sampling point."""

    bit_period: float
    skew: float
    total_jitter_rms: float
    residual_path_skew: float
    eye_fraction_required: float = 0.55

    @property
    def uncertainty(self) -> float:
        """Deterministic terms plus 7 sigma of random jitter, seconds.

        7 sigma bounds the jitter-induced error rate near the link's
        1e-10 BER budget so timing errors don't dominate it.
        """
        return self.skew + self.residual_path_skew + 7.0 * self.total_jitter_rms

    @property
    def closes(self) -> bool:
        """Whether the eye opening leaves the required sampling window."""
        return self.uncertainty <= (1.0 - self.eye_fraction_required) * self.bit_period

    @property
    def margin(self) -> float:
        """Leftover time after the budget, seconds (negative = fails)."""
        return (1.0 - self.eye_fraction_required) * self.bit_period - self.uncertainty


@dataclass(frozen=True)
class ClockDistribution:
    """A chip-wide clock source and its distribution quality.

    Parameters
    ----------
    optical:
        Optical broadcast distribution (the paper's suggestion) versus a
        conventional electrical global H-tree.
    source_jitter_rms:
        RMS jitter of the clock source itself, seconds.
    electrical_skew / optical_skew:
        Worst pairwise skew of each distribution style: tens of ps for
        a global electrical tree at 45 nm; sub-ps for a free-space
        broadcast (all paths equalized by construction) plus the
        local O/E conversion spread.
    """

    optical: bool = True
    source_jitter_rms: float = 0.3e-12
    electrical_skew: float = 15e-12
    optical_skew: float = 1.0e-12
    link: OpticalLink = field(default_factory=OpticalLink)

    @property
    def skew(self) -> float:
        return self.optical_skew if self.optical else self.electrical_skew

    #: Resolution of the transmitter digital delay lines that absorb the
    #: sub-bit residue after whole-bit serializer padding (§4.2 fn. 2).
    delay_line_resolution: float = 1.5e-12

    def residual_path_skew(self) -> float:
        """Path-length skew left after padding + delay-line trimming.

        Serializer padding handles whole bit periods, the digital delay
        lines trim the rest down to their resolution (§4.2 fn. 2).
        """
        return self.delay_line_resolution

    def total_jitter_rms(self) -> float:
        """Clock jitter and link random jitter add in quadrature."""
        return math.hypot(self.source_jitter_rms, self.link.random_jitter_rms())

    def budget(self) -> TimingBudget:
        """The §4.2 synchronous-sampling budget at the receivers.

        >>> ClockDistribution(optical=True).budget().closes
        True
        >>> ClockDistribution(optical=False).budget().closes
        False
        """
        return TimingBudget(
            bit_period=self.link.bit_time,
            skew=self.skew,
            total_jitter_rms=self.total_jitter_rms(),
            residual_path_skew=self.residual_path_skew(),
        )

    def max_data_rate(self) -> float:
        """Largest bit rate at which the budget still closes, bits/s.

        Sweeps the rate downward from the device ceiling in 1 Gbps
        steps; the electrical tree's 15 ps skew caps it far below the
        optical distribution's.
        """
        from dataclasses import replace

        rate = 80e9
        while rate >= 1e9:
            candidate = replace(self, link=replace(self.link, data_rate=rate))
            if candidate.budget().closes:
                return rate
            rate -= 1e9
        return 0.0
