"""The paper's analytical models of collision behaviour.

Three results from §4.3 are implemented here, each used for early design
decisions before touching the cycle-level simulator (the paper validates
the same methodology: "experimental results agree well with the trend of
theoretical calculations"):

1. :func:`collision_probability` — Figure 3's closed form.  With ``N``
   nodes each transmitting with probability ``p`` per slot to a uniform
   random destination, and ``R`` receivers per node statically shared by
   ``n = (N-1)/R`` senders each, the per-node collision probability is::

       P_coll = 1 - [ (1-q)^n + n q (1-q)^(n-1) ]^R,   q = p/(N-1)

2. :func:`resolution_delay` — Figure 4's numerical model: the expected
   collision-resolution delay of a meta packet under the exponential
   back-off policy (window ``W * B^(r-1)``), including the 2-cycle
   confirmation latency and a background transmission rate ``G``.
   Like the paper we evaluate it numerically (a vectorized Monte-Carlo
   over the abstract slotted channel — no protocol machinery involved).

3. :func:`optimal_meta_bandwidth` — the §4.3.1 bandwidth-allocation
   model ``C1/B_M + C2/B_M^2 + C3/(1-B_M) + C4/(1-B_M)^2`` whose
   minimum (with the paper's workload constants) sits at B_M ~ 0.285,
   motivating the 3-VCSEL meta / 6-VCSEL data split.

:func:`pathological_expected_retries` reproduces the §4.3.2 worst-case
numbers (63 simultaneous senders): ~8.2e10 expected retries with a fixed
window of 3, versus tens of retries with exponential back-off.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import minimize_scalar

__all__ = [
    "collision_probability",
    "resolution_delay",
    "optimal_meta_bandwidth",
    "bandwidth_latency",
    "pathological_expected_retries",
    "simulate_burst_resolution",
    "DEFAULT_BANDWIDTH_CONSTANTS",
]


def collision_probability(p: float, num_nodes: int = 16, receivers: int = 2) -> float:
    """Per-node, per-slot collision probability (Figure 3's equation).

    Parameters
    ----------
    p:
        Transmission probability of each node per slot.
    num_nodes:
        N; the result depends on it only weakly (as the paper notes).
    receivers:
        R, receivers per node per lane; senders are statically
        partitioned, ``n = (N-1)/R`` sharing each receiver.

    >>> collision_probability(0.0) == 0.0
    True
    >>> collision_probability(0.2, 16, 2) > collision_probability(0.2, 16, 4)
    True
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"transmission probability out of [0,1]: {p}")
    if num_nodes < 3:
        raise ValueError(f"need at least 3 nodes: {num_nodes}")
    if receivers < 1:
        raise ValueError(f"need at least 1 receiver: {receivers}")
    n = (num_nodes - 1) / receivers
    q = p / (num_nodes - 1)
    no_collision_one_receiver = (1 - q) ** n + n * q * (1 - q) ** (n - 1)
    # Clamp: at tiny p the subtraction can round to -1e-16.
    return min(1.0, max(0.0, 1.0 - no_collision_one_receiver**receivers))


def normalized_collision_probability(
    p: float, num_nodes: int = 16, receivers: int = 2
) -> float:
    """Collision probability normalised to ``p`` — Figure 3's y-axis."""
    if p <= 0.0:
        return 0.0
    return collision_probability(p, num_nodes, receivers) / p


def monte_carlo_collision_probability(
    p: float,
    num_nodes: int = 16,
    receivers: int = 2,
    trials: int = 50_000,
    seed: int = 17,
) -> float:
    """Monte-Carlo estimate of the Figure 3 channel (paper §7.3).

    The paper validates its receiver-count decision three ways —
    closed form, Monte Carlo, and detailed simulation; this is the
    middle tier: draw one slot at a time (every node transmits with
    probability ``p`` to a uniform random peer; senders are statically
    partitioned over the receivers by rank) and count slots in which
    some receiver of node 0 sees more than one beam.

    >>> abs(monte_carlo_collision_probability(0.15)
    ...     - collision_probability(0.15)) < 0.005
    True
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"transmission probability out of [0,1]: {p}")
    if num_nodes < 3 or receivers < 1:
        raise ValueError("need N >= 3 and R >= 1")
    rng = np.random.default_rng(seed)
    n = num_nodes
    # Senders 1..N-1 aimed at node 0; rank of sender s is s - 1.
    sender_receiver = (np.arange(1, n) - 1) % receivers
    collisions = 0
    chunk = 10_000
    remaining = trials
    while remaining > 0:
        batch = min(chunk, remaining)
        remaining -= batch
        sending = rng.random((batch, n - 1)) < p
        # Each sending node picks a uniform destination among the other
        # N-1 nodes; it targets node 0 with probability 1/(N-1).
        targets_zero = sending & (rng.random((batch, n - 1)) < 1.0 / (n - 1))
        for r in range(receivers):
            hits = targets_zero[:, sender_receiver == r].sum(axis=1)
            collisions += int(np.count_nonzero(hits > 1))
    # A slot may collide on several receivers; counting per receiver
    # slightly overestimates the per-node event rate, matching the
    # closed form's independent-receiver approximation.
    return collisions / trials


# -- Figure 4: collision-resolution delay ------------------------------------


def _draw_backoff_slots(
    rng: np.random.Generator, retries: np.ndarray, start_window: float, base: float
) -> np.ndarray:
    """Vectorized back-off draw: slot offsets for trials at given retry counts.

    Retry ``r`` (1-based) draws uniformly from ``{1 .. ceil(W * B^(r-1))}``.
    """
    windows = np.ceil(start_window * base ** (retries - 1)).astype(np.int64)
    windows = np.maximum(windows, 1)
    return 1 + (rng.random(len(windows)) * windows).astype(np.int64)


def resolution_delay(
    start_window: float,
    base: float,
    background_rate: float = 0.01,
    num_colliders: int = 2,
    slot_cycles: int = 2,
    confirmation_delay: int = 2,
    trials: int = 20_000,
    seed: int = 1234,
    max_rounds: int = 200,
) -> float:
    """Expected collision-resolution delay of a tagged meta packet, cycles.

    The model (matching the paper's numerical computation): a tagged
    packet just collided with ``num_colliders - 1`` peers; everyone
    detects the collision ``confirmation_delay`` cycles after the failed
    slot, then retries in a random slot of its (growing) back-off
    window.  In every slot, a fresh *background* packet also contends
    with probability ``background_rate`` (regular transmission by other
    nodes, G in Figure 4).  The delay is counted from the end of the
    collided slot to the start of the tagged packet's successful slot.

    Returns the mean over ``trials`` Monte-Carlo trials.  For
    ``start_window=2.7, base=1.1`` this lands near the paper's computed
    7.26 cycles.
    """
    if start_window < 1.0:
        raise ValueError(f"start window must be >= 1 slot: {start_window}")
    if base < 1.0:
        raise ValueError(f"back-off base must be >= 1: {base}")
    if num_colliders < 2:
        raise ValueError(f"a collision needs >= 2 senders: {num_colliders}")
    if not 0.0 <= background_rate < 1.0:
        raise ValueError(f"background rate out of [0,1): {background_rate}")

    rng = np.random.default_rng(seed)
    # Per-trial state, all in *slots* relative to the collision slot end.
    # ready[t, s] = absolute slot at which sender s of trial t next transmits.
    detect_slots = int(math.ceil(confirmation_delay / slot_cycles))
    retries = np.ones((trials, num_colliders), dtype=np.int64)
    next_tx = np.empty((trials, num_colliders), dtype=np.int64)
    for s in range(num_colliders):
        next_tx[:, s] = detect_slots + _draw_backoff_slots(
            rng, retries[:, s], start_window, base
        )

    resolved = np.full(trials, -1, dtype=np.int64)  # tagged success slot
    active = np.ones(trials, dtype=bool)            # tagged not yet through
    alive = np.ones((trials, num_colliders), dtype=bool)

    for _ in range(max_rounds):
        if not active.any():
            break
        # The tagged sender is column 0.  Find, per active trial, the slot
        # at which the tagged sender transmits next, and who else hits it.
        tagged_slot = next_tx[:, 0]
        same_slot = alive & (next_tx == tagged_slot[:, None])
        competitors = same_slot.sum(axis=1) - 1  # peers in the tagged slot
        background = rng.random(trials) < background_rate
        success = active & (competitors == 0) & ~background

        resolved[success] = tagged_slot[success]
        active &= ~success

        # Everyone who transmitted in the tagged slot and failed backs off
        # again (including the tagged sender).  Peers who transmitted in
        # *other* slots are resolved independently: approximate by letting
        # them succeed and leave with probability (1 - background_rate).
        failed_here = same_slot & active[:, None]
        retries = retries + failed_here
        redraw = detect_slots + _draw_backoff_slots(
            rng, retries.reshape(-1), start_window, base
        ).reshape(trials, num_colliders)
        next_tx = np.where(failed_here, tagged_slot[:, None] + redraw, next_tx)

        elsewhere = alive & ~same_slot & (next_tx <= tagged_slot[:, None])
        leaves = elsewhere & (rng.random((trials, num_colliders)) >= background_rate)
        alive &= ~leaves
        retransmit = elsewhere & ~leaves
        retries = retries + retransmit
        redraw2 = detect_slots + _draw_backoff_slots(
            rng, retries.reshape(-1), start_window, base
        ).reshape(trials, num_colliders)
        next_tx = np.where(retransmit, next_tx + redraw2, next_tx)

    # Unresolved trials (beyond max_rounds) are rare; clamp to last slot seen.
    resolved = np.where(resolved < 0, next_tx[:, 0], resolved)
    return float(resolved.mean()) * slot_cycles


# -- Bandwidth allocation (B_M = 0.285) --------------------------------------

#: (C1, C2, C3, C4) of the paper's latency model, calibrated so the
#: optimum falls at the paper's B_M ~ 0.285.  C1/C2 weight meta-lane
#: serialization and collision-resolution terms, C3/C4 the data lane's
#: (data packets are 5x longer and dominate the critical path of misses).
DEFAULT_BANDWIDTH_CONSTANTS = (1.0, 0.05, 6.0, 0.9)


def bandwidth_latency(
    meta_fraction: float,
    constants: tuple[float, float, float, float] = DEFAULT_BANDWIDTH_CONSTANTS,
) -> float:
    """§4.3.1 latency model: C1/B + C2/B^2 + C3/(1-B) + C4/(1-B)^2."""
    if not 0.0 < meta_fraction < 1.0:
        raise ValueError(f"meta bandwidth fraction must be in (0,1): {meta_fraction}")
    c1, c2, c3, c4 = constants
    b = meta_fraction
    return c1 / b + c2 / b**2 + c3 / (1 - b) + c4 / (1 - b) ** 2


def bandwidth_constants(
    meta_packets: int,
    data_packets: int,
    meta_slot: int = 2,
    data_slot: int = 5,
    meta_criticality: float = 1.0,
    data_criticality: float = 5.0,
    collision_weight: float = 0.1,
) -> tuple[float, float, float, float]:
    """Derive the latency-model constants from a measured packet mix.

    The paper notes C1..C4 are "a function of statistics related to
    application behavior" (packet composition, critical-path shares,
    expected retries) "that can be calculated analytically".  This
    derivation weighs each lane by traffic share x serialization length
    x critical-path weight, with the quadratic collision terms scaled by
    ``collision_weight`` x slot length (longer packets take longer to
    resolve):

        C1 = w_m s_m k_m          C2 = cw w_m s_m^2 k_m
        C3 = w_d s_d k_d          C4 = cw w_d s_d^2 k_d

    ``data_criticality`` defaults to 5: a blocked load waits out the
    whole data reply, while request/ack legs overlap other work.  With
    the measured ~2:1 meta:data mix of the 16-node system, these
    defaults land the optimum at the paper's B_M ~ 0.285.
    """
    if meta_packets < 0 or data_packets < 0 or meta_packets + data_packets == 0:
        raise ValueError("need a non-empty packet mix")
    total = meta_packets + data_packets
    w_meta = meta_packets / total
    w_data = data_packets / total
    c1 = w_meta * meta_slot * meta_criticality
    c2 = collision_weight * w_meta * meta_slot**2 * meta_criticality
    c3 = w_data * data_slot * data_criticality
    c4 = collision_weight * w_data * data_slot**2 * data_criticality
    return (c1, c2, c3, c4)


def optimal_meta_bandwidth(
    constants: tuple[float, float, float, float] = DEFAULT_BANDWIDTH_CONSTANTS,
) -> float:
    """The B_M minimising :func:`bandwidth_latency` (paper: ~0.285).

    >>> 0.25 < optimal_meta_bandwidth() < 0.32
    True
    """
    result = minimize_scalar(
        lambda b: bandwidth_latency(b, constants),
        bounds=(1e-3, 1 - 1e-3),
        method="bounded",
    )
    return float(result.x)


# -- §4.3.2 pathological burst ------------------------------------------------


def pathological_expected_retries(num_senders: int, window: int) -> float:
    """Expected retries for one packet with a *fixed* back-off window.

    With ``k`` senders each picking uniformly among ``w`` slots every
    round, a tagged sender gets through a round with probability
    ``(1 - 1/w)^(k-1)`` (no peer picks its slot), so the expected number
    of retries is its reciprocal.  For the paper's 64-node burst
    (k=63, w=3) this is ~8.2e10 — the virtual livelock motivating
    exponential back-off.

    >>> pathological_expected_retries(63, 3) > 1e10
    True
    """
    if num_senders < 2:
        raise ValueError(f"need >= 2 senders: {num_senders}")
    if window < 2:
        raise ValueError(f"window must be >= 2 slots: {window}")
    p_alone = (1.0 - 1.0 / window) ** (num_senders - 1)
    return 1.0 / p_alone


def simulate_burst_resolution(
    num_senders: int,
    start_window: float,
    base: float,
    slot_cycles: int = 2,
    confirmation_delay: int = 2,
    trials: int = 200,
    seed: int = 99,
    max_rounds: int = 10_000,
) -> tuple[float, float]:
    """Monte-Carlo of the §4.3.2 burst: ``num_senders`` packets at once.

    All senders target the same receiver simultaneously and resolve via
    exponential back-off.  Returns ``(mean retries, mean cycles)`` until
    the *first* packet gets through — the paper's "about 26 retries
    (416 cycles)" for B=1.1 and "about 5 retries (199 cycles)" for B=2
    in a 64-node system.
    """
    if num_senders < 2:
        raise ValueError(f"need >= 2 senders: {num_senders}")
    rng = np.random.default_rng(seed)
    detect_slots = int(math.ceil(confirmation_delay / slot_cycles))

    total_retries = 0.0
    total_slots = 0.0
    for _ in range(trials):
        retries = np.ones(num_senders, dtype=np.int64)
        next_tx = detect_slots + _draw_backoff_slots(
            rng, retries, start_window, base
        )
        for _round in range(max_rounds):
            # Only the earliest occupied slot is final: senders backing
            # off from it can only land later, so its membership cannot
            # grow.  Process slots strictly in time order.
            earliest = next_tx.min()
            members = np.flatnonzero(next_tx == earliest)
            if len(members) == 1:
                winner = int(members[0])
                total_retries += float(retries[winner])
                total_slots += float(earliest)
                break
            # Collision in the earliest slot: everyone there backs off.
            retries[members] += 1
            redraw = detect_slots + _draw_backoff_slots(
                rng, retries[members], start_window, base
            )
            next_tx[members] = earliest + redraw
        else:  # pragma: no cover - requires pathological parameters
            total_retries += float(retries.max())
            total_slots += float(next_tx.min())
    return total_retries / trials, (total_slots / trials) * slot_cycles
