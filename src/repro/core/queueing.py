"""Queueing-theory companions to the cycle simulator.

The FSOI lane is a *slotted random-access channel* — the paper
explicitly grounds its slotting in Roberts' slotted ALOHA (ref [40]).
This module provides the classic closed forms, specialized to the
paper's receiver-partitioned channel, so designers can bound behaviour
before simulating:

* throughput and the 1/e capacity ceiling of slotted ALOHA;
* the FSOI lane's per-node goodput given the static sender partition
  (N-1 senders split over R receivers);
* the saturating offered load;
* an M/D/1 waiting-time estimate for the source queue (deterministic
  slot-length service), which predicts the simulator's queuing-delay
  component at low-to-moderate loads.

All results are validated against :class:`repro.core.network.FsoiNetwork`
in ``tests/core/test_queueing.py``.
"""

from __future__ import annotations

import math

from scipy.optimize import minimize_scalar

__all__ = [
    "aloha_throughput",
    "aloha_capacity",
    "lane_success_probability",
    "lane_goodput",
    "saturation_load",
    "md1_waiting_time",
    "lane_queuing_delay",
]


def aloha_throughput(offered_load: float) -> float:
    """Classic slotted-ALOHA throughput ``S = G e^{-G}``.

    ``offered_load`` (G) counts attempted transmissions per slot on one
    shared channel; the Poisson approximation holds for many senders.

    >>> round(aloha_throughput(1.0), 4)
    0.3679
    """
    if offered_load < 0:
        raise ValueError(f"negative offered load: {offered_load}")
    return offered_load * math.exp(-offered_load)


def aloha_capacity() -> float:
    """The 1/e ceiling of slotted ALOHA."""
    return 1.0 / math.e


def lane_success_probability(
    p: float, num_nodes: int = 16, receivers: int = 2
) -> float:
    """P(one node's transmission survives) on the partitioned lane.

    With each of the other ``n - 1`` co-sharers of the target receiver
    transmitting toward it with probability ``q = p / (N - 1)``, the
    tagged transmission succeeds iff none of them fires:
    ``(1 - q)^(n - 1)``, ``n = (N - 1) / R``.

    >>> lane_success_probability(0.0) == 1.0
    True
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"transmission probability out of [0,1]: {p}")
    if num_nodes < 3 or receivers < 1:
        raise ValueError("need N >= 3 and R >= 1")
    n = (num_nodes - 1) / receivers
    q = p / (num_nodes - 1)
    return (1.0 - q) ** max(0.0, n - 1)


def lane_goodput(p: float, num_nodes: int = 16, receivers: int = 2) -> float:
    """Successful transmissions per node per slot."""
    return p * lane_success_probability(p, num_nodes, receivers)


def saturation_load(num_nodes: int = 16, receivers: int = 2) -> float:
    """The p maximizing :func:`lane_goodput`.

    For the paper's configuration this sits far above the operating
    loads (a few percent), which is *why* accepting collisions is safe:
    the channel is run deep inside its stable region.
    """
    result = minimize_scalar(
        lambda p: -lane_goodput(p, num_nodes, receivers),
        bounds=(1e-6, 1.0),
        method="bounded",
    )
    return float(result.x)


def md1_waiting_time(arrival_rate: float, service_time: float) -> float:
    """Mean M/D/1 queue wait, time units of ``service_time``'s unit.

    ``W = rho * s / (2 (1 - rho))`` with utilization
    ``rho = arrival_rate * service_time``.  Deterministic service is the
    right model for fixed-length slots.
    """
    if arrival_rate < 0 or service_time <= 0:
        raise ValueError("need arrival_rate >= 0 and service_time > 0")
    rho = arrival_rate * service_time
    if rho >= 1.0:
        return math.inf
    return rho * service_time / (2.0 * (1.0 - rho))


def lane_queuing_delay(
    p: float,
    slot_cycles: int,
    num_nodes: int = 16,
    receivers: int = 2,
) -> float:
    """Predicted mean source-queue delay on a lane, cycles.

    Combines the M/D/1 wait at the sender's serializer (service = one
    slot, arrivals ``p`` per slot) with the mean residual wait for the
    next slot boundary (``(slot - 1) / 2``), inflating service by the
    collision-retransmission factor ``1 / P(success)``.
    """
    if slot_cycles < 1:
        raise ValueError(f"slot length must be >= 1: {slot_cycles}")
    success = lane_success_probability(p, num_nodes, receivers)
    effective_service = slot_cycles / max(success, 1e-9)
    arrival_rate = p / slot_cycles  # packets per cycle
    wait = md1_waiting_time(arrival_rate, effective_service)
    slot_alignment = (slot_cycles - 1) / 2.0
    return wait + slot_alignment
