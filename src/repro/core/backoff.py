"""Exponential back-off retransmission policy (paper §4.3.2).

After a sender infers a collision (missing confirmation), it retransmits
in a random slot within a window that grows exponentially with the retry
count: retry ``r`` uses window ``W * B^(r-1)`` slots.  The paper tunes
``W = 2.7`` and ``B = 1.1`` via the Figure 4 numerical model — doubling
(the classic Ethernet B=2) is an over-correction because the
pathological all-to-one burst is a very remote possibility, while a
small B gives a decidedly lower resolution delay in the common case.

Neither W nor B need be integers; the drawn slot count always is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.obs.trace import TRACE

__all__ = ["BackoffPolicy"]


@dataclass(frozen=True)
class BackoffPolicy:
    """The retransmission window schedule.

    Parameters
    ----------
    start_window:
        W, the first retry's window in slots (paper default 2.7).
    base:
        B, the exponential growth base (paper default 1.1).  ``base=1``
        degenerates to a fixed window, the §4.3.2 livelock-prone case.
    max_window:
        Safety clamp on the window, slots.  Keeps the tail bounded in
        degenerate configurations; large enough to never bind for the
        paper's operating points.
    """

    start_window: float = 2.7
    base: float = 1.1
    max_window: float = 4096.0

    def __post_init__(self) -> None:
        if self.start_window < 1.0:
            raise ValueError(f"start window must be >= 1 slot: {self.start_window}")
        if self.base < 1.0:
            raise ValueError(f"base must be >= 1: {self.base}")
        if self.max_window < self.start_window:
            raise ValueError("max_window smaller than start_window")

    def window(self, retry: int) -> float:
        """Window size (slots, possibly fractional) for 1-based ``retry``.

        >>> BackoffPolicy(2.7, 1.1).window(1)
        2.7
        """
        if retry < 1:
            raise ValueError(f"retry count is 1-based: {retry}")
        return min(self.start_window * self.base ** (retry - 1), self.max_window)

    def span(self, retry: int) -> int:
        """Integer slot span of the retry's window: ``ceil(window)``, >= 1.

        The single source of truth shared by :meth:`draw_delay_slots`
        and :meth:`expected_delay_slots` — draws are uniform over
        ``{1 .. span(retry)}``.

        >>> BackoffPolicy(2.7, 1.1).span(1)
        3
        """
        return max(1, int(math.ceil(self.window(retry))))

    def draw_delay_slots(self, rng: np.random.Generator, retry: int) -> int:
        """Random integer slot delay in ``{1 .. span(retry)}``."""
        draw = 1 + int(rng.integers(0, self.span(retry)))
        if TRACE.enabled:
            TRACE.emit(
                "backoff_draw", cat="backoff",
                retry=retry, window=self.window(retry), slots=draw,
            )
        return draw

    def expected_delay_slots(self, retry: int) -> float:
        """Mean of :meth:`draw_delay_slots` for a given retry."""
        return (1 + self.span(retry)) / 2.0
