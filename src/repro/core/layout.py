"""Chip-level optical layout (paper Figure 1c).

The paper's top view places each node's VCSEL arrays at the center of
its core and the photodetectors on the periphery, with fixed
micro-mirrors folding a free-space path between every (transmitter,
receiver) pair.  This module computes the per-pair geometry for a
square-mesh floorplan and answers the layout-level questions the paper
treats qualitatively:

* does *every* pair's link close (worst-case loss is the corner-to-
  corner diagonal that Table 1 budgets for)?
* how much serializer padding does each pair need so the chip stays
  synchronous (§4.2 footnote 2: skews of a few bit times)?
* how many fixed mirrors does the full mesh of beams require
  (§3.2: at most n² mirrors)?
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.core.link import OpticalLink
from repro.optics.path import FreeSpacePath
from repro.util.units import CM

__all__ = ["ChipLayout"]


@dataclass(frozen=True)
class ChipLayout:
    """A square CMP floorplan with per-node optical sites.

    Parameters
    ----------
    num_nodes:
        Node count; must be a perfect square (mesh floorplan).
    chip_width:
        Die edge length, meters (2 cm x 2 cm in the paper's link
        budget, putting the worst diagonal at ~2.0-2.8 cm).
    link:
        The reference link whose optics are rescaled per pair.
    mirror_bounces:
        Mirror reflections per hop (up, across, down).
    """

    num_nodes: int = 16
    chip_width: float = 1.4 * CM
    link: OpticalLink = field(default_factory=OpticalLink)
    mirror_bounces: int = 2

    def __post_init__(self) -> None:
        side = int(round(math.sqrt(self.num_nodes)))
        if side * side != self.num_nodes:
            raise ValueError(f"floorplan needs a square node count: {self.num_nodes}")
        if self.chip_width <= 0:
            raise ValueError(f"chip width must be positive: {self.chip_width}")

    @property
    def side(self) -> int:
        return int(round(math.sqrt(self.num_nodes)))

    def position(self, node: int) -> tuple[float, float]:
        """Center of ``node``'s VCSEL array on the die, meters."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        pitch = self.chip_width / self.side
        x = (node % self.side + 0.5) * pitch
        y = (node // self.side + 0.5) * pitch
        return x, y

    def distance(self, src: int, dst: int) -> float:
        """Free-space hop length between two nodes, meters.

        The beam travels up to the mirror plane, across the lateral
        separation, and back down; the vertical legs are small compared
        to the lateral span and are folded into the mirror bounces.
        """
        if src == dst:
            raise ValueError("no optical hop to self")
        sx, sy = self.position(src)
        dx, dy = self.position(dst)
        return math.hypot(sx - dx, sy - dy)

    def path_for(self, src: int, dst: int) -> FreeSpacePath:
        """The reference path rescaled to this pair's distance."""
        return replace(self.link.path, distance=self.distance(src, dst))

    def link_for(self, src: int, dst: int) -> OpticalLink:
        return replace(self.link, path=self.path_for(src, dst))

    # -- layout-level analyses ---------------------------------------------

    def worst_pair(self) -> tuple[int, int]:
        """The most distant (and hence lossiest) node pair."""
        return 0, self.num_nodes - 1  # opposite corners of the floorplan

    def all_links_close(self, ber_target: float = 1e-9) -> bool:
        """Whether the worst-case pair still meets the BER target.

        Loss is monotone in distance, so checking the corner pair
        suffices.

        >>> ChipLayout().all_links_close()
        True
        """
        src, dst = self.worst_pair()
        return self.link_for(src, dst).ber() <= ber_target

    def padding_bits(self, src: int, dst: int) -> int:
        """Serializer padding for this pair against the slowest path."""
        worst = self.path_for(*self.worst_pair())
        return self.link_for(src, dst).serializer_padding_bits(worst)

    def max_padding_bits(self) -> int:
        """Worst padding any pair needs (§4.2 fn. 2: ~3 bit times).

        The shortest hop (adjacent nodes) needs the most padding.
        """
        return self.padding_bits(0, 1)

    def mirror_count(self) -> int:
        """Fixed mirrors for a full mesh of beams: bounces per ordered pair.

        Bounded by the paper's n-squared estimate times the per-hop
        bounce count.
        """
        pairs = self.num_nodes * (self.num_nodes - 1)
        return pairs * self.mirror_bounces

    def loss_table(self) -> dict[tuple[int, int], float]:
        """Per-pair optical loss in dB (symmetric; src < dst only)."""
        out = {}
        for src in range(self.num_nodes):
            for dst in range(src + 1, self.num_nodes):
                out[(src, dst)] = self.path_for(src, dst).loss_db()
        return out
