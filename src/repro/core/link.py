"""The end-to-end single-bit FSOI link (paper §4.2, Figure 2, Table 1).

Assembles the photonic substrate — VCSEL, free-space path, photodetector,
receiver noise — into the link whose parameters Table 1 reports, and adds
the timing/power quantities the architecture layers consume:

* the 40 Gbps channel rate vs. the 3.3 GHz core clock gives **12 bits
  per CPU cycle per VCSEL** (Table 3), the basis of lane serialization;
* transmit/standby/receive powers feed the energy model
  (:mod:`repro.power.optical`);
* path-length skew between links must stay within the serializer's
  padding ability (§4.2 footnote 2: up to ~3 communication cycles).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.optics.noise import ReceiverNoise
from repro.optics.path import FreeSpacePath
from repro.optics.photodetector import Photodetector
from repro.optics.vcsel import Vcsel
from repro.util.units import MW, PS

__all__ = ["OpticalLink", "LinkPower"]


@dataclass(frozen=True)
class LinkPower:
    """Power figures of one transceiver (Table 1's Power Consumption).

    The driver/receiver numbers come from the paper's circuit
    simulations (DAVINCI, 45 nm ITRS), which we take as given constants;
    the VCSEL electrical power is recomputed from the device model.
    """

    laser_driver: float = 6.3 * MW
    vcsel: float = 0.96 * MW
    transmitter_standby: float = 0.43 * MW
    receiver: float = 4.2 * MW

    @property
    def transmitter_active(self) -> float:
        """Total transmit-side power while sending, watts."""
        return self.laser_driver + self.vcsel

    def energy_per_bit(self, data_rate: float) -> float:
        """Transmit energy per bit at ``data_rate`` bits/s, joules.

        ~0.18 pJ/bit at 40 Gbps — the integrated-VCSEL advantage the
        paper leans on versus commercial external lasers.
        """
        if data_rate <= 0:
            raise ValueError(f"data rate must be positive: {data_rate}")
        return self.transmitter_active / data_rate


@dataclass(frozen=True)
class OpticalLink:
    """One transmitter -> free space -> receiver bit channel.

    Defaults reproduce the Table 1 operating point: 40 Gbps OOK at
    980 nm across the 2 cm chip diagonal.
    """

    vcsel: Vcsel = field(default_factory=Vcsel)
    path: FreeSpacePath = field(default_factory=FreeSpacePath)
    detector: Photodetector = field(default_factory=Photodetector)
    noise: ReceiverNoise = field(default_factory=ReceiverNoise)
    power: LinkPower = field(default_factory=LinkPower)
    data_rate: float = 40e9
    core_clock: float = 3.3e9

    def __post_init__(self) -> None:
        if self.data_rate <= 0 or self.core_clock <= 0:
            raise ValueError("data rate and core clock must be positive")

    # -- optical budget ----------------------------------------------------

    def received_powers(self) -> tuple[float, float]:
        """(P1, P0) optical powers arriving at the detector, watts."""
        p1, p0 = self.vcsel.ook_levels()
        t = self.path.transmission()
        return p1 * t, p0 * t

    def photocurrents(self) -> tuple[float, float]:
        """(I1, I0) detector currents for the two OOK symbols, amperes."""
        p1, p0 = self.received_powers()
        return self.detector.photocurrent(p1), self.detector.photocurrent(p0)

    def q_factor(self) -> float:
        i1, i0 = self.photocurrents()
        return self.noise.q_factor(i1, i0)

    def snr_db(self) -> float:
        """Link SNR, dB (Table 1: 7.5 dB; our Gaussian model gives ~8)."""
        i1, i0 = self.photocurrents()
        return self.noise.snr_db(i1, i0)

    def ber(self) -> float:
        """Bit-error rate (Table 1: 1e-10).

        >>> OpticalLink().ber() < 1e-8
        True
        """
        i1, i0 = self.photocurrents()
        return self.noise.ber(i1, i0)

    # -- timing --------------------------------------------------------------

    @property
    def bit_time(self) -> float:
        """One communication (mini-)cycle, seconds (25 ps at 40 Gbps)."""
        return 1.0 / self.data_rate

    @property
    def bits_per_cpu_cycle(self) -> int:
        """Serializer throughput per VCSEL per core cycle (Table 3: 12)."""
        return int(self.data_rate // self.core_clock)

    def random_jitter_rms(self) -> float:
        """Cycle-to-cycle random jitter from amplitude noise, seconds.

        Amplitude-to-time conversion at the limiting amplifier's
        threshold crossing: ``sigma_t = t_rise * sigma_I / (I1 - I0)``,
        and cycle-to-cycle jitter is sqrt(2) of that (adjacent edges are
        independent).  Table 1 quotes 1.7 ps (which also folds in
        deterministic jitter our model does not track).
        """
        i1, i0 = self.photocurrents()
        rise_time = 0.35 / self.noise.bandwidth
        sigma_edge = rise_time * self.noise.level_sigma(i1) / (i1 - i0)
        return math.sqrt(2.0) * sigma_edge

    def serializer_padding_bits(self, shortest_path: FreeSpacePath) -> int:
        """Bits of padding needed to align this link to the slowest path.

        The paper keeps the chip synchronous by padding faster paths in
        the serializer (§4.2 fn. 2); skews are a few bit times.
        """
        skew = self.path.skew_versus(shortest_path)
        return int(math.ceil(skew / self.bit_time))

    def feasible(self) -> bool:
        """Whether the device chain supports the configured data rate."""
        return self.vcsel.supports_data_rate(self.data_rate)

    # -- reporting -------------------------------------------------------------

    def table1(self) -> dict[str, float]:
        """The measured analogue of the paper's Table 1."""
        i1, i0 = self.photocurrents()
        return {
            "transmission_distance_cm": self.path.distance * 100.0,
            "optical_wavelength_nm": self.path.wavelength * 1e9,
            "optical_path_loss_db": self.path.loss_db(),
            "tx_microlens_aperture_um": self.path.tx_lens.aperture * 1e6,
            "rx_microlens_aperture_um": self.path.rx_lens.aperture * 1e6,
            "vcsel_aperture_um": self.vcsel.aperture * 1e6,
            "vcsel_threshold_ma": self.vcsel.threshold_current * 1e3,
            "vcsel_parasitic_ohm": self.vcsel.parasitic_resistance,
            "vcsel_parasitic_ff": self.vcsel.parasitic_capacitance * 1e15,
            "extinction_ratio": self.vcsel.extinction_ratio,
            "pd_responsivity_a_per_w": self.detector.responsivity,
            "pd_capacitance_ff": self.detector.capacitance * 1e15,
            "tia_bandwidth_ghz": self.noise.bandwidth / 1e9,
            "tia_gain_v_per_a": self.noise.transimpedance_gain,
            "data_rate_gbps": self.data_rate / 1e9,
            "snr_db": self.snr_db(),
            "ber": self.ber(),
            "jitter_ps": self.random_jitter_rms() / PS,
            "laser_driver_mw": self.power.laser_driver / MW,
            "vcsel_mw": self.power.vcsel / MW,
            "tx_standby_mw": self.power.transmitter_standby / MW,
            "receiver_mw": self.power.receiver / MW,
            "photocurrent_one_ua": i1 * 1e6,
            "photocurrent_zero_ua": i0 * 1e6,
        }
