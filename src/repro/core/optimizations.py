"""The §5 optimizations: switches and receiver-side machinery.

Four mechanisms, each independently switchable so the ablation benches
(Figures 9/10) can isolate their effect:

* **confirmation_ack** (§5.1) — the confirmation of an invalidation's
  delivery doubles as the acknowledgment, eliminating explicit ack
  packets.  Implemented in the coherence layer; the flag lives here.
* **llsc_subscription** (§5.1) — boolean synchronization variables are
  disseminated as single bits over reserved confirmation mini-cycles
  (an update protocol for lock words).  Implemented in the coherence
  layer against :class:`repro.core.confirmation.MiniCycleReservations`.
* **request_spacing** (§5.2) — a requester predicts the data-lane slot
  its reply will land in and reserves it at its own receiver; if the
  slot is taken it delays issuing the request, trading a small
  scheduling delay for fewer data collisions.
* **resolution_hints** (§5.2) — on a data-lane collision the receiver
  guesses the colliding senders (PID/~PID superset intersected with the
  nodes it expects replies from), beams a next-slot grant to one winner
  over the confirmation channel, and the losers back off from the slot
  after next.
* **split_writeback** (§5.2) — writeback data is announced with a meta
  packet first so the home node can expect (and schedule around) the
  data packet, minimizing *unexpected* data arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["OptimizationConfig", "SlotReservations", "ExpectedReplies"]


@dataclass(frozen=True)
class OptimizationConfig:
    """Which of the §5 optimizations are active."""

    confirmation_ack: bool = False
    llsc_subscription: bool = False
    request_spacing: bool = False
    resolution_hints: bool = False
    split_writeback: bool = False

    @classmethod
    def none(cls) -> "OptimizationConfig":
        """The §4 baseline design, no optimizations."""
        return cls()

    @classmethod
    def all(cls) -> "OptimizationConfig":
        """The full §5 design."""
        return cls(
            confirmation_ack=True,
            llsc_subscription=True,
            request_spacing=True,
            resolution_hints=True,
            split_writeback=True,
        )


@dataclass
class SlotReservations:
    """Per-receiver-node reservation table of future data-lane slots.

    Slots are indexed by absolute slot number (cycle // slot_cycles).
    Stale entries are pruned as the clock passes them.
    """

    horizon_slots: int = 64
    _reserved: set[int] = field(default_factory=set)

    def reserve(self, slot_index: int) -> bool:
        """Reserve ``slot_index`` if free; True on success."""
        if slot_index in self._reserved:
            return False
        self._reserved.add(slot_index)
        return True

    def is_reserved(self, slot_index: int) -> bool:
        return slot_index in self._reserved

    def next_free(self, slot_index: int) -> int:
        """First unreserved slot at or after ``slot_index``."""
        candidate = slot_index
        while candidate in self._reserved:
            candidate += 1
        return candidate

    def prune(self, current_slot: int) -> None:
        """Drop reservations older than the horizon behind ``current_slot``."""
        floor = current_slot - self.horizon_slots
        self._reserved = {s for s in self._reserved if s >= floor}

    @property
    def live_count(self) -> int:
        return len(self._reserved)


@dataclass
class ExpectedReplies:
    """Which nodes a given node currently awaits data-packet replies from.

    Used by the resolution hint: when the receiver sees a data collision
    it intersects the PID/~PID candidate superset with this set, making
    the sender guess right ~94% of the time (paper §7.3).
    Counts, not booleans — several replies may be pending from one node.
    """

    _pending: dict[int, int] = field(default_factory=dict)

    def expect(self, src: int) -> None:
        self._pending[src] = self._pending.get(src, 0) + 1

    def fulfil(self, src: int) -> None:
        count = self._pending.get(src, 0)
        if count <= 1:
            self._pending.pop(src, None)
        else:
            self._pending[src] = count - 1

    def expected_nodes(self) -> set[int]:
        return set(self._pending)

    def is_expected(self, src: int) -> bool:
        return src in self._pending
