"""The paper's contribution: the free-space optical interconnect (FSOI).

Subpackage map (paper section in parentheses):

* :mod:`repro.core.link` — the single-bit optical link: device chain,
  link budget, BER, power (§4.2, Table 1, Figure 2).
* :mod:`repro.core.lanes` — lane widths and slotting (§4.3.2, Table 3).
* :mod:`repro.core.layout` — the Figure 1c chip floorplan: per-pair hop
  geometry, link closure across the die, skew padding, mirror budget.
* :mod:`repro.core.backoff` — exponential back-off retransmission
  (§4.3.2, Figure 4).
* :mod:`repro.core.confirmation` — the collision-free confirmation
  channel and its mini-cycle reservations (§4.3.2, §5.1).
* :mod:`repro.core.phase_array` — optical-phase-array beam steering for
  large systems (§4.1).
* :mod:`repro.core.analytical` — the paper's closed-form / numerical
  models: collision probability (Fig. 3), collision-resolution delay
  (Fig. 4), optimal meta/data bandwidth split (B_M = 0.285).
* :mod:`repro.core.network` — the cycle-level FSOI network simulator
  implementing :class:`repro.net.Interconnect`.
* :mod:`repro.core.optimizations` — the §5 optimization switches and
  receiver-side machinery (request spacing, resolution hints).
"""

from repro.core.analytical import (
    bandwidth_constants,
    collision_probability,
    monte_carlo_collision_probability,
    optimal_meta_bandwidth,
    pathological_expected_retries,
    resolution_delay,
)
from repro.core.backoff import BackoffPolicy
from repro.core.clocking import ClockDistribution
from repro.core.confirmation import ConfirmationChannel
from repro.core.lanes import LaneConfig
from repro.core.layout import ChipLayout
from repro.core.link import LinkPower, OpticalLink
from repro.core.network import FsoiConfig, FsoiNetwork
from repro.core.optimizations import OptimizationConfig
from repro.core.phase_array import PhaseArray
from repro.core.queueing import (
    aloha_throughput,
    lane_goodput,
    lane_queuing_delay,
    lane_success_probability,
    saturation_load,
)

__all__ = [
    "bandwidth_constants",
    "collision_probability",
    "monte_carlo_collision_probability",
    "optimal_meta_bandwidth",
    "pathological_expected_retries",
    "resolution_delay",
    "BackoffPolicy",
    "ClockDistribution",
    "ConfirmationChannel",
    "LaneConfig",
    "ChipLayout",
    "LinkPower",
    "OpticalLink",
    "FsoiConfig",
    "FsoiNetwork",
    "OptimizationConfig",
    "PhaseArray",
    "aloha_throughput",
    "lane_goodput",
    "lane_queuing_delay",
    "lane_success_probability",
    "saturation_load",
]
