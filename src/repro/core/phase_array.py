"""Optical phase array (OPA) beam steering (paper §4.1, Figure 1b).

For large systems, dedicating a VCSEL lane per destination stops
scaling — ``N * (N-1) * k`` lasers.  Instead a group of VCSELs forms a
phase array: a single *steerable* beam per lane, so the per-node laser
count is constant in N.  The cost is a steering (re-)setup: the paper's
64-node configuration charges **one cycle** to re-program the phase
controller register when the destination changes; consecutive packets
to the same destination pay nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PhaseArray"]


@dataclass
class PhaseArray:
    """Steering state of one node's transmit lane.

    Parameters
    ----------
    setup_cycles:
        Re-steering penalty when the target changes (Table 3: 1 cycle).
    """

    setup_cycles: int = 1
    current_target: int = -1
    retargets: int = 0
    sends: int = 0

    def __post_init__(self) -> None:
        if self.setup_cycles < 0:
            raise ValueError(f"negative setup cycles: {self.setup_cycles}")

    def steer(self, target: int) -> int:
        """Point the array at ``target``; returns the setup penalty in cycles.

        >>> opa = PhaseArray()
        >>> opa.steer(3)        # first use: must steer
        1
        >>> opa.steer(3)        # already pointed there
        0
        """
        if target < 0:
            raise ValueError(f"invalid target: {target}")
        self.sends += 1
        if target == self.current_target:
            return 0
        self.current_target = target
        self.retargets += 1
        return self.setup_cycles

    @property
    def retarget_fraction(self) -> float:
        """Fraction of sends that required re-steering."""
        return self.retargets / self.sends if self.sends else 0.0
