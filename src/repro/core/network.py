"""The cycle-level FSOI network simulator (paper §4.1–4.3, §5.2).

This is the executable form of the paper's interconnect: a fully
distributed quasi-crossbar with **no arbitration and no packet relay**.
Every node owns a meta lane and a data lane.  At each lane's slot
boundary every node may start transmitting one packet; simultaneous
transmissions that land on the same *receiver* of the same destination
collide — the photodetector sees the OR of the light pulses, the
PID/~PID header flags the corruption, no confirmation comes back, and
the senders retry under exponential back-off.

Timeline of one transmission (slot length ``L``, confirmation delay 2):

====================  =========================================
cycle ``s``           slot starts; serializer begins
cycle ``s + L - 1``   last bits received ("received in cycle n")
cycle ``n + 1``       decode / error check (rx overhead)
cycle ``n + 2``       confirmation arrives back at the sender
====================  =========================================

A phase-array system (64 nodes) charges one extra cycle whenever a
lane's beam must be re-steered to a new destination.

The simulator knows every slot's outcome immediately, so sender-side
collision *detection* is modeled by scheduling the sender's reaction at
the cycle it would have noticed the missing confirmation — no state is
leaked across nodes ahead of time.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.core.backoff import BackoffPolicy
from repro.core.confirmation import ConfirmationChannel
from repro.core.lanes import LaneConfig
from repro.core.optimizations import (
    ExpectedReplies,
    OptimizationConfig,
    SlotReservations,
)
from repro.core.phase_array import PhaseArray
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.net.interface import Interconnect
from repro.obs.trace import TRACE
from repro.net.packet import (
    LaneKind,
    Packet,
    candidate_senders,
    collision_detected,
    merged_header,
    merged_one_hot,
    one_hot_senders,
)
from repro.util.events import CycleCalendar
from repro.util.rng import RngHub

__all__ = ["FsoiConfig", "FsoiNetwork"]


def _noop() -> None:
    pass


@dataclass(frozen=True)
class FsoiConfig:
    """Configuration of the FSOI network.

    Parameters
    ----------
    num_nodes:
        N.  16 (dedicated lasers) and 64 (phase array) in the paper.
    lanes:
        Lane widths / slotting / receiver counts (Table 3 defaults).
    backoff:
        Retransmission policy (W=2.7, B=1.1 defaults).
    optimizations:
        §5 optimization switches.
    phase_array:
        Use a steerable transmitter per lane instead of dedicated
        VCSEL arrays per destination.
    phase_setup_cycles:
        Re-steering penalty (Table 3: 1 cycle).
    rx_overhead:
        Decode / error-check cycles between last bit and delivery.
    packet_error_rate:
        Probability a *solo* packet is corrupted anyway (signaling
        errors; the collision mechanism absorbs them, §4.3.1).
    reply_latency_estimate:
        Request-spacing prediction of request -> data-reply latency,
        cycles (§5.2; Figure 5 shows the real distribution is tightly
        concentrated, so a point estimate captures most of the win).
    seed:
        Root seed for the network's private RNG streams.
    """

    num_nodes: int = 16
    lanes: LaneConfig = field(default_factory=LaneConfig)
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    optimizations: OptimizationConfig = field(default_factory=OptimizationConfig.none)
    phase_array: bool = False
    phase_setup_cycles: int = 1
    rx_overhead: int = 1
    packet_error_rate: float = 0.0
    reply_latency_estimate: int = 30
    #: Paper footnote 7: for small-scale networks, a bit-vector (one-hot)
    #: PID encoding lets the receiver identify colliders definitively,
    #: making the §5.2 resolution hint always correct.
    one_hot_pid: bool = False
    #: §4.3.2 ablation: with ``slotted=False`` transmissions may start on
    #: any cycle and collide on *overlap* (pure ALOHA); the paper's
    #: design constrains starts to slot boundaries (slotted ALOHA, ref
    #: [40]), roughly halving the vulnerable window.
    slotted: bool = True
    #: Optional fault schedule (repro.faults).  ``None`` or an empty
    #: plan is guaranteed passive: no injector is built, no fault
    #: counters exist, and no extra randomness is drawn.
    faults: FaultPlan | None = None
    seed: int = 0

    @property
    def id_bits(self) -> int:
        """Bits of PID in the header (and of ~PID)."""
        return max(1, math.ceil(math.log2(self.num_nodes)))


class _RetxEntry:
    """A packet waiting out its back-off window."""

    __slots__ = ("release", "seq", "packet")

    def __init__(self, release: int, seq: int, packet: Packet):
        self.release = release
        self.seq = seq
        self.packet = packet


class _LaneState:
    """Per-(node, lane) transmit state."""

    __slots__ = ("node", "queue", "retx", "opa", "retx_seq")

    def __init__(self, node: int, phase_array: bool, setup_cycles: int):
        self.node = node
        self.queue: deque[Packet] = deque()
        self.retx: list[_RetxEntry] = []
        self.opa = PhaseArray(setup_cycles) if phase_array else None
        self.retx_seq = 0


class FsoiNetwork(Interconnect):
    """Cycle-accurate model of the free-space optical interconnect."""

    def __init__(self, config: FsoiConfig, rng: RngHub | None = None):
        super().__init__(config.num_nodes)
        self.config = config
        self.lanes = config.lanes
        rng = rng if rng is not None else RngHub(config.seed)
        self._backoff_rng = rng.stream("fsoi.backoff")
        self._error_rng = rng.stream("fsoi.errors")
        self._hint_rng = rng.stream("fsoi.hints")

        plan = config.faults
        if plan is not None and not plan.is_empty():
            if not config.slotted:
                raise ValueError(
                    "fault injection requires the slotted network "
                    "(the pure-ALOHA ablation has no fault hooks)"
                )
            self._injector = FaultInjector(
                plan,
                config.num_nodes,
                {
                    lane: config.lanes.receivers(lane)
                    for lane in (LaneKind.META, LaneKind.DATA)
                },
                rng.child("faults"),
            )
        else:
            self._injector = None

        self._state: dict[LaneKind, list[_LaneState]] = {
            lane: [
                _LaneState(node, config.phase_array, config.phase_setup_cycles)
                for node in range(config.num_nodes)
            ]
            for lane in (LaneKind.META, LaneKind.DATA)
        }
        self.confirmations = ConfirmationChannel(
            config.num_nodes, delay=config.lanes.confirmation_delay
        )
        self._calendar = CycleCalendar()
        self._now = -1  # last ticked cycle; _schedule must stay ahead of it
        # Cached heap references for the per-cycle due guards (the
        # underlying lists are mutated in place, never rebound).
        self._due = self._calendar._heap
        self._conf_due = self.confirmations._calendar._heap
        # Pending transmissions (queued + backed-off) per lane.  Kept
        # incrementally so quiescent() and the fast-forward horizon are
        # O(1) checks instead of O(N·lanes) scans per tick.
        self._lane_pending = {LaneKind.META: 0, LaneKind.DATA: 0}
        # Slot lengths, precomputed once for the tick/horizon hot paths
        # (the tuple form avoids a dict-view allocation every cycle).
        self._slot_len = {
            lane: config.lanes.slot_cycles(lane)
            for lane in (LaneKind.META, LaneKind.DATA)
        }
        self._slot_items = tuple(self._slot_len.items())
        self._reservations = [SlotReservations() for _ in range(config.num_nodes)]
        self._expected = [ExpectedReplies() for _ in range(config.num_nodes)]
        # Unslotted mode: per-(node, lane) transmitter busy horizon and
        # per-(dst, lane, receiver) in-flight transmissions
        # [(end_cycle, packet), ...] for overlap-collision detection.
        self._tx_busy_until: dict[tuple[int, LaneKind], int] = {}
        self._inflight: dict[tuple[int, LaneKind, int], list] = {}

        stats = self.stats.group
        self._lane_stats = {}
        for lane in (LaneKind.META, LaneKind.DATA):
            group = stats.group(lane.value)
            self._lane_stats[lane] = {
                "tx": group.counter("transmissions"),
                "collided_tx": group.counter("collided_transmissions"),
                "collision_events": group.counter("collision_events"),
                "error_tx": group.counter("error_corrupted"),
                "slots": group.counter("slots_elapsed"),
                "delivered": group.counter("delivered"),
            }
        data_group = stats.group(LaneKind.DATA.value)
        self._data_collision_types = {
            kind: data_group.counter(f"collisions_{kind}")
            for kind in ("memory", "writeback", "retransmission", "reply", "other")
        }
        self._hint_stats = {
            "issued": stats.counter("hints_issued"),
            "correct": stats.counter("hints_correct"),
            "wrong_winner": stats.counter("hints_wrong_winner"),
            "ignored": stats.counter("hints_ignored"),
        }
        self._spacing_delays = stats.latency("spacing_delay_inserted")
        # try_send hot-path hoists: one attribute load instead of a
        # config-object chain per offered packet.
        self._request_spacing = config.optimizations.request_spacing
        self._queue_capacity = self.lanes.queue_capacity
        # Resolution delay measured only over packets that collided —
        # the quantity Figure 4's numerical model predicts.
        self._resolution_collided = {
            lane: stats.group(lane.value).latency("resolution_among_collided")
            for lane in (LaneKind.META, LaneKind.DATA)
        }
        # Fault counters exist only when injection is active, keeping the
        # fault-free stat tree (and its golden snapshots) byte-identical.
        self._fault_stats = None
        self._fault_lane_stats = None
        if self._injector is not None:
            fault_group = stats.group("fault")
            self._fault_lane_stats = {}
            for lane in (LaneKind.META, LaneKind.DATA):
                group = fault_group.group(lane.value)
                self._fault_lane_stats[lane] = {
                    "fault_lost": group.counter("fault_lost_tx"),
                    "injected_corrupt": group.counter("injected_corrupt_tx"),
                    "duplicate_rx": group.counter("duplicate_rx"),
                    "suppressed": group.counter("suppressed_attempts"),
                }
            self._fault_stats = {
                "confirm_dropped": fault_group.counter("confirmations_dropped"),
                "gave_up_lost": fault_group.counter("gave_up_lost"),
                "gave_up_delivered": fault_group.counter("gave_up_delivered"),
                "receiver_remaps": fault_group.counter("receiver_remaps"),
                "lane_down_events": fault_group.counter("lane_down_detected"),
            }

    # ------------------------------------------------------------------
    # Interconnect interface
    # ------------------------------------------------------------------

    def can_accept(self, node: int, lane: LaneKind) -> bool:
        self._check_node(node)
        return len(self._state[lane][node].queue) < self.lanes.queue_capacity

    def try_send(self, packet: Packet, cycle: int) -> bool:
        src = packet.src
        dst = packet.dst
        if src < 0 or src >= self.num_nodes or dst < 0 or dst >= self.num_nodes:
            self._check_node(src)
            self._check_node(dst)
        lane = packet.lane
        queue = self._state[lane][src].queue
        if len(queue) >= self._queue_capacity:
            self.stats.refused.add()
            return False
        packet.enqueue_cycle = cycle
        spacing = 0
        expects = packet.expects_data_reply
        if self._request_spacing and expects and lane is LaneKind.META:
            spacing = self._reserve_reply_slot(src, cycle)
            self._spacing_delays.record(spacing)
        packet.scheduled_cycle = cycle + spacing
        if expects:
            # The requester will await a data packet from the destination
            # (or whoever it forwards to); used by the resolution hint.
            self._expected[src].expect(dst)
        queue.append(packet)
        self._lane_pending[lane] += 1
        self._note_lane_state(lane, src)
        self.stats.sent.value += 1  # == .add(), minus the call frame
        return True

    def tick(self, cycle: int) -> None:
        if TRACE.enabled:
            TRACE.cycle = cycle
        self._now = cycle
        due = self._conf_due
        if due and due[0][0] <= cycle:
            self.confirmations.tick(cycle)
        due = self._due
        if due and due[0][0] <= cycle:
            self._calendar.run_due(cycle)  # scheduled outcomes
            if self.post_delivery is not None:
                self.post_delivery()  # drain the coherence mailbox
        for lane, slot_len in self._slot_items:
            if not self.config.slotted:
                self._start_unslotted(lane, cycle)
            elif cycle % slot_len == 0:
                self._start_slot(lane, cycle)

    def quiescent(self) -> bool:
        return (
            not self._calendar
            and not self.confirmations.pending()
            and self._lane_pending[LaneKind.META] == 0
            and self._lane_pending[LaneKind.DATA] == 0
        )

    # -- fast-forward horizon (see docs/performance.md) -----------------

    def next_event(self, cycle: int) -> int | None:
        """Earliest future cycle at which the network can change state.

        The horizon is the min over: the confirmation calendar, the
        outcome calendar, and — per lane with pending transmissions —
        the first slot boundary at or after the earliest packet becomes
        eligible.  The pure-ALOHA ablation (``slotted=False``) starts
        transmissions on any cycle, so it pins the horizon to "now"
        (fast-forward inhibited).  While a fault plan has a lane marked
        down, every slot boundary must still be evaluated (the sender's
        healed-lane probe happens there), so the horizon is capped at
        the next boundary.
        """
        if not self.config.slotted:
            return cycle
        horizon = self.confirmations.next_event(cycle)
        c = self._calendar.next_cycle()
        if c is not None and (horizon is None or c < horizon):
            horizon = c
        for lane, slot_len in self._slot_len.items():
            if self._lane_pending[lane] == 0:
                continue
            earliest = None
            for state in self._state[lane]:
                for entry in state.retx:
                    if earliest is None or entry.release < earliest:
                        earliest = entry.release
                queue = state.queue
                if queue:
                    ready = queue[0].scheduled_cycle
                    if earliest is None or ready < earliest:
                        earliest = ready
            if earliest is None:  # pragma: no cover - counter invariant
                continue
            if earliest < cycle:
                earliest = cycle
            boundary = ((earliest + slot_len - 1) // slot_len) * slot_len
            if horizon is None or boundary < horizon:
                horizon = boundary
        if self._injector is not None and self._injector.suppression_active:
            for slot_len in self._slot_len.values():
                boundary = ((cycle + slot_len - 1) // slot_len) * slot_len
                if horizon is None or boundary < horizon:
                    horizon = boundary
        if horizon is not None and horizon < cycle:
            return cycle
        return horizon

    def skip(self, start: int, end: int) -> None:
        """Account the slot boundaries a fast-forward over ``[start, end)``
        jumped past (the naive loop's ``_start_slot`` calls would have
        found nothing to do, but they do count elapsed slots — the
        denominator of Figure 3's transmission/collision probabilities).
        """
        for lane in (LaneKind.META, LaneKind.DATA):
            boundaries = self.lanes.slots_in_range(start, end, lane)
            if boundaries:
                self._lane_stats[lane]["slots"].add(boundaries)

    # ------------------------------------------------------------------
    # Slot processing
    # ------------------------------------------------------------------

    def _start_slot(self, lane: LaneKind, cycle: int) -> None:
        lane_stats = self._lane_stats[lane]
        lane_stats["slots"].add()
        if self._lane_pending[lane] == 0 and self._injector is None:
            # Idle slot: no queued or retransmitting packet on this lane
            # (``_lane_pending`` counts both), so the per-node gather
            # below would find nothing.  Only safe without an injector —
            # lane-sparing probes have per-slot side effects of their own.
            return
        slot_len = self.lanes.slot_cycles(lane)
        inj = self._injector

        # Gather this slot's transmissions: one per node, retransmissions
        # take priority over fresh queue heads (they are older traffic).
        sends: list[tuple[Packet, int]] = []
        for node in range(self.num_nodes):
            state = self._state[lane][node]
            if inj is not None and inj.lane_suppressed(node, lane, cycle):
                # Lane sparing: the sender has detected its dead lane and
                # stops lighting it — queued traffic fast-fails straight
                # into back-off (escalating towards give-up) without
                # occupying the medium or counting as a transmission.
                packet = self._pick_transmission(lane, state, cycle)
                if packet is not None:
                    self._fault_lane_stats[lane]["suppressed"].add()
                    packet.retries += 1
                    if TRACE.enabled:
                        TRACE.emit(
                            "fault_suppressed", cat="fault", cycle=cycle,
                            node=node, lane=lane.value, packet=packet.uid,
                            retries=packet.retries,
                        )
                    self._back_off(lane, packet, cycle)
                continue
            packet = self._pick_transmission(lane, state, cycle)
            if packet is None:
                continue
            if packet.first_tx_cycle < 0:
                packet.first_tx_cycle = cycle
            setup = state.opa.steer(packet.dst) if state.opa is not None else 0
            lane_stats["tx"].add()
            self.stats.bits_sent.add(packet.bits)
            if TRACE.enabled:
                TRACE.emit(
                    "tx", cat="fsoi", cycle=cycle, node=packet.src,
                    lane=lane.value, packet=packet.uid, dur=slot_len,
                    dst=packet.dst, retries=packet.retries,
                )
            if inj is not None and inj.tx_lane_dead(node, lane, cycle):
                # Dark transmission: the VCSEL array emits nothing, so no
                # receiver sees the packet and no confirmation comes back;
                # the sender reacts exactly as to a collision.
                if inj.note_dark_send(node, lane):
                    self._fault_stats["lane_down_events"].add()
                    if TRACE.enabled:
                        TRACE.emit(
                            "fault_lane_down", cat="fault", cycle=cycle,
                            node=node, lane=lane.value,
                        )
                self._fault_lost(lane, cycle, slot_len, packet, setup)
                continue
            if inj is not None:
                inj.note_successful_send(node, lane)
            sends.append((packet, setup))

        if not sends:
            return

        # Group by (destination, receiver) — the static sender partition,
        # remapped around dead receivers when faults are active.
        groups: dict[tuple[int, int], list[tuple[Packet, int]]] = {}
        for packet, setup in sends:
            health = (
                inj.receiver_health(packet.dst, lane, cycle)
                if inj is not None
                else None
            )
            receiver = self.lanes.receiver_for(
                lane, packet.src, packet.dst, self.num_nodes, healthy=health
            )
            if health is not None:
                if receiver < 0:
                    # Every receiver at the destination is dark.
                    self._fault_lost(lane, cycle, slot_len, packet, setup)
                    continue
                nominal = self.lanes.receiver_for(
                    lane, packet.src, packet.dst, self.num_nodes
                )
                if receiver != nominal:
                    self._fault_stats["receiver_remaps"].add()
                    if TRACE.enabled:
                        TRACE.emit(
                            "fault_receiver_remap", cat="fault", cycle=cycle,
                            node=packet.dst, lane=lane.value,
                            packet=packet.uid, receiver=receiver,
                        )
            groups.setdefault((packet.dst, receiver), []).append((packet, setup))

        for (dst, _receiver), members in groups.items():
            if len(members) == 1:
                self._handle_solo(lane, cycle, slot_len, members[0])
            else:
                self._handle_collision(lane, cycle, slot_len, dst, members)

    def _start_unslotted(self, lane: LaneKind, cycle: int) -> None:
        """§4.3.2 ablation: pure-ALOHA transmission (no slot alignment).

        A node starts transmitting the moment its serializer is free;
        two transmissions collide when they *overlap in time* at the
        same receiver — the vulnerable window is twice a packet length,
        which is exactly what slotting halves (paper ref [40]).
        """
        lane_stats = self._lane_stats[lane]
        slot_len = self.lanes.slot_cycles(lane)
        if cycle % slot_len == 0:
            lane_stats["slots"].add()  # keep load normalization comparable
        conf_delay = self.confirmations.delay

        for node in range(self.num_nodes):
            if self._tx_busy_until.get((node, lane), 0) > cycle:
                continue
            state = self._state[lane][node]
            packet = self._pick_transmission(lane, state, cycle)
            if packet is None:
                continue
            if packet.first_tx_cycle < 0:
                packet.first_tx_cycle = cycle
            setup = state.opa.steer(packet.dst) if state.opa is not None else 0
            self._tx_busy_until[(node, lane)] = cycle + slot_len
            lane_stats["tx"].add()
            self.stats.bits_sent.add(packet.bits)
            if TRACE.enabled:
                TRACE.emit(
                    "tx", cat="fsoi", cycle=cycle, node=packet.src,
                    lane=lane.value, packet=packet.uid, dur=slot_len,
                    dst=packet.dst, retries=packet.retries,
                )

            key = (
                packet.dst,
                lane,
                self.lanes.receiver_for(lane, packet.src, packet.dst, self.num_nodes),
            )
            active = [
                entry for entry in self._inflight.get(key, []) if entry[0] > cycle
            ]
            end = cycle + slot_len
            if not active:
                self._inflight[key] = [(end, packet)]
                self._succeed_unslotted(lane, cycle, slot_len, packet, setup)
                continue

            # Overlap collision: corrupt everything still in the air.
            lane_stats["collision_events"].add()
            if TRACE.enabled:
                TRACE.emit(
                    "collision", cat="fsoi", cycle=cycle, node=packet.dst,
                    lane=lane.value,
                    senders=sorted({packet.src, *(p.src for _e, p in active)}),
                )
            if lane is LaneKind.DATA:
                self._data_collision_types[
                    self._classify([packet] + [p for _e, p in active])
                ].add()
            for _end, other in active:
                if getattr(other, "_corrupted", False):
                    continue
                other._corrupted = True
                other.retries += 1
                lane_stats["collided_tx"].add()
                detect = max(cycle + 1, _end - 1 + conf_delay + 1)
                self._schedule(
                    detect, lambda p=other, d=detect: self._back_off(lane, p, d)
                )
            packet._corrupted = True
            packet.retries += 1
            lane_stats["collided_tx"].add()
            detect = cycle + slot_len - 1 + conf_delay + 1
            self._schedule(
                detect, lambda p=packet, d=detect: self._back_off(lane, p, d)
            )
            active.append((end, packet))
            self._inflight[key] = active

    def _succeed_unslotted(
        self, lane: LaneKind, cycle: int, slot_len: int, packet: Packet, setup: int
    ) -> None:
        """Provisional success: delivery fires unless a later-starting
        transmission overlaps and corrupts this one mid-flight."""
        packet._corrupted = False
        receive_cycle = cycle + slot_len - 1 + setup
        deliver_cycle = receive_cycle + self.config.rx_overhead

        def deliver() -> None:
            if not packet._corrupted:
                packet.final_tx_cycle = cycle
                self._deliver(packet, deliver_cycle)

        self._schedule(deliver_cycle, deliver)
        hook = packet.on_confirmed

        arrival = receive_cycle + self.confirmations.delay

        def confirm() -> None:
            if packet._corrupted:
                return
            if TRACE.enabled:
                TRACE.emit(
                    "confirmation", cat="fsoi", cycle=arrival,
                    node=packet.src, lane=lane.value, packet=packet.uid,
                )
            if hook is not None:
                hook()

        self.confirmations.send_confirmation(receive_cycle, confirm)

    def _pick_transmission(
        self, lane: LaneKind, state: _LaneState, cycle: int
    ) -> Packet | None:
        retx = state.retx
        if retx:  # the common path has no retransmissions pending
            due = [e for e in retx if e.release <= cycle]
            if due:
                entry = min(due, key=lambda e: (e.release, e.seq))
                retx.remove(entry)
                self._lane_pending[lane] -= 1
                self._note_lane_state(lane, state.node)
                return entry.packet
        queue = state.queue
        if queue and queue[0].scheduled_cycle <= cycle:
            self._lane_pending[lane] -= 1
            packet = queue.popleft()
            self._note_lane_state(lane, state.node)
            return packet
        return None

    def _note_lane_state(self, lane: LaneKind, node: int) -> None:
        """Hook: node ``node``'s pending work on ``lane`` just changed.

        Called after every queue/retransmission mutation (enqueue, pick,
        back-off, resolution-hint reschedule).  The reference engine
        ignores it; the columnar engine (``repro.core.vector``)
        overrides it to keep its per-node readiness columns
        write-through.
        """

    # ------------------------------------------------------------------
    # Outcomes
    # ------------------------------------------------------------------

    def _fault_lost(
        self, lane: LaneKind, cycle: int, slot_len: int, packet: Packet, setup: int
    ) -> None:
        """An injected fault swallowed the transmission outright.

        The light never reached a working receiver (dead transmit array
        or all destination receivers dark), so the sender times out and
        backs off exactly as for a collision.
        """
        self._fault_lane_stats[lane]["fault_lost"].add()
        packet.retries += 1
        if TRACE.enabled:
            TRACE.emit(
                "fault_lost_tx", cat="fault", cycle=cycle, node=packet.src,
                lane=lane.value, packet=packet.uid, dst=packet.dst,
                retries=packet.retries,
            )
        receive_cycle = cycle + slot_len - 1 + setup
        detect = receive_cycle + self.confirmations.delay + 1
        self._schedule(
            detect, lambda p=packet, d=detect: self._back_off(lane, p, d)
        )

    def _handle_solo(
        self, lane: LaneKind, cycle: int, slot_len: int, member: tuple[Packet, int]
    ) -> None:
        packet, setup = member
        if (
            self.config.packet_error_rate > 0.0
            and self._error_rng.random() < self.config.packet_error_rate
        ):
            # A signaling error corrupts the packet; the sender sees a
            # missing confirmation, exactly like a collision (§4.3.1).
            self._lane_stats[lane]["error_tx"].add()
            if TRACE.enabled:
                TRACE.emit(
                    "error_corrupt", cat="fsoi", cycle=cycle,
                    node=packet.dst, lane=lane.value, packet=packet.uid,
                )
            packet.retries += 1
            receive_cycle = cycle + slot_len - 1 + setup
            detect = receive_cycle + self.confirmations.delay + 1
            self._schedule(detect, lambda: self._back_off(lane, packet, detect))
            return
        inj = self._injector
        if inj is not None:
            probability = inj.corruption_probability(
                packet.src, lane, cycle, packet.bits
            )
            if inj.draw_corruption(probability):
                # Droop / burst corruption fails the PID integrity check
                # at the receiver — indistinguishable from a collision.
                self._fault_lane_stats[lane]["injected_corrupt"].add()
                if TRACE.enabled:
                    TRACE.emit(
                        "fault_corrupt", cat="fault", cycle=cycle,
                        node=packet.dst, lane=lane.value, packet=packet.uid,
                        probability=probability,
                    )
                packet.retries += 1
                receive_cycle = cycle + slot_len - 1 + setup
                detect = receive_cycle + self.confirmations.delay + 1
                self._schedule(
                    detect, lambda: self._back_off(lane, packet, detect)
                )
                return
        self._succeed(lane, cycle, slot_len, packet, setup)

    def _succeed(
        self, lane: LaneKind, cycle: int, slot_len: int, packet: Packet, setup: int
    ) -> None:
        inj = self._injector
        receive_cycle = cycle + slot_len - 1 + setup
        # Under confirmation drops a sender may retransmit a packet the
        # destination already delivered; such duplicate receptions are
        # recognized (sequence numbers in the header) and not re-delivered.
        already_delivered = inj is not None and getattr(
            packet, "_fault_delivered", False
        )
        if already_delivered:
            self._fault_lane_stats[lane]["duplicate_rx"].add()
            if TRACE.enabled:
                TRACE.emit(
                    "fault_duplicate_rx", cat="fault", cycle=cycle,
                    node=packet.dst, lane=lane.value, packet=packet.uid,
                )
        else:
            packet.final_tx_cycle = cycle
            if packet.retries > 0:
                self._resolution_collided[lane].record(
                    packet.final_tx_cycle - packet.first_tx_cycle
                )
            deliver_cycle = receive_cycle + self.config.rx_overhead
            self._schedule(
                deliver_cycle, lambda: self._deliver(packet, deliver_cycle)
            )
            if inj is not None:
                packet._fault_delivered = True
            if lane is LaneKind.DATA and self._expected[packet.dst].is_expected(
                packet.src
            ):
                self._expected[packet.dst].fulfil(packet.src)
        if inj is not None and inj.drop_confirmation(
            packet.src, receive_cycle + self.confirmations.delay
        ):
            # The packet got through, but the confirmation pulse is lost:
            # the sender walks the timeout path as if it had collided.
            self.confirmations.record_dropped(receive_cycle)
            self._fault_stats["confirm_dropped"].add()
            packet.retries += 1
            detect = receive_cycle + self.confirmations.delay + 1
            self._schedule(
                detect, lambda p=packet, d=detect: self._back_off(lane, p, d)
            )
            return
        # The confirmation arrives back at the sender two cycles after
        # reception; §5.1 consumers hook it via packet.on_confirmed.
        # Under faults the hook fires exactly once even if drops forced
        # duplicate confirmed receptions.
        if packet.on_confirmed is None:
            callback = _noop
        elif inj is None:
            callback = packet.on_confirmed
        else:
            def callback(p: Packet = packet) -> None:
                if not getattr(p, "_fault_confirm_fired", False):
                    p._fault_confirm_fired = True
                    p.on_confirmed()
        self.confirmations.send_confirmation(receive_cycle, callback)
        if TRACE.enabled:
            TRACE.emit(
                "confirmation", cat="fsoi",
                cycle=receive_cycle + self.confirmations.delay,
                node=packet.src, lane=lane.value, packet=packet.uid,
            )

    def _handle_collision(
        self,
        lane: LaneKind,
        cycle: int,
        slot_len: int,
        dst: int,
        members: list[tuple[Packet, int]],
    ) -> None:
        lane_stats = self._lane_stats[lane]
        lane_stats["collision_events"].add()
        lane_stats["collided_tx"].add(len(members))
        packets = [packet for packet, _setup in members]
        if TRACE.enabled:
            TRACE.emit(
                "collision", cat="fsoi", cycle=cycle, node=dst,
                lane=lane.value, senders=sorted(p.src for p in packets),
            )
        if lane is LaneKind.DATA:
            self._data_collision_types[self._classify(packets)].add()

        use_hints = (
            lane is LaneKind.DATA and self.config.optimizations.resolution_hints
        )
        winner: Packet | None = None
        if use_hints:
            winner = self._issue_hint(cycle, slot_len, dst, packets)

        for packet in packets:
            packet.retries += 1
            if packet is winner:
                continue  # handled inside _issue_hint
            if use_hints:
                # Losers learn from the *absence* of the no-collision
                # notification right after the header and skip the next
                # slot (§5.2): back-off counted from the slot after next.
                detect = cycle + 1 + self.confirmations.delay
                base = cycle + 2 * slot_len
            else:
                receive_cycle = cycle + slot_len - 1
                detect = receive_cycle + self.confirmations.delay + 1
                base = detect
            self._schedule(
                detect,
                lambda p=packet, b=base: self._back_off(lane, p, b),
            )

    def _classify(self, packets: list[Packet]) -> str:
        """Figure 10's data-collision taxonomy (priority order)."""
        if any(p.is_memory for p in packets):
            return "memory"
        if any(p.is_writeback for p in packets):
            return "writeback"
        if any(p.retries > 0 for p in packets):
            return "retransmission"
        if all(p.is_reply_to_request for p in packets):
            return "reply"
        return "other"

    def _back_off(self, lane: LaneKind, packet: Packet, base_cycle: int) -> None:
        """Queue ``packet`` for retransmission after a random back-off."""
        inj = self._injector
        if (
            inj is not None
            and inj.plan.giveup_retries is not None
            and packet.retries > inj.plan.giveup_retries
        ):
            self._give_up(lane, packet, base_cycle)
            return
        slot_len = self.lanes.slot_cycles(lane)
        draw = self.config.backoff.draw_delay_slots(self._backoff_rng, packet.retries)
        if self.config.slotted:
            base = self.lanes.next_slot_start(base_cycle, lane)
        else:
            base = base_cycle  # pure ALOHA: any cycle may start a retry
        release = base + (draw - 1) * slot_len
        state = self._state[lane][packet.src]
        state.retx_seq += 1
        state.retx.append(_RetxEntry(release, state.retx_seq, packet))
        self._lane_pending[lane] += 1
        self._note_lane_state(lane, packet.src)
        if TRACE.enabled:
            TRACE.emit(
                "backoff", cat="fsoi", cycle=base_cycle, node=packet.src,
                lane=lane.value, packet=packet.uid,
                retries=packet.retries, release=release,
            )

    def _give_up(self, lane: LaneKind, packet: Packet, cycle: int) -> None:
        """Bounded graceful degradation: the sender abandons the packet.

        Packets whose delivery already happened (only the confirmation
        was lost) are counted separately — nothing was actually lost.
        """
        if getattr(packet, "_fault_delivered", False):
            self._fault_stats["gave_up_delivered"].add()
            outcome = "delivered"
        else:
            self._fault_stats["gave_up_lost"].add()
            outcome = "lost"
        if TRACE.enabled:
            TRACE.emit(
                "fault_give_up", cat="fault", cycle=cycle, node=packet.src,
                lane=lane.value, packet=packet.uid, retries=packet.retries,
                outcome=outcome,
            )

    # ------------------------------------------------------------------
    # §5.2 optimizations
    # ------------------------------------------------------------------

    def _issue_hint(
        self, cycle: int, slot_len: int, dst: int, packets: list[Packet]
    ) -> Packet | None:
        """The receiver guesses the colliders and grants one the next slot.

        Returns the packet that actually gets the fast retransmission
        (None when the chosen winner was not a true collider).
        """
        if self.config.one_hot_pid:
            # Footnote 7: the bit-vector encoding decodes exactly.
            merged = merged_one_hot((p.src for p in packets), self.num_nodes)
            candidates = one_hot_senders(merged, self.num_nodes)
        else:
            pid, pidc = merged_header(
                (p.src for p in packets), id_bits=self.config.id_bits
            )
            assert collision_detected(pid, pidc)
            others = [n for n in range(self.num_nodes) if n != dst]
            candidates = candidate_senders(pid, pidc, others, self.config.id_bits)
        expected = self._expected[dst].expected_nodes()
        narrowed = [c for c in candidates if c in expected] or candidates
        chosen = int(narrowed[self._hint_rng.integers(0, len(narrowed))])
        self._hint_stats["issued"].add()

        actual = {p.src: p for p in packets}
        if chosen in actual:
            self._hint_stats["correct"].add()
            winner = actual[chosen]
            winner.retries += 1
            state = self._state[LaneKind.DATA][winner.src]
            state.retx_seq += 1
            state.retx.append(
                _RetxEntry(cycle + slot_len, state.retx_seq, winner)
            )
            self._lane_pending[LaneKind.DATA] += 1
            self._note_lane_state(LaneKind.DATA, winner.src)
            if TRACE.enabled:
                TRACE.emit(
                    "hint", cat="fsoi", cycle=cycle, node=dst,
                    lane=LaneKind.DATA.value, packet=winner.uid,
                    chosen=chosen, outcome="correct",
                )
            return winner
        # Mis-identified: if that node happens to have a backed-off data
        # packet it wrongly jumps into the next slot; otherwise it simply
        # ignores the notification (paper §7.3).
        state = self._state[LaneKind.DATA][chosen]
        if state.retx:
            self._hint_stats["wrong_winner"].add()
            entry = min(state.retx, key=lambda e: (e.release, e.seq))
            entry.release = cycle + slot_len
            self._note_lane_state(LaneKind.DATA, chosen)
            outcome = "wrong_winner"
        else:
            self._hint_stats["ignored"].add()
            outcome = "ignored"
        if TRACE.enabled:
            TRACE.emit(
                "hint", cat="fsoi", cycle=cycle, node=dst,
                lane=LaneKind.DATA.value, chosen=chosen, outcome=outcome,
            )
        return None

    def expect_data_from(self, dst: int, src: int) -> None:
        """Register that ``dst`` anticipates a data packet from ``src``.

        Used by §5.2's split-transaction writebacks: the WB announcement
        tells the home node to expect the data packet, sharpening the
        resolution hint's candidate set.
        """
        self._check_node(dst)
        self._check_node(src)
        self._expected[dst].expect(src)

    def _reserve_reply_slot(self, node: int, cycle: int) -> int:
        """Request spacing: returns the cycles to delay the request by."""
        slot_len = self.lanes.slot_cycles(LaneKind.DATA)
        table = self._reservations[node]
        table.prune(cycle // slot_len)
        predicted_slot = (cycle + self.config.reply_latency_estimate) // slot_len
        free_slot = table.next_free(predicted_slot)
        table.reserve(free_slot)
        return (free_slot - predicted_slot) * slot_len

    # ------------------------------------------------------------------
    # Internals & reporting
    # ------------------------------------------------------------------

    def _deliver(self, packet: Packet, cycle: int) -> None:
        self._lane_stats[packet.lane]["delivered"].add()
        if TRACE.enabled:
            TRACE.emit(
                "deliver", cat="fsoi", cycle=cycle, node=packet.dst,
                lane=packet.lane.value, packet=packet.uid, src=packet.src,
            )
        super()._deliver(packet, cycle)

    def _schedule(self, cycle: int, action) -> None:
        if cycle <= self._now:
            # A past-cycle entry would sit in the calendar forever (the
            # tick sweep has already passed it) — a silent stall bug in
            # the old dict-calendar days; now loud.
            raise ValueError(
                f"cannot schedule an outcome at cycle {cycle}; "
                f"the network already ticked cycle {self._now}"
            )
        self._calendar.schedule(cycle, action)

    def transmission_probability(self, lane: LaneKind) -> float:
        """Measured per-node, per-slot transmission probability."""
        stats = self._lane_stats[lane]
        slots = int(stats["slots"])
        if slots == 0:
            return 0.0
        return int(stats["tx"]) / (slots * self.num_nodes)

    def collision_rate(self, lane: LaneKind) -> float:
        """Fraction of transmissions corrupted by a collision."""
        stats = self._lane_stats[lane]
        tx = int(stats["tx"])
        return int(stats["collided_tx"]) / tx if tx else 0.0

    def mean_resolution_delay(self, lane: LaneKind) -> float:
        """Mean collision-resolution delay over collided packets, cycles.

        The execution-driven counterpart of Figure 4's numerical model
        (§4.3.2: "the computed delay is 7.26 cycles and the simulated
        result is between 6.8 and 9.6").
        """
        return self._resolution_collided[lane].mean

    def collision_events_per_node_slot(self, lane: LaneKind) -> float:
        """Collision events per node per slot — Figure 3's P_coll."""
        stats = self._lane_stats[lane]
        slots = int(stats["slots"])
        if slots == 0:
            return 0.0
        return int(stats["collision_events"]) / (slots * self.num_nodes)

    def data_collision_breakdown(self) -> dict[str, int]:
        """Figure 10's collision-event counts by type."""
        return {k: int(v) for k, v in self._data_collision_types.items()}

    def hint_summary(self) -> dict[str, int]:
        return {k: int(v) for k, v in self._hint_stats.items()}

    @property
    def fault_injector(self) -> FaultInjector | None:
        """The active injector, or None for fault-free runs."""
        return self._injector

    def fault_summary(self) -> dict:
        """Fault/degradation counters (empty dict when faults are off)."""
        if self._injector is None:
            return {}
        out: dict = {k: int(v) for k, v in self._fault_stats.items()}
        for lane in (LaneKind.META, LaneKind.DATA):
            out[lane.value] = {
                k: int(v) for k, v in self._fault_lane_stats[lane].items()
            }
        out["confirmations_dropped"] = self.confirmations.confirmations_dropped
        return out

    def phase_array_summary(self) -> dict[str, float]:
        """Aggregate OPA steering behaviour (empty for dedicated arrays)."""
        if not self.config.phase_array:
            return {}
        sends = retargets = 0
        for lane_states in self._state.values():
            for state in lane_states:
                if state.opa is not None:
                    sends += state.opa.sends
                    retargets += state.opa.retargets
        return {
            "sends": sends,
            "retargets": retargets,
            "retarget_fraction": retargets / sends if sends else 0.0,
        }
