"""The confirmation channel (paper §4.3.2 and §5.1).

Each node dedicates a single-VCSEL lane to *confirmations*: upon
receiving an uncorrupted packet in cycle ``n``, the receiver beams a
confirmation back to the sender in cycle ``n + 2`` (one cycle for
decoding and error checking).  By construction confirmations never
collide: a node sends at most one packet per lane per slot, so it
receives at most one confirmation per lane per cycle.

§5.1 additionally exploits the channel's *mini-cycles*: each CPU cycle
contains 12 communication cycles (40 Gbps vs 3.3 GHz), and a mini-cycle
index can be **reserved** so the directory can later convey a single bit
(a load-linked value, a store-conditional outcome, a barrier release)
positionally — no packet, no collision, minimal latency.  This module
provides the reservation bookkeeping; the coherence layer decides what
the bits mean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.obs.trace import TRACE
from repro.util.events import CycleCalendar

__all__ = ["ConfirmationChannel", "MiniCycleReservations"]


@dataclass
class MiniCycleReservations:
    """Per-node table of reserved confirmation mini-cycles.

    A node owns ``mini_cycles`` slots (12 by default).  A reservation
    binds a mini-cycle index to an opaque owner key (e.g. a lock-word
    address), so the directory can signal that owner with one bit in any
    later cycle.
    """

    mini_cycles: int = 12
    _owner_by_slot: dict[int, object] = field(default_factory=dict)
    _slot_by_owner: dict[object, int] = field(default_factory=dict)

    def reserve(self, owner: object) -> Optional[int]:
        """Reserve a free mini-cycle for ``owner``; None if all taken.

        Re-reserving for an existing owner returns its current slot.
        """
        if owner in self._slot_by_owner:
            return self._slot_by_owner[owner]
        for slot in range(self.mini_cycles):
            if slot not in self._owner_by_slot:
                self._owner_by_slot[slot] = owner
                self._slot_by_owner[owner] = slot
                return slot
        return None

    def release(self, owner: object) -> None:
        """Free the mini-cycle held by ``owner`` (no-op if absent)."""
        slot = self._slot_by_owner.pop(owner, None)
        if slot is not None:
            del self._owner_by_slot[slot]

    def slot_of(self, owner: object) -> Optional[int]:
        return self._slot_by_owner.get(owner)

    @property
    def free_slots(self) -> int:
        return self.mini_cycles - len(self._owner_by_slot)


class ConfirmationChannel:
    """Schedules confirmation (and piggy-backed hint/bit) deliveries.

    The channel is ideal by construction — no collisions, fixed delay —
    so it is modeled as a calendar of (cycle, callback) deliveries plus
    the per-node mini-cycle reservation tables.
    """

    def __init__(self, num_nodes: int, delay: int = 2, mini_cycles: int = 12):
        if delay < 1:
            raise ValueError(f"confirmation delay must be >= 1: {delay}")
        self.num_nodes = num_nodes
        self.delay = delay
        self._calendar = CycleCalendar()
        self.reservations = [
            MiniCycleReservations(mini_cycles) for _ in range(num_nodes)
        ]
        self.confirmations_sent = 0
        self.signals_sent = 0
        #: Confirmations lost to injected faults (repro.faults); such a
        #: confirmation is never scheduled, so the sender times out.
        self.confirmations_dropped = 0

    def send_confirmation(
        self, cycle_received: int, action: Callable[[], None]
    ) -> int:
        """Queue a confirmation for a packet received at ``cycle_received``.

        ``action`` runs at the sender when the confirmation arrives.
        Returns the arrival cycle (``cycle_received + delay``).
        """
        arrival = cycle_received + self.delay
        self._calendar.schedule(arrival, action)
        self.confirmations_sent += 1
        if TRACE.enabled:
            TRACE.emit(
                "confirm_scheduled", cat="confirmation",
                cycle=cycle_received, arrival=arrival,
            )
        return arrival

    def send_signal(self, now: int, action: Callable[[], None]) -> int:
        """Queue a §5.1 positional one-bit signal (same fixed latency)."""
        arrival = now + self.delay
        self._calendar.schedule(arrival, action)
        self.signals_sent += 1
        if TRACE.enabled:
            TRACE.emit(
                "signal_scheduled", cat="confirmation",
                cycle=now, arrival=arrival,
            )
        return arrival

    def record_dropped(self, cycle_received: int) -> None:
        """Count a confirmation lost to an injected fault.

        The channel is collision-free by construction, so drops only
        happen under a :class:`repro.faults.FaultPlan`; the caller (the
        network) decides the drop and simply never schedules the
        delivery.
        """
        self.confirmations_dropped += 1
        if TRACE.enabled:
            TRACE.emit(
                "confirm_dropped", cat="fault", cycle=cycle_received,
            )

    def tick(self, cycle: int) -> None:
        """Deliver everything due at ``cycle``."""
        self._calendar.run_due(cycle)

    def next_event(self, cycle: int) -> Optional[int]:
        """Fast-forward horizon: the earliest pending arrival, if any.

        Arrivals are scheduled ``delay >= 1`` cycles ahead, so the heap
        top is never in the past relative to the network's tick.
        """
        return self._calendar.next_cycle()

    def pending(self) -> int:
        """Number of queued deliveries (for drain checks)."""
        return len(self._calendar)
