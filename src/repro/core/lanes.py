"""Lane widths and cycle slotting (paper §4.3.2, Table 3).

A *lane* is a multi-bit optical bus formed by an array of VCSELs.  Each
node has a meta lane (3 VCSELs), a data lane (6 VCSELs) and a 1-VCSEL
confirmation lane.  With 12 bits per CPU cycle per VCSEL (40 Gbps vs
3.3 GHz), a 72-bit meta packet serializes in 2 cycles and a 360-bit data
packet in 5 — those are also the *slot* lengths: in a non-arbitrated
shared medium, constraining packets to start at slot boundaries halves
the window in which two packets can partially overlap (slotted-ALOHA,
paper ref [40]).  Meta and data packets travel on separate lanes so the
two slot lengths never interfere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence

from repro.net.packet import DATA_PACKET_BITS, META_PACKET_BITS, LaneKind

__all__ = ["LaneConfig"]


@dataclass(frozen=True)
class LaneConfig:
    """Widths, slot lengths and buffering of a node's optical lanes.

    Defaults reproduce Table 3 (16/64-node configuration): lane widths
    6/3/1 bits for data/meta/confirmation, 2 receivers per packet lane,
    8-packet outgoing queues, 12 bits per cycle per VCSEL.
    """

    meta_vcsels: int = 3
    data_vcsels: int = 6
    confirmation_vcsels: int = 1
    bits_per_cycle_per_vcsel: int = 12
    meta_receivers: int = 2
    data_receivers: int = 2
    queue_capacity: int = 8
    confirmation_delay: int = 2  # cycles from reception to confirmation

    def __post_init__(self) -> None:
        for name in ("meta_vcsels", "data_vcsels", "bits_per_cycle_per_vcsel"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.meta_receivers < 1 or self.data_receivers < 1:
            raise ValueError("need at least one receiver per lane")
        if self.queue_capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        if self.confirmation_delay < 1:
            raise ValueError("confirmation delay must be >= 1 cycle")

    # -- derived timing -----------------------------------------------------

    def lane_width_bits(self, lane: LaneKind) -> int:
        """Bits serialized per CPU cycle on ``lane``."""
        vcsels = self.meta_vcsels if lane is LaneKind.META else self.data_vcsels
        return vcsels * self.bits_per_cycle_per_vcsel

    @lru_cache(maxsize=None)
    def slot_cycles(self, lane: LaneKind) -> int:
        """Serialization latency = slot length, CPU cycles.

        Cached (the config is frozen, hence hashable) — the network's
        tick and fast-forward horizons ask for it constantly.

        >>> LaneConfig().slot_cycles(LaneKind.META)
        2
        >>> LaneConfig().slot_cycles(LaneKind.DATA)
        5
        """
        bits = META_PACKET_BITS if lane is LaneKind.META else DATA_PACKET_BITS
        return max(1, math.ceil(bits / self.lane_width_bits(lane)))

    def receivers(self, lane: LaneKind) -> int:
        return self.meta_receivers if lane is LaneKind.META else self.data_receivers

    def receiver_for(
        self,
        lane: LaneKind,
        src: int,
        dst: int,
        num_nodes: int,
        healthy: Optional[Sequence[bool]] = None,
    ) -> int:
        """Static sender-to-receiver partition at the destination.

        The ``N - 1`` potential senders to ``dst`` are divided evenly
        among the R receivers (paper §4.3.1): sender rank modulo R.

        ``healthy`` (one flag per receiver, from the fault injector)
        enables *receiver sparing*: a sender whose nominal receiver is
        dead probes linearly to the next healthy one — a deterministic
        remap every sender computes identically, so the partition stays
        collision-consistent.  Returns ``-1`` when every receiver is
        dead.
        """
        if src == dst:
            raise ValueError("no receiver for self-traffic")
        rank = src if src < dst else src - 1  # rank of src among dst's senders
        count = self.receivers(lane)
        nominal = rank % count
        if healthy is None:
            return nominal
        for probe in range(count):
            candidate = (nominal + probe) % count
            if healthy[candidate]:
                return candidate
        return -1

    def total_vcsels_per_node(self, num_nodes: int, dedicated: bool) -> int:
        """Transmit VCSEL count per node.

        Dedicated (small-scale) systems replicate every lane per
        destination — the paper's ``N * (N-1) * k`` total; phase-array
        systems keep one steerable array per lane.
        """
        per_lane_set = self.meta_vcsels + self.data_vcsels + self.confirmation_vcsels
        if dedicated:
            return per_lane_set * (num_nodes - 1)
        return per_lane_set

    def slot_aligned(self, cycle: int, lane: LaneKind) -> bool:
        """Whether ``cycle`` is a slot boundary for ``lane``."""
        return cycle % self.slot_cycles(lane) == 0

    def next_slot_start(self, cycle: int, lane: LaneKind) -> int:
        """First slot boundary at or after ``cycle``."""
        slot = self.slot_cycles(lane)
        return ((cycle + slot - 1) // slot) * slot

    def slots_in_range(self, start: int, end: int, lane: LaneKind) -> int:
        """Number of slot boundaries for ``lane`` in ``[start, end)``.

        This is how a fast-forward skip over ``[start, end)`` accounts
        the ``_start_slot`` calls the naive loop would have made.

        >>> LaneConfig().slots_in_range(0, 10, LaneKind.DATA)
        2
        >>> LaneConfig().slots_in_range(1, 5, LaneKind.META)
        2
        """
        slot = self.slot_cycles(lane)
        first = (start + slot - 1) // slot  # index of first boundary >= start
        past = (end + slot - 1) // slot     # index of first boundary >= end
        return max(0, past - first)
