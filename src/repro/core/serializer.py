"""Serializer / deserializer for the optical lanes (paper §4.2, Table 3).

The digital side of Figure 2: a lane of ``V`` VCSELs each carrying 12
bits per 3.3 GHz core cycle (40 Gbps / 3.3 GHz) moves ``12 V`` bits per
cycle.  The serializer slices a packet's bits across the VCSELs frame
by frame; the deserializer reassembles them.  Two paper details are
modeled exactly:

* **skew padding** (§4.2 fn. 2): path-length differences between node
  pairs are up to tens of ps ~ a few bit times; the serializer prepends
  that many padding bits so every lane appears chip-synchronous;
* **mini-cycles** (§5.1): the 12 bit positions within a core cycle are
  individually addressable — the confirmation channel's reservation
  unit.

This module is deliberately *data-faithful*: tests push actual bit
patterns through serialize -> frames -> deserialize and demand identity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["LaneSerializer", "LaneDeserializer", "mini_cycle_of"]


def mini_cycle_of(bit_index: int, bits_per_cycle: int = 12) -> tuple[int, int]:
    """(core cycle, mini-cycle) of a bit position on a 1-bit lane.

    >>> mini_cycle_of(0)
    (0, 0)
    >>> mini_cycle_of(25)
    (2, 1)
    """
    if bit_index < 0:
        raise ValueError(f"negative bit index: {bit_index}")
    if bits_per_cycle < 1:
        raise ValueError(f"bits per cycle must be >= 1: {bits_per_cycle}")
    return bit_index // bits_per_cycle, bit_index % bits_per_cycle


@dataclass(frozen=True)
class LaneSerializer:
    """Slices packet payloads across a lane's VCSELs.

    Parameters
    ----------
    vcsels:
        Lane width (Table 3: 3 meta, 6 data).
    bits_per_cycle:
        Bits per VCSEL per core cycle (12 at 40 Gbps / 3.3 GHz).
    padding_bits:
        Skew-compensation bits prepended to every frame stream (§4.2
        fn. 2); zeros, stripped by the deserializer.
    """

    vcsels: int = 3
    bits_per_cycle: int = 12
    padding_bits: int = 0

    def __post_init__(self) -> None:
        if self.vcsels < 1 or self.bits_per_cycle < 1:
            raise ValueError("lane needs >= 1 VCSEL and >= 1 bit/cycle")
        if self.padding_bits < 0:
            raise ValueError(f"negative padding: {self.padding_bits}")

    @property
    def bits_per_frame(self) -> int:
        """Bits the lane moves in one core cycle."""
        return self.vcsels * self.bits_per_cycle

    def cycles_for(self, num_bits: int) -> int:
        """Serialization latency for a payload, core cycles.

        >>> LaneSerializer(vcsels=3).cycles_for(72)   # meta packet
        2
        >>> LaneSerializer(vcsels=6).cycles_for(360)  # data packet
        5
        """
        if num_bits < 1:
            raise ValueError(f"empty payload: {num_bits}")
        return math.ceil((num_bits + self.padding_bits) / self.bits_per_frame)

    def serialize(self, payload: int, num_bits: int) -> list[list[int]]:
        """Frames of per-VCSEL bit words, LSB first.

        Returns ``frames[cycle][vcsel]`` — each entry a
        ``bits_per_cycle``-bit integer.  Bit ``i`` of the payload lands
        on VCSEL ``(i + pad) // bits_per_cycle mod V`` — round-robin by
        mini-cycle groups, matching a simple mux tree.
        """
        if num_bits < 1:
            raise ValueError(f"empty payload: {num_bits}")
        if payload < 0 or payload >= (1 << num_bits):
            raise ValueError(f"payload does not fit in {num_bits} bits")
        stream = payload << self.padding_bits  # zero padding in front
        total_bits = num_bits + self.padding_bits
        frames: list[list[int]] = []
        mask = (1 << self.bits_per_cycle) - 1
        position = 0
        while position < total_bits:
            frame = []
            for _vcsel in range(self.vcsels):
                frame.append((stream >> position) & mask)
                position += self.bits_per_cycle
            frames.append(frame)
        return frames


@dataclass
class LaneDeserializer:
    """Reassembles frames emitted by a matching :class:`LaneSerializer`."""

    serializer: LaneSerializer

    def deserialize(self, frames: list[list[int]], num_bits: int) -> int:
        """Recover the payload; raises on malformed frame shapes."""
        config = self.serializer
        stream = 0
        position = 0
        for index, frame in enumerate(frames):
            if len(frame) != config.vcsels:
                raise ValueError(
                    f"frame {index} has {len(frame)} words, lane has "
                    f"{config.vcsels} VCSELs"
                )
            for word in frame:
                if word < 0 or word >= (1 << config.bits_per_cycle):
                    raise ValueError(f"frame {index} word out of range")
                stream |= word << position
                position += config.bits_per_cycle
        payload = stream >> config.padding_bits  # strip skew padding
        mask = (1 << num_bits) - 1
        if payload >> num_bits:
            raise ValueError("non-zero bits beyond the payload width")
        return payload & mask
