"""The columnar vectorized FSOI engine.

``FsoiNetwork``'s reference slot gather visits every node at every slot
boundary and re-scans each node's retransmission list, and its
fast-forward horizon re-walks every queue and retransmission entry on
every call.  Both are O(nodes) regardless of how many nodes actually
hold traffic — the cost this engine removes.

The engine mirrors each (lane, node)'s *readiness* — the earliest cycle
its oldest eligible packet can transmit, i.e. ``min(retransmission
releases, queue-head scheduled cycle)`` — into a per-lane numpy column,
maintained write-through via the base class's
:meth:`~repro.core.network.FsoiNetwork._note_lane_state` hook (fired on
every enqueue, pick, back-off and resolution-hint reschedule).  From
the columns:

* the slot gather visits only ``ready <= cycle`` nodes
  (:func:`~repro.net.kernels.due_indices`; ascending order replays the
  reference 0..N-1 sweep, and a skipped node's pick would have returned
  ``None`` without side effects — bit-exact);
* the fast-forward horizon is a lane-min lookup rounded up to the slot
  boundary (:func:`~repro.net.kernels.slot_horizon`) instead of an
  O(nodes·retx) scan.

The per-lane minimum itself is kept incrementally: a write below the
cached minimum lowers it exactly; removing the cell that held the
minimum only marks it dirty, and the next reader folds the column once
(``column.min()``).  The invariant is ``cached <= true minimum``, with
equality whenever the dirty flag is clear.

Fault plans keep the reference gather: sender-side lane sparing probes
(``lane_suppressed``) un-mark healed lanes as a *side effect* of being
queried each slot, including for nodes with nothing to send, so the
idle-node shortcut would change when a lane heals.  The columns stay
maintained either way (every mutation goes through the hook), so the
horizon stays O(1) under faults too.

The columns are hybrid: a plain python list mirrors each numpy column
write-through, and below :data:`_SCAN_THRESHOLD` nodes the due scans
and lane minima sweep the lists instead (small-array numpy calls carry
microseconds of fixed dispatch overhead; the bulk kernels take over
where they win — see docs/performance.md).

Selected by ``CmpConfig.vectorized`` (default) and disabled together
with the core engine by ``REPRO_NO_VECTOR=1``; equivalence is pinned by
``tests/cmp/test_network_vector_equivalence.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.network import FsoiConfig, FsoiNetwork, _LaneState
from repro.net.kernels import NEVER, due_indices, slot_horizon
from repro.net.packet import LaneKind
from repro.obs.trace import TRACE
from repro.util.rng import RngHub

__all__ = ["VectorFsoiNetwork"]

_LANES = (LaneKind.META, LaneKind.DATA)

# Below this node count a plain-python sweep over the readiness list is
# cheaper than the numpy compare/nonzero round trip (small-array numpy
# calls cost microseconds of fixed overhead); above it the bulk kernels
# win and keep the gather sublinear in practice.
_SCAN_THRESHOLD = 64


def lane_ready(state: _LaneState) -> int:
    """Scalar readiness of one (lane, node): the earliest cycle any of
    its pending packets becomes eligible, :data:`NEVER` when idle.

    Only the queue *head* counts — FIFO order means a later packet
    cannot transmit before the head does, which is exactly what the
    reference pick inspects.
    """
    ready = NEVER
    for entry in state.retx:
        if entry.release < ready:
            ready = entry.release
    queue = state.queue
    if queue:
        scheduled = queue[0].scheduled_cycle
        if scheduled < ready:
            ready = scheduled
    return ready


class VectorFsoiNetwork(FsoiNetwork):
    """``FsoiNetwork`` with columnar readiness worklists."""

    def __init__(self, config: FsoiConfig, rng: RngHub | None = None):
        self._node_ready: dict[LaneKind, np.ndarray] | None = None
        super().__init__(config, rng=rng)
        self._node_ready = {
            lane: np.full(config.num_nodes, NEVER, dtype=np.int64)
            for lane in _LANES
        }
        # Python mirror of the columns: scalar reads/writes and the
        # small-system sweeps stay off numpy's per-call overhead.
        self._ready_py = {
            lane: [NEVER] * config.num_nodes for lane in _LANES
        }
        self._small = config.num_nodes < _SCAN_THRESHOLD
        self._lane_min = {lane: NEVER for lane in _LANES}
        self._min_dirty = {lane: False for lane in _LANES}
        # Hot-loop handles (attribute/dict chains hoisted out of the
        # per-slot path).
        self._slots_counter = {
            lane: self._lane_stats[lane]["slots"] for lane in _LANES
        }
        self._tx_counter = {lane: self._lane_stats[lane]["tx"] for lane in _LANES}
        self._bits_counter = self.stats.bits_sent
        # The batched gather is only exact without an injector (see the
        # module docstring) and only meaningful with slotting.
        self._columnar_slots = self._injector is None and config.slotted

    # -- write-through maintenance --------------------------------------

    def _note_lane_state(self, lane: LaneKind, node: int) -> None:
        columns = self._node_ready
        if columns is None:  # construction-time sends cannot happen
            return  # pragma: no cover - defensive
        state = self._state[lane][node]
        ready = NEVER
        retx = state.retx
        if retx:
            for entry in retx:
                release = entry.release
                if release < ready:
                    ready = release
        queue = state.queue
        if queue:
            scheduled = queue[0].scheduled_cycle
            if scheduled < ready:
                ready = scheduled
        mirror = self._ready_py[lane]
        old = mirror[node]
        if ready == old:
            return
        mirror[node] = ready
        columns[lane][node] = ready
        cached = self._lane_min[lane]
        if ready < cached:
            # Below every cell's lower bound, so it is the new minimum
            # exactly — even if the flag was dirty.
            self._lane_min[lane] = ready
            self._min_dirty[lane] = False
        elif old == cached and ready > old:
            self._min_dirty[lane] = True

    def _lane_ready_min(self, lane: LaneKind) -> int:
        """The lane's true minimum readiness (folds the column once
        after a dirtying removal)."""
        if self._min_dirty[lane]:
            if self._small:
                self._lane_min[lane] = min(self._ready_py[lane])
            else:
                self._lane_min[lane] = int(self._node_ready[lane].min())
            self._min_dirty[lane] = False
        return self._lane_min[lane]

    # -- slot processing ------------------------------------------------

    def _start_slot(self, lane: LaneKind, cycle: int) -> None:
        if not self._columnar_slots:
            super()._start_slot(lane, cycle)
            return
        self._slots_counter[lane].value += 1
        if self._lane_pending[lane] == 0:
            return
        if self._lane_ready_min(lane) > cycle:
            return  # pending traffic, but nothing eligible yet
        slot_len = self._slot_len[lane]
        states = self._state[lane]
        tx_counter = self._tx_counter[lane]
        bits_counter = self._bits_counter

        # Gather this slot's transmissions from the due nodes only; the
        # reference walks every node, but a node whose readiness is in
        # the future yields no pick and no side effects.  Both scan
        # forms replay the reference 0..N-1 sweep in ascending order.
        if self._small:
            mirror = self._ready_py[lane]
            due = [node for node in range(self.num_nodes) if mirror[node] <= cycle]
        else:
            due = due_indices(self._node_ready[lane], cycle).tolist()
        sends = []
        for node in due:
            packet = self._pick_transmission(lane, states[node], cycle)
            if packet is None:  # pragma: no cover - column invariant
                continue
            if packet.first_tx_cycle < 0:
                packet.first_tx_cycle = cycle
            opa = states[node].opa
            setup = opa.steer(packet.dst) if opa is not None else 0
            tx_counter.value += 1
            bits_counter.value += packet.bits
            if TRACE.enabled:
                TRACE.emit(
                    "tx", cat="fsoi", cycle=cycle, node=packet.src,
                    lane=lane.value, packet=packet.uid, dur=slot_len,
                    dst=packet.dst, retries=packet.retries,
                )
            sends.append((packet, setup))
        if not sends:
            return
        if len(sends) == 1:
            # A lone transmission cannot collide regardless of which
            # receiver it lands on (receiver_for is pure).
            self._handle_solo(lane, cycle, slot_len, sends[0])
            return

        # Group by (destination, receiver) — the static sender partition.
        groups: dict[tuple[int, int], list] = {}
        for packet, setup in sends:
            receiver = self.lanes.receiver_for(
                lane, packet.src, packet.dst, self.num_nodes
            )
            groups.setdefault((packet.dst, receiver), []).append((packet, setup))
        for (dst, _receiver), members in groups.items():
            if len(members) == 1:
                self._handle_solo(lane, cycle, slot_len, members[0])
            else:
                self._handle_collision(lane, cycle, slot_len, dst, members)

    # -- fast-forward horizon -------------------------------------------

    def next_event(self, cycle: int) -> int | None:
        if not self.config.slotted:
            return cycle
        horizon = self.confirmations.next_event(cycle)
        c = self._calendar.next_cycle()
        if c is not None and (horizon is None or c < horizon):
            horizon = c
        for lane, slot_len in self._slot_items:
            if self._lane_pending[lane] == 0:
                continue
            boundary = slot_horizon(self._lane_ready_min(lane), cycle, slot_len)
            if boundary is None:  # pragma: no cover - counter invariant
                continue
            if horizon is None or boundary < horizon:
                horizon = boundary
        if self._injector is not None and self._injector.suppression_active:
            for slot_len in self._slot_len.values():
                boundary = ((cycle + slot_len - 1) // slot_len) * slot_len
                if horizon is None or boundary < horizon:
                    horizon = boundary
        if horizon is not None and horizon < cycle:
            return cycle
        return horizon

    # -- invariants ------------------------------------------------------

    def audit(self) -> None:
        """Columns must agree with the lane state they mirror."""
        for lane in _LANES:
            column = self._node_ready[lane]
            mirror = self._ready_py[lane]
            pending = 0
            for node, state in enumerate(self._state[lane]):
                assert column[node] == lane_ready(state)
                assert mirror[node] == lane_ready(state)
                pending += len(state.retx) + len(state.queue)
            assert pending == self._lane_pending[lane]
            true_min = int(column.min()) if len(column) else NEVER
            if self._min_dirty[lane]:
                assert self._lane_min[lane] <= true_min
            else:
                assert self._lane_min[lane] == true_min
