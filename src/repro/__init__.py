"""repro — a reproduction of *An Intra-Chip Free-Space Optical
Interconnect* (ISCA 2010).

The package rebuilds the paper's whole stack in Python:

* :mod:`repro.optics` — photonic devices (VCSELs, photodetectors,
  micro-optics) and the free-space link budget (Table 1).
* :mod:`repro.core` — the contribution: the relay-free, arbitration-free
  FSOI network with collisions, confirmations, exponential back-off and
  the §5 optimizations, plus the paper's analytical models.
* :mod:`repro.mesh`, :mod:`repro.corona` — the electrical
  packet-switched mesh baseline (with L0/Lr1/Lr2 idealizations) and a
  corona-style token-arbitrated optical crossbar.
* :mod:`repro.coherence` — the Table 2 MESI directory protocol.
* :mod:`repro.cpu`, :mod:`repro.cmp` — timing cores, memory
  controllers, synchronization, and the full CMP simulator.
* :mod:`repro.workloads` — synthetic traffic and the 16 application
  signatures.
* :mod:`repro.power` — the Figure 8 energy models.

Quick start::

    from repro.cmp import run_app

    mesh = run_app("oc", "mesh", num_nodes=16, cycles=10_000)
    fsoi = run_app("oc", "fsoi", num_nodes=16, cycles=10_000)
    print(f"speedup: {fsoi.speedup_over(mesh):.2f}x")

See README.md for the architecture overview, DESIGN.md for the system
inventory and substitutions, and EXPERIMENTS.md for paper-vs-measured
results for every table and figure.
"""

from repro.cmp import CmpConfig, CmpResults, CmpSystem, run_app
from repro.config import SystemConfig, table3
from repro.core import FsoiConfig, FsoiNetwork, OpticalLink, OptimizationConfig
from repro.faults import FaultPlan

__version__ = "1.0.0"

__all__ = [
    "CmpConfig",
    "CmpResults",
    "CmpSystem",
    "run_app",
    "SystemConfig",
    "table3",
    "FaultPlan",
    "FsoiConfig",
    "FsoiNetwork",
    "OpticalLink",
    "OptimizationConfig",
    "__version__",
]
