"""Token-ring-arbitrated optical crossbar (corona-style).

Model: one shared optical channel per destination node (a
multiple-writer single-reader crossbar).  A token per channel circulates
the ring optically, completing a full round in a few core cycles when
free.  To transmit, a node waits for the channel's token to pass by,
seizes it, holds it for the transfer's serialization time, then
re-injects it at its own position.  Transfers never collide — the token
*is* the arbitration — but every transfer pays the token-wait latency,
on average half a round trip when uncontended and more under load.
Detection/ejection overhead is one cycle, as in the FSOI model.

Serialization matches the FSOI data-path width so the two designs have
comparable raw bandwidth; what differs is purely the arbitration story.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.net.interface import Interconnect
from repro.net.packet import LaneKind, Packet

__all__ = ["CoronaConfig", "CoronaNetwork"]


@dataclass(frozen=True)
class CoronaConfig:
    """Corona-style network parameters.

    ``token_round_cycles`` is how long a free token takes to circle the
    whole ring (optical propagation around the chip plus per-node
    detection — a few ns, i.e. a handful of core cycles), and
    ``serialization_meta``/``serialization_data`` match the FSOI lane
    slot lengths so raw bandwidth is comparable.
    """

    num_nodes: int = 64
    token_round_cycles: int = 12
    serialization_meta: int = 2
    serialization_data: int = 5
    rx_overhead: int = 1
    injection_queue: int = 16

    def __post_init__(self) -> None:
        if self.token_round_cycles < 1:
            raise ValueError("token round trip must take >= 1 cycle")

    @property
    def nodes_per_cycle(self) -> int:
        """Ring positions the free token sweeps past per cycle."""
        return max(1, -(-self.num_nodes // self.token_round_cycles))


class _Channel:
    """One destination's shared channel and its circulating token."""

    __slots__ = ("owner_until", "token_position", "queues", "idle")

    def __init__(self, num_nodes: int):
        self.token_position = 0
        self.owner_until = -1  # cycle the current holder releases at
        self.idle = False      # fast path: no pending packets last sweep
        # Per-sender queues of packets waiting for this channel.
        self.queues: list[deque[Packet]] = [deque() for _ in range(num_nodes)]


class CoronaNetwork(Interconnect):
    """Cycle-level corona-style crossbar with token-ring arbitration."""

    def __init__(self, config: CoronaConfig):
        super().__init__(config.num_nodes)
        self.config = config
        self._channels = [_Channel(config.num_nodes) for _ in range(config.num_nodes)]
        self._deliveries: dict[int, list[Packet]] = {}
        self._token_waits = self.stats.group.latency("token_wait")

    def can_accept(self, node, lane) -> bool:  # noqa: D102 - see base class
        self._check_node(node)
        total = sum(len(ch.queues[node]) for ch in self._channels)
        return total < self.config.injection_queue

    def try_send(self, packet: Packet, cycle: int) -> bool:
        self._check_node(packet.src)
        self._check_node(packet.dst)
        if not self.can_accept(packet.src, packet.lane):
            self.stats.refused.add()
            return False
        packet.enqueue_cycle = cycle
        packet.scheduled_cycle = cycle
        self._channels[packet.dst].queues[packet.src].append(packet)
        self.stats.sent.add()
        self.stats.bits_sent.add(packet.bits)
        return True

    def tick(self, cycle: int) -> None:
        deliveries = self._deliveries.pop(cycle, None)
        if deliveries is not None:
            for packet in deliveries:  # arrival order
                self._deliver(packet, cycle)
            if self.post_delivery is not None:
                self.post_delivery()  # drain the coherence mailbox
        for channel in self._channels:
            self._advance_token(channel, cycle)

    def _advance_token(self, channel: _Channel, cycle: int) -> None:
        if channel.owner_until >= cycle:
            return  # token held by a transmitting node
        if channel.idle and not any(channel.queues):
            return  # nothing waiting anywhere on this channel
        channel.idle = True
        packet = None
        for _step in range(self.config.nodes_per_cycle):
            position = (channel.token_position + 1) % self.num_nodes
            channel.token_position = position
            queue = channel.queues[position]
            if queue:
                packet = queue.popleft()
                channel.idle = False
                break
        if packet is None:
            return
        packet.first_tx_cycle = cycle
        packet.final_tx_cycle = cycle
        self._token_waits.record(cycle - packet.enqueue_cycle)
        serialization = (
            self.config.serialization_meta
            if packet.lane is LaneKind.META
            else self.config.serialization_data
        )
        channel.owner_until = cycle + serialization - 1
        deliver = cycle + serialization - 1 + self.config.rx_overhead
        self._deliveries.setdefault(deliver, []).append(packet)

    def quiescent(self) -> bool:
        if self._deliveries:
            return False
        return all(
            not any(ch.queues[n] for n in range(self.num_nodes))
            for ch in self._channels
        )

    def next_event(self, cycle: int) -> int | None:
        """Fast-forward horizon.  A held token sleeps until release; a
        sweeping token (``idle`` false, or packets queued anywhere on
        the channel) advances every cycle, pinning the horizon to "now".
        A channel that went idle with empty queues contributes nothing.
        """
        horizon = min(self._deliveries) if self._deliveries else None
        if horizon is not None and horizon <= cycle:
            return cycle
        for channel in self._channels:
            if channel.owner_until >= cycle:
                release = channel.owner_until + 1
                if horizon is None or release < horizon:
                    horizon = release
                continue
            if not channel.idle or any(channel.queues):
                return cycle
        return horizon
