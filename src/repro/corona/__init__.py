"""Corona-style shared-medium optical interconnect baseline.

The paper compares FSOI against "a corona-style design" (§7.1; refs
[18, 61]): a waveguided, wavelength-routed optical crossbar in which
each *destination* owns a shared multiple-writer single-reader channel,
and senders acquire the right to write via **optical token-ring
arbitration** — a token per channel circulates the ring of nodes; a
sender must wait for, seize, hold (for the duration of its transfer)
and then release the token.  FSOI's advantage over it comes from not
waiting for arbitration at all; the paper reports FSOI is ~1.06x faster
in the 64-way system.
"""

from repro.corona.network import CoronaConfig, CoronaNetwork

__all__ = ["CoronaConfig", "CoronaNetwork"]
