"""The conventional electrical packet-switched mesh baseline.

The paper's baseline interconnect (§6, Table 3): a k-ary 2-mesh of
canonical 4-stage virtual-channel routers (4 VCs, 12-flit buffers,
credit-based flow control, XY dimension-order routing), 72-bit flits,
1-flit meta packets and 5-flit data packets, 4-cycle router latency plus
1-cycle links.  Our model corresponds to the extended PopNet simulator
the paper used.

:mod:`repro.mesh.ideal` additionally provides the idealized comparison
points of §7.1: **L0** (zero network latency, only serialization and
source queuing), and **Lr1**/**Lr2** (per-hop 1-cycle link plus 1- or
2-cycle router, no contention).
"""

from repro.mesh.ideal import IdealConfig, IdealNetwork
from repro.mesh.network import MeshConfig, MeshNetwork
from repro.mesh.routing import mesh_coordinates, mesh_hops, xy_route

__all__ = [
    "IdealConfig",
    "IdealNetwork",
    "MeshConfig",
    "MeshNetwork",
    "mesh_coordinates",
    "mesh_hops",
    "xy_route",
]
