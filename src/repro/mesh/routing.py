"""Mesh topology helpers and XY dimension-order routing.

Nodes of a k-ary 2-mesh are numbered row-major: node ``i`` sits at
``(x, y) = (i % k, i // k)``.  XY routing moves a packet fully along X
first, then along Y — deterministic and deadlock-free on a mesh (no
turn from Y back into X, so the channel-dependency graph is acyclic).
"""

from __future__ import annotations

import math
from enum import IntEnum

__all__ = ["Port", "mesh_side", "mesh_coordinates", "mesh_hops", "xy_route"]


class Port(IntEnum):
    """Router ports.  LOCAL is the node's injection/ejection port."""

    LOCAL = 0
    EAST = 1
    WEST = 2
    NORTH = 3
    SOUTH = 4


def mesh_side(num_nodes: int) -> int:
    """Side length k of a square mesh with ``num_nodes`` nodes.

    >>> mesh_side(16)
    4
    """
    k = int(round(math.sqrt(num_nodes)))
    if k * k != num_nodes:
        raise ValueError(f"mesh requires a square node count, got {num_nodes}")
    return k


def mesh_coordinates(node: int, side: int) -> tuple[int, int]:
    """(x, y) position of ``node`` in a ``side`` x ``side`` mesh."""
    if not 0 <= node < side * side:
        raise ValueError(f"node {node} outside {side}x{side} mesh")
    return node % side, node // side


def mesh_hops(src: int, dst: int, side: int) -> int:
    """Manhattan hop count between two nodes.

    >>> mesh_hops(0, 15, 4)
    6
    """
    sx, sy = mesh_coordinates(src, side)
    dx, dy = mesh_coordinates(dst, side)
    return abs(sx - dx) + abs(sy - dy)


def xy_route(current: int, dst: int, side: int) -> Port:
    """Output port to take at ``current`` toward ``dst`` under XY routing.

    >>> xy_route(0, 3, 4)
    <Port.EAST: 1>
    >>> xy_route(3, 3, 4)
    <Port.LOCAL: 0>
    """
    cx, cy = mesh_coordinates(current, side)
    dx, dy = mesh_coordinates(dst, side)
    if cx < dx:
        return Port.EAST
    if cx > dx:
        return Port.WEST
    if cy < dy:
        return Port.SOUTH
    if cy > dy:
        return Port.NORTH
    return Port.LOCAL


def neighbor(node: int, port: Port, side: int) -> int:
    """Node id one hop away through ``port``; raises at mesh edges."""
    x, y = mesh_coordinates(node, side)
    if port is Port.EAST:
        x += 1
    elif port is Port.WEST:
        x -= 1
    elif port is Port.SOUTH:
        y += 1
    elif port is Port.NORTH:
        y -= 1
    else:
        raise ValueError("LOCAL port has no neighbor")
    if not (0 <= x < side and 0 <= y < side):
        raise ValueError(f"no neighbor through {port.name} from node {node}")
    return y * side + x


def opposite(port: Port) -> Port:
    """The port a flit arrives on after leaving through ``port``."""
    pairs = {
        Port.EAST: Port.WEST,
        Port.WEST: Port.EAST,
        Port.NORTH: Port.SOUTH,
        Port.SOUTH: Port.NORTH,
    }
    if port not in pairs:
        raise ValueError("LOCAL port has no opposite")
    return pairs[port]
