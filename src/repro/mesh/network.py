"""The mesh interconnect: routers + network interfaces.

Wires a k-ary 2-mesh of :class:`repro.mesh.router.Router` together and
adapts it to the common :class:`repro.net.Interconnect` interface.  Each
node's network interface holds an injection queue; packets are cut into
72-bit flits (1 for meta, 5 for data) and injected into the local input
port under the same VC-allocation/credit rules as any other hop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.mesh.router import Flit, Router
from repro.mesh.routing import Port, mesh_hops, mesh_side, neighbor
from repro.net.interface import Interconnect
from repro.net.packet import Packet

__all__ = ["MeshConfig", "MeshNetwork"]


@dataclass(frozen=True)
class MeshConfig:
    """Mesh parameters (Table 3 defaults: 4 VCs, 12-flit buffers,
    4-cycle routers, 1-cycle links).

    ``bandwidth_scale`` models the Figure 11 sensitivity sweep: links
    narrower than the 72-bit flit stretch every packet over
    proportionally more flits (0.5 = half-width links).
    """

    num_nodes: int = 16
    num_vcs: int = 4
    buffer_flits: int = 12
    router_latency: int = 4
    link_latency: int = 1
    injection_queue: int = 64
    bandwidth_scale: float = 1.0

    def __post_init__(self) -> None:
        mesh_side(self.num_nodes)  # validates squareness
        if self.injection_queue < 1:
            raise ValueError("injection queue must hold at least 1 packet")
        if not 0.1 <= self.bandwidth_scale <= 1.0:
            raise ValueError(f"bandwidth scale out of (0.1, 1]: {self.bandwidth_scale}")

    def flits_for(self, packet_flits: int) -> int:
        """Flit count after link-width scaling."""
        import math

        return math.ceil(packet_flits / self.bandwidth_scale)


class MeshNetwork(Interconnect):
    """Cycle-level k-ary 2-mesh with wormhole VC routers."""

    def __init__(self, config: MeshConfig):
        super().__init__(config.num_nodes)
        self.config = config
        self.side = mesh_side(config.num_nodes)
        self.routers = self._build_routers()
        for i, router in enumerate(self.routers):
            for port in (Port.EAST, Port.WEST, Port.NORTH, Port.SOUTH):
                try:
                    router.downstream[port] = self.routers[neighbor(i, port, self.side)]
                except ValueError:
                    pass  # mesh edge
        self._inject_queues: list[deque[Packet]] = [
            deque() for _ in range(config.num_nodes)
        ]
        # In-progress injection: remaining flits of the packet currently
        # being pushed into the local port, plus its allocated VC.
        self._inject_state: list[tuple[list[Flit], int] | None] = [
            None
        ] * config.num_nodes
        self._deliveries: dict[int, list[Packet]] = {}
        self._hops = self.stats.group.latency("hops")

    def _build_routers(self) -> list[Router]:
        """Router construction hook; the vector engine substitutes its
        write-through subclass here (``repro.mesh.vector``)."""
        config = self.config
        return [
            Router(
                node=i,
                side=self.side,
                num_vcs=config.num_vcs,
                buffer_flits=config.buffer_flits,
                router_latency=config.router_latency,
                link_latency=config.link_latency,
                deliver=self._on_eject,
            )
            for i in range(config.num_nodes)
        ]

    # -- Interconnect interface ----------------------------------------------

    def can_accept(self, node, lane) -> bool:  # noqa: D102 - see base class
        self._check_node(node)
        return len(self._inject_queues[node]) < self.config.injection_queue

    def try_send(self, packet: Packet, cycle: int) -> bool:
        self._check_node(packet.src)
        self._check_node(packet.dst)
        queue = self._inject_queues[packet.src]
        if len(queue) >= self.config.injection_queue:
            self.stats.refused.add()
            return False
        packet.enqueue_cycle = cycle
        packet.scheduled_cycle = cycle  # mesh has no intentional scheduling
        queue.append(packet)
        self.stats.sent.add()
        self.stats.bits_sent.add(packet.bits)
        return True

    def tick(self, cycle: int) -> None:
        # Ejections scheduled for this cycle.
        deliveries = self._deliveries.pop(cycle, None)
        if deliveries is not None:
            for packet in deliveries:  # arrival order
                self._deliver(packet, cycle)
            if self.post_delivery is not None:
                self.post_delivery()  # drain the coherence mailbox
        for node in range(self.num_nodes):
            self._inject(node, cycle)
        for router in self.routers:
            router.tick(cycle)

    def quiescent(self) -> bool:
        if self._deliveries:
            return False
        if any(self._inject_queues) or any(s is not None for s in self._inject_state):
            return False
        return all(router.occupancy() == 0 for router in self.routers)

    def next_event(self, cycle: int) -> int | None:
        """Fast-forward horizon: min over pending ejections, per-router
        head-flit readiness, and injection *progress*.

        An injection slot pins the horizon to "now" only when it can
        actually advance this cycle: an in-flight packet with a credit
        on its allocated VC, or a fresh queue head with an allocatable
        VC.  A credit- or VC-blocked injection unblocks only after its
        local router forwards a flit, and any router forward happens no
        earlier than the router readiness horizons already in the min —
        so reporting the future horizon instead of "now" is exact, and
        lets fast-forward engage on mesh runs whose only live work is
        buffered traffic maturing through router/link latencies.
        """
        for node, state in enumerate(self._inject_state):
            if state is None:
                continue
            if self.routers[node].credits(Port.LOCAL, state[1]) > 0:
                return cycle
        for node, queue in enumerate(self._inject_queues):
            if (
                queue
                and self._inject_state[node] is None
                and self._allocate_injection_vc(self.routers[node]) is not None
            ):
                return cycle
        horizon = min(self._deliveries) if self._deliveries else None
        if horizon is not None and horizon <= cycle:
            return cycle
        for router in self.routers:
            c = router.next_event(cycle)
            if c is None:
                continue
            if c <= cycle:
                return cycle
            if horizon is None or c < horizon:
                horizon = c
        return horizon

    # -- injection / ejection -----------------------------------------------

    def _inject(self, node: int, cycle: int) -> None:
        """Push at most one flit per cycle into the local input port."""
        state = self._inject_state[node]
        router = self.routers[node]
        if state is None:
            queue = self._inject_queues[node]
            if not queue:
                return
            packet = queue[0]
            vc = self._allocate_injection_vc(router)
            if vc is None:
                return  # all local VCs busy or full
            queue.popleft()
            packet.first_tx_cycle = cycle
            packet.final_tx_cycle = cycle
            flits = self._make_flits(packet, self.config.flits_for(packet.flits))
            state = (flits, vc)
            self._inject_state[node] = state
        flits, vc = state
        if router.credits(Port.LOCAL, vc) <= 0:
            return
        flit = flits.pop(0)
        router.accept_flit(Port.LOCAL, vc, flit, cycle + 1)
        if not flits:
            self._inject_state[node] = None

    def _allocate_injection_vc(self, router: Router) -> int | None:
        for vc in range(self.config.num_vcs):
            if router.vc_free(Port.LOCAL, vc) and router.credits(Port.LOCAL, vc) > 0:
                return vc
        return None

    @staticmethod
    def _make_flits(packet: Packet, count: int) -> list[Flit]:
        return [
            Flit(
                packet=packet,
                index=i,
                is_head=(i == 0),
                is_tail=(i == count - 1),
            )
            for i in range(count)
        ]

    def _on_eject(self, packet: Packet, cycle: int) -> None:
        """Router ejection callback; delivery is stamped at ``cycle``."""
        self._hops.record(mesh_hops(packet.src, packet.dst, self.side))
        self._deliveries.setdefault(cycle, []).append(packet)

    # -- energy accounting -----------------------------------------------------

    def activity(self) -> dict[str, int]:
        """Aggregate switching activity for the Orion-style energy model."""
        return {
            "flits_routed": sum(r.flits_routed for r in self.routers),
            "buffer_writes": sum(r.buffer_writes for r in self.routers),
            "buffer_reads": sum(r.buffer_reads for r in self.routers),
            "link_flits": sum(r.link_flits for r in self.routers),
        }
