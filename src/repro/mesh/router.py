"""A canonical 4-stage virtual-channel wormhole router.

Models the baseline router of §6/§7.1: route computation, VC allocation,
switch allocation and switch traversal, abstracted as a fixed
``router_latency`` per traversal with one-flit-per-cycle throughput per
output port, plus credit-based flow control against finite downstream
buffers (4 VCs x 12 flits per input port by default, Table 3).

Timing model: when a flit wins switch allocation it leaves its input
buffer, and appears in the downstream input buffer ``router_latency +
link_latency`` cycles later (it occupies the downstream slot from the
moment it is sent — in-flight flits count against credits, as in a real
credit loop).  Head flits additionally need a free downstream VC
(packet-granularity VC allocation, wormhole body flits follow their
head).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.mesh.routing import Port, xy_route
from repro.net.packet import Packet
from repro.obs.trace import TRACE

__all__ = ["Flit", "Router"]


@dataclass
class Flit:
    """One 72-bit flit of a packet."""

    packet: Packet
    index: int
    is_head: bool
    is_tail: bool


class _VcBuffer:
    """One virtual-channel FIFO at an input port."""

    __slots__ = ("capacity", "flits", "owner", "route_port", "out_vc")

    def __init__(self, capacity: int):
        self.capacity = capacity
        # Entries are (ready_cycle, flit): a flit occupies its slot from
        # the moment the upstream router sends it, becoming processable
        # at ready_cycle.
        self.flits: deque[tuple[int, Flit]] = deque()
        self.owner: Optional[Packet] = None    # packet currently using this VC
        self.route_port: Optional[Port] = None  # RC result for the owner
        self.out_vc: Optional[int] = None       # VA result for the owner

    def free_slots(self) -> int:
        return self.capacity - len(self.flits)

    def head_ready(self, cycle: int) -> Optional[Flit]:
        if self.flits and self.flits[0][0] <= cycle:
            return self.flits[0][1]
        return None


class Router:
    """One mesh router.

    Parameters
    ----------
    node:
        This router's node id.
    side:
        Mesh side length (for XY routing).
    num_vcs, buffer_flits:
        Virtual channels per input port and flits per VC buffer.
    router_latency, link_latency:
        Cycles per router traversal and per link.
    deliver:
        Callback ``(packet, cycle)`` invoked when a tail flit ejects at
        the local port.
    """

    def __init__(
        self,
        node: int,
        side: int,
        num_vcs: int,
        buffer_flits: int,
        router_latency: int,
        link_latency: int,
        deliver: Callable[[Packet, int], None],
    ):
        if num_vcs < 1 or buffer_flits < 1:
            raise ValueError("need at least 1 VC and 1 buffer slot")
        if router_latency < 1 or link_latency < 0:
            raise ValueError("router latency >= 1, link latency >= 0")
        self.node = node
        self.side = side
        self.num_vcs = num_vcs
        self.router_latency = router_latency
        self.link_latency = link_latency
        self.deliver = deliver
        self.inputs: dict[Port, list[_VcBuffer]] = {
            port: [_VcBuffer(buffer_flits) for _ in range(num_vcs)] for port in Port
        }
        # Wired by the network: downstream router per non-local output.
        self.downstream: dict[Port, "Router"] = {}
        self._arbiter_state: dict[Port, int] = {port: 0 for port in Port}
        self._buffered = 0  # total flits across all input buffers (fast path)
        self._occupied: set[tuple[Port, int]] = set()  # non-empty (port, vc)
        # Counters consumed by the Orion-style energy model.
        self.flits_routed = 0
        self.buffer_writes = 0
        self.buffer_reads = 0
        self.link_flits = 0

    # -- upstream-facing ----------------------------------------------------

    def accept_flit(self, port: Port, vc: int, flit: Flit, ready_cycle: int) -> None:
        """Place ``flit`` into input buffer (slot was reserved by credits)."""
        buffer = self.inputs[port][vc]
        if buffer.free_slots() <= 0:
            raise RuntimeError(
                f"credit protocol violated: buffer overflow at node {self.node} "
                f"{port.name}.vc{vc}"
            )
        if flit.is_head:
            if buffer.owner is not None:
                raise RuntimeError(
                    f"VC allocation violated: vc{vc} at node {self.node} "
                    f"{port.name} already owned"
                )
            buffer.owner = flit.packet
            buffer.route_port = xy_route(self.node, flit.packet.dst, self.side)
            buffer.out_vc = None
            if TRACE.enabled:
                TRACE.emit(
                    "vc_alloc", cat="mesh", cycle=ready_cycle,
                    node=self.node, packet=flit.packet.uid,
                    port=port.name, vc=vc,
                    route=buffer.route_port.name,
                )
        buffer.flits.append((ready_cycle, flit))
        self._buffered += 1
        self._occupied.add((port, vc))
        self.buffer_writes += 1

    def credits(self, port: Port, vc: int) -> int:
        """Free downstream-buffer slots for (``port``, ``vc``)."""
        return self.inputs[port][vc].free_slots()

    def vc_free(self, port: Port, vc: int) -> bool:
        """Whether input VC ``vc`` at ``port`` is unallocated."""
        return self.inputs[port][vc].owner is None

    # -- per-cycle operation ---------------------------------------------

    def tick(self, cycle: int) -> None:
        """One cycle: each output port forwards at most one flit."""
        if self._buffered == 0:
            return
        for out_port in Port:
            self._arbitrate_output(out_port, cycle)

    def next_event(self, cycle: int) -> Optional[int]:
        """Fast-forward horizon: earliest cycle any head flit is ready.

        ``None`` when empty.  A ready head that is flow-control blocked
        still pins the horizon to "now" — credits can free on any cycle
        a neighbour forwards, so the router must keep ticking.
        """
        if self._buffered == 0:
            return None
        earliest = None
        for port, vc in self._occupied:
            ready = self.inputs[port][vc].flits[0][0]
            if ready <= cycle:
                return cycle
            if earliest is None or ready < earliest:
                earliest = ready
        return earliest

    def _arbitrate_output(self, out_port: Port, cycle: int) -> None:
        candidates = self._candidates(out_port, cycle)
        if not candidates:
            return
        # Round-robin among (input port, vc) requesters.
        start = self._arbiter_state[out_port]
        order = sorted(candidates, key=lambda item: (item[0] - start) % 1000)
        key, buffer, flit = order[0][1]
        self._arbiter_state[out_port] = order[0][0] + 1
        self._forward(out_port, key, buffer, flit, cycle)

    def _candidates(self, out_port: Port, cycle: int):
        """Input VCs with a ready head flit routed to ``out_port``.

        Only occupied buffers are inspected — the arbitration scan is
        the simulator's hottest loop.
        """
        out = []
        # Sorted iteration keeps runs deterministic (sets are unordered).
        for in_port, vc in sorted(self._occupied):
            buffer = self.inputs[in_port][vc]
            if buffer.route_port is not out_port:
                continue
            flit = buffer.head_ready(cycle)
            if flit is None:
                continue
            if not self._flow_control_ok(out_port, buffer, flit):
                continue
            index = in_port.value * self.num_vcs + vc + 1
            out.append((index, ((in_port, vc), buffer, flit)))
        return out

    def _flow_control_ok(self, out_port: Port, buffer: _VcBuffer, flit: Flit) -> bool:
        if out_port is Port.LOCAL:
            return True  # ejection is never blocked
        downstream = self.downstream[out_port]
        from repro.mesh.routing import opposite

        in_port = opposite(out_port)
        if flit.is_head and buffer.out_vc is None:
            # VC allocation: need a free downstream VC with a credit.
            for vc in range(self.num_vcs):
                if downstream.vc_free(in_port, vc) and downstream.credits(
                    in_port, vc
                ) > 0:
                    return True
            return False
        return downstream.credits(in_port, buffer.out_vc) > 0

    def _forward(
        self,
        out_port: Port,
        key: tuple[Port, int],
        buffer: _VcBuffer,
        flit: Flit,
        cycle: int,
    ) -> None:
        buffer.flits.popleft()
        self._buffered -= 1
        if not buffer.flits:
            self._occupied.discard(key)
        self.buffer_reads += 1
        self.flits_routed += 1

        if out_port is Port.LOCAL:
            if flit.is_tail:
                if TRACE.enabled:
                    TRACE.emit(
                        "eject", cat="mesh",
                        cycle=cycle + self.router_latency,
                        node=self.node, packet=flit.packet.uid,
                        src=flit.packet.src,
                    )
                self.deliver(flit.packet, cycle + self.router_latency)
                self._release_vc(buffer)
            return

        downstream = self.downstream[out_port]
        from repro.mesh.routing import opposite

        in_port = opposite(out_port)
        if flit.is_head and buffer.out_vc is None:
            buffer.out_vc = next(
                vc
                for vc in range(self.num_vcs)
                if downstream.vc_free(in_port, vc)
                and downstream.credits(in_port, vc) > 0
            )
        self.link_flits += 1
        arrival = cycle + self.router_latency + self.link_latency
        downstream.accept_flit(in_port, buffer.out_vc, flit, arrival)
        if flit.is_tail:
            self._release_vc(buffer)

    @staticmethod
    def _release_vc(buffer: _VcBuffer) -> None:
        buffer.owner = None
        buffer.route_port = None
        buffer.out_vc = None

    def occupancy(self) -> int:
        """Total buffered flits (for drain checks)."""
        return sum(
            len(vc.flits) for vcs in self.inputs.values() for vc in vcs
        )
