"""Idealized interconnect reference points (paper §7.1).

Three configurations bound the conventional design space:

* **L0** — transmission latency idealized to zero; a packet only pays
  its serialization delay (1 cycle meta / 5 cycles data) and queuing at
  the source node.  Only throughput is modeled: the source has one
  outgoing channel that serializes one packet at a time.
* **Lr1 / Lr2** — like L0 plus per-hop latency: 1 cycle link traversal
  and 1 (Lr1) or 2 (Lr2) cycles of router processing per hop, with no
  contention or delays inside the network.

These are *loose upper bounds* on what aggressively designed routers
could achieve, as the paper stresses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.mesh.routing import mesh_hops, mesh_side
from repro.net.interface import Interconnect
from repro.net.packet import LaneKind, Packet

__all__ = ["IdealConfig", "IdealNetwork"]


@dataclass(frozen=True)
class IdealConfig:
    """Parameters of an idealized network.

    ``router_cycles_per_hop = None`` gives L0 (no per-hop latency at
    all); 1 gives Lr1; 2 gives Lr2.
    """

    num_nodes: int = 16
    router_cycles_per_hop: int | None = None
    link_cycles_per_hop: int = 1
    serialization_meta: int = 1
    serialization_data: int = 5
    injection_queue: int = 64

    @classmethod
    def l0(cls, num_nodes: int = 16) -> "IdealConfig":
        return cls(num_nodes=num_nodes, router_cycles_per_hop=None)

    @classmethod
    def lr1(cls, num_nodes: int = 16) -> "IdealConfig":
        return cls(num_nodes=num_nodes, router_cycles_per_hop=1)

    @classmethod
    def lr2(cls, num_nodes: int = 16) -> "IdealConfig":
        return cls(num_nodes=num_nodes, router_cycles_per_hop=2)

    @property
    def label(self) -> str:
        if self.router_cycles_per_hop is None:
            return "L0"
        return f"Lr{self.router_cycles_per_hop}"


class IdealNetwork(Interconnect):
    """Contention-free network with per-source serialization throughput."""

    def __init__(self, config: IdealConfig):
        super().__init__(config.num_nodes)
        self.config = config
        self.side = mesh_side(config.num_nodes)
        self._queues: list[deque[Packet]] = [deque() for _ in range(config.num_nodes)]
        self._channel_free_at = [0] * config.num_nodes
        self._deliveries: dict[int, list[Packet]] = {}

    def can_accept(self, node, lane) -> bool:  # noqa: D102 - see base class
        self._check_node(node)
        return len(self._queues[node]) < self.config.injection_queue

    def try_send(self, packet: Packet, cycle: int) -> bool:
        self._check_node(packet.src)
        self._check_node(packet.dst)
        queue = self._queues[packet.src]
        if len(queue) >= self.config.injection_queue:
            self.stats.refused.add()
            return False
        packet.enqueue_cycle = cycle
        packet.scheduled_cycle = cycle
        queue.append(packet)
        self.stats.sent.add()
        self.stats.bits_sent.add(packet.bits)
        return True

    def tick(self, cycle: int) -> None:
        deliveries = self._deliveries.pop(cycle, None)
        if deliveries is not None:
            for packet in deliveries:  # arrival order
                self._deliver(packet, cycle)
            if self.post_delivery is not None:
                self.post_delivery()  # drain the coherence mailbox
        for node in range(self.num_nodes):
            self._pump(node, cycle)

    def _pump(self, node: int, cycle: int) -> None:
        """Start serializing the next packet when the channel is free."""
        queue = self._queues[node]
        if not queue or self._channel_free_at[node] > cycle:
            return
        packet = queue.popleft()
        packet.first_tx_cycle = cycle
        packet.final_tx_cycle = cycle
        serialization = (
            self.config.serialization_meta
            if packet.lane is LaneKind.META
            else self.config.serialization_data
        )
        self._channel_free_at[node] = cycle + serialization
        latency = serialization + self._hop_latency(packet)
        self._deliveries.setdefault(cycle + latency, []).append(packet)

    def _hop_latency(self, packet: Packet) -> int:
        if self.config.router_cycles_per_hop is None:
            return 0
        hops = mesh_hops(packet.src, packet.dst, self.side)
        per_hop = self.config.link_cycles_per_hop + self.config.router_cycles_per_hop
        return hops * per_hop

    def quiescent(self) -> bool:
        return not self._deliveries and not any(self._queues)

    def next_event(self, cycle: int) -> int | None:
        """Fast-forward horizon: min over pending deliveries and, per
        queued source, the cycle its serialization channel frees up."""
        horizon = min(self._deliveries) if self._deliveries else None
        if horizon is not None and horizon <= cycle:
            return cycle
        for node, queue in enumerate(self._queues):
            if not queue:
                continue
            free = self._channel_free_at[node]
            if free <= cycle:
                return cycle
            if horizon is None or free < horizon:
                horizon = free
        return horizon
