"""The columnar vectorized mesh engine.

``MeshNetwork``'s reference loop ticks every router and injection queue
every cycle; each router tick scans its occupied VCs once per output
port through a ``sorted`` set.  At the bench configuration that loop is
the simulator's hottest phase (~70 µs/cycle of network time at 16
nodes), and it grows linearly with node count regardless of how many
routers actually hold traffic.

This engine keeps the same objects — ``Router``/``_VcBuffer`` stay the
source of truth for buffer contents — and adds two scheduling indexes
maintained write-through (the ``repro.cpu.vector`` pattern):

* ``_router_ready[node]`` — a numpy column of each router's earliest
  head-flit readiness (:data:`~repro.net.kernels.NEVER` when empty).
  Each cycle the engine ticks only ``router_ready <= cycle`` routers
  (:func:`~repro.net.kernels.due_indices`), and the fast-forward
  horizon is a bulk column min instead of a per-router scan.
* per-router requester sets — the non-empty input VCs grouped by their
  owner's route port, so arbitration walks exactly the VCs requesting
  each output instead of re-scanning and re-sorting every occupied VC.

The worklist is *bit-exact* with the reference sweep: a router whose
heads are all future-ready arbitrates nothing and mutates nothing (the
round-robin pointer moves only on a win), an idle injection slot
returns before touching state, and nothing a ticked router does can
make another router ready in the same cycle (flits it forwards arrive
``router_latency + link_latency >= 2`` cycles later).  Within a ticked
router the fused arbitration picks the same winner as the reference
``sorted`` round-robin because arbitration indices are distinct, so the
minimum of ``(index - start) % 1000`` is the reference sort's first
element (:func:`~repro.net.kernels.rr_pick` is the spec; the property
suite pins the fused loop against it).

The per-flit bookkeeping (``accept_flit`` / ``_forward``) is fully
inlined rather than layered over ``super()`` calls: at small meshes
nearly every router is busy every cycle, so per-flit constant factors —
double dispatch and numpy scalar writes — would eat the worklist's
savings.  Only the scalar ``_router_ready`` cell is written per
mutation; the full per-VC occupancy/allocation columns that the audits
and property tests consume are *derived* on demand (:meth:`columns`).

The scheduling index is hybrid: a plain python list mirrors the numpy
column write-through, and below :data:`_SCAN_THRESHOLD` routers the due
scan and horizon min sweep the list instead (small-array numpy calls
carry microseconds of fixed dispatch overhead; the bulk kernels take
over where they win — see docs/performance.md).

Selected by ``CmpConfig.vectorized`` (default) and disabled together
with the core engine by ``REPRO_NO_VECTOR=1``; equivalence is pinned by
``tests/cmp/test_network_vector_equivalence.py``.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.network import MeshConfig, MeshNetwork
from repro.mesh.router import Router, _VcBuffer
from repro.mesh.routing import Port, opposite, xy_route
from repro.net.kernels import (
    NEVER,
    allocatable_vc_mask,
    due_indices,
    xy_route_codes,
)
from repro.net.packet import Packet
from repro.obs.trace import TRACE

__all__ = ["VectorMeshNetwork", "VectorRouter"]

_PORTS = tuple(Port)
_NUM_PORTS = len(_PORTS)
_LOCAL = Port.LOCAL
_OPPOSITE = {port: opposite(port) for port in Port if port is not Port.LOCAL}

# Below this node count a plain-python sweep over the readiness list is
# cheaper than the numpy compare/nonzero round trip (small-array numpy
# calls cost microseconds of fixed overhead); above it the bulk kernels
# win and keep the worklist sublinear in practice.
_SCAN_THRESHOLD = 64


class VectorRouter(Router):
    """A ``Router`` with a requester index and a fused hot path.

    State transitions are re-implemented inline (not layered over
    ``super()``) but semantically identical to the reference methods —
    same mutation order, same trace events, same counter updates; the
    equivalence suite compares the two flit by flit.
    """

    def __init__(self, *args, engine: "VectorMeshNetwork", **kwargs):
        super().__init__(*args, **kwargs)
        self._engine = engine
        self._ready_col = engine._router_ready
        self._ready_list = engine._router_ready_py
        # Non-empty (in_port, vc) keys grouped by their owner's route
        # port.  A non-empty buffer always has a defined route port
        # (VC allocation is packet-granular: a new head cannot enter
        # until the previous owner's tail has left), so membership is
        # stable while the buffer drains.
        self._requesters: dict[Port, set[tuple[Port, int]]] = {
            port: set() for port in Port
        }
        self._req_items = tuple(self._requesters.items())
        self._ready_min = NEVER

    # -- index maintenance ----------------------------------------------

    def _sync_ready_min(self) -> None:
        """Recompute the router's min head readiness after a head pop."""
        ready_min = NEVER
        inputs = self.inputs
        for port, vc in self._occupied:
            ready = inputs[port][vc].flits[0][0]
            if ready < ready_min:
                ready_min = ready
        self._ready_min = ready_min
        self._ready_list[self.node] = ready_min
        self._ready_col[self.node] = ready_min

    # -- upstream-facing (reference semantics, fused) --------------------

    def accept_flit(self, port: Port, vc: int, flit, ready_cycle: int) -> None:
        buffer = self.inputs[port][vc]
        flits = buffer.flits
        if buffer.capacity <= len(flits):
            raise RuntimeError(
                f"credit protocol violated: buffer overflow at node {self.node} "
                f"{port.name}.vc{vc}"
            )
        if flit.is_head:
            if buffer.owner is not None:
                raise RuntimeError(
                    f"VC allocation violated: vc{vc} at node {self.node} "
                    f"{port.name} already owned"
                )
            buffer.owner = flit.packet
            buffer.route_port = xy_route(self.node, flit.packet.dst, self.side)
            buffer.out_vc = None
            if TRACE.enabled:
                TRACE.emit(
                    "vc_alloc", cat="mesh", cycle=ready_cycle,
                    node=self.node, packet=flit.packet.uid,
                    port=port.name, vc=vc,
                    route=buffer.route_port.name,
                )
        if not flits:
            self._occupied.add((port, vc))
            self._requesters[buffer.route_port].add((port, vc))
            if ready_cycle < self._ready_min:
                self._ready_min = ready_cycle
                self._ready_list[self.node] = ready_cycle
                self._ready_col[self.node] = ready_cycle
        flits.append((ready_cycle, flit))
        self._buffered += 1
        self.buffer_writes += 1

    # -- per-cycle operation ---------------------------------------------

    def tick(self, cycle: int) -> None:
        if self._ready_min > cycle:
            return
        inputs = self.inputs
        num_vcs = self.num_vcs
        arbiter = self._arbiter_state
        for out_port, requesters in self._req_items:
            if not requesters:
                continue
            if out_port is _LOCAL:
                dinputs = None
            else:
                dinputs = self.downstream[out_port].inputs[_OPPOSITE[out_port]]
            # Fused candidate scan + round-robin: the winner is the
            # distinct-index argmin of (index - start) % 1000, i.e.
            # rr_pick over the candidate list the reference builds.
            start = arbiter[out_port]
            best_mod = 1000
            best_index = 0
            best_key = best_buffer = best_flit = None
            for req_key in requesters:
                in_port, vc = req_key
                buffer = inputs[in_port][vc]
                head = buffer.flits[0]
                if head[0] > cycle:
                    continue
                flit = head[1]
                if dinputs is not None:
                    out_vc = buffer.out_vc
                    if flit.is_head and out_vc is None:
                        # VC allocation: need a free downstream VC with
                        # a credit.
                        for dvc in range(num_vcs):
                            dbuf = dinputs[dvc]
                            if dbuf.owner is None and dbuf.capacity > len(
                                dbuf.flits
                            ):
                                break
                        else:
                            continue
                    else:
                        dbuf = dinputs[out_vc]
                        if dbuf.capacity <= len(dbuf.flits):
                            continue
                index = in_port * num_vcs + vc + 1
                mod = (index - start) % 1000
                if mod < best_mod:
                    best_mod = mod
                    best_index = index
                    best_key = req_key
                    best_buffer = buffer
                    best_flit = flit
            if best_key is not None:
                arbiter[out_port] = best_index + 1
                self._forward(out_port, best_key, best_buffer, best_flit, cycle)

    def next_event(self, cycle: int) -> int | None:
        if self._buffered == 0:
            return None
        ready_min = self._ready_min
        return cycle if ready_min <= cycle else ready_min

    def _forward(
        self,
        out_port: Port,
        key: tuple[Port, int],
        buffer: _VcBuffer,
        flit,
        cycle: int,
    ) -> None:
        flits = buffer.flits
        flits.popleft()
        self._buffered -= 1
        if not flits:
            self._occupied.discard(key)
            self._requesters[buffer.route_port].discard(key)
        self.buffer_reads += 1
        self.flits_routed += 1

        if out_port is _LOCAL:
            if flit.is_tail:
                if TRACE.enabled:
                    TRACE.emit(
                        "eject", cat="mesh",
                        cycle=cycle + self.router_latency,
                        node=self.node, packet=flit.packet.uid,
                        src=flit.packet.src,
                    )
                self.deliver(flit.packet, cycle + self.router_latency)
                buffer.owner = None
                buffer.route_port = None
                buffer.out_vc = None
            self._sync_ready_min()
            return

        downstream = self.downstream[out_port]
        in_port = _OPPOSITE[out_port]
        if flit.is_head and buffer.out_vc is None:
            dinputs = downstream.inputs[in_port]
            for dvc in range(self.num_vcs):
                dbuf = dinputs[dvc]
                if dbuf.owner is None and dbuf.capacity > len(dbuf.flits):
                    buffer.out_vc = dvc
                    break
            else:  # pragma: no cover - arbitration guaranteed a free VC
                raise RuntimeError("VC allocation failed after flow control")
        self.link_flits += 1
        downstream.accept_flit(
            in_port, buffer.out_vc, flit,
            cycle + self.router_latency + self.link_latency,
        )
        if flit.is_tail:
            buffer.owner = None
            buffer.route_port = None
            buffer.out_vc = None
        self._sync_ready_min()


class VectorMeshNetwork(MeshNetwork):
    """``MeshNetwork`` driven by the columnar worklists."""

    def __init__(self, config: MeshConfig):
        # Created before super().__init__: the routers it builds cache
        # references into the readiness column and its python mirror
        # (scalar writes and small-system sweeps stay off numpy's
        # per-call overhead).
        self._router_ready = np.full(config.num_nodes, NEVER, dtype=np.int64)
        self._router_ready_py = [NEVER] * config.num_nodes
        self._small = config.num_nodes < _SCAN_THRESHOLD
        self._active_inject: set[int] = set()
        super().__init__(config)

    def _build_routers(self) -> list[Router]:
        config = self.config
        return [
            VectorRouter(
                node=i,
                side=self.side,
                num_vcs=config.num_vcs,
                buffer_flits=config.buffer_flits,
                router_latency=config.router_latency,
                link_latency=config.link_latency,
                deliver=self._on_eject,
                engine=self,
            )
            for i in range(config.num_nodes)
        ]

    # -- Interconnect interface -----------------------------------------

    def try_send(self, packet: Packet, cycle: int) -> bool:
        accepted = super().try_send(packet, cycle)
        if accepted:
            self._active_inject.add(packet.src)
        return accepted

    def _inject(self, node: int, cycle: int) -> None:
        # Reference semantics, fused (no credits()/vc_free() dispatch).
        state = self._inject_state[node]
        router = self.routers[node]
        local = router.inputs[_LOCAL]
        if state is None:
            queue = self._inject_queues[node]
            if not queue:
                return
            packet = queue[0]
            for vc in range(self.config.num_vcs):
                buf = local[vc]
                if buf.owner is None and buf.capacity > len(buf.flits):
                    break
            else:
                return  # all local VCs busy or full
            queue.popleft()
            packet.first_tx_cycle = cycle
            packet.final_tx_cycle = cycle
            flits = self._make_flits(packet, self.config.flits_for(packet.flits))
            state = (flits, vc)
            self._inject_state[node] = state
        flits, vc = state
        if local[vc].capacity <= len(local[vc].flits):
            return
        flit = flits.pop(0)
        router.accept_flit(_LOCAL, vc, flit, cycle + 1)
        if not flits:
            self._inject_state[node] = None
            if not self._inject_queues[node]:
                self._active_inject.discard(node)

    def tick(self, cycle: int) -> None:
        deliveries = self._deliveries.pop(cycle, None)
        if deliveries is not None:
            for packet in deliveries:  # arrival order
                self._deliver(packet, cycle)
            if self.post_delivery is not None:
                self.post_delivery()  # drain the coherence mailbox
        if self._active_inject:
            # Ascending order replays the reference 0..N-1 sweep; nodes
            # not in the set have no queue and no in-progress packet, so
            # their _inject would return without touching anything.
            for node in sorted(self._active_inject):
                self._inject(node, cycle)
        routers = self.routers
        if self._small:
            for node, ready in enumerate(self._router_ready_py):
                if ready <= cycle:
                    routers[node].tick(cycle)
        else:
            for node in due_indices(self._router_ready, cycle).tolist():
                routers[node].tick(cycle)

    def next_event(self, cycle: int) -> int | None:
        # Same horizon as the reference scan, restricted to nodes with
        # injection work: an injection pins "now" only when it can
        # actually progress this cycle.
        states = self._inject_state
        routers = self.routers
        num_vcs = self.config.num_vcs
        for node in self._active_inject:
            state = states[node]
            local = routers[node].inputs[_LOCAL]
            if state is not None:
                buf = local[state[1]]
                if buf.capacity > len(buf.flits):
                    return cycle
            else:
                for vc in range(num_vcs):
                    buf = local[vc]
                    if buf.owner is None and buf.capacity > len(buf.flits):
                        return cycle
        horizon = min(self._deliveries) if self._deliveries else None
        if horizon is not None and horizon <= cycle:
            return cycle
        if self._small:
            router_min = min(self._router_ready_py)
        else:
            router_min = int(self._router_ready.min())
        if router_min <= cycle:
            # A ready head pins "now" even when flow-control blocked —
            # a neighbour's forward can free its credit on any cycle.
            return cycle
        if router_min < NEVER and (horizon is None or router_min < horizon):
            horizon = router_min
        return horizon

    # -- derived columns & invariants ------------------------------------

    def columns(self) -> dict[str, np.ndarray]:
        """Bulk per-VC state derived from the router objects.

        ``occ[node, port, vc]`` (buffered flits), ``owner`` (VC
        allocated), ``route`` (owner's route port code, -1 when free)
        and ``head_ready`` (:data:`NEVER` when empty) — the columnar
        view the audits and scaling checks consume.
        """
        shape = (self.num_nodes, _NUM_PORTS, self.config.num_vcs)
        occ = np.zeros(shape, dtype=np.int64)
        owner = np.zeros(shape, dtype=bool)
        route = np.full(shape, -1, dtype=np.int64)
        head_ready = np.full(shape, NEVER, dtype=np.int64)
        for router in self.routers:
            node = router.node
            for port in Port:
                for vc, buffer in enumerate(router.inputs[port]):
                    occ[node, port, vc] = len(buffer.flits)
                    owner[node, port, vc] = buffer.owner is not None
                    if buffer.owner is not None:
                        route[node, port, vc] = buffer.route_port.value
                    if buffer.flits:
                        head_ready[node, port, vc] = buffer.flits[0][0]
        return {
            "occ": occ, "owner": owner, "route": route,
            "head_ready": head_ready,
        }

    def audit(self) -> None:
        """Indexes must agree with the object state they mirror."""
        cols = self.columns()
        nodes: list[int] = []
        dsts: list[int] = []
        codes: list[int] = []
        for router in self.routers:
            node = router.node
            ready_min = NEVER
            for port in Port:
                for vc, buffer in enumerate(router.inputs[port]):
                    if buffer.flits:
                        ready_min = min(ready_min, buffer.flits[0][0])
                    if buffer.owner is not None:
                        nodes.append(node)
                        dsts.append(buffer.owner.dst)
                        codes.append(int(cols["route"][node, port, vc]))
                    in_index = (
                        (port, vc) in router._requesters[buffer.route_port]
                        if buffer.route_port is not None
                        else False
                    )
                    assert in_index == bool(buffer.flits)
            assert router._ready_min == ready_min
            assert self._router_ready[node] == ready_min
            assert self._router_ready_py[node] == ready_min
            total = sum(
                len(r) for reqs in router._requesters.values() for r in [reqs]
            )
            assert total == len(router._occupied)
        if nodes:
            expected = xy_route_codes(
                np.asarray(nodes), np.asarray(dsts), self.side
            )
            assert np.array_equal(expected, np.asarray(codes))
        # The bulk injectability mask must match the per-node VC scan.
        local = cols["owner"][:, _LOCAL.value], cols["occ"][:, _LOCAL.value]
        mask = allocatable_vc_mask(local[0], local[1], self.config.buffer_flits)
        for node in range(self.num_nodes):
            assert mask[node] == (
                self._allocate_injection_vc(self.routers[node]) is not None
            )
            busy = self._inject_state[node] is not None or bool(
                self._inject_queues[node]
            )
            assert not busy or node in self._active_inject
