"""The timing core model.

Per DESIGN.md's substitution table, the out-of-order Alpha pipeline is
abstracted into a configurable issue rate; everything the interconnect
study depends on is modeled explicitly:

* memory accesses flow through the real L1 controller and MESI protocol;
* a configurable fraction of misses are *dependent* loads that stall the
  core until the fill (the rest overlap, bounded by the MSHR file);
* barrier and lock episodes spin through the coherence protocol (or
  block on confirmation-channel subscriptions when §5.1 is enabled).

The progress metric is retired instructions; application speedup is the
ratio of instructions per cycle between two interconnect configurations,
mirroring the paper's execution-time ratio for a fixed workload window.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Optional

import numpy as np

from repro.coherence.l1 import AccessResult, L1Controller, L1State
from repro.cpu.mshr import MshrFile
from repro.cpu.sync import SyncManager
from repro.util.stats import StatGroup

__all__ = ["OpKind", "Op", "CoreConfig", "Core", "CoreState"]


class OpKind(Enum):
    WORK = auto()     # a non-memory instruction
    MEM = auto()      # a load or store
    BARRIER = auto()  # global barrier episode
    LOCK = auto()     # lock acquire + hold + release episode


@dataclass(frozen=True, slots=True)
class Op:
    kind: OpKind
    line: int = 0
    is_write: bool = False
    lock_id: int = 0
    hold_cycles: int = 0


@dataclass(frozen=True)
class CoreConfig:
    """Timing parameters of one core.

    Defaults are calibrated against Table 3's 4-wide Alpha 21264 model:
    an effective issue rate of 3 (4-wide minus front-end losses) and
    75% of misses behaving as dependent loads reproduce the paper's
    network-sensitivity level (Figure 6's speedup magnitudes).
    """

    ipc: int = 3                     # effective issue slots per cycle
    blocking_fraction: float = 0.75  # misses that stall like dependent loads
    mshr_limit: int = 8
    spin_interval: int = 4           # cycles between spin reads

    def __post_init__(self) -> None:
        if self.ipc < 1:
            raise ValueError(f"ipc must be >= 1: {self.ipc}")
        if not 0.0 <= self.blocking_fraction <= 1.0:
            raise ValueError(f"blocking fraction out of [0,1]")


class CoreState(Enum):
    RUNNING = auto()
    STALLED = auto()         # waiting for a fill (dependent miss / MSHR full)
    BARRIER_ARRIVE = auto()  # performing the arrival write
    BARRIER_SPIN = auto()    # spinning on the barrier line
    BARRIER_WAIT = auto()    # §5.1 subscription: blocked on a signal
    LOCK_ACQUIRE = auto()    # performing the acquire write
    LOCK_SPIN = auto()       # spinning on the lock line
    LOCK_WAIT = auto()       # §5.1 subscription: blocked on a signal
    LOCK_HOLD = auto()       # inside the critical section
    LOCK_RELEASE = auto()    # performing the release write


class Core:
    """One node's processor, driven by a workload's operation stream."""

    def __init__(
        self,
        node: int,
        workload,
        l1: L1Controller,
        sync: SyncManager,
        config: Optional[CoreConfig] = None,
        rng: Optional[np.random.Generator] = None,
        stats: Optional[StatGroup] = None,
    ):
        self.node = node
        self.workload = workload
        self.l1 = l1
        self.sync = sync
        self.config = config or CoreConfig()
        self._rng = rng if rng is not None else np.random.default_rng(node)
        self.mshr = MshrFile(self.config.mshr_limit)
        l1.on_fill = self.on_fill

        self.state = CoreState.RUNNING
        self.instructions = 0
        self._pending: Optional[Op] = None
        self._stall_line: Optional[int] = None  # None = any fill resumes
        self._sync_line = -1
        self._sync_write = False
        self._sync_issued = False  # the sync request is in flight
        self._barrier_epoch = -1
        self._lock_id = -1
        self._lock_generation = -1
        self._hold_left = 0
        self._next_spin = 0

        stats = stats or StatGroup(f"core.{node}")
        self.stats = stats
        self.busy_cycles = stats.counter("busy_cycles")
        self.stall_cycles = stats.counter("stall_cycles")
        self.sync_cycles = stats.counter("sync_cycles")

    # ------------------------------------------------------------------
    # per-cycle operation
    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        state = self.state
        if state is CoreState.RUNNING:
            self.busy_cycles.add()
            self._issue(cycle)
        elif state is CoreState.STALLED:
            self.stall_cycles.add()
        elif state is CoreState.LOCK_HOLD:
            self.sync_cycles.add()
            self._hold_left -= 1
            if self._hold_left <= 0:
                self.state = CoreState.LOCK_RELEASE
                self._sync_access(SyncManager.lock_line(self._lock_id), True)
        elif state in (CoreState.BARRIER_SPIN, CoreState.LOCK_SPIN):
            self.sync_cycles.add()
            self._spin(cycle)
        else:
            # BARRIER_ARRIVE / LOCK_ACQUIRE / LOCK_RELEASE wait for their
            # fill; BARRIER_WAIT / LOCK_WAIT wait for a release signal.
            self.sync_cycles.add()

    # -- fast-forward horizon (see docs/performance.md) -----------------

    def next_event(self, cycle: int) -> Optional[int]:
        """Earliest future cycle at which this core can change state.

        ``cycle`` ("now") means the core must tick every cycle; ``None``
        means it is blocked on an external event (a fill or a release
        signal) and contributes no horizon of its own.
        """
        state = self.state
        if state is CoreState.RUNNING:
            return cycle
        if state is CoreState.LOCK_HOLD:
            # The release access happens on the tick that takes
            # ``_hold_left`` to zero — the (hold_left - 1)-th from now.
            return cycle + max(0, self._hold_left - 1)
        if state in (CoreState.BARRIER_SPIN, CoreState.LOCK_SPIN):
            # Between polls the spin loop only burns sync cycles.
            return self._next_spin if self._next_spin > cycle else cycle
        # STALLED / *_ARRIVE / *_WAIT / LOCK_RELEASE: woken by a fill or
        # a confirmation-channel signal, both of which are calendar- or
        # network-driven events with their own horizons.
        return None

    def skip(self, cycles: int) -> None:
        """Account ``cycles`` skipped ticks without running them.

        Only valid while the per-tick body is a pure counter update —
        i.e. strictly before :meth:`next_event`'s horizon.  The caller
        (``CmpSystem._skip_to``) guarantees that; a RUNNING core pins
        the horizon to "now" and is never skipped.
        """
        state = self.state
        if state is CoreState.STALLED:
            self.stall_cycles.add(cycles)
        else:
            self.sync_cycles.add(cycles)
            if state is CoreState.LOCK_HOLD:
                self._hold_left -= cycles

    def _issue(self, cycle: int) -> None:
        for _slot in range(self.config.ipc):
            op = self._pending
            self._pending = None
            if op is None:
                op = self.workload.next_op(self._rng)
            if op.kind is OpKind.WORK:
                self.instructions += 1
                continue
            if op.kind is OpKind.MEM:
                if not self._issue_mem(op):
                    break
                continue
            if op.kind is OpKind.BARRIER:
                self.state = CoreState.BARRIER_ARRIVE
                self._sync_access(SyncManager.barrier_line(), True)
                break
            # LOCK episode
            self._lock_id = op.lock_id
            self._hold_left = op.hold_cycles
            self.state = CoreState.LOCK_ACQUIRE
            self._sync_access(SyncManager.lock_line(op.lock_id), True)
            break

    def _issue_mem(self, op: Op) -> bool:
        """Returns False when the core must stop issuing this cycle."""
        line = op.line
        if self.l1.state(line).is_transient:
            # Secondary access to an in-flight line ("z"): wait for it.
            self._pending = op
            self._stall_line = line
            self.state = CoreState.STALLED
            return False
        will_miss = self._would_miss(line, op.is_write)
        if will_miss and not self.mshr.allocate(line):
            # MSHR file full: structural stall until something fills.
            self._pending = op
            self._stall_line = None
            self.state = CoreState.STALLED
            return False
        result = self.l1.access(line, op.is_write)
        self.instructions += 1
        if result is AccessResult.HIT:
            if will_miss:  # defensive: prediction said miss but it hit
                self.mshr.release(line)
            return True
        if self._rng.random() < self.config.blocking_fraction:
            self._stall_line = line
            self.state = CoreState.STALLED
            return False
        return True

    def _would_miss(self, line: int, is_write: bool) -> bool:
        state = self.l1.state(line)
        if state is L1State.I:
            return True
        return is_write and state is L1State.S

    # ------------------------------------------------------------------
    # fills
    # ------------------------------------------------------------------

    def on_fill(self, line: int) -> None:
        self.mshr.release(line)
        state = self.state
        if state is CoreState.STALLED:
            if self._stall_line is None or self._stall_line == line:
                self._stall_line = None
                self.state = CoreState.RUNNING
            return
        if line != self._sync_line:
            return
        if state in (CoreState.BARRIER_SPIN, CoreState.LOCK_SPIN):
            self._check_spin_result()
        elif state in (
            CoreState.BARRIER_ARRIVE,
            CoreState.LOCK_ACQUIRE,
            CoreState.LOCK_RELEASE,
        ):
            if self._sync_issued:
                self._sync_issued = False
                self._sync_complete()
            else:
                # The fill cleared whatever transaction blocked us;
                # retry the sync access itself.
                self._sync_access(self._sync_line, self._sync_write)

    # ------------------------------------------------------------------
    # synchronization episodes
    # ------------------------------------------------------------------

    def _sync_access(self, line: int, is_write: bool) -> None:
        self._sync_line = line
        self._sync_write = is_write
        self._sync_issued = False
        if self.l1.state(line).is_transient:
            return  # a previous transaction (e.g. a spin read) is in
            # flight; on_fill will retry this access
        result = self.l1.access(line, is_write)
        if result is AccessResult.HIT:
            self._sync_complete()
        elif result is AccessResult.MISS:
            self._sync_issued = True
        # STALL cannot occur: transience was pre-checked above.

    def _sync_complete(self) -> None:
        """The current sync read/write has globally performed."""
        state = self.state
        if state is CoreState.BARRIER_ARRIVE:
            self._barrier_epoch = self.sync.barrier_arrive(self.node)
            if self.sync.barrier_released(self._barrier_epoch):
                self.state = CoreState.RUNNING  # we were the last arriver
            elif self.sync.subscription:
                self.state = CoreState.BARRIER_WAIT
            else:
                self.state = CoreState.BARRIER_SPIN
        elif state is CoreState.LOCK_ACQUIRE:
            if self.sync.try_acquire(self._lock_id, self.node):
                self.state = CoreState.LOCK_HOLD
            elif self.sync.subscription:
                self._lock_generation = self.sync.lock_generation(self._lock_id)
                self.state = CoreState.LOCK_WAIT
            else:
                self._lock_generation = self.sync.lock_generation(self._lock_id)
                self.state = CoreState.LOCK_SPIN
        elif state is CoreState.LOCK_RELEASE:
            self.sync.release(self._lock_id, self.node)
            self._lock_id = -1
            self.state = CoreState.RUNNING
        # Spin states complete via _check_spin_result instead.

    def _spin(self, cycle: int) -> None:
        if cycle < self._next_spin:
            return
        self._next_spin = cycle + self.config.spin_interval
        line = self._sync_line
        if self.l1.state(line).is_transient:
            return  # spin read already outstanding
        result = self.l1.access(line, False)
        if result is AccessResult.HIT:
            self._check_spin_result()

    def _check_spin_result(self) -> None:
        if self.state is CoreState.BARRIER_SPIN:
            if self.sync.barrier_released(self._barrier_epoch):
                self.state = CoreState.RUNNING
        elif self.state is CoreState.LOCK_SPIN:
            if self.sync.lock_generation(self._lock_id) != self._lock_generation:
                self.state = CoreState.LOCK_ACQUIRE
                self._sync_access(SyncManager.lock_line(self._lock_id), True)

    # -- §5.1 subscription signals ------------------------------------------

    def release_signal(self) -> None:
        """A confirmation-channel release bit arrived (subscription mode)."""
        if self.state is CoreState.BARRIER_WAIT:
            if self.sync.barrier_released(self._barrier_epoch):
                self.state = CoreState.RUNNING
        elif self.state is CoreState.LOCK_WAIT:
            self.state = CoreState.LOCK_ACQUIRE
            self._sync_access(SyncManager.lock_line(self._lock_id), True)
